// Ablation bench: remove one methodology rule at a time and measure the
// damage at the final snapshot — the quantitative version of the design
// rationale in DESIGN.md §5 and the paper's §3/§4/§7 discussion.
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

namespace {

core::SnapshotResult run_with(const scan::World& world,
                              core::PipelineOptions options) {
  core::LongitudinalRunner runner(world, scan::ScannerKind::kRapid7,
                                  options);
  return runner.run_one(net::snapshot_count() - 1);
}

}  // namespace

int main() {
  const auto& world = bench::world();

  struct Variant {
    const char* name;
    core::PipelineOptions options;
  };
  const Variant variants[] = {
      {"full methodology", {}},
      {"- dNSName containment (§4.3)", {.disable_subset_rule = true}},
      {"- edge-conflict priority (§7)",
       {.disable_edge_conflict_rule = true}},
      {"- Netflix nginx rule (§4.4)", {.disable_nginx_rule = true}},
      {"+ Cloudflare SSL filter (§7)",
       {.apply_cloudflare_ssl_filter = true}},
  };

  bench::heading("Ablations at 2021-04 (confirmed off-net ASes)");
  net::TextTable confirmed({"variant", "Google", "Netflix", "Facebook",
                            "Akamai", "Cloudflare", "Apple", "Twitter"});
  net::TextTable candidates({"variant", "Google", "Netflix", "Facebook",
                             "Akamai", "Cloudflare", "Apple", "Twitter"});
  for (const Variant& v : variants) {
    std::fprintf(stderr, "[bench] variant: %s\n", v.name);
    auto result = run_with(world, v.options);
    std::vector<std::string> conf{v.name};
    std::vector<std::string> cand{v.name};
    for (const char* hg : {"Google", "Netflix", "Facebook", "Akamai",
                           "Cloudflare", "Apple", "Twitter"}) {
      const core::HgFootprint* fp = result.find(hg);
      conf.push_back(std::to_string(fp->confirmed_or_ases.size()));
      cand.push_back(std::to_string(fp->candidate_ases.size()));
    }
    confirmed.add_row(std::move(conf));
    candidates.add_row(std::move(cand));
  }
  std::fputs(confirmed.to_string().c_str(), stdout);
  std::printf("\ncandidate (certificate-only) ASes:\n");
  std::fputs(candidates.to_string().c_str(), stdout);

  std::printf(
      "\nReading:\n"
      " - without dNSName containment, Cloudflare's universal-SSL\n"
      "   customers flood the candidates (the paper's §3 challenge);\n"
      " - without edge-conflict priority, Apple/Twitter gain phantom\n"
      "   confirmed off-nets on Akamai hardware;\n"
      " - without the nginx special case, Netflix confirmations collapse\n"
      "   (its appliances expose no debug headers to scans);\n"
      " - the Cloudflare SSL filter (§7 mitigation) removes its\n"
      "   misidentified footprint without touching other HGs.\n");
  return 0;
}
