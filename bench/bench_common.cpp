#include "bench_common.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.h"
#include "obs/stage_timer.h"

namespace offnet::bench {

bool fast_mode() {
  const char* env = std::getenv("OFFNET_BENCH_FAST");
  return env != nullptr && env[0] != '\0';
}

double as_scale() { return fast_mode() ? 0.05 : 1.0; }

const scan::World& world() {
  static const scan::World instance = [] {
    scan::WorldConfig config;
    if (fast_mode()) {
      config.topology_scale = 0.05;
      config.background_scale = 0.001;
      std::fprintf(stderr,
                   "[bench] OFFNET_BENCH_FAST set: 1:20 world; compare "
                   "shapes, not absolute numbers\n");
    }
    std::fprintf(stderr, "[bench] building world...\n");
    return scan::World(config);
  }();
  return instance;
}

std::vector<core::SnapshotResult> run_longitudinal(
    scan::ScannerKind scanner, core::PipelineOptions options) {
  std::fprintf(stderr, "[bench] longitudinal %s run: ",
               std::string(scan::scanner_name(scanner)).c_str());
  core::LongitudinalRunner runner(world(), scanner, options);
  auto results = runner.run(0, net::snapshot_count() - 1,
                            [](const core::SnapshotResult&) {
                              std::fputc('.', stderr);
                              std::fflush(stderr);
                            });
  std::fputc('\n', stderr);
  return results;
}

std::size_t footprint_size(const core::SnapshotResult& result,
                           std::string_view hg) {
  const core::HgFootprint* fp = result.find(hg);
  return fp == nullptr ? 0 : analysis::effective_footprint(*fp).size();
}

double wall_seconds(const std::function<void()>& fn) {
  obs::Stopwatch watch;
  fn();
  return watch.seconds();
}

void write_bench_json(const std::string& bench, const std::string& path,
                      const std::vector<TimingSample>& samples) {
  std::ostringstream out;
  out << "{\"bench\": \"" << bench << "\", \"mode\": \""
      << (fast_mode() ? "fast" : "full") << "\", \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!std::isfinite(samples[i].seconds) ||
        !std::isfinite(samples[i].records)) {
      throw std::invalid_argument("write_bench_json: non-finite value in "
                                  "sample \"" + samples[i].name + "\"");
    }
    if (i > 0) out << ", ";
    out << "{\"name\": \"" << samples[i].name << "\", \"threads\": "
        << samples[i].threads << ", \"seconds\": " << samples[i].seconds;
    if (samples[i].records > 0) {
      out << ", \"records\": " << samples[i].records
          << ", \"records_per_sec\": ";
      // A 0-second run has no meaningful rate; records / 0.0 is inf,
      // which is not JSON. Emit null so consumers see "unknown".
      if (samples[i].seconds > 0) {
        out << samples[i].records / samples[i].seconds;
      } else {
        out << "null";
      }
    }
    if (samples[i].peak_rss_kb > 0) {
      out << ", \"peak_rss_kb\": " << samples[i].peak_rss_kb;
    }
    out << "}";
  }
  out << "]}\n";
  // Relative paths resolve against the repository root (baked in at
  // configure time) so the baseline files land in one stable, versioned
  // place no matter which build directory the bench ran from.
  std::string full = path;
  if (!path.empty() && path.front() != '/') {
    full = std::string(OFFNET_REPO_ROOT) + "/" + path;
  }
  io::AtomicFile::write(full, out.str());
  std::fprintf(stderr, "[bench] wrote %s (%zu samples)\n", full.c_str(),
               samples.size());
}

void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string compare(double paper, double measured) {
  std::string out = "paper ";
  out += net::TextTable::format_double(paper, 0);
  out += " / measured ";
  out += net::TextTable::format_double(measured, 0);
  if (paper > 0) {
    out += " (";
    out += net::TextTable::format_double(measured / paper, 2);
    out += "x)";
  }
  return out;
}

}  // namespace offnet::bench
