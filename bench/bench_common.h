#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/cohosting.h"
#include "core/longitudinal.h"
#include "net/table.h"
#include "scan/world.h"

namespace offnet::bench {

/// The full-scale simulated world shared by a bench binary. Honours the
/// OFFNET_BENCH_FAST environment variable (any non-empty value) to build
/// a 1:20 world for quick iteration — absolute numbers then shrink, but
/// every shape comparison still holds.
const scan::World& world();

/// True when running in fast mode.
bool fast_mode();

/// Factor by which AS-level counts are scaled in fast mode (1.0 in full
/// mode); paper numbers are multiplied by this before comparison.
double as_scale();

/// Runs the longitudinal pipeline for one scanner, printing a progress
/// dot per snapshot to stderr.
std::vector<core::SnapshotResult> run_longitudinal(
    scan::ScannerKind scanner = scan::ScannerKind::kRapid7,
    core::PipelineOptions options = {});

/// The effective (Netflix: envelope) footprint size for one HG in one
/// result; 0 when absent.
std::size_t footprint_size(const core::SnapshotResult& result,
                           std::string_view hg);

/// One wall-clock measurement for the machine-readable perf baseline.
struct TimingSample {
  std::string name;         // what ran, e.g. "pipeline.run"
  std::size_t threads = 1;  // n_threads it ran with
  double seconds = 0.0;     // wall-clock
  double records = 0.0;     // scan records processed (0: not applicable)
  std::size_t peak_rss_kb = 0;  // ru_maxrss of the run (0: not measured)
};

/// Wall-clock seconds of one fn() invocation.
double wall_seconds(const std::function<void()>& fn);

/// Writes `path` as
///   {"bench": <bench>, "mode": "full"|"fast", "samples":
///    [{"name": ..., "threads": N, "seconds": S,
///      "records": R, "records_per_sec": P, "peak_rss_kb": K}, ...]}
/// — the perf baseline future PRs are compared against. `records` and
/// `records_per_sec` appear only for samples that set records > 0, and
/// `peak_rss_kb` only when measured (> 0). When `seconds` is 0 the rate
/// is unknowable and `records_per_sec` is emitted as JSON `null` — never
/// inf/nan, which are not JSON and silently poison downstream parsers.
/// Throws std::invalid_argument if any sample carries a non-finite
/// seconds or records value; a corrupted measurement must fail the bench
/// rather than enter the baseline. Published via io::AtomicFile (a
/// crashed bench never leaves a torn baseline); a relative `path` lands
/// in the repository root, not the current directory, so baselines from
/// any build layout collect in one stable place.
void write_bench_json(const std::string& bench, const std::string& path,
                      const std::vector<TimingSample>& samples);

/// Section header on stdout.
void heading(const std::string& title);

/// "paper X vs measured Y (ratio)" formatting.
std::string compare(double paper, double measured);

}  // namespace offnet::bench
