// Figure 10: network providers' hosting strategies (§6.6) — (b) how many
// of the top-4 HGs each hosting AS runs, per snapshot, with the share of
// all HG-hosting ASes that host a top-4; (a) the same distribution for
// ASes hosting >=1 top-4 HG in every snapshot.
#include "analysis/cohosting.h"
#include "bench_common.h"

using namespace offnet;

int main() {
  auto results = bench::run_longitudinal();
  analysis::CohostingAnalysis cohosting(bench::world().topology(), results);
  const auto snaps = net::study_snapshots();

  bench::heading("Figure 10b: #ASes hosting 1-4 top-4 HGs per snapshot");
  std::printf(
      "paper: total roughly triples (~1.6k -> ~4.7k); top-4 share stays\n"
      ">96%%; by 2020 over 70%% of hosts run 2-4 of the top-4 (under 30%%\n"
      "in 2013).\n\n");
  net::TextTable table({"snapshot", "1 HG", "2 HGs", "3 HGs", "4 HGs",
                        "total", "top-4 share", "2-4 share"});
  for (std::size_t t = 0; t < cohosting.snapshots(); ++t) {
    auto d = cohosting.snapshot_distribution(t);
    double multi =
        d.total_top4 > 0
            ? 1.0 - static_cast<double>(d.hosted_n[1]) / d.total_top4
            : 0.0;
    table.add(snaps[t].to_string(), d.hosted_n[1], d.hosted_n[2],
              d.hosted_n[3], d.hosted_n[4], d.total_top4,
              net::percent(d.top4_share), net::percent(multi));
  }
  std::fputs(table.to_string().c_str(), stdout);

  bench::heading("Figure 10a: ASes hosting >=1 top-4 HG in EVERY snapshot");
  std::size_t always = 0;
  auto always_dists = cohosting.always_host_distributions(&always);
  std::printf("always-host ASes: %zu (paper: 1,002; in 2013 ~450 hosted 2+,"
              " by 2021 250+ hosted all four)\n\n",
              always);
  net::TextTable table_a({"snapshot", "1 HG", "2 HGs", "3 HGs", "4 HGs"});
  for (std::size_t t = 0; t < always_dists.size(); ++t) {
    const auto& d = always_dists[t];
    table_a.add(snaps[t].to_string(), d.hosted_n[1], d.hosted_n[2],
                d.hosted_n[3], d.hosted_n[4]);
  }
  std::fputs(table_a.to_string().c_str(), stdout);
  return 0;
}
