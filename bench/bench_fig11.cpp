// Figure 11: coverage of the top-10 IP groups serving the same
// certificate, for Google and Facebook (Appendix A.3). Paper: Google's
// top-10 groups cover >90% of its certificate-serving IPs, with >50% on
// the *.googlevideo.com certificate; Facebook starts heavily aggregated
// in 2014 and ends disaggregated in 2021.
#include "analysis/certgroups.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  const auto snaps = net::study_snapshots();

  for (const char* hg : {"Google", "Facebook"}) {
    bench::heading(std::string("Figure 11: top-10 certificate IP groups, ") +
                   hg);
    net::TextTable table({"snapshot", "top1", "top2", "top3", "top-10 cum",
                          "#certs", "#IPs"});
    // The paper plots every 6 months; sample every other snapshot.
    for (std::size_t t = 0; t < net::snapshot_count(); t += 2) {
      auto result = runner.run_one(t);
      const core::HgFootprint* fp = result.find(hg);
      auto groups = analysis::cert_groups(fp->candidate_ip_certs, 10);
      if (groups.total_ips == 0) {
        table.add(snaps[t].to_string(), "-", "-", "-", "-", 0, 0);
        continue;
      }
      table.add(snaps[t].to_string(), net::percent(groups.top_share(0)),
                net::percent(groups.top_share(1)),
                net::percent(groups.top_share(2)),
                net::percent(groups.cumulative_top(10)),
                groups.distinct_certs, groups.total_ips);
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  // Shape checks at the endpoints.
  auto first = runner.run_one(2);
  auto last = runner.run_one(net::snapshot_count() - 1);
  auto g = analysis::cert_groups(last.find("Google")->candidate_ip_certs, 10);
  std::printf("\nGoogle 2021: top-1 %s (paper >50%%), top-10 %s (paper >90%%)\n",
              net::percent(g.top_share(0)).c_str(),
              net::percent(g.cumulative_top(10)).c_str());
  auto fb_first =
      analysis::cert_groups(first.find("Facebook")->candidate_ip_certs, 10);
  auto fb_last =
      analysis::cert_groups(last.find("Facebook")->candidate_ip_certs, 10);
  std::printf("Facebook top-1: %s (2014, aggregated) -> %s (2021, "
              "disaggregated)\n",
              fb_first.total_ips > 0
                  ? net::percent(fb_first.top_share(0)).c_str()
                  : "n/a (pre-FNA)",
              net::percent(fb_last.top_share(0)).c_str());
  return 0;
}
