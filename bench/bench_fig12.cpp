// Figure 12 (Appendix A.6): customer-cone user coverage for Facebook,
// Netflix, and Akamai (April 2021). Paper: Facebook 49.9% -> 63.2%
// (+26.8%), Netflix 16.3% -> 26% (+59.4%), Akamai 51.7% -> 77% (+49.1%).
#include "analysis/coverage.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  std::size_t t = net::snapshot_count() - 1;
  auto result = runner.run_one(t);
  analysis::CoverageAnalysis coverage(world.topology(), world.population());

  bench::heading("Figure 12: customer-cone coverage uplift, 2021-04");
  struct PaperRow {
    const char* hg;
    double direct, with_cones;
  };
  const PaperRow paper[] = {
      {"Facebook", 49.9, 63.2},
      {"Netflix", 16.3, 26.0},
      {"Akamai", 51.7, 77.0},
  };
  net::TextTable table({"Hypergiant", "direct", "w/ cones", "uplift",
                        "paper direct", "paper w/ cones"});
  for (const PaperRow& row : paper) {
    const auto& hosts = analysis::effective_footprint(*result.find(row.hg));
    double direct = coverage.worldwide(hosts, t, false);
    double cones = coverage.worldwide(hosts, t, true);
    table.add(row.hg, net::percent(direct), net::percent(cones),
              direct > 0 ? net::percent(cones / direct - 1.0) : "-",
              net::TextTable::format_double(row.direct, 1) + "%",
              net::TextTable::format_double(row.with_cones, 1) + "%");
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nShape check: Akamai gains the most from cones (its footprint\n"
      "shifted toward Large ASes with big customer cones, §6.3/A.6).\n");
  return 0;
}
