// Figure 13 (Appendix A.7): off-net growth per network type and per
// region for the top-4 HGs. Paper highlights: Akamai's Stub footprint
// shrinks ~80% in North America while doubling in Asia; Akamai's Small-AS
// footprint halves; aggressive Stub/Small growth in South America for the
// other three.
#include "analysis/demographics.h"
#include "analysis/regional.h"
#include "bench_common.h"
#include "topology/category.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  auto results = bench::run_longitudinal();
  const auto snaps = net::study_snapshots();

  const topo::SizeCategory categories[] = {
      topo::SizeCategory::kStub, topo::SizeCategory::kSmall,
      topo::SizeCategory::kMedium, topo::SizeCategory::kLarge};

  for (topo::SizeCategory category : categories) {
    for (const char* hg : {"Google", "Netflix", "Facebook", "Akamai"}) {
      bench::heading(std::string("Figure 13: ") + hg + " " +
                     std::string(topo::category_name(category)) +
                     " ASes per region");
      net::TextTable table({"snapshot", "Oceania", "Africa", "SouthAm",
                            "NorthAm", "Asia", "Europe"});
      for (std::size_t t = 0; t < results.size(); t += 3) {
        const auto& ases =
            analysis::effective_footprint(*results[t].find(hg));
        const auto& cones = world.topology().cone_sizes(t);
        std::array<std::size_t, topo::kRegionCount> counts{};
        for (topo::AsId id : ases) {
          if (topo::categorize(cones[id]) != category) continue;
          auto c = world.topology().as(id).country;
          if (c == topo::kNoCountry) continue;
          counts[static_cast<int>(world.topology().country(c).region)]++;
        }
        table.add(snaps[t].to_string(),
                  counts[static_cast<int>(topo::Region::kOceania)],
                  counts[static_cast<int>(topo::Region::kAfrica)],
                  counts[static_cast<int>(topo::Region::kSouthAmerica)],
                  counts[static_cast<int>(topo::Region::kNorthAmerica)],
                  counts[static_cast<int>(topo::Region::kAsia)],
                  counts[static_cast<int>(topo::Region::kEurope)]);
      }
      std::fputs(table.to_string().c_str(), stdout);
    }
  }

  // Akamai regional-shift shape check.
  bench::heading("Akamai stub footprint shift (paper: NA shrinks, Asia "
                 "grows)");
  auto stub_count = [&](const core::SnapshotResult& r, topo::Region region) {
    const auto& ases = analysis::effective_footprint(*r.find("Akamai"));
    const auto& cones = world.topology().cone_sizes(r.snapshot);
    std::size_t n = 0;
    for (topo::AsId id : ases) {
      if (topo::categorize(cones[id]) != topo::SizeCategory::kStub) continue;
      auto c = world.topology().as(id).country;
      if (c != topo::kNoCountry &&
          world.topology().country(c).region == region) {
        ++n;
      }
    }
    return n;
  };
  std::printf("North America: %zu -> %zu\n",
              stub_count(results.front(), topo::Region::kNorthAmerica),
              stub_count(results.back(), topo::Region::kNorthAmerica));
  std::printf("Asia:          %zu -> %zu\n",
              stub_count(results.front(), topo::Region::kAsia),
              stub_count(results.back(), topo::Region::kAsia));
  return 0;
}
