// Figure 14 (Appendix A.8): ASes hosting >=1 top-4 HG in at least 25% /
// 50% of the snapshots, with the share they represent of all ASes that
// ever hosted any examined HG. Also reports the ~5% per-snapshot
// newcomer share.
#include "analysis/cohosting.h"
#include "bench_common.h"

using namespace offnet;

int main() {
  auto results = bench::run_longitudinal();
  analysis::CohostingAnalysis cohosting(bench::world().topology(), results);
  const auto snaps = net::study_snapshots();

  for (double fraction : {0.25, 0.50}) {
    bench::heading("Figure 14: hosts with >=1 top-4 HG in >=" +
                   net::percent(fraction) + " of snapshots");
    auto dists = cohosting.persistent_distributions(fraction);
    net::TextTable table({"snapshot", "1 HG", "2 HGs", "3 HGs", "4 HGs",
                          "total", "share of ever-hosting"});
    for (std::size_t t = 0; t < dists.size(); ++t) {
      const auto& d = dists[t];
      table.add(snaps[t].to_string(), d.hosted_n[1], d.hosted_n[2],
                d.hosted_n[3], d.hosted_n[4], d.total_top4,
                net::percent(d.top4_share));
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  std::printf("\naverage newcomer share per snapshot: %s (paper: ~5%%)\n",
              net::percent(cohosting.average_newcomer_share()).c_str());
  return 0;
}
