// Figure 2: IP addresses hosting TLS certificates in the raw Rapid7
// corpus over time (left axis), and the share of IPs serving Hypergiant
// certificates inside vs outside HG ASes (right axis).
#include "bench_common.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  auto results = bench::run_longitudinal();

  bench::heading("Figure 2: corpus size and HG-certificate share");
  std::printf(
      "paper: raw corpus grows ~10M (2013) -> ~40M IPs (2021); at most a\n"
      "few percent of IPs carry HG certificates (3.8%% in 2021, split\n"
      "between HG ASes and candidate off-nets).\n"
      "Note: HG server IPs are unscaled while the background is 1:%.0f, so\n"
      "the %% columns exceed the paper's by roughly that factor; compare\n"
      "the scaled column and the shapes.\n\n",
      world.report_scale());

  net::TextTable table({"snapshot", "#IPs (scaled)", "% HG IPs in HG ASes",
                        "% HG IPs off-net", "% of scaled corpus"});
  const auto snaps = net::study_snapshots();
  for (const auto& result : results) {
    double total = static_cast<double>(result.stats.total_records);
    double onnet = static_cast<double>(result.stats.hg_cert_ips_onnet);
    double offnet = static_cast<double>(result.stats.hg_cert_ips_offnet);
    double scaled_total =
        (total - onnet - offnet) * world.report_scale() + onnet + offnet;
    table.add(snaps[result.snapshot].to_string(),
              net::with_commas(static_cast<long long>(scaled_total)),
              net::percent(onnet / total), net::percent(offnet / total),
              net::percent((onnet + offnet) / scaled_total));
  }
  std::fputs(table.to_string().c_str(), stdout);

  const auto& first = results.front().stats;
  const auto& last = results.back().stats;
  std::printf("\nShape checks: corpus grows %.1fx (paper ~4x); HG share "
              "rises over the study.\n",
              static_cast<double>(last.total_records) / first.total_records);
  return 0;
}
