// Figure 3: off-net footprint growth of the top-4 Hypergiants, including
// the three Netflix measurement variants (initial / with expired certs /
// with expired certs and non-TLS restoration).
#include "bench_common.h"

using namespace offnet;

int main() {
  auto results = bench::run_longitudinal();

  bench::heading("Figure 3: top-4 off-net growth (#ASes)");
  std::printf(
      "paper anchors: Google 1044->3810; Facebook 0 (until mid-2016)"
      " ->2214;\nAkamai 978 ->peak 1463 (2018-04)-> 1094; Netflix"
      " 47->2115 with the\n2017-04..2019-10 expired-cert dip in the"
      " 'initial' line only.\n\n");

  net::TextTable table({"snapshot", "Google", "Facebook", "Akamai",
                        "Netflix(initial)", "Netflix(w/ expired)",
                        "Netflix(w/ expired,non-tls)"});
  const auto snaps = net::study_snapshots();
  for (const auto& result : results) {
    const core::HgFootprint* nf = result.find("Netflix");
    table.add(snaps[result.snapshot].to_string(),
              result.find("Google")->confirmed_or_ases.size(),
              result.find("Facebook")->confirmed_or_ases.size(),
              result.find("Akamai")->confirmed_or_ases.size(),
              nf->confirmed_or_ases.size(),
              nf->confirmed_expired_ases.size(),
              nf->confirmed_expired_http_ases.size());
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Shape summary.
  auto g0 = results.front().find("Google")->confirmed_or_ases.size();
  auto g30 = results.back().find("Google")->confirmed_or_ases.size();
  std::printf("\nGoogle 2013->2021: %s\n",
              bench::compare(3810.0 / 1044.0,
                             static_cast<double>(g30) / g0).c_str());
  return 0;
}
