// Figure 4: Rapid7 vs Censys, and certificates-only vs certificates plus
// headers (HTTP AND HTTPS / HTTP OR HTTPS), for Google, Facebook, and
// Akamai. The paper's finding: the lines nearly converge (header
// confirmation removes few ASes for these HGs), and Censys uncovers a few
// more Google ASes.
#include "bench_common.h"

using namespace offnet;

int main() {
  auto r7 = bench::run_longitudinal(scan::ScannerKind::kRapid7);
  auto cs = bench::run_longitudinal(scan::ScannerKind::kCensys);

  const auto snaps = net::study_snapshots();
  for (const char* hg : {"Google", "Facebook", "Akamai"}) {
    bench::heading(std::string("Figure 4: ") + hg);
    net::TextTable table({"snapshot", "R7 certs", "R7 cert&(H&H)",
                          "R7 cert&(H|H)", "CS certs", "CS cert&(H&H)",
                          "CS cert&(H|H)"});
    for (const auto& result : r7) {
      const core::HgFootprint* fp = result.find(hg);
      const core::SnapshotResult* censys = nullptr;
      for (const auto& c : cs) {
        if (c.snapshot == result.snapshot) censys = &c;
      }
      auto cell = [](const core::HgFootprint* p, int which) -> std::string {
        if (p == nullptr) return "-";
        switch (which) {
          case 0: return std::to_string(p->candidate_ases.size());
          case 1: return std::to_string(p->confirmed_and_ases.size());
          default: return std::to_string(p->confirmed_or_ases.size());
        }
      };
      const core::HgFootprint* cfp =
          censys == nullptr ? nullptr : censys->find(hg);
      table.add(snaps[result.snapshot].to_string(), cell(fp, 0), cell(fp, 1),
                cell(fp, 2), cell(cfp, 0), cell(cfp, 1), cell(cfp, 2));
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  // Convergence check at the end of the study.
  const auto& last = r7.back();
  for (const char* hg : {"Google", "Facebook", "Akamai"}) {
    const core::HgFootprint* fp = last.find(hg);
    double certs = static_cast<double>(fp->candidate_ases.size());
    double with_headers = static_cast<double>(fp->confirmed_or_ases.size());
    std::printf("%s 2021-04: certs-only vs certs+headers differ by %s "
                "(paper: minimal)\n",
                hg, net::percent(1.0 - with_headers / certs).c_str());
  }
  const core::HgFootprint* g_cs = cs.back().find("Google");
  const core::HgFootprint* g_r7 = r7.back().find("Google");
  std::printf("Censys finds %zu Google ASes vs Rapid7 %zu (paper: CS > R7)\n",
              g_cs->confirmed_or_ases.size(), g_r7->confirmed_or_ases.size());
  return 0;
}
