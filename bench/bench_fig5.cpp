// Figure 5: growth of the top-4 HGs' off-net footprints grouped by AS
// customer-cone size category, plus the Internet-wide baseline
// demographics the paper contrasts against (§6.3).
#include "analysis/demographics.h"
#include "bench_common.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  auto results = bench::run_longitudinal();
  const auto snaps = net::study_snapshots();

  for (const char* hg : {"Google", "Netflix", "Facebook", "Akamai"}) {
    bench::heading(std::string("Figure 5: ") + hg +
                   " footprint by cone-size category");
    net::TextTable table({"snapshot", "Stub", "Small", "Medium", "Large",
                          "XLarge", "total"});
    for (const auto& result : results) {
      const core::HgFootprint* fp = result.find(hg);
      const auto& ases = analysis::effective_footprint(*fp);
      auto counts = analysis::categorize_set(world.topology(), ases,
                                             result.snapshot);
      table.add(snaps[result.snapshot].to_string(), counts[0], counts[1],
                counts[2], counts[3], counts[4], ases.size());
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  bench::heading("Footprint demographics vs Internet baseline, 2021-04");
  std::printf(
      "paper: hosts of Google/Netflix/Facebook are 27-31%% Stub, 41-44%%\n"
      "Small, 22-24%% Medium, >5%% Large+XLarge; Akamai only 13%% Stub and\n"
      ">16%% Large+XLarge. The Internet overall: ~85%% Stub, ~12%% Small,\n"
      "2.6%% Medium, <0.5%% Large, <0.1%% XLarge.\n\n");
  net::TextTable table({"set", "Stub", "Small", "Medium", "Large", "XLarge"});
  auto add_shares = [&table](const std::string& name,
                             const analysis::CategoryCounts& counts) {
    auto s = analysis::shares(counts);
    table.add(name, net::percent(s[0]), net::percent(s[1]),
              net::percent(s[2]), net::percent(s[3]), net::percent(s[4]));
  };
  std::size_t last = results.back().snapshot;
  add_shares("Internet",
             analysis::internet_demographics(world.topology(), last));
  for (const char* hg : {"Google", "Netflix", "Facebook", "Akamai"}) {
    const core::HgFootprint* fp = results.back().find(hg);
    add_shares(hg, analysis::categorize_set(
                       world.topology(), analysis::effective_footprint(*fp),
                       last));
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
