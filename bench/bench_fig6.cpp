// Figure 6: off-net footprint growth per continent for the top-4 HGs and
// Alibaba (§6.4). Paper highlights: exponential growth of
// Google/Netflix/Facebook in South America, Alibaba's Asia-centric
// strategy, slower growth in North America, Africa, and Oceania.
#include "analysis/regional.h"
#include "bench_common.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  auto results = bench::run_longitudinal();
  const auto snaps = net::study_snapshots();

  for (topo::Region region : topo::all_regions()) {
    bench::heading(std::string("Figure 6: ") +
                   std::string(topo::region_name(region)));
    net::TextTable table({"snapshot", "Google", "Akamai", "Netflix",
                          "Facebook", "Alibaba"});
    for (const auto& result : results) {
      std::vector<std::string> row = {snaps[result.snapshot].to_string()};
      for (const char* hg :
           {"Google", "Akamai", "Netflix", "Facebook", "Alibaba"}) {
        const core::HgFootprint* fp = result.find(hg);
        row.push_back(std::to_string(
            analysis::filter_region(world.topology(),
                                    analysis::effective_footprint(*fp),
                                    region)
                .size()));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  // Shape summary: South-American growth factors.
  bench::heading("South America growth 2013->2021 (paper: 800+ ASes added; "
                 "Google ~1200)");
  for (const char* hg : {"Google", "Netflix", "Facebook"}) {
    auto count = [&](const core::SnapshotResult& r) {
      return analysis::filter_region(
                 world.topology(),
                 analysis::effective_footprint(*r.find(hg)),
                 topo::Region::kSouthAmerica)
          .size();
    };
    std::printf("%-10s %zu -> %zu ASes\n", hg, count(results.front()),
                count(results.back()));
  }
  return 0;
}
