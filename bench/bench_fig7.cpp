// Figure 7: percentage of each country's Internet users inside ASes
// hosting off-net servers of Google / Netflix / Akamai (April 2021).
// The bench prints per-region user-weighted coverage plus the top and
// bottom covered countries (the paper draws choropleth maps).
#include "analysis/coverage.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  auto result = runner.run_one(net::snapshot_count() - 1);  // 2021-04
  analysis::CoverageAnalysis coverage(world.topology(), world.population());

  bench::heading("Figure 7: country user coverage, April 2021");
  std::printf(
      "paper: Google covers much of the world incl. strong Africa\n"
      "presence; Akamai covers large-population Asian networks despite a\n"
      "smaller AS footprint; Netflix coverage is thinner. Worldwide\n"
      "Google direct coverage is 57.8%%.\n\n");

  net::TextTable table({"region", "Google", "Netflix", "Akamai"});
  std::size_t t = result.snapshot;
  for (topo::Region region : topo::all_regions()) {
    std::vector<std::string> row{std::string(topo::region_name(region))};
    for (const char* hg : {"Google", "Netflix", "Akamai"}) {
      const auto& hosts = analysis::effective_footprint(*result.find(hg));
      row.push_back(net::percent(coverage.regional(region, hosts, t)));
    }
    table.add_row(std::move(row));
  }
  for (const char* hg : {"Google", "Netflix", "Akamai"}) {
    const auto& hosts = analysis::effective_footprint(*result.find(hg));
    double w = coverage.worldwide(hosts, t);
    if (std::string_view(hg) == "Google") {
      std::printf("Google worldwide: %s\n",
                  bench::compare(57.8, w * 100).c_str());
    } else {
      std::printf("%s worldwide: %s\n", hg, net::percent(w).c_str());
    }
  }
  std::printf("\n");
  std::fputs(table.to_string().c_str(), stdout);

  bench::heading("Per-country coverage (Google, top/bottom 8)");
  const auto& hosts = analysis::effective_footprint(*result.find("Google"));
  auto per_country = coverage.per_country(hosts, t);
  std::sort(per_country.begin(), per_country.end(),
            [](const auto& a, const auto& b) {
              return a.fraction > b.fraction;
            });
  net::TextTable countries({"country", "coverage"});
  for (std::size_t i = 0; i < per_country.size(); ++i) {
    if (i >= 8 && i + 8 < per_country.size()) continue;
    countries.add(world.topology().country(per_country[i].country).name,
                  net::percent(per_country[i].fraction));
  }
  std::fputs(countries.to_string().c_str(), stdout);
  return 0;
}
