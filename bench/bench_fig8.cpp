// Figure 8: percentage of each country's Internet users within the
// customer cones of ASes hosting Google off-nets (April 2021), versus
// the direct coverage of Figure 7. Paper: worldwide coverage rises from
// 57.8% to 68.2%; Europe 58.8% -> 77.5%; North America +43.9%.
#include "analysis/coverage.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  auto result = runner.run_one(net::snapshot_count() - 1);
  analysis::CoverageAnalysis coverage(world.topology(), world.population());
  std::size_t t = result.snapshot;
  const auto& hosts = analysis::effective_footprint(*result.find("Google"));

  bench::heading("Figure 8: Google coverage incl. customer cones, 2021-04");
  double direct = coverage.worldwide(hosts, t, false);
  double cones = coverage.worldwide(hosts, t, true);
  std::printf("worldwide direct:   %s   (paper 57.8%%)\n",
              net::percent(direct).c_str());
  std::printf("worldwide w/ cones: %s   (paper 68.2%%)\n",
              net::percent(cones).c_str());

  net::TextTable table({"region", "direct", "w/ customer cones", "uplift"});
  for (topo::Region region : topo::all_regions()) {
    double d = coverage.regional(region, hosts, t, false);
    double c = coverage.regional(region, hosts, t, true);
    table.add(topo::region_name(region), net::percent(d), net::percent(c),
              d > 0 ? net::percent(c / d - 1.0) : "-");
  }
  std::fputs(table.to_string().c_str(), stdout);

  bench::heading("Countries with the largest cone uplift (paper: Turkey, "
                 "Colombia, Russia)");
  auto direct_c = coverage.per_country(hosts, t);
  auto cones_c = coverage.per_country_with_cones(hosts, t);
  std::vector<std::pair<double, topo::CountryId>> uplift;
  for (std::size_t i = 0; i < direct_c.size(); ++i) {
    uplift.emplace_back(cones_c[i].fraction - direct_c[i].fraction,
                        direct_c[i].country);
  }
  std::sort(uplift.rbegin(), uplift.rend());
  net::TextTable top({"country", "direct", "w/ cones"});
  for (std::size_t i = 0; i < 8 && i < uplift.size(); ++i) {
    topo::CountryId c = uplift[i].second;
    top.add(world.topology().country(c).name,
            net::percent(direct_c[c].fraction),
            net::percent(cones_c[c].fraction));
  }
  std::fputs(top.to_string().c_str(), stdout);
  return 0;
}
