// Figure 9: Facebook's per-country user coverage, Oct 2017 vs Apr 2021.
// Paper: Africa +115% (34.7% -> 74.8%), Europe +136% (16.9% -> 39.8%),
// South America +32% (51.6% -> 68%).
#include "analysis/coverage.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  auto t2017 = net::snapshot_index(net::YearMonth(2017, 10)).value();
  auto t2021 = net::snapshot_count() - 1;
  auto early = runner.run_one(t2017);
  auto late = runner.run_one(t2021);
  analysis::CoverageAnalysis coverage(world.topology(), world.population());

  bench::heading("Figure 9: Facebook coverage, 2017-10 vs 2021-04");
  const auto& hosts_2017 =
      analysis::effective_footprint(*early.find("Facebook"));
  const auto& hosts_2021 =
      analysis::effective_footprint(*late.find("Facebook"));
  std::printf("footprint: %zu ASes (2017) -> %zu ASes (2021)\n\n",
              hosts_2017.size(), hosts_2021.size());

  struct PaperRegion {
    topo::Region region;
    double paper_2017, paper_2021;
  };
  const PaperRegion paper[] = {
      {topo::Region::kAfrica, 34.7, 74.8},
      {topo::Region::kEurope, 16.9, 39.8},
      {topo::Region::kSouthAmerica, 51.6, 68.0},
  };

  net::TextTable table({"region", "2017-10", "2021-04", "paper 2017",
                        "paper 2021"});
  for (topo::Region region : topo::all_regions()) {
    double d17 = coverage.regional(region, hosts_2017, t2017);
    double d21 = coverage.regional(region, hosts_2021, t2021);
    std::string p17 = "-";
    std::string p21 = "-";
    for (const auto& row : paper) {
      if (row.region == region) {
        p17 = net::TextTable::format_double(row.paper_2017, 1) + "%";
        p21 = net::TextTable::format_double(row.paper_2021, 1) + "%";
      }
    }
    table.add(topo::region_name(region), net::percent(d17),
              net::percent(d21), p17, p21);
  }
  std::fputs(table.to_string().c_str(), stdout);

  double w17 = coverage.worldwide(hosts_2017, t2017);
  double w21 = coverage.worldwide(hosts_2021, t2021);
  std::printf("\nworldwide: %s -> %s (coverage must rise everywhere)\n",
              net::percent(w17).c_str(), net::percent(w21).c_str());
  return 0;
}
