// Ingestion memory probe, run as a separate process per measurement.
//
// bench_pipeline fork+execs this binary once per mode because ru_maxrss
// is a high-water mark for the whole process: after a slurp-mode load
// the freed corpus bytes stay counted, so measuring both modes in one
// process would report two identical numbers. A fresh process per mode
// gives each load an honest zero baseline.
//
//   bench_ingest_child <slurp|stream> <dir> <YYYY-MM> <threads>
//
// slurp:  read every dataset file fully into memory first (the
//         pre-streaming behaviour: peak memory O(corpus)), then parse
//         from the in-memory bytes through a zero-copy streambuf so the
//         corpus is resident exactly once.
// stream: parse straight from the files through the bounded streaming
//         driver with <threads> parser workers (peak memory
//         O(batches + loaded dataset)).
//
// Prints one line on stdout:
//   records=<N> maxrss_kb=<K> seconds=<S> digest=<16-hex>
// where digest covers the load report, its exported metrics, and every
// scan record + header row — the parent asserts it identical across
// modes, so the memory numbers are known to come from equal work.
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <streambuf>
#include <string>

#include "io/loaders.h"
#include "net/date.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

using namespace offnet;

namespace {

/// Read-only streambuf over bytes owned elsewhere — parsing from a
/// slurped corpus without std::istringstream's private copy (which
/// would double the resident corpus and overstate slurp mode).
class ViewBuf : public std::streambuf {
 public:
  explicit ViewBuf(std::string& text) {
    setg(text.data(), text.data(), text.data() + text.size());
  }
};

struct ViewStream {
  explicit ViewStream(std::string& text) : buf(text), in(&buf) {}
  ViewBuf buf;
  std::istream in;
};

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_ingest_child: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

std::uint64_t fnv1a(std::uint64_t hash, const void* bytes, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  return fnv1a(hash, text.data(), text.size());
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  return fnv1a(hash, &value, sizeof value);
}

/// Order- and content-sensitive digest of everything the load produced.
std::uint64_t digest(const io::Dataset& dataset, const io::LoadReport& report) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = fnv1a(hash, report.summary());
  obs::Registry metrics;
  report.export_metrics(metrics);
  hash = fnv1a(hash, obs::MetricsExporter::deterministic_json(metrics));
  const scan::ScanSnapshot& snap = dataset.snapshot();
  for (const scan::CertScanRecord& record : snap.certs()) {
    hash = fnv1a(hash, record.ip.value());
    hash = fnv1a(hash, record.cert);
  }
  for (bool https : {true, false}) {
    snap.for_each_headers(
        https, [&](net::IPv4 ip, const http::HeaderMap& headers) {
          hash = fnv1a(hash, ip.value());
          for (const http::Header& header : headers.all()) {
            hash = fnv1a(hash, header.name);
            hash = fnv1a(hash, header.value);
          }
        });
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: bench_ingest_child <slurp|stream> <dir> <YYYY-MM> "
                 "<threads>\n");
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  auto month = net::YearMonth::parse(argv[3]);
  const int threads = std::atoi(argv[4]);
  if (!month || (mode != "slurp" && mode != "stream") || threads < 1) {
    std::fprintf(stderr, "bench_ingest_child: bad arguments\n");
    return 2;
  }

  static const char* kNames[] = {"relationships.txt", "organizations.txt",
                                 "prefix2as.txt",     "certificates.tsv",
                                 "hosts.tsv",         "headers.tsv"};

  obs::Stopwatch watch;
  io::LoadReport report;
  io::Dataset dataset;
  if (mode == "slurp") {
    std::string bytes[6];
    for (int i = 0; i < 6; ++i) bytes[i] = slurp_file(dir + "/" + kNames[i]);
    ViewStream rel(bytes[0]), org(bytes[1]), pfx(bytes[2]), certs(bytes[3]),
        hosts(bytes[4]), headers(bytes[5]);
    dataset = io::load_dataset(rel.in, org.in, pfx.in, certs.in, hosts.in,
                               *month, {}, &report);
    dataset.add_headers(headers.in, {}, &report);
    // The corpus strings stay alive to this point — that residency is
    // exactly what this mode exists to measure.
  } else {
    io::stream::StreamOptions stream;
    stream.n_threads = threads;
    std::ifstream rel(dir + "/" + kNames[0]), org(dir + "/" + kNames[1]),
        pfx(dir + "/" + kNames[2]), certs(dir + "/" + kNames[3]),
        hosts(dir + "/" + kNames[4]), headers(dir + "/" + kNames[5]);
    dataset = io::load_dataset_stream(rel, org, pfx, certs, hosts, *month,
                                      stream, {}, &report);
    dataset.add_headers(headers, stream, {}, &report);
  }
  const double seconds = watch.seconds();

  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);  // ru_maxrss is KiB on Linux

  std::printf("records=%zu maxrss_kb=%ld seconds=%.6f digest=%016llx\n",
              dataset.snapshot().certs().size(),
              static_cast<long>(usage.ru_maxrss), seconds,
              static_cast<unsigned long long>(digest(dataset, report)));
  return 0;
}
