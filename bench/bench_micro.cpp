// Microbenchmarks (google-benchmark) for the pipeline's hot paths:
// longest-prefix match, IP-to-AS construction, certificate validation,
// fingerprint matching, and a full pipeline run on a small world.
#include <benchmark/benchmark.h>

#include "bgp/feed.h"
#include "core/pipeline.h"
#include "http/fingerprint.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "scan/world.h"
#include "tls/validator.h"

using namespace offnet;

namespace {

const scan::World& micro_world() {
  static const scan::World world = [] {
    scan::WorldConfig config;
    config.topology_scale = 0.02;
    config.background_scale = 0.0005;
    return scan::World(config);
  }();
  return world;
}

void BM_TrieLongestMatch(benchmark::State& state) {
  net::Rng rng(1);
  net::PrefixTrie<std::uint32_t> trie;
  for (int i = 0; i < state.range(0); ++i) {
    auto len = static_cast<std::uint8_t>(rng.uniform(12, 24));
    trie.insert(net::Prefix(net::IPv4(static_cast<std::uint32_t>(
                                rng.uniform(0, 0xffffffffll))),
                            len),
                static_cast<std::uint32_t>(i));
  }
  std::vector<net::IPv4> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(
        static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffll)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Ip2AsBuild(benchmark::State& state) {
  const auto& world = micro_world();
  bgp::FeedSimulator sim(world.topology(), bgp::FeedConfig{});
  auto feed_a = sim.monthly_feed(30, bgp::Collector::kRipeRis);
  auto feed_b = sim.monthly_feed(30, bgp::Collector::kRouteViews);
  for (auto _ : state) {
    bgp::Ip2AsBuilder builder;
    builder.add_feed(feed_a);
    builder.add_feed(feed_b);
    benchmark::DoNotOptimize(builder.build());
  }
}
BENCHMARK(BM_Ip2AsBuild);

void BM_CertValidation(benchmark::State& state) {
  const auto& world = micro_world();
  tls::CertValidator validator(world.certs(), world.roots());
  auto at = net::DayTime::from(net::YearMonth(2020, 1));
  tls::CertId n = static_cast<tls::CertId>(world.certs().size());
  tls::CertId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.validate(i, at));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_CertValidation);

void BM_FingerprintMatch(benchmark::State& state) {
  http::HeaderFingerprintSet set;
  set.patterns.push_back(http::HeaderFingerprint::parse("Server:gws*"));
  set.patterns.push_back(http::HeaderFingerprint::parse("X-FB-Debug:"));
  set.patterns.push_back(http::HeaderFingerprint::parse("X-Netflix.*:"));
  http::HeaderMap headers;
  headers.add("Content-Type", "text/html");
  headers.add("Cache-Control", "max-age=3600");
  headers.add("Server", "gws");
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.matches(headers));
  }
}
BENCHMARK(BM_FingerprintMatch);

void BM_ScanGeneration(benchmark::State& state) {
  const auto& world = micro_world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.scan(30, scan::ScannerKind::kRapid7));
  }
}
BENCHMARK(BM_ScanGeneration);

void BM_PipelineRun(benchmark::State& state) {
  const auto& world = micro_world();
  auto snap = world.scan(30, scan::ScannerKind::kRapid7);
  core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                world.certs(), world.roots());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(snap));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(snap.certs().size()));
}
BENCHMARK(BM_PipelineRun);

void BM_ConeComputation(benchmark::State& state) {
  const auto& world = micro_world();
  const auto& graph = world.topology().graph();
  const auto& alive = world.topology().alive_mask(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.customer_cone_sizes(alive));
  }
}
BENCHMARK(BM_ConeComputation);

}  // namespace

BENCHMARK_MAIN();
