// bench_offnetd: load generator for the offnetd service layer
// (DESIGN.md §11). Phase 1 drives an in-process svc::Server with
// concurrent query clients over a unix-domain socket and reports the
// request-latency distribution from the server's own svc/latency_us
// histogram (the same obs:: registry offnetd exports with --metrics-out).
// Phase 2 deliberately overloads a 1-worker/1-slot server and verifies
// the admission queue sheds with explicit BUSY responses — shed counts
// come from the registry, not from client-side bookkeeping, so the bench
// doubles as a check that the observability story is wired end to end.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "net/date.h"
#include "net/rng.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/service_snapshot.h"

using namespace offnet;

namespace {

/// A full-shape synthetic snapshot: the paper's 23 Hypergiants over the
/// 31 study months, with footprint sizes drawn from a seeded RNG. The
/// bench measures the service layer, not the pipeline, so the data only
/// needs realistic cardinalities — not realistic values.
std::shared_ptr<const svc::ServiceSnapshot> build_snapshot() {
  net::Rng rng(42);
  const std::vector<core::HgInput> hgs = core::standard_hg_inputs();
  const std::size_t n_months = net::study_snapshots().size();
  std::vector<core::SnapshotResult> results;
  for (std::size_t t = 0; t < n_months; ++t) {
    core::SnapshotResult result;
    result.snapshot = t;
    result.health = core::SnapshotHealth::kComplete;
    for (const core::HgInput& hg : hgs) {
      core::HgFootprint fp;
      fp.name = hg.name;
      fp.onnet_ips = static_cast<std::size_t>(rng.uniform(100, 5000));
      fp.candidate_ips = static_cast<std::size_t>(rng.uniform(50, 2000));
      fp.confirmed_ips =
          static_cast<std::size_t>(rng.uniform(0, 50)) * fp.candidate_ips /
          50;
      const std::size_t n_ases =
          static_cast<std::size_t>(rng.uniform(5, 400));
      std::uint32_t as_id = 0;
      for (std::size_t i = 0; i < n_ases; ++i) {
        as_id += static_cast<std::uint32_t>(rng.uniform(1, 40));
        fp.candidate_ases.push_back(as_id);
        if (rng.uniform(0, 100) < 60) fp.confirmed_or_ases.push_back(as_id);
      }
      result.per_hg.push_back(std::move(fp));
    }
    results.push_back(std::move(result));
  }
  return svc::ServiceSnapshot::from_results("bench-synthetic", results);
}

std::string socket_path(const char* phase) {
  return (std::filesystem::temp_directory_path() /
          ("bench_offnetd_" + std::to_string(::getpid()) + "_" + phase +
           ".sock"))
      .string();
}

/// Latency percentile as the upper bound of the first histogram bucket
/// containing the target rank (overflow reports the last finite bound).
double percentile_us(const obs::RegistrySnapshot::HistogramData& histogram,
                     double p) {
  if (histogram.count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(histogram.count - 1) / 100.0);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < histogram.buckets.size(); ++b) {
    seen += histogram.buckets[b];
    if (seen > target) {
      return b < histogram.bounds.size() ? histogram.bounds[b]
                                         : histogram.bounds.back();
    }
  }
  return histogram.bounds.back();
}

int run() {
  const bool fast = bench::fast_mode();
  const std::string month = net::study_snapshots()[0].to_string();
  auto snapshot = build_snapshot();
  std::vector<bench::TimingSample> samples;

  // --- Phase 1: query latency under concurrent well-behaved clients ---
  bench::heading("offnetd query latency (4 workers, 4 client threads)");
  obs::Registry query_metrics;
  const std::size_t n_clients = 4;
  const std::size_t n_requests = fast ? 500 : 2000;
  {
    svc::ServerOptions options;
    options.endpoint = svc::Endpoint::unix_socket(socket_path("query"));
    options.n_workers = 4;
    options.queue_capacity = 64;
    options.default_deadline_ms = 10'000;
    options.metrics = &query_metrics;
    svc::Server server(options, snapshot);
    server.start();

    const std::vector<std::string> mix = {
        "PING",
        "INFO",
        "FOOTPRINT " + month + " Google",
        "COVERAGE " + month,
        "COHOST " + month + " 17",
    };
    const double seconds = bench::wall_seconds([&] {
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
          svc::Client client(server.bound_endpoint(), 30'000);
          for (std::size_t i = 0; i < n_requests; ++i) {
            auto response = client.request(mix[(c + i) % mix.size()]);
            if (!response || response->rfind("OK", 0) != 0) {
              std::fprintf(stderr, "unexpected response: %s\n",
                           response ? response->c_str() : "<none>");
              std::exit(1);
            }
          }
        });
      }
      for (std::thread& client : clients) client.join();
    });
    server.request_drain();
    if (!server.join()) {
      std::fprintf(stderr, "query-phase drain was not clean\n");
      return 1;
    }
    samples.push_back({"offnetd.query", n_clients, seconds});

    const obs::RegistrySnapshot stats = query_metrics.snapshot();
    const auto latency =
        stats.histograms.find(svc::metric_names::kLatencyUs);
    if (latency == stats.histograms.end() || latency->second.count == 0) {
      std::fprintf(stderr, "no svc/latency_us histogram in the registry\n");
      return 1;
    }
    net::TextTable table({"metric", "value"});
    table.add("requests", n_clients * n_requests);
    table.add("wall seconds", seconds);
    table.add("requests/sec",
              static_cast<double>(n_clients * n_requests) / seconds);
    table.add("p50 latency (us, bucket bound)",
              percentile_us(latency->second, 50));
    table.add("p90 latency (us, bucket bound)",
              percentile_us(latency->second, 90));
    table.add("p99 latency (us, bucket bound)",
              percentile_us(latency->second, 99));
    std::fputs(table.to_string().c_str(), stdout);
  }

  // --- Phase 2: overload shedding on a deliberately tiny server ---
  bench::heading("offnetd overload shedding (1 worker, queue depth 1)");
  obs::Registry overload_metrics;
  std::uint64_t shed_busy = 0;
  std::uint64_t served_ok = 0;
  {
    svc::ServerOptions options;
    options.endpoint = svc::Endpoint::unix_socket(socket_path("overload"));
    options.n_workers = 1;
    options.queue_capacity = 1;
    options.default_deadline_ms = 10'000;
    options.enable_sleep = true;
    options.metrics = &overload_metrics;
    svc::Server server(options, snapshot);
    server.start();

    // One connection keeps the only worker busy; every other connection
    // either takes the single queue slot or must be shed with BUSY.
    std::atomic<bool> stop_blocking{false};
    std::thread blocker([&] {
      svc::Client client(server.bound_endpoint(), 30'000);
      while (!stop_blocking.load(std::memory_order_relaxed)) {
        if (!client.request("SLEEP 50")) return;
      }
      (void)client.request("QUIT");
    });

    const std::size_t n_threads = 4;
    const std::size_t n_attempts = fast ? 50 : 200;
    const double seconds = bench::wall_seconds([&] {
      std::vector<std::thread> attackers;
      for (std::size_t a = 0; a < n_threads; ++a) {
        attackers.emplace_back([&] {
          for (std::size_t i = 0; i < n_attempts; ++i) {
            // A fresh connection per attempt: admission is per
            // connection, so only reconnects exercise the queue bound.
            svc::Client client(server.bound_endpoint(), 30'000);
            (void)client.request("PING");
          }
        });
      }
      for (std::thread& attacker : attackers) attacker.join();
    });
    stop_blocking.store(true, std::memory_order_relaxed);
    blocker.join();
    server.request_drain();
    if (!server.join()) {
      std::fprintf(stderr, "overload-phase drain was not clean\n");
      return 1;
    }
    samples.push_back({"offnetd.overload", n_threads, seconds});

    const obs::RegistrySnapshot stats = overload_metrics.snapshot();
    auto count = [&stats](const char* name) {
      auto it = stats.counters.find(name);
      return it == stats.counters.end() ? std::uint64_t{0} : it->second;
    };
    shed_busy = count(svc::metric_names::kShedBusy);
    served_ok = count(svc::metric_names::kResponsesOk);
    net::TextTable table({"metric", "value"});
    table.add("connection attempts", n_threads * n_attempts);
    table.add("shed BUSY (svc/shed/busy)", shed_busy);
    table.add("shed at admission (svc/shed/deadline)",
              count(svc::metric_names::kShedDeadline));
    table.add("served OK", served_ok);
    std::fputs(table.to_string().c_str(), stdout);
  }
  if (shed_busy == 0) {
    std::fprintf(stderr,
                 "overload produced zero queue-full sheds — the admission "
                 "bound is not working\n");
    return 1;
  }

  bench::heading("service registry (query phase, exporter JSON)");
  std::fputs(obs::MetricsExporter::to_json(query_metrics).c_str(), stdout);
  std::fputs("\n", stdout);

  bench::write_bench_json("offnetd", "BENCH_offnetd.json", samples);
  return 0;
}

}  // namespace

int main() { return run(); }
