// Wall-clock baseline for the sharded snapshot pipeline: serial vs
// threaded OffnetPipeline::run on the latest snapshot, plus a short
// longitudinal segment, written to BENCH_pipeline.json. Every threaded
// run is also checked bit-identical to the serial result — a perf number
// from a wrong answer is worthless.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/delta_cache.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

using namespace offnet;

namespace {

bool same_result(const core::SnapshotResult& a,
                 const core::SnapshotResult& b) {
  if (a.stats.total_records != b.stats.total_records ||
      a.stats.valid_cert_ips != b.stats.valid_cert_ips ||
      a.stats.invalid_cert_ips != b.stats.invalid_cert_ips ||
      a.stats.ases_with_certs != b.stats.ases_with_certs ||
      a.stats.hg_cert_ips_onnet != b.stats.hg_cert_ips_onnet ||
      a.stats.hg_cert_ips_offnet != b.stats.hg_cert_ips_offnet ||
      a.stats.ases_with_any_hg != b.stats.ases_with_any_hg ||
      a.per_hg.size() != b.per_hg.size()) {
    return false;
  }
  for (std::size_t h = 0; h < a.per_hg.size(); ++h) {
    const core::HgFootprint& x = a.per_hg[h];
    const core::HgFootprint& y = b.per_hg[h];
    if (x.candidate_ases != y.candidate_ases ||
        x.confirmed_or_ases != y.confirmed_or_ases ||
        x.confirmed_and_ases != y.confirmed_and_ases ||
        x.confirmed_expired_http_ases != y.confirmed_expired_http_ases ||
        x.confirmed_ip_list != y.confirmed_ip_list) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const scan::World& world = bench::world();
  const std::size_t t = net::snapshot_count() - 1;
  const scan::ScanSnapshot snap = world.scan(t, scan::ScannerKind::kRapid7);
  std::vector<bench::TimingSample> samples;

  const double records = static_cast<double>(snap.certs().size());

  bench::heading("snapshot pipeline: serial vs sharded");
  std::printf("snapshot %zu, %zu scan records\n", t, snap.certs().size());

  // Warm the IP-to-AS cache so the serial baseline doesn't also pay the
  // one-time map build that later runs get for free.
  (void)world.ip2as().at(t);

  core::SnapshotResult serial;
  obs::Registry serial_metrics;
  {
    core::PipelineOptions options;
    options.metrics = &serial_metrics;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    const double s = bench::wall_seconds([&] { serial = pipeline.run(snap); });
    samples.push_back({"pipeline.run", 1, s, records});
    std::printf("  1 thread : %7.3fs (baseline, %.0f records/s)\n", s,
                s > 0 ? records / s : 0.0);
  }
  const double serial_seconds = samples.front().seconds;
  const std::string serial_json =
      obs::MetricsExporter::deterministic_json(serial_metrics);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::PipelineOptions options;
    options.n_threads = threads;
    obs::Registry metrics;
    options.metrics = &metrics;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    core::SnapshotResult result;
    const double s = bench::wall_seconds([&] { result = pipeline.run(snap); });
    samples.push_back({"pipeline.run", threads, s, records});
    std::printf("  %zu threads: %7.3fs (%.2fx, %.0f records/s)\n", threads, s,
                s > 0 ? serial_seconds / s : 0.0, s > 0 ? records / s : 0.0);
    if (!same_result(serial, result)) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread result differs from serial result\n",
                   threads);
      return 1;
    }
    if (obs::MetricsExporter::deterministic_json(metrics) != serial_json) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread metrics differ from serial metrics\n",
                   threads);
      return 1;
    }
  }

  bench::heading("serial pipeline stage timings");
  for (const auto& [stage, stat] : serial_metrics.snapshot().timings) {
    std::printf("  %-32s %8.3fs (%zu calls)\n", stage.c_str(),
                stat.total_seconds, static_cast<std::size_t>(stat.calls));
  }

  bench::heading("longitudinal segment: serial vs snapshot fan-out");
  const std::size_t first = t >= 3 ? t - 3 : 0;
  std::printf("snapshots %zu..%zu\n", first, t);
  std::vector<core::SnapshotResult> serial_series;
  {
    core::LongitudinalRunner runner(world, scan::ScannerKind::kRapid7);
    const double s =
        bench::wall_seconds([&] { serial_series = runner.run(first, t); });
    samples.push_back({"longitudinal.run", 1, s});
    std::printf("  1 thread : %7.3fs (baseline)\n", s);
  }
  {
    core::PipelineOptions options;
    options.n_threads = 4;
    core::LongitudinalRunner runner(world, scan::ScannerKind::kRapid7,
                                    options);
    std::vector<core::SnapshotResult> series;
    const double s = bench::wall_seconds([&] { series = runner.run(first, t); });
    samples.push_back({"longitudinal.run", 4, s});
    std::printf("  4 threads: %7.3fs (%.2fx)\n", s,
                s > 0 ? samples[samples.size() - 2].seconds / s : 0.0);
    if (series.size() != serial_series.size()) {
      std::fprintf(stderr, "FAIL: series length mismatch\n");
      return 1;
    }
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (!same_result(serial_series[i], series[i])) {
        std::fprintf(stderr,
                     "FAIL: snapshot %zu differs between serial and "
                     "fan-out longitudinal runs\n",
                     serial_series[i].snapshot);
        return 1;
      }
    }
  }

  // The delta cache's value shows on repeated content: the second run of
  // the same snapshot should answer (almost) every verdict from the
  // cache. Timing wins are machine-dependent and only reported; what is
  // asserted is correctness (bit-identical to serial) and that the warm
  // run actually hit the cache.
  bench::heading("delta cache: repeated snapshot, cold vs warm");
  {
    core::DeltaCache cache;
    obs::Registry metrics;
    core::PipelineOptions options;
    options.metrics = &metrics;
    options.delta = &cache;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    core::SnapshotResult cold_result;
    core::SnapshotResult warm_result;
    const double cold =
        bench::wall_seconds([&] { cold_result = pipeline.run(snap); });
    const std::uint64_t cold_hits = metrics.counter(core::metric_names::kDeltaHits).value();
    const double warm =
        bench::wall_seconds([&] { warm_result = pipeline.run(snap); });
    const std::uint64_t warm_hits =
        metrics.counter(core::metric_names::kDeltaHits).value() - cold_hits;
    samples.push_back({"pipeline.run.delta_cold", 1, cold, records});
    samples.push_back({"pipeline.run.delta_warm", 1, warm, records});
    std::printf("  cold: %7.3fs (%.0f records/s)\n", cold,
                cold > 0 ? records / cold : 0.0);
    std::printf("  warm: %7.3fs (%.2fx, %.0f records/s, %zu cache hits)\n",
                warm, warm > 0 ? cold / warm : 0.0,
                warm > 0 ? records / warm : 0.0,
                static_cast<std::size_t>(warm_hits));
    if (!bench::fast_mode() && warm > 0 && cold / warm < 1.0) {
      std::printf("  note: warm run not faster on this machine\n");
    }
    if (!same_result(serial, cold_result) ||
        !same_result(serial, warm_result)) {
      std::fprintf(stderr,
                   "FAIL: delta-cached result differs from serial result\n");
      return 1;
    }
    if (warm_hits == 0) {
      std::fprintf(stderr, "FAIL: warm delta run had zero cache hits\n");
      return 1;
    }
  }

  bench::write_bench_json("pipeline", "BENCH_pipeline.json", samples);
  return 0;
}
