// Wall-clock baseline for the sharded snapshot pipeline: serial vs
// threaded OffnetPipeline::run on the latest snapshot, plus a short
// longitudinal segment and a streaming-ingestion memory segment, written
// to BENCH_pipeline.json. Every threaded run is also checked
// bit-identical to the serial result — a perf number from a wrong answer
// is worthless.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/delta_cache.h"
#include "scan/export.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

using namespace offnet;

namespace {

bool same_result(const core::SnapshotResult& a,
                 const core::SnapshotResult& b) {
  if (a.stats.total_records != b.stats.total_records ||
      a.stats.valid_cert_ips != b.stats.valid_cert_ips ||
      a.stats.invalid_cert_ips != b.stats.invalid_cert_ips ||
      a.stats.ases_with_certs != b.stats.ases_with_certs ||
      a.stats.hg_cert_ips_onnet != b.stats.hg_cert_ips_onnet ||
      a.stats.hg_cert_ips_offnet != b.stats.hg_cert_ips_offnet ||
      a.stats.ases_with_any_hg != b.stats.ases_with_any_hg ||
      a.per_hg.size() != b.per_hg.size()) {
    return false;
  }
  for (std::size_t h = 0; h < a.per_hg.size(); ++h) {
    const core::HgFootprint& x = a.per_hg[h];
    const core::HgFootprint& y = b.per_hg[h];
    if (x.candidate_ases != y.candidate_ases ||
        x.confirmed_or_ases != y.confirmed_or_ases ||
        x.confirmed_and_ases != y.confirmed_and_ases ||
        x.confirmed_expired_http_ases != y.confirmed_expired_http_ases ||
        x.confirmed_ip_list != y.confirmed_ip_list) {
      return false;
    }
  }
  return true;
}

/// Rewrites one exported file with every data line emitted `factor`
/// times. Certificate ids (and the host lines referencing them) get a
/// `~k` suffix per extra copy so the duplicates stay unique keys; header
/// lines repeat verbatim (duplicate IPs are no-ops for the catalog but
/// real bytes for a whole-file reader). Comments pass through once.
enum class AmplifyKind { kCertificates, kHosts, kVerbatim };

void amplify_file(const std::filesystem::path& path, AmplifyKind kind,
                  std::size_t factor) {
  std::ifstream in(path);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      out << line << '\n';
      continue;
    }
    for (std::size_t k = 0; k < factor; ++k) {
      if (k == 0 || kind == AmplifyKind::kVerbatim) {
        out << line << '\n';
        continue;
      }
      if (kind == AmplifyKind::kCertificates) {
        // "id\trest..." -> "id~k\trest..."
        std::size_t tab = line.find('\t');
        out << line.substr(0, tab) << '~' << k << line.substr(tab) << '\n';
      } else {
        // "ip\tcert_id" -> "ip\tcert_id~k"
        out << line << '~' << k << '\n';
      }
    }
  }
  in.close();
  std::ofstream rewrite(path, std::ios::trunc);
  rewrite << out.str();
}

/// One bench_ingest_child run (see bench_ingest_child.cpp for why the
/// probe is a separate process).
struct IngestRun {
  double records = 0.0;
  double seconds = 0.0;
  long maxrss_kb = 0;
  std::string digest;
};

bool run_ingest_child(const char* mode, const std::string& dir,
                      const std::string& month, int threads, IngestRun* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    std::string threads_arg = std::to_string(threads);
    const char* child_argv[] = {OFFNET_INGEST_BIN, mode,  dir.c_str(),
                                month.c_str(),     threads_arg.c_str(),
                                nullptr};
    execv(OFFNET_INGEST_BIN, const_cast<char* const*>(child_argv));
    _exit(127);  // exec failed; abandon the forked bench state
  }
  close(fds[1]);
  std::string text;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fds[0], buffer, sizeof buffer)) > 0) {
    text.append(buffer, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;
  char digest[64] = {0};
  if (std::sscanf(text.c_str(),
                  "records=%lf maxrss_kb=%ld seconds=%lf digest=%63s",
                  &out->records, &out->maxrss_kb, &out->seconds,
                  digest) != 4) {
    return false;
  }
  out->digest = digest;
  return true;
}

}  // namespace

int main() {
  const scan::World& world = bench::world();
  const std::size_t t = net::snapshot_count() - 1;
  const scan::ScanSnapshot snap = world.scan(t, scan::ScannerKind::kRapid7);
  std::vector<bench::TimingSample> samples;

  const double records = static_cast<double>(snap.certs().size());

  bench::heading("snapshot pipeline: serial vs sharded");
  std::printf("snapshot %zu, %zu scan records\n", t, snap.certs().size());

  // Warm the IP-to-AS cache so the serial baseline doesn't also pay the
  // one-time map build that later runs get for free.
  (void)world.ip2as().at(t);

  core::SnapshotResult serial;
  obs::Registry serial_metrics;
  {
    core::PipelineOptions options;
    options.metrics = &serial_metrics;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    const double s = bench::wall_seconds([&] { serial = pipeline.run(snap); });
    samples.push_back({"pipeline.run", 1, s, records});
    std::printf("  1 thread : %7.3fs (baseline, %.0f records/s)\n", s,
                s > 0 ? records / s : 0.0);
  }
  const double serial_seconds = samples.front().seconds;
  const std::string serial_json =
      obs::MetricsExporter::deterministic_json(serial_metrics);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::PipelineOptions options;
    options.n_threads = threads;
    obs::Registry metrics;
    options.metrics = &metrics;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    core::SnapshotResult result;
    const double s = bench::wall_seconds([&] { result = pipeline.run(snap); });
    samples.push_back({"pipeline.run", threads, s, records});
    std::printf("  %zu threads: %7.3fs (%.2fx, %.0f records/s)\n", threads, s,
                s > 0 ? serial_seconds / s : 0.0, s > 0 ? records / s : 0.0);
    if (!same_result(serial, result)) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread result differs from serial result\n",
                   threads);
      return 1;
    }
    if (obs::MetricsExporter::deterministic_json(metrics) != serial_json) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread metrics differ from serial metrics\n",
                   threads);
      return 1;
    }
  }

  bench::heading("serial pipeline stage timings");
  for (const auto& [stage, stat] : serial_metrics.snapshot().timings) {
    std::printf("  %-32s %8.3fs (%zu calls)\n", stage.c_str(),
                stat.total_seconds, static_cast<std::size_t>(stat.calls));
  }

  bench::heading("longitudinal segment: serial vs snapshot fan-out");
  const std::size_t first = t >= 3 ? t - 3 : 0;
  std::printf("snapshots %zu..%zu\n", first, t);
  std::vector<core::SnapshotResult> serial_series;
  {
    core::LongitudinalRunner runner(world, scan::ScannerKind::kRapid7);
    const double s =
        bench::wall_seconds([&] { serial_series = runner.run(first, t); });
    samples.push_back({"longitudinal.run", 1, s});
    std::printf("  1 thread : %7.3fs (baseline)\n", s);
  }
  {
    core::PipelineOptions options;
    options.n_threads = 4;
    core::LongitudinalRunner runner(world, scan::ScannerKind::kRapid7,
                                    options);
    std::vector<core::SnapshotResult> series;
    const double s = bench::wall_seconds([&] { series = runner.run(first, t); });
    samples.push_back({"longitudinal.run", 4, s});
    std::printf("  4 threads: %7.3fs (%.2fx)\n", s,
                s > 0 ? samples[samples.size() - 2].seconds / s : 0.0);
    if (series.size() != serial_series.size()) {
      std::fprintf(stderr, "FAIL: series length mismatch\n");
      return 1;
    }
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (!same_result(serial_series[i], series[i])) {
        std::fprintf(stderr,
                     "FAIL: snapshot %zu differs between serial and "
                     "fan-out longitudinal runs\n",
                     serial_series[i].snapshot);
        return 1;
      }
    }
  }

  // The delta cache's value shows on repeated content: the second run of
  // the same snapshot should answer (almost) every verdict from the
  // cache. Timing wins are machine-dependent and only reported; what is
  // asserted is correctness (bit-identical to serial) and that the warm
  // run actually hit the cache.
  bench::heading("delta cache: repeated snapshot, cold vs warm");
  {
    core::DeltaCache cache;
    obs::Registry metrics;
    core::PipelineOptions options;
    options.metrics = &metrics;
    options.delta = &cache;
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots(),
                                  core::standard_hg_inputs(), options);
    core::SnapshotResult cold_result;
    core::SnapshotResult warm_result;
    const double cold =
        bench::wall_seconds([&] { cold_result = pipeline.run(snap); });
    const std::uint64_t cold_hits = metrics.counter(core::metric_names::kDeltaHits).value();
    const double warm =
        bench::wall_seconds([&] { warm_result = pipeline.run(snap); });
    const std::uint64_t warm_hits =
        metrics.counter(core::metric_names::kDeltaHits).value() - cold_hits;
    samples.push_back({"pipeline.run.delta_cold", 1, cold, records});
    samples.push_back({"pipeline.run.delta_warm", 1, warm, records});
    std::printf("  cold: %7.3fs (%.0f records/s)\n", cold,
                cold > 0 ? records / cold : 0.0);
    std::printf("  warm: %7.3fs (%.2fx, %.0f records/s, %zu cache hits)\n",
                warm, warm > 0 ? cold / warm : 0.0,
                warm > 0 ? records / warm : 0.0,
                static_cast<std::size_t>(warm_hits));
    if (!bench::fast_mode() && warm > 0 && cold / warm < 1.0) {
      std::printf("  note: warm run not faster on this machine\n");
    }
    if (!same_result(serial, cold_result) ||
        !same_result(serial, warm_result)) {
      std::fprintf(stderr,
                   "FAIL: delta-cached result differs from serial result\n");
      return 1;
    }
    if (warm_hits == 0) {
      std::fprintf(stderr, "FAIL: warm delta run had zero cache hits\n");
      return 1;
    }
  }

  // The streaming loader's claim is about peak memory, which only a
  // fresh process can measure honestly (ru_maxrss never goes down), so
  // each mode runs in a fork+exec'd probe. The corpus is the exported
  // snapshot with its three bulk files amplified 4x, so the
  // whole-corpus residency of slurp mode dominates process noise.
  bench::heading("streaming ingestion: bounded batches vs whole-file slurp");
  {
    namespace fs = std::filesystem;
    const std::string month = net::study_snapshots()[t].to_string();
    const fs::path corpus =
        fs::temp_directory_path() / "offnet-bench-ingest";
    fs::remove_all(corpus);
    fs::create_directories(corpus);
    scan::export_dataset_to_dir(world, snap, corpus.string());
    constexpr std::size_t kAmplify = 4;
    amplify_file(corpus / "certificates.tsv", AmplifyKind::kCertificates,
                 kAmplify);
    amplify_file(corpus / "hosts.tsv", AmplifyKind::kHosts, kAmplify);
    amplify_file(corpus / "headers.tsv", AmplifyKind::kVerbatim, kAmplify);
    std::uintmax_t corpus_bytes = 0;
    for (const auto& entry : fs::directory_iterator(corpus)) {
      corpus_bytes += entry.file_size();
    }
    std::printf("corpus: %s (%.1f MiB, %zux bulk files)\n",
                corpus.c_str(),
                static_cast<double>(corpus_bytes) / (1024.0 * 1024.0),
                kAmplify);

    IngestRun slurp, stream1, stream4;
    if (!run_ingest_child("slurp", corpus.string(), month, 1, &slurp) ||
        !run_ingest_child("stream", corpus.string(), month, 1, &stream1) ||
        !run_ingest_child("stream", corpus.string(), month, 4, &stream4)) {
      std::fprintf(stderr, "FAIL: ingestion probe (%s) did not run\n",
                   OFFNET_INGEST_BIN);
      return 1;
    }
    std::printf("  slurp           : %7.3fs  peak rss %8ld KiB  (%.0f records/s)\n",
                slurp.seconds, slurp.maxrss_kb,
                slurp.seconds > 0 ? slurp.records / slurp.seconds : 0.0);
    std::printf("  stream 1 thread : %7.3fs  peak rss %8ld KiB  (%.0f records/s)\n",
                stream1.seconds, stream1.maxrss_kb,
                stream1.seconds > 0 ? stream1.records / stream1.seconds : 0.0);
    std::printf("  stream 4 threads: %7.3fs  peak rss %8ld KiB  (%.0f records/s)\n",
                stream4.seconds, stream4.maxrss_kb,
                stream4.seconds > 0 ? stream4.records / stream4.seconds : 0.0);
    if (stream1.digest != slurp.digest || stream4.digest != slurp.digest ||
        stream1.records != slurp.records || stream4.records != slurp.records) {
      std::fprintf(stderr,
                   "FAIL: streaming load not equivalent to slurp load "
                   "(digest/records mismatch)\n");
      return 1;
    }
    if (stream1.maxrss_kb >= slurp.maxrss_kb ||
        stream4.maxrss_kb >= slurp.maxrss_kb) {
      std::fprintf(stderr,
                   "FAIL: streaming peak RSS (%ld / %ld KiB) not below "
                   "slurp peak RSS (%ld KiB)\n",
                   stream1.maxrss_kb, stream4.maxrss_kb, slurp.maxrss_kb);
      return 1;
    }
    samples.push_back({"ingest.slurp", 1, slurp.seconds, slurp.records,
                       static_cast<std::size_t>(slurp.maxrss_kb)});
    samples.push_back({"ingest.stream", 1, stream1.seconds, stream1.records,
                       static_cast<std::size_t>(stream1.maxrss_kb)});
    samples.push_back({"ingest.stream", 4, stream4.seconds, stream4.records,
                       static_cast<std::size_t>(stream4.maxrss_kb)});
    fs::remove_all(corpus);
  }

  bench::write_bench_json("pipeline", "BENCH_pipeline.json", samples);
  return 0;
}
