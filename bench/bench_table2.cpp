// Table 2: statistics for the three scan corpuses (Rapid7, Censys,
// certigo active scan) in November 2019 — #IPs with certs, #ASes with
// certs, scanner-unique ASes, and #ASes with Hypergiant certificates.
#include <unordered_set>

#include "bench_common.h"
#include "core/pipeline.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  const std::size_t t = scan::certigo_snapshot();  // 2019-10/11

  bench::heading("Table 2: scan corpuses, Nov 2019");
  std::printf(
      "paper rows:  R7: 35,009,714 IPs, 57,769 ASes, 84 unique, 3788 any-HG"
      " (G 3137 / N 1760 / F 1737 / A 1235)\n"
      "             CS: 34,235,590 IPs, 58,183 ASes, 211 unique, 3974 any-HG"
      " (G 3355 / N 1689 / F 1746 / A 1248)\n"
      "             AC: 41,357,388 IPs, 59,178 ASes, 519 unique, 3802 any-HG"
      " (G 3149 / N 1715 / F 1762 / A 1236)\n"
      "(IP counts below are scaled back up by the background scale "
      "factor %.0f)\n\n",
      world.report_scale());

  struct Row {
    scan::ScannerKind kind;
    core::SnapshotResult result;
    std::unordered_set<net::Asn> ases;
    std::size_t ips = 0;
  };
  std::vector<Row> rows;
  for (auto kind : {scan::ScannerKind::kRapid7, scan::ScannerKind::kCensys,
                    scan::ScannerKind::kCertigo}) {
    if (!world.scanner_available(t, kind)) continue;
    auto snap = world.scan(t, kind);
    core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                  world.certs(), world.roots());
    Row row{kind, pipeline.run(snap), {}, snap.certs().size()};
    const auto& map = world.ip2as().at(t);
    for (const auto& rec : snap.certs()) {
      for (net::Asn asn : map.lookup(rec.ip)) row.ases.insert(asn);
    }
    rows.push_back(std::move(row));
  }

  net::TextTable table({"Scan", "#IPs w/ certs (scaled)", "#ASes w/ cert",
                        "unique ASes", "any HG", "Google", "Netflix",
                        "Facebook", "Akamai"});
  for (const Row& row : rows) {
    // Unique = ASes seen only by this scanner.
    std::size_t unique = 0;
    for (net::Asn asn : row.ases) {
      bool elsewhere = false;
      for (const Row& other : rows) {
        if (other.kind != row.kind && other.ases.contains(asn)) {
          elsewhere = true;
        }
      }
      if (!elsewhere) ++unique;
    }
    auto hg_count = [&](std::string_view name) {
      const core::HgFootprint* fp = row.result.find(name);
      return fp == nullptr ? std::size_t{0} : fp->candidate_ases.size();
    };
    table.add(scan::scanner_abbrev(row.kind),
              net::with_commas(static_cast<long long>(
                  static_cast<double>(row.ips) * world.report_scale())),
              net::with_commas(static_cast<long long>(row.ases.size())),
              unique, row.result.stats.ases_with_any_hg, hg_count("Google"),
              hg_count("Netflix"), hg_count("Facebook"), hg_count("Akamai"));
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nShape checks: AC sees ~15-20%% more IPs than R7/CS; AS-level HG\n"
      "footprints are nearly identical across scanners; CS uncovers the\n"
      "most Google ASes (SNI-aware scanning).\n");
  return 0;
}
