// Table 3: per-Hypergiant off-net AS footprints — 2013-10, the maximum
// (with its date), and 2021-04, both certificate-only and
// header-confirmed counts.
#include "bench_common.h"

using namespace offnet;

namespace {

struct PaperRow {
  const char* hg;
  int start_conf, start_cert;
  int max_conf;
  const char* max_when;
  int end_conf, end_cert;
};

// Table 3 as printed in the paper.
constexpr PaperRow kPaper[] = {
    {"Google", 1044, 1105, 3810, "2021/04", 3810, 3835},
    {"Facebook", 0, 8, 2214, "2021/04", 2214, 2229},
    {"Netflix", 47, 143, 2115, "2021/04", 2115, 2288},
    {"Akamai", 978, 1013, 1463, "2018/04", 1094, 1107},
    {"Alibaba", 0, 0, 184, "2018/01", 136, 301},
    {"Cloudflare", 0, 2, 110, "2021/01", 110, 137},
    {"Amazon", 0, 147, 112, "2017/07", 62, 218},
    {"Cdnetworks", 0, 4, 51, "2019/01", 11, 31},
    {"Limelight", 0, 1, 42, "2020/04", 32, 32},
    {"Apple", 0, 113, 6, "2020/04", 0, 267},
    {"Twitter", 0, 101, 4, "2021/04", 4, 180},
};

}  // namespace

int main() {
  auto results = bench::run_longitudinal();
  const auto snaps = net::study_snapshots();

  bench::heading("Table 3: HGs ranked by max #ASes hosting off-nets");
  net::TextTable table({"Hypergiant", "2013/10 conf (cert)", "max conf",
                        "max at", "2021/04 conf (cert)",
                        "paper max/end"});
  for (const PaperRow& paper : kPaper) {
    std::size_t max_value = 0;
    std::string max_when = "-";
    for (std::size_t t = 0; t < results.size(); ++t) {
      std::size_t v = bench::footprint_size(results[t], paper.hg);
      if (v > max_value) {
        max_value = v;
        max_when = snaps[t].to_string();
      }
    }
    auto cell = [&](const core::SnapshotResult& r) {
      const core::HgFootprint* fp = r.find(paper.hg);
      std::string out = std::to_string(
          analysis::effective_footprint(*fp).size());
      out += " (" + std::to_string(fp->candidate_ases.size()) + ")";
      return out;
    };
    std::string paper_cell = std::to_string(paper.max_conf) + " @ " +
                             paper.max_when + " / " +
                             std::to_string(paper.end_conf) + " (" +
                             std::to_string(paper.end_cert) + ")";
    table.add(paper.hg, cell(results.front()), max_value, max_when,
              cell(results.back()), paper_cell);
  }
  std::fputs(table.to_string().c_str(), stdout);

  bench::heading("HGs with no inferred off-net footprint (paper: excluded)");
  for (const auto& fp : results.back().per_hg) {
    bool in_table = false;
    for (const PaperRow& paper : kPaper) {
      if (fp.name == paper.hg) in_table = true;
    }
    if (!in_table) {
      std::printf("%-12s confirmed=%zu (cert-only ASes: %zu)\n",
                  fp.name.c_str(),
                  analysis::effective_footprint(fp).size(),
                  fp.candidate_ases.size());
    }
  }
  return 0;
}
