// Section 5 validation experiments: ground-truth accuracy (the paper's
// operator survey: 89-95% of host ASes uncovered), ZGrab cross-domain
// validation (89.7% of probes correctly fail, ~97% of the unexpected
// successes on Akamai), the reverse test (0.1% of non-inferred IPs
// validate; 98% of those are inferred off-nets), comparison against
// earlier per-HG studies, the learned fingerprints (Tables 1/4), and the
// §4.3 containment-rule ablation.
#include "analysis/validation.h"
#include "dns/baselines.h"
#include "scan/dns_view.h"
#include "core/known_headers.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  // The survey analyzed data of Nov 30, 2020 -> snapshot 2020-10.
  auto survey_t = net::snapshot_index(net::YearMonth(2020, 10)).value();
  auto result = runner.run_one(survey_t);

  bench::heading("Operator-survey equivalent: measured vs ground truth "
                 "(2020-10)");
  std::printf("paper: 89-95%% of host ASes uncovered; ~6%% of identified "
              "ASes not on one HG's list.\n\n");
  net::TextTable accuracy({"Hypergiant", "measured", "truth", "recall",
                           "precision"});
  for (const char* hg :
       {"Google", "Netflix", "Facebook", "Akamai", "Alibaba", "Amazon"}) {
    auto acc = analysis::compare_to_ground_truth(world, result, hg);
    accuracy.add(hg, acc.measured, acc.truth, net::percent(acc.recall()),
                 net::percent(acc.precision()));
  }
  std::fputs(accuracy.to_string().c_str(), stdout);

  bench::heading("ZGrab cross-domain validation (Nov 2019 equivalent)");
  auto zgrab_t = scan::certigo_snapshot();
  auto zgrab_result = runner.run_one(zgrab_t);
  auto cross = analysis::cross_domain_validation(world, zgrab_result);
  std::printf("probes: %zu\n", cross.probes);
  std::printf("correctly failing: %s (paper 89.7%%)\n",
              net::percent(cross.failing_share()).c_str());
  std::printf("of validating probes, on Akamai-inferred IPs: %s "
              "(paper 97%%)\n",
              net::percent(cross.akamai_share_of_validated()).c_str());

  bench::heading("Reverse test: non-inferred IPs asked for HG domains "
                 "(Nov 2020 equivalent)");
  auto reverse_snap = world.scan(survey_t, scan::ScannerKind::kRapid7);
  auto reverse = analysis::reverse_validation(world, result, reverse_snap);
  std::printf("sampled IPs: %zu (25%% sample)\n", reverse.sampled_ips);
  std::printf("validating (scale-corrected): %s (paper 0.1%%)\n",
              net::percent(reverse.scale_corrected_valid_share(
                               world.report_scale()))
                  .c_str());
  std::printf("of validating IPs, inferred off-nets: %s (paper 98%%)\n",
              net::percent(reverse.inferred_share_of_valid()).c_str());

  bench::heading("Comparison to earlier techniques (reimplemented "
                 "baselines, §1/§5)");
  struct Earlier {
    const char* study;
    const char* hg;
    net::YearMonth month;
    bool ecs;  // true: ECS sweep, false: hostname-pattern enumeration
    const char* paper;
  };
  const Earlier studies[] = {
      {"ECS mapping (Calder et al.)", "Google", net::YearMonth(2016, 4),
       true, "1445 ASes; ours covered 98% + 283 more"},
      {"FNA hostname guessing 2018", "Facebook", net::YearMonth(2018, 4),
       false, "1201 ASes; ours covered 96%"},
      {"FNA hostname guessing 2019", "Facebook", net::YearMonth(2019, 10),
       false, "1704 ASes; ours covered 94%"},
      {"FNA hostname guessing 2021", "Facebook", net::YearMonth(2021, 4),
       false, "2187 ASes; ours covered 95%"},
      {"Open Connect DNS names", "Netflix", net::YearMonth(2017, 4), false,
       "743 ASes in May 2017; we report 769 in Apr 2017"},
  };
  net::TextTable earlier({"study", "baseline #ASes", "we uncover", "extra",
                          "paper"});
  for (const Earlier& s : studies) {
    auto t = net::snapshot_index(s.month).value();
    int hg_idx = hg::profile_index(world.profiles(), s.hg);
    scan::WorldDnsView dns_view(world);
    std::vector<topo::AsId> baseline =
        s.ecs ? dns::EcsMapper(dns_view, hg_idx).map_footprint(t)
              : dns::PatternEnumerator(dns_view, hg_idx).map_footprint(t);
    // Netflix needs the longitudinal HTTP-recovery state (§6.2); run a
    // short window ending at the comparison snapshot.
    core::SnapshotResult r;
    if (std::string_view(s.hg) == "Netflix" && t >= 4) {
      r = runner.run(t - 4, t).back();
    } else {
      r = runner.run_one(t);
    }
    auto cmp = dns::compare_footprints(
        baseline, analysis::effective_footprint(*r.find(s.hg)));
    earlier.add(s.study, cmp.baseline_ases,
                net::percent(cmp.covered_share()), cmp.pipeline_extra(),
                s.paper);
  }
  std::fputs(earlier.to_string().c_str(), stdout);
  std::printf(
      "(Google's ECS baseline returns nothing after mid-2016 — the paper's\n"
      "motivation for a generic technique; the hostname baselines miss the\n"
      "~5%% of deployments with non-standard names.)\n");

  bench::heading("Learned header fingerprints (Tables 1 and 4)");
  net::TextTable fingerprints({"Hypergiant", "learned patterns",
                               "TLS dNSNames"});
  for (const auto& fp : result.per_hg) {
    std::string patterns;
    for (const auto& p : fp.header_fingerprint.patterns) {
      if (!patterns.empty()) patterns += ", ";
      patterns += p.to_string();
    }
    if (patterns.empty()) {
      patterns = core::nginx_default_rule_applies(fp.name)
                     ? "(default-nginx rule)"
                     : "(none)";
    }
    fingerprints.add(fp.name, patterns, fp.tls_fingerprint.onnet_names.size());
  }
  std::fputs(fingerprints.to_string().c_str(), stdout);

  bench::heading("Ablation: disable the §4.3 dNSName containment rule");
  core::PipelineOptions ablated;
  ablated.disable_subset_rule = true;
  core::LongitudinalRunner ablated_runner(world, scan::ScannerKind::kRapid7,
                                          ablated);
  auto ablated_result = ablated_runner.run_one(survey_t);
  net::TextTable ablation({"Hypergiant", "candidates (rule on)",
                           "candidates (rule off)", "inflation"});
  for (const char* hg : {"Cloudflare", "Google", "Netflix", "Amazon"}) {
    auto on = result.find(hg)->candidate_ases.size();
    auto off = ablated_result.find(hg)->candidate_ases.size();
    ablation.add(hg, on, off,
                 on > 0 ? net::TextTable::format_double(
                              static_cast<double>(off) / on, 2) + "x"
                        : "-");
  }
  std::fputs(ablation.to_string().c_str(), stdout);

  bench::heading("Mitigation: Cloudflare universal-SSL filter (§7)");
  core::PipelineOptions mitigated;
  mitigated.apply_cloudflare_ssl_filter = true;
  core::LongitudinalRunner mitigated_runner(
      world, scan::ScannerKind::kRapid7, mitigated);
  auto mitigated_result = mitigated_runner.run_one(survey_t);
  std::printf("Cloudflare misidentified off-nets: %zu -> %zu after the "
              "(ssl|sni)N.cloudflaressl.com filter\n",
              result.find("Cloudflare")->confirmed_or_ases.size(),
              mitigated_result.find("Cloudflare")->confirmed_or_ases.size());
  return 0;
}
