// §6.5 what-if analysis: how much coverage a Hypergiant could gain by
// deploying in a handful of additional networks. Paper: Facebook could
// raise US coverage from 33.9% to 61.8% with off-nets in just 5 ASes.
#include "analysis/coverage.h"
#include "bench_common.h"
#include "core/longitudinal.h"

using namespace offnet;

int main() {
  const auto& world = bench::world();
  core::LongitudinalRunner runner(world);
  std::size_t t = net::snapshot_count() - 1;
  auto result = runner.run_one(t);
  analysis::CoverageAnalysis coverage(world.topology(), world.population());

  topo::CountryId us = 0;
  for (topo::CountryId c = 0; c < world.topology().country_count(); ++c) {
    if (world.topology().country(c).code == std::string_view("US")) us = c;
  }

  bench::heading("What-if: Facebook US coverage with 5 more host ASes "
                 "(paper: 33.9% -> 61.8%)");
  const auto& hosts = analysis::effective_footprint(*result.find("Facebook"));
  {
    std::vector<char> mask(world.topology().as_count(), 0);
    for (topo::AsId id : hosts) mask[id] = 1;
    std::printf("current US coverage: %s\n",
                net::percent(world.population().country_coverage(us, mask, t))
                    .c_str());
  }
  auto picks = coverage.best_additions(hosts, us, t, 5);
  net::TextTable table({"add AS", "cone size", "US coverage after"});
  for (const auto& pick : picks) {
    table.add("AS" + std::to_string(world.topology().as(pick.as).asn),
              world.topology().cone_sizes(t)[pick.as],
              net::percent(pick.coverage_after));
  }
  std::fputs(table.to_string().c_str(), stdout);

  bench::heading("Same exercise for every top-4 HG (top markets)");
  for (const char* hg : {"Google", "Netflix", "Akamai"}) {
    const auto& hg_hosts = analysis::effective_footprint(*result.find(hg));
    auto hg_picks = coverage.best_additions(hg_hosts, us, t, 3);
    std::printf("%-10s US: +%zu ASes -> %s\n", hg, hg_picks.size(),
                hg_picks.empty()
                    ? "-"
                    : net::percent(hg_picks.back().coverage_after).c_str());
  }
  return 0;
}
