
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6.cpp" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/offnet_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/offnet_io.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/offnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/offnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/offnet_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergiant/CMakeFiles/offnet_hypergiant.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/offnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/offnet_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/offnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/offnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
