file(REMOVE_RECURSE
  "CMakeFiles/hide_and_seek.dir/hide_and_seek.cpp.o"
  "CMakeFiles/hide_and_seek.dir/hide_and_seek.cpp.o.d"
  "hide_and_seek"
  "hide_and_seek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hide_and_seek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
