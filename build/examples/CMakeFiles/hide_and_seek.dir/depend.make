# Empty dependencies file for hide_and_seek.
# This may be replaced when dependencies are built.
