file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_study.dir/longitudinal_study.cpp.o"
  "CMakeFiles/longitudinal_study.dir/longitudinal_study.cpp.o.d"
  "longitudinal_study"
  "longitudinal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
