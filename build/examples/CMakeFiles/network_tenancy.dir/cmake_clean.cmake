file(REMOVE_RECURSE
  "CMakeFiles/network_tenancy.dir/network_tenancy.cpp.o"
  "CMakeFiles/network_tenancy.dir/network_tenancy.cpp.o.d"
  "network_tenancy"
  "network_tenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
