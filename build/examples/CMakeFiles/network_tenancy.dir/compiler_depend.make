# Empty compiler generated dependencies file for network_tenancy.
# This may be replaced when dependencies are built.
