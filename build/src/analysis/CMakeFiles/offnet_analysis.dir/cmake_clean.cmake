file(REMOVE_RECURSE
  "CMakeFiles/offnet_analysis.dir/certgroups.cpp.o"
  "CMakeFiles/offnet_analysis.dir/certgroups.cpp.o.d"
  "CMakeFiles/offnet_analysis.dir/cohosting.cpp.o"
  "CMakeFiles/offnet_analysis.dir/cohosting.cpp.o.d"
  "CMakeFiles/offnet_analysis.dir/coverage.cpp.o"
  "CMakeFiles/offnet_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/offnet_analysis.dir/demographics.cpp.o"
  "CMakeFiles/offnet_analysis.dir/demographics.cpp.o.d"
  "CMakeFiles/offnet_analysis.dir/regional.cpp.o"
  "CMakeFiles/offnet_analysis.dir/regional.cpp.o.d"
  "CMakeFiles/offnet_analysis.dir/validation.cpp.o"
  "CMakeFiles/offnet_analysis.dir/validation.cpp.o.d"
  "liboffnet_analysis.a"
  "liboffnet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
