file(REMOVE_RECURSE
  "liboffnet_analysis.a"
)
