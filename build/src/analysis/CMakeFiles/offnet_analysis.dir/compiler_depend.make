# Empty compiler generated dependencies file for offnet_analysis.
# This may be replaced when dependencies are built.
