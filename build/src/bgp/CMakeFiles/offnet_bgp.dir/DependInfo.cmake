
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/feed.cpp" "src/bgp/CMakeFiles/offnet_bgp.dir/feed.cpp.o" "gcc" "src/bgp/CMakeFiles/offnet_bgp.dir/feed.cpp.o.d"
  "/root/repo/src/bgp/ip2as.cpp" "src/bgp/CMakeFiles/offnet_bgp.dir/ip2as.cpp.o" "gcc" "src/bgp/CMakeFiles/offnet_bgp.dir/ip2as.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/offnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
