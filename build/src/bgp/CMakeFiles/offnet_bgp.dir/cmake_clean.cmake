file(REMOVE_RECURSE
  "CMakeFiles/offnet_bgp.dir/feed.cpp.o"
  "CMakeFiles/offnet_bgp.dir/feed.cpp.o.d"
  "CMakeFiles/offnet_bgp.dir/ip2as.cpp.o"
  "CMakeFiles/offnet_bgp.dir/ip2as.cpp.o.d"
  "liboffnet_bgp.a"
  "liboffnet_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
