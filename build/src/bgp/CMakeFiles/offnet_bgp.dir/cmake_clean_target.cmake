file(REMOVE_RECURSE
  "liboffnet_bgp.a"
)
