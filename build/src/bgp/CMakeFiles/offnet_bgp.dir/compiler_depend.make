# Empty compiler generated dependencies file for offnet_bgp.
# This may be replaced when dependencies are built.
