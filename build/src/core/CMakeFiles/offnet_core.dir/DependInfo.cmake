
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/header_learner.cpp" "src/core/CMakeFiles/offnet_core.dir/header_learner.cpp.o" "gcc" "src/core/CMakeFiles/offnet_core.dir/header_learner.cpp.o.d"
  "/root/repo/src/core/known_headers.cpp" "src/core/CMakeFiles/offnet_core.dir/known_headers.cpp.o" "gcc" "src/core/CMakeFiles/offnet_core.dir/known_headers.cpp.o.d"
  "/root/repo/src/core/longitudinal.cpp" "src/core/CMakeFiles/offnet_core.dir/longitudinal.cpp.o" "gcc" "src/core/CMakeFiles/offnet_core.dir/longitudinal.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/offnet_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/offnet_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/tls_fingerprint.cpp" "src/core/CMakeFiles/offnet_core.dir/tls_fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/offnet_core.dir/tls_fingerprint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scan/CMakeFiles/offnet_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/offnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/offnet_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/offnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/offnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergiant/CMakeFiles/offnet_hypergiant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
