file(REMOVE_RECURSE
  "CMakeFiles/offnet_core.dir/header_learner.cpp.o"
  "CMakeFiles/offnet_core.dir/header_learner.cpp.o.d"
  "CMakeFiles/offnet_core.dir/known_headers.cpp.o"
  "CMakeFiles/offnet_core.dir/known_headers.cpp.o.d"
  "CMakeFiles/offnet_core.dir/longitudinal.cpp.o"
  "CMakeFiles/offnet_core.dir/longitudinal.cpp.o.d"
  "CMakeFiles/offnet_core.dir/pipeline.cpp.o"
  "CMakeFiles/offnet_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/offnet_core.dir/tls_fingerprint.cpp.o"
  "CMakeFiles/offnet_core.dir/tls_fingerprint.cpp.o.d"
  "liboffnet_core.a"
  "liboffnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
