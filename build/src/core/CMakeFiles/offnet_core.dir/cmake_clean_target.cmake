file(REMOVE_RECURSE
  "liboffnet_core.a"
)
