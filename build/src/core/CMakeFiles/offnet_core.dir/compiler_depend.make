# Empty compiler generated dependencies file for offnet_core.
# This may be replaced when dependencies are built.
