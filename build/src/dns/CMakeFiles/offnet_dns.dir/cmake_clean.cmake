file(REMOVE_RECURSE
  "CMakeFiles/offnet_dns.dir/authority.cpp.o"
  "CMakeFiles/offnet_dns.dir/authority.cpp.o.d"
  "CMakeFiles/offnet_dns.dir/baselines.cpp.o"
  "CMakeFiles/offnet_dns.dir/baselines.cpp.o.d"
  "liboffnet_dns.a"
  "liboffnet_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
