file(REMOVE_RECURSE
  "liboffnet_dns.a"
)
