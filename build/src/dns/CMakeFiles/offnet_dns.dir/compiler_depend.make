# Empty compiler generated dependencies file for offnet_dns.
# This may be replaced when dependencies are built.
