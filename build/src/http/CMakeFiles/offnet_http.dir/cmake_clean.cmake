file(REMOVE_RECURSE
  "CMakeFiles/offnet_http.dir/fingerprint.cpp.o"
  "CMakeFiles/offnet_http.dir/fingerprint.cpp.o.d"
  "CMakeFiles/offnet_http.dir/headers.cpp.o"
  "CMakeFiles/offnet_http.dir/headers.cpp.o.d"
  "liboffnet_http.a"
  "liboffnet_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
