file(REMOVE_RECURSE
  "liboffnet_http.a"
)
