# Empty dependencies file for offnet_http.
# This may be replaced when dependencies are built.
