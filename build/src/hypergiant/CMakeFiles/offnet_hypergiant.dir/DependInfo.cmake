
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergiant/deployment.cpp" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/deployment.cpp.o" "gcc" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/deployment.cpp.o.d"
  "/root/repo/src/hypergiant/fleet.cpp" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/fleet.cpp.o" "gcc" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/fleet.cpp.o.d"
  "/root/repo/src/hypergiant/profile.cpp" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/profile.cpp.o" "gcc" "src/hypergiant/CMakeFiles/offnet_hypergiant.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/offnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/offnet_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/offnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
