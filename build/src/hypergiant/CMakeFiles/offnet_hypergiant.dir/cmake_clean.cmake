file(REMOVE_RECURSE
  "CMakeFiles/offnet_hypergiant.dir/deployment.cpp.o"
  "CMakeFiles/offnet_hypergiant.dir/deployment.cpp.o.d"
  "CMakeFiles/offnet_hypergiant.dir/fleet.cpp.o"
  "CMakeFiles/offnet_hypergiant.dir/fleet.cpp.o.d"
  "CMakeFiles/offnet_hypergiant.dir/profile.cpp.o"
  "CMakeFiles/offnet_hypergiant.dir/profile.cpp.o.d"
  "liboffnet_hypergiant.a"
  "liboffnet_hypergiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_hypergiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
