file(REMOVE_RECURSE
  "liboffnet_hypergiant.a"
)
