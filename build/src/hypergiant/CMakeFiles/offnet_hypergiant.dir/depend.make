# Empty dependencies file for offnet_hypergiant.
# This may be replaced when dependencies are built.
