file(REMOVE_RECURSE
  "CMakeFiles/offnet_io.dir/exporter.cpp.o"
  "CMakeFiles/offnet_io.dir/exporter.cpp.o.d"
  "CMakeFiles/offnet_io.dir/loaders.cpp.o"
  "CMakeFiles/offnet_io.dir/loaders.cpp.o.d"
  "liboffnet_io.a"
  "liboffnet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
