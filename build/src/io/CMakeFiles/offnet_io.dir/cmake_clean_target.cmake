file(REMOVE_RECURSE
  "liboffnet_io.a"
)
