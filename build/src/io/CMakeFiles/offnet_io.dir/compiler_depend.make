# Empty compiler generated dependencies file for offnet_io.
# This may be replaced when dependencies are built.
