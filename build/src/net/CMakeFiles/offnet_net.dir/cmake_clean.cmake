file(REMOVE_RECURSE
  "CMakeFiles/offnet_net.dir/date.cpp.o"
  "CMakeFiles/offnet_net.dir/date.cpp.o.d"
  "CMakeFiles/offnet_net.dir/ipv4.cpp.o"
  "CMakeFiles/offnet_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/offnet_net.dir/ipv6.cpp.o"
  "CMakeFiles/offnet_net.dir/ipv6.cpp.o.d"
  "CMakeFiles/offnet_net.dir/prefix.cpp.o"
  "CMakeFiles/offnet_net.dir/prefix.cpp.o.d"
  "CMakeFiles/offnet_net.dir/rng.cpp.o"
  "CMakeFiles/offnet_net.dir/rng.cpp.o.d"
  "CMakeFiles/offnet_net.dir/table.cpp.o"
  "CMakeFiles/offnet_net.dir/table.cpp.o.d"
  "liboffnet_net.a"
  "liboffnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
