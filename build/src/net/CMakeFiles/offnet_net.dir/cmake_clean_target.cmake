file(REMOVE_RECURSE
  "liboffnet_net.a"
)
