# Empty dependencies file for offnet_net.
# This may be replaced when dependencies are built.
