
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/background.cpp" "src/scan/CMakeFiles/offnet_scan.dir/background.cpp.o" "gcc" "src/scan/CMakeFiles/offnet_scan.dir/background.cpp.o.d"
  "/root/repo/src/scan/record.cpp" "src/scan/CMakeFiles/offnet_scan.dir/record.cpp.o" "gcc" "src/scan/CMakeFiles/offnet_scan.dir/record.cpp.o.d"
  "/root/repo/src/scan/scanner.cpp" "src/scan/CMakeFiles/offnet_scan.dir/scanner.cpp.o" "gcc" "src/scan/CMakeFiles/offnet_scan.dir/scanner.cpp.o.d"
  "/root/repo/src/scan/sni.cpp" "src/scan/CMakeFiles/offnet_scan.dir/sni.cpp.o" "gcc" "src/scan/CMakeFiles/offnet_scan.dir/sni.cpp.o.d"
  "/root/repo/src/scan/world.cpp" "src/scan/CMakeFiles/offnet_scan.dir/world.cpp.o" "gcc" "src/scan/CMakeFiles/offnet_scan.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergiant/CMakeFiles/offnet_hypergiant.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/offnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/offnet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/offnet_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/offnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
