file(REMOVE_RECURSE
  "CMakeFiles/offnet_scan.dir/background.cpp.o"
  "CMakeFiles/offnet_scan.dir/background.cpp.o.d"
  "CMakeFiles/offnet_scan.dir/record.cpp.o"
  "CMakeFiles/offnet_scan.dir/record.cpp.o.d"
  "CMakeFiles/offnet_scan.dir/scanner.cpp.o"
  "CMakeFiles/offnet_scan.dir/scanner.cpp.o.d"
  "CMakeFiles/offnet_scan.dir/sni.cpp.o"
  "CMakeFiles/offnet_scan.dir/sni.cpp.o.d"
  "CMakeFiles/offnet_scan.dir/world.cpp.o"
  "CMakeFiles/offnet_scan.dir/world.cpp.o.d"
  "liboffnet_scan.a"
  "liboffnet_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
