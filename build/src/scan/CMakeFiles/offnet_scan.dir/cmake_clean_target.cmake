file(REMOVE_RECURSE
  "liboffnet_scan.a"
)
