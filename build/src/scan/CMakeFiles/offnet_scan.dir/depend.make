# Empty dependencies file for offnet_scan.
# This may be replaced when dependencies are built.
