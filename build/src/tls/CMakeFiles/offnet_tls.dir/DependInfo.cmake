
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/ca.cpp" "src/tls/CMakeFiles/offnet_tls.dir/ca.cpp.o" "gcc" "src/tls/CMakeFiles/offnet_tls.dir/ca.cpp.o.d"
  "/root/repo/src/tls/certificate.cpp" "src/tls/CMakeFiles/offnet_tls.dir/certificate.cpp.o" "gcc" "src/tls/CMakeFiles/offnet_tls.dir/certificate.cpp.o.d"
  "/root/repo/src/tls/validator.cpp" "src/tls/CMakeFiles/offnet_tls.dir/validator.cpp.o" "gcc" "src/tls/CMakeFiles/offnet_tls.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/offnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
