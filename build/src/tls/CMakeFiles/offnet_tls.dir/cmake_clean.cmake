file(REMOVE_RECURSE
  "CMakeFiles/offnet_tls.dir/ca.cpp.o"
  "CMakeFiles/offnet_tls.dir/ca.cpp.o.d"
  "CMakeFiles/offnet_tls.dir/certificate.cpp.o"
  "CMakeFiles/offnet_tls.dir/certificate.cpp.o.d"
  "CMakeFiles/offnet_tls.dir/validator.cpp.o"
  "CMakeFiles/offnet_tls.dir/validator.cpp.o.d"
  "liboffnet_tls.a"
  "liboffnet_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
