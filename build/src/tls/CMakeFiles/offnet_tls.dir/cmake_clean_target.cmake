file(REMOVE_RECURSE
  "liboffnet_tls.a"
)
