# Empty compiler generated dependencies file for offnet_tls.
# This may be replaced when dependencies are built.
