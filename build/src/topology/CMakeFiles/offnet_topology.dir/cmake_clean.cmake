file(REMOVE_RECURSE
  "CMakeFiles/offnet_topology.dir/as_graph.cpp.o"
  "CMakeFiles/offnet_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/offnet_topology.dir/generator.cpp.o"
  "CMakeFiles/offnet_topology.dir/generator.cpp.o.d"
  "CMakeFiles/offnet_topology.dir/org_db.cpp.o"
  "CMakeFiles/offnet_topology.dir/org_db.cpp.o.d"
  "CMakeFiles/offnet_topology.dir/population.cpp.o"
  "CMakeFiles/offnet_topology.dir/population.cpp.o.d"
  "CMakeFiles/offnet_topology.dir/region.cpp.o"
  "CMakeFiles/offnet_topology.dir/region.cpp.o.d"
  "CMakeFiles/offnet_topology.dir/topology.cpp.o"
  "CMakeFiles/offnet_topology.dir/topology.cpp.o.d"
  "liboffnet_topology.a"
  "liboffnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
