file(REMOVE_RECURSE
  "liboffnet_topology.a"
)
