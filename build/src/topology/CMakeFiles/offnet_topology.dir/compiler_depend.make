# Empty compiler generated dependencies file for offnet_topology.
# This may be replaced when dependencies are built.
