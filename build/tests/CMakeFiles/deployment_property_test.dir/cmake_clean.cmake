file(REMOVE_RECURSE
  "CMakeFiles/deployment_property_test.dir/deployment_property_test.cpp.o"
  "CMakeFiles/deployment_property_test.dir/deployment_property_test.cpp.o.d"
  "deployment_property_test"
  "deployment_property_test.pdb"
  "deployment_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
