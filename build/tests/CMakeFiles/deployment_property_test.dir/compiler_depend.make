# Empty compiler generated dependencies file for deployment_property_test.
# This may be replaced when dependencies are built.
