file(REMOVE_RECURSE
  "CMakeFiles/header_learner_test.dir/header_learner_test.cpp.o"
  "CMakeFiles/header_learner_test.dir/header_learner_test.cpp.o.d"
  "header_learner_test"
  "header_learner_test.pdb"
  "header_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
