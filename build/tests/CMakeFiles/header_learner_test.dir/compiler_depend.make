# Empty compiler generated dependencies file for header_learner_test.
# This may be replaced when dependencies are built.
