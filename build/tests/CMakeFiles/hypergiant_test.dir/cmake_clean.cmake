file(REMOVE_RECURSE
  "CMakeFiles/hypergiant_test.dir/hypergiant_test.cpp.o"
  "CMakeFiles/hypergiant_test.dir/hypergiant_test.cpp.o.d"
  "hypergiant_test"
  "hypergiant_test.pdb"
  "hypergiant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergiant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
