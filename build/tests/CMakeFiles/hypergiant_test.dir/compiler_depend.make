# Empty compiler generated dependencies file for hypergiant_test.
# This may be replaced when dependencies are built.
