file(REMOVE_RECURSE
  "CMakeFiles/io_roundtrip_test.dir/io_roundtrip_test.cpp.o"
  "CMakeFiles/io_roundtrip_test.dir/io_roundtrip_test.cpp.o.d"
  "io_roundtrip_test"
  "io_roundtrip_test.pdb"
  "io_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
