file(REMOVE_RECURSE
  "CMakeFiles/net_misc_test.dir/net_misc_test.cpp.o"
  "CMakeFiles/net_misc_test.dir/net_misc_test.cpp.o.d"
  "net_misc_test"
  "net_misc_test.pdb"
  "net_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
