# Empty compiler generated dependencies file for net_misc_test.
# This may be replaced when dependencies are built.
