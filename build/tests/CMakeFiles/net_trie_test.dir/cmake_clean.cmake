file(REMOVE_RECURSE
  "CMakeFiles/net_trie_test.dir/net_trie_test.cpp.o"
  "CMakeFiles/net_trie_test.dir/net_trie_test.cpp.o.d"
  "net_trie_test"
  "net_trie_test.pdb"
  "net_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
