file(REMOVE_RECURSE
  "CMakeFiles/sni_test.dir/sni_test.cpp.o"
  "CMakeFiles/sni_test.dir/sni_test.cpp.o.d"
  "sni_test"
  "sni_test.pdb"
  "sni_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sni_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
