# Empty compiler generated dependencies file for sni_test.
# This may be replaced when dependencies are built.
