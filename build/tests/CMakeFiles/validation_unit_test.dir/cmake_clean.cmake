file(REMOVE_RECURSE
  "CMakeFiles/validation_unit_test.dir/validation_unit_test.cpp.o"
  "CMakeFiles/validation_unit_test.dir/validation_unit_test.cpp.o.d"
  "validation_unit_test"
  "validation_unit_test.pdb"
  "validation_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
