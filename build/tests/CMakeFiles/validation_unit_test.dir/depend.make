# Empty dependencies file for validation_unit_test.
# This may be replaced when dependencies are built.
