# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_ipv4_test[1]_include.cmake")
include("/root/repo/build/tests/net_trie_test[1]_include.cmake")
include("/root/repo/build/tests/net_misc_test[1]_include.cmake")
include("/root/repo/build/tests/tls_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/hypergiant_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/io_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/sni_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6_test[1]_include.cmake")
include("/root/repo/build/tests/header_learner_test[1]_include.cmake")
include("/root/repo/build/tests/graph_property_test[1]_include.cmake")
include("/root/repo/build/tests/validation_unit_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_property_test[1]_include.cmake")
