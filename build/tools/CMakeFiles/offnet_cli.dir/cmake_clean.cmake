file(REMOVE_RECURSE
  "CMakeFiles/offnet_cli.dir/offnet_cli.cpp.o"
  "CMakeFiles/offnet_cli.dir/offnet_cli.cpp.o.d"
  "offnet_cli"
  "offnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
