# Empty dependencies file for offnet_cli.
# This may be replaced when dependencies are built.
