// Coverage planner: the deployment-strategy scenario from §6.5 — for a
// chosen Hypergiant, find the host networks that would add the most user
// coverage in each under-covered market ("Facebook could raise US
// coverage from 33.9% to 61.8% with only 5 more ASes").
//
//   ./coverage_planner [hypergiant]
#include <cstdio>
#include <string>

#include "analysis/coverage.h"
#include "core/longitudinal.h"
#include "net/table.h"
#include "scan/world.h"

using namespace offnet;

int main(int argc, char** argv) {
  std::string hg = argc > 1 ? argv[1] : "Facebook";

  scan::WorldConfig config;
  config.topology_scale = 0.05;
  config.background_scale = 0.001;
  scan::World world(config);

  core::LongitudinalRunner runner(world);
  std::size_t t = net::snapshot_count() - 1;
  auto result = runner.run_one(t);
  const core::HgFootprint* fp = result.find(hg);
  if (fp == nullptr) {
    std::fprintf(stderr, "unknown hypergiant '%s'\n", hg.c_str());
    return 1;
  }
  const auto& hosts = fp->confirmed_ases();
  analysis::CoverageAnalysis coverage(world.topology(), world.population());

  std::printf("%s hosts off-nets in %zu ASes; worldwide coverage %s\n\n",
              hg.c_str(), hosts.size(),
              net::percent(coverage.worldwide(hosts, t)).c_str());

  // Rank countries by achievable coverage gain with three additions.
  struct Opportunity {
    topo::CountryId country;
    double current;
    double achievable;
  };
  std::vector<Opportunity> opportunities;
  std::vector<char> mask(world.topology().as_count(), 0);
  for (topo::AsId id : hosts) mask[id] = 1;
  for (topo::CountryId c = 0; c < world.topology().country_count(); ++c) {
    double current = world.population().country_coverage(c, mask, t);
    auto picks = coverage.best_additions(hosts, c, t, 3);
    if (picks.empty()) continue;
    opportunities.push_back({c, current, picks.back().coverage_after});
  }
  std::sort(opportunities.begin(), opportunities.end(),
            [](const Opportunity& a, const Opportunity& b) {
              return a.achievable - a.current > b.achievable - b.current;
            });

  net::TextTable table({"market", "users (M)", "coverage now",
                        "with +3 host ASes", "gain"});
  for (std::size_t i = 0; i < 10 && i < opportunities.size(); ++i) {
    const auto& o = opportunities[i];
    const auto& country = world.topology().country(o.country);
    table.add(country.name, country.internet_users_m,
              net::percent(o.current), net::percent(o.achievable),
              net::percent(o.achievable - o.current));
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
