// Hide-and-Seek (§8): how well would the methodology survive Hypergiant
// countermeasures? Builds four worlds — baseline plus each defense —
// and compares the inferred top-4 footprints.
//
//   ./hide_and_seek
#include <cstdio>

#include "core/longitudinal.h"
#include "net/table.h"
#include "scan/sni.h"
#include "scan/world.h"

using namespace offnet;

namespace {

core::SnapshotResult run_world(const hg::Countermeasures& cm,
                               bool sni_sweep = false) {
  scan::WorldConfig config;
  config.topology_scale = 0.05;
  config.background_scale = 0.001;
  config.countermeasures = cm;
  scan::World world(config);
  std::size_t t = net::snapshot_count() - 1;
  scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);
  if (sni_sweep) {
    // §8 counter-countermeasure: probe every responsive server with the
    // HGs' fully qualified domains instead of trusting default certs.
    scan::SniScanner sni(world.fleet(), world.topology());
    auto hostnames = scan::sni_probe_hostnames(world.profiles());
    std::size_t added = sni.augment(snapshot, hostnames);
    std::fprintf(stderr, "  SNI sweep added %zu records\n", added);
  }
  core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                world.certs(), world.roots());
  return pipeline.run(snapshot);
}

}  // namespace

int main() {
  struct Scenario {
    const char* name;
    hg::Countermeasures cm;
  };
  struct ScenarioDef {
    const char* name;
    hg::Countermeasures cm;
    bool sni = false;
  };
  const ScenarioDef scenarios[] = {
      {"baseline (study period)", {}},
      {"null default certs (SNI-only)", {.null_default_certs = true}},
      {"  ... countered by SNI sweep", {.null_default_certs = true}, true},
      {"strip Organization field", {.strip_organization = true}},
      {"  ... SNI sweep does NOT help", {.strip_organization = true}, true},
      {"anonymize headers", {.anonymize_headers = true}},
  };

  net::TextTable confirmed({"scenario", "Google", "Facebook", "Netflix",
                            "Akamai"});
  net::TextTable candidates({"scenario", "Google", "Facebook", "Netflix",
                             "Akamai"});
  for (const ScenarioDef& s : scenarios) {
    std::fprintf(stderr, "running scenario: %s\n", s.name);
    auto result = run_world(s.cm, s.sni);
    std::vector<std::string> conf_row{s.name};
    std::vector<std::string> cand_row{s.name};
    for (const char* hg : {"Google", "Facebook", "Netflix", "Akamai"}) {
      const core::HgFootprint* fp = result.find(hg);
      conf_row.push_back(std::to_string(fp->confirmed_ases().size()));
      cand_row.push_back(std::to_string(fp->candidate_ases.size()));
    }
    confirmed.add_row(std::move(conf_row));
    candidates.add_row(std::move(cand_row));
  }

  std::printf("confirmed off-net ASes (certs + headers):\n%s\n",
              confirmed.to_string().c_str());
  std::printf("candidate ASes (certs only):\n%s\n",
              candidates.to_string().c_str());
  std::printf(
      "Reading: removing the default certificate or the Organization\n"
      "field blinds the certificate stage entirely (§8 options 1/3).\n"
      "A fully-qualified SNI sweep (§8) completely defeats the null-cert\n"
      "defense, but not the stripped Organization (the keyword search has\n"
      "nothing to anchor on — SNI responses only re-surface third-party\n"
      "service hosts). Anonymizing headers kills confirmation for\n"
      "header-fingerprinted HGs but leaves candidates intact — and\n"
      "Netflix stays confirmed because the default-nginx rule needs no\n"
      "debug headers at all.\n");
  return 0;
}
