// Longitudinal study: the paper's headline analysis end to end — run the
// pipeline over all 31 quarterly snapshots (2013-10 .. 2021-04), print
// the top-4 growth curves including the Netflix recovery variants, and
// summarize co-hosting behaviour.
//
//   ./longitudinal_study
#include <cstdio>

#include "analysis/cohosting.h"
#include "core/longitudinal.h"
#include "net/table.h"
#include "scan/world.h"

using namespace offnet;

int main() {
  scan::WorldConfig config;
  config.topology_scale = 0.05;  // fast demo scale
  config.background_scale = 0.001;
  scan::World world(config);

  core::LongitudinalRunner runner(world);
  std::fprintf(stderr, "running 31 snapshots ");
  auto results = runner.run(0, net::snapshot_count() - 1,
                            [](const core::SnapshotResult&) {
                              std::fputc('.', stderr);
                              std::fflush(stderr);
                            });
  std::fputc('\n', stderr);

  net::TextTable table({"snapshot", "Google", "Facebook", "Netflix",
                        "Netflix(envelope)", "Akamai"});
  const auto snaps = net::study_snapshots();
  for (const auto& result : results) {
    const core::HgFootprint* nf = result.find("Netflix");
    table.add(snaps[result.snapshot].to_string(),
              result.find("Google")->confirmed_ases().size(),
              result.find("Facebook")->confirmed_ases().size(),
              nf->confirmed_or_ases.size(),
              analysis::effective_footprint(*nf).size(),
              result.find("Akamai")->confirmed_ases().size());
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Co-hosting: do networks that host one Hypergiant attract more?
  analysis::CohostingAnalysis cohosting(world.topology(), results);
  auto first = cohosting.snapshot_distribution(0);
  auto last = cohosting.snapshot_distribution(results.size() - 1);
  std::printf("\nASes hosting >=1 top-4 HG: %zu -> %zu (%.1fx)\n",
              first.total_top4, last.total_top4,
              static_cast<double>(last.total_top4) / first.total_top4);
  std::printf("hosting 2+ of the top-4: %s -> %s of hosts\n",
              net::percent(1.0 - double(first.hosted_n[1]) /
                                     first.total_top4)
                  .c_str(),
              net::percent(1.0 - double(last.hosted_n[1]) / last.total_top4)
                  .c_str());
  std::printf("average newcomer share per snapshot: %s\n",
              net::percent(cohosting.average_newcomer_share()).c_str());
  return 0;
}
