// Network tenancy audit: the ISP-operator view. Pick host networks and
// show which Hypergiants' off-nets were inferred inside them over the
// study — the per-AS slice of the paper's §6.6 symbiosis analysis.
//
//   ./network_tenancy [asn...]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/cohosting.h"
#include "core/longitudinal.h"
#include "net/table.h"
#include "scan/world.h"

using namespace offnet;

int main(int argc, char** argv) {
  scan::WorldConfig config;
  config.topology_scale = 0.05;
  config.background_scale = 0.001;
  scan::World world(config);

  core::LongitudinalRunner runner(world);
  std::fprintf(stderr, "running 31 snapshots ");
  auto results = runner.run(0, net::snapshot_count() - 1,
                            [](const core::SnapshotResult&) {
                              std::fputc('.', stderr);
                              std::fflush(stderr);
                            });
  std::fputc('\n', stderr);

  // Tenancy per AS: snapshot -> set of HG names.
  std::map<topo::AsId, std::map<std::size_t, std::string>> tenancy;
  for (const auto& result : results) {
    for (const auto& fp : result.per_hg) {
      for (topo::AsId id : analysis::effective_footprint(fp)) {
        auto& cell = tenancy[id][result.snapshot];
        if (!cell.empty()) cell += "+";
        cell += fp.name.substr(0, 1);  // G/N/F/A/...
      }
    }
  }

  // Either the ASNs given on the command line, or the three busiest
  // hosts.
  std::vector<topo::AsId> targets;
  for (int i = 1; i < argc; ++i) {
    if (auto id = world.topology().find_asn(
            static_cast<net::Asn>(std::strtoul(argv[i], nullptr, 10)))) {
      targets.push_back(*id);
    } else {
      std::fprintf(stderr, "unknown ASN %s\n", argv[i]);
    }
  }
  if (targets.empty()) {
    std::vector<std::pair<std::size_t, topo::AsId>> busiest;
    for (const auto& [id, timeline] : tenancy) {
      busiest.emplace_back(timeline.size(), id);
    }
    std::sort(busiest.rbegin(), busiest.rend());
    for (std::size_t i = 0; i < 3 && i < busiest.size(); ++i) {
      targets.push_back(busiest[i].second);
    }
  }

  const auto snaps = net::study_snapshots();
  for (topo::AsId id : targets) {
    const auto& rec = world.topology().as(id);
    std::printf(
        "\nAS%u (%s, %s, cone %u) — Hypergiant tenancy timeline:\n",
        rec.asn,
        std::string(world.topology().country(rec.country).name).c_str(),
        std::string(topo::category_name(
                        world.topology().category(id,
                                                  net::snapshot_count() - 1)))
            .c_str(),
        world.topology().cone_sizes(net::snapshot_count() - 1)[id]);
    auto it = tenancy.find(id);
    if (it == tenancy.end()) {
      std::printf("  never hosted an inferred off-net\n");
      continue;
    }
    for (std::size_t t = 0; t < snaps.size(); ++t) {
      auto cell = it->second.find(t);
      std::printf("  %s  %s\n", snaps[t].to_string().c_str(),
                  cell == it->second.end() ? "-" : cell->second.c_str());
    }
  }
  return 0;
}
