// Quickstart: build a (down-scaled) synthetic Internet, run the paper's
// off-net inference pipeline on the latest scan snapshot, and print each
// Hypergiant's footprint. Runs in a few seconds.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "net/table.h"
#include "scan/world.h"

using namespace offnet;

int main(int argc, char** argv) {
  // 1. Simulate the Internet: AS topology, BGP, PKI, Hypergiant
  //    deployments, and the background web. topology_scale keeps this
  //    example fast; use 1.0 to reproduce the paper's absolute numbers.
  scan::WorldConfig config;
  config.topology_scale = 0.05;
  config.background_scale = 0.001;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  scan::World world(config);
  std::printf("world: %zu ASes, %zu certificates in the PKI\n",
              world.topology().as_count(), world.certs().size());

  // 2. Take one Rapid7-style scan of the final study snapshot (2021-04).
  std::size_t snapshot = net::snapshot_count() - 1;
  scan::ScanSnapshot scan = world.scan(snapshot, scan::ScannerKind::kRapid7);
  std::printf("scan: %zu IPs with default certificates on :443\n\n",
              scan.certs().size());

  // 3. Run the methodology (§4): validate certificates, learn TLS and
  //    header fingerprints from each HG's own address space, find
  //    candidates outside it, confirm with headers.
  core::OffnetPipeline pipeline(world.topology(), world.ip2as(),
                                world.certs(), world.roots());
  core::SnapshotResult result = pipeline.run(scan);

  net::TextTable table({"Hypergiant", "off-net ASes (confirmed)",
                        "service-present ASes (certs only)",
                        "off-net IPs"});
  for (const core::HgFootprint& fp : result.per_hg) {
    if (fp.candidate_ases.empty()) continue;
    table.add(fp.name, fp.confirmed_ases().size(), fp.candidate_ases.size(),
              fp.confirmed_ips);
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\ncorpus: %zu IPs total, %s with valid certificates, "
              "%zu ASes seen\n",
              result.stats.total_records,
              net::percent(static_cast<double>(result.stats.valid_cert_ips) /
                           result.stats.total_records)
                  .c_str(),
              result.stats.ases_with_certs);
  return 0;
}
