#include "analysis/certgroups.h"

#include <algorithm>
#include <unordered_map>

namespace offnet::analysis {

double CertGroupBreakdown::cumulative_top(std::size_t n) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < n && i < top_shares.size(); ++i) {
    sum += top_shares[i];
  }
  return sum;
}

CertGroupBreakdown cert_groups(
    std::span<const std::pair<net::IPv4, tls::CertId>> ip_certs,
    std::size_t top_n) {
  CertGroupBreakdown out;
  out.total_ips = ip_certs.size();
  if (ip_certs.empty()) return out;

  std::unordered_map<tls::CertId, std::size_t> counts;
  for (const auto& [ip, cert] : ip_certs) ++counts[cert];
  out.distinct_certs = counts.size();

  std::vector<std::size_t> sizes;
  sizes.reserve(counts.size());
  // offnet-lint: allow(unordered-iter): sizes are sorted on the next line
  for (const auto& [cert, count] : counts) sizes.push_back(count);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());

  for (std::size_t i = 0; i < top_n && i < sizes.size(); ++i) {
    out.top_shares.push_back(static_cast<double>(sizes[i]) /
                             static_cast<double>(out.total_ips));
  }
  return out;
}

}  // namespace offnet::analysis
