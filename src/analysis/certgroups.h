#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "tls/certificate.h"

namespace offnet::analysis {

/// Certificate IP-group analysis (Fig. 11 / Appendix A.3): off-net IPs
/// grouped by the certificate they serve, reported as the share of the
/// HG's IP population covered by each of the top groups.
struct CertGroupBreakdown {
  std::size_t total_ips = 0;
  std::size_t distinct_certs = 0;
  /// Shares of the top groups (descending), top_shares.size() <= top_n.
  std::vector<double> top_shares;

  double top_share(std::size_t k) const {
    return k < top_shares.size() ? top_shares[k] : 0.0;
  }
  double cumulative_top(std::size_t n) const;
};

CertGroupBreakdown cert_groups(
    std::span<const std::pair<net::IPv4, tls::CertId>> ip_certs,
    std::size_t top_n = 10);

}  // namespace offnet::analysis
