#include "analysis/cohosting.h"

#include <algorithm>
#include <bit>

namespace offnet::analysis {

const std::vector<topo::AsId>& effective_footprint(
    const core::HgFootprint& footprint) {
  if (!footprint.confirmed_expired_http_ases.empty()) {
    return footprint.confirmed_expired_http_ases;
  }
  return footprint.confirmed_or_ases;
}

CohostingAnalysis::CohostingAnalysis(
    const topo::Topology& topology,
    std::span<const core::SnapshotResult> results)
    : as_count_(topology.as_count()) {
  constexpr std::array<std::string_view, 4> kTop4 = {"Google", "Netflix",
                                                     "Facebook", "Akamai"};
  top4_masks_.reserve(results.size());
  any_hg_.reserve(results.size());
  for (const core::SnapshotResult& result : results) {
    std::vector<std::uint8_t> mask(as_count_, 0);
    std::vector<char> any(as_count_, 0);
    for (const core::HgFootprint& fp : result.per_hg) {
      int top4_bit = -1;
      for (std::size_t k = 0; k < kTop4.size(); ++k) {
        if (fp.name == kTop4[k]) top4_bit = static_cast<int>(k);
      }
      for (topo::AsId id : effective_footprint(fp)) {
        any[id] = 1;
        if (top4_bit >= 0) mask[id] |= std::uint8_t(1u << top4_bit);
      }
    }
    top4_masks_.push_back(std::move(mask));
    any_hg_.push_back(std::move(any));
  }
}

CohostingAnalysis::Distribution CohostingAnalysis::distribution_over(
    std::size_t index, const std::vector<char>& eligible) const {
  Distribution out;
  const auto& mask = top4_masks_[index];
  const auto& any = any_hg_[index];
  for (topo::AsId id = 0; id < as_count_; ++id) {
    if (!eligible.empty() && !eligible[id]) continue;
    if (any[id]) ++out.total_any_hg;
    int hosted = std::popcount(static_cast<unsigned>(mask[id]));
    if (hosted > 0) {
      ++out.hosted_n[static_cast<std::size_t>(hosted)];
      ++out.total_top4;
    }
  }
  out.top4_share = out.total_any_hg > 0
                       ? static_cast<double>(out.total_top4) /
                             static_cast<double>(out.total_any_hg)
                       : 0.0;
  return out;
}

CohostingAnalysis::Distribution CohostingAnalysis::snapshot_distribution(
    std::size_t index) const {
  return distribution_over(index, {});
}

std::vector<CohostingAnalysis::Distribution>
CohostingAnalysis::always_host_distributions(std::size_t* always_count) const {
  std::vector<char> always(as_count_, 1);
  for (const auto& mask : top4_masks_) {
    for (topo::AsId id = 0; id < as_count_; ++id) {
      if (mask[id] == 0) always[id] = 0;
    }
  }
  if (always_count != nullptr) {
    *always_count = static_cast<std::size_t>(
        std::count(always.begin(), always.end(), char(1)));
  }
  std::vector<Distribution> out;
  for (std::size_t t = 0; t < top4_masks_.size(); ++t) {
    out.push_back(distribution_over(t, always));
  }
  return out;
}

std::vector<CohostingAnalysis::Distribution>
CohostingAnalysis::persistent_distributions(double fraction) const {
  std::vector<std::size_t> hosting_snapshots(as_count_, 0);
  for (const auto& mask : top4_masks_) {
    for (topo::AsId id = 0; id < as_count_; ++id) {
      if (mask[id] != 0) ++hosting_snapshots[id];
    }
  }
  const auto threshold = static_cast<std::size_t>(
      fraction * static_cast<double>(top4_masks_.size()));
  std::vector<char> eligible(as_count_, 0);
  for (topo::AsId id = 0; id < as_count_; ++id) {
    if (hosting_snapshots[id] >= threshold && hosting_snapshots[id] > 0) {
      eligible[id] = 1;
    }
  }
  // Percentages in Fig. 14 are relative to ASes ever hosting any HG.
  std::vector<char> ever_any(as_count_, 0);
  for (const auto& any : any_hg_) {
    for (topo::AsId id = 0; id < as_count_; ++id) {
      if (any[id]) ever_any[id] = 1;
    }
  }
  const auto ever_total = static_cast<std::size_t>(
      std::count(ever_any.begin(), ever_any.end(), char(1)));

  std::vector<Distribution> out;
  for (std::size_t t = 0; t < top4_masks_.size(); ++t) {
    Distribution d = distribution_over(t, eligible);
    d.total_any_hg = ever_total;
    d.top4_share = ever_total > 0 ? static_cast<double>(d.total_top4) /
                                        static_cast<double>(ever_total)
                                  : 0.0;
    out.push_back(d);
  }
  return out;
}

double CohostingAnalysis::average_newcomer_share() const {
  if (top4_masks_.size() < 2) return 0.0;
  std::vector<char> seen(as_count_, 0);
  for (topo::AsId id = 0; id < as_count_; ++id) {
    if (top4_masks_[0][id] != 0) seen[id] = 1;
  }
  double total_share = 0.0;
  std::size_t steps = 0;
  for (std::size_t t = 1; t < top4_masks_.size(); ++t) {
    std::size_t hosting = 0;
    std::size_t newcomers = 0;
    for (topo::AsId id = 0; id < as_count_; ++id) {
      if (top4_masks_[t][id] == 0) continue;
      ++hosting;
      if (!seen[id]) {
        ++newcomers;
        seen[id] = 1;
      }
    }
    if (hosting > 0) {
      total_share += static_cast<double>(newcomers) /
                     static_cast<double>(hosting);
      ++steps;
    }
  }
  return steps > 0 ? total_share / static_cast<double>(steps) : 0.0;
}

}  // namespace offnet::analysis
