#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace offnet::analysis {

/// The paper's Netflix convention (§6.2): the envelope of the measured
/// lines (restoring expired-certificate and HTTP-only servers) is the
/// Netflix footprint used in all further analyses; other HGs use the
/// plain header-confirmed set.
const std::vector<topo::AsId>& effective_footprint(
    const core::HgFootprint& footprint);

/// Network-provider hosting behaviour (§6.6, Appendix A.8): how many of
/// the top-4 Hypergiants each AS hosts, over time and persistently.
class CohostingAnalysis {
 public:
  /// `results` is one longitudinal run; top-4 membership is by HG name.
  CohostingAnalysis(const topo::Topology& topology,
                    std::span<const core::SnapshotResult> results);

  /// hosted_n[k] = #ASes hosting exactly k of the top-4 (k in 1..4);
  /// `total_any_hg` counts ASes hosting >=1 of all examined HGs, and
  /// `top4_share` is the paper's per-bar percentage.
  struct Distribution {
    std::array<std::size_t, 5> hosted_n{};  // index by k, [0] unused
    std::size_t total_top4 = 0;
    std::size_t total_any_hg = 0;
    double top4_share = 0.0;
  };

  std::size_t snapshots() const { return top4_masks_.size(); }

  /// Fig. 10b: per-snapshot distribution over all ASes hosting >=1 top-4.
  Distribution snapshot_distribution(std::size_t index) const;

  /// Fig. 10a: distribution per snapshot restricted to the ASes that host
  /// >=1 top-4 HG in *every* snapshot. Also returns that AS count.
  std::vector<Distribution> always_host_distributions(
      std::size_t* always_count = nullptr) const;

  /// Fig. 14: distributions restricted to ASes hosting >=1 top-4 in at
  /// least `fraction` of the snapshots; percentages are relative to the
  /// ASes ever hosting any examined HG.
  std::vector<Distribution> persistent_distributions(double fraction) const;

  /// Average share of newcomers (ASes never seen hosting before) per
  /// snapshot (Appendix A.8 reports ~5%).
  double average_newcomer_share() const;

 private:
  Distribution distribution_over(std::size_t index,
                                 const std::vector<char>& eligible) const;

  std::size_t as_count_;
  // Per snapshot: per-AS bitmask of the top-4 HGs hosted, and a flag for
  // hosting any examined HG at all.
  std::vector<std::vector<std::uint8_t>> top4_masks_;
  std::vector<std::vector<char>> any_hg_;
};

}  // namespace offnet::analysis
