#include "analysis/coverage.h"

#include <algorithm>

namespace offnet::analysis {

std::vector<char> CoverageAnalysis::hosting_mask(
    std::span<const topo::AsId> hosts, std::size_t snapshot,
    bool with_cones) const {
  if (with_cones) {
    return topology_.graph().cone_union(hosts,
                                        topology_.alive_mask(snapshot));
  }
  std::vector<char> mask(topology_.as_count(), 0);
  for (topo::AsId id : hosts) mask[id] = 1;
  return mask;
}

std::vector<CoverageAnalysis::CountryCoverage> CoverageAnalysis::per_country(
    std::span<const topo::AsId> hosts, std::size_t snapshot) const {
  std::vector<char> mask = hosting_mask(hosts, snapshot, false);
  std::vector<CountryCoverage> out;
  for (topo::CountryId c = 0; c < topology_.country_count(); ++c) {
    out.push_back({c, population_.country_coverage(c, mask, snapshot)});
  }
  return out;
}

std::vector<CoverageAnalysis::CountryCoverage>
CoverageAnalysis::per_country_with_cones(std::span<const topo::AsId> hosts,
                                         std::size_t snapshot) const {
  std::vector<char> mask = hosting_mask(hosts, snapshot, true);
  std::vector<CountryCoverage> out;
  for (topo::CountryId c = 0; c < topology_.country_count(); ++c) {
    out.push_back({c, population_.country_coverage(c, mask, snapshot)});
  }
  return out;
}

double CoverageAnalysis::worldwide(std::span<const topo::AsId> hosts,
                                   std::size_t snapshot,
                                   bool with_cones) const {
  return population_.world_coverage(hosting_mask(hosts, snapshot, with_cones),
                                    snapshot);
}

double CoverageAnalysis::regional(topo::Region region,
                                  std::span<const topo::AsId> hosts,
                                  std::size_t snapshot,
                                  bool with_cones) const {
  return population_.region_coverage(
      region, hosting_mask(hosts, snapshot, with_cones), snapshot);
}

std::vector<CoverageAnalysis::WhatIfPick> CoverageAnalysis::best_additions(
    std::span<const topo::AsId> hosts, topo::CountryId country,
    std::size_t snapshot, std::size_t count) const {
  std::vector<char> mask = hosting_mask(hosts, snapshot, false);
  const auto& alive = topology_.alive_mask(snapshot);

  std::vector<WhatIfPick> picks;
  for (std::size_t k = 0; k < count; ++k) {
    topo::AsId best = topo::kNoAs;
    double best_share = 0.0;
    for (topo::AsId id = 0; id < topology_.as_count(); ++id) {
      if (!alive[id] || mask[id]) continue;
      if (topology_.as(id).country != country) continue;
      double share = population_.share(id);
      if (share > best_share) {
        best_share = share;
        best = id;
      }
    }
    if (best == topo::kNoAs) break;
    mask[best] = 1;
    picks.push_back(
        {best, population_.country_coverage(country, mask, snapshot)});
  }
  return picks;
}

}  // namespace offnet::analysis
