#pragma once

#include <span>
#include <string>
#include <vector>

#include "topology/population.h"
#include "topology/topology.h"

namespace offnet::analysis {

/// Per-country user-population coverage of a hosting AS set (the paper's
/// choropleth figures 7-9 and 12), with the optional customer-cone
/// extension (off-nets may also serve the hosting AS's customers).
class CoverageAnalysis {
 public:
  CoverageAnalysis(const topo::Topology& topology,
                   const topo::PopulationView& population)
      : topology_(topology), population_(population) {}

  struct CountryCoverage {
    topo::CountryId country;
    double fraction = 0.0;  // of the country's Internet users
  };

  /// Coverage per country for users whose AS hosts a server.
  std::vector<CountryCoverage> per_country(std::span<const topo::AsId> hosts,
                                           std::size_t snapshot) const;

  /// Same, but counting users within the hosting ASes' customer cones
  /// (Fig. 8 / Fig. 12).
  std::vector<CountryCoverage> per_country_with_cones(
      std::span<const topo::AsId> hosts, std::size_t snapshot) const;

  /// User-weighted worldwide coverage fraction.
  double worldwide(std::span<const topo::AsId> hosts, std::size_t snapshot,
                   bool with_cones = false) const;

  /// User-weighted regional coverage fraction.
  double regional(topo::Region region, std::span<const topo::AsId> hosts,
                  std::size_t snapshot, bool with_cones = false) const;

  /// Greedy what-if (§6.5): the ASes of `country` that would add the most
  /// coverage if they hosted the HG, with the resulting coverage after
  /// adding each. Returns up to `count` picks.
  struct WhatIfPick {
    topo::AsId as;
    double coverage_after = 0.0;
  };
  std::vector<WhatIfPick> best_additions(std::span<const topo::AsId> hosts,
                                         topo::CountryId country,
                                         std::size_t snapshot,
                                         std::size_t count) const;

 private:
  std::vector<char> hosting_mask(std::span<const topo::AsId> hosts,
                                 std::size_t snapshot, bool with_cones) const;

  const topo::Topology& topology_;
  const topo::PopulationView& population_;
};

}  // namespace offnet::analysis
