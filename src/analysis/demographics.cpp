#include "analysis/demographics.h"

namespace offnet::analysis {

CategoryCounts categorize_set(const topo::Topology& topology,
                              std::span<const topo::AsId> ases,
                              std::size_t snapshot) {
  CategoryCounts counts{};
  const auto& cones = topology.cone_sizes(snapshot);
  for (topo::AsId id : ases) {
    counts[static_cast<std::size_t>(topo::categorize(cones[id]))]++;
  }
  return counts;
}

CategoryCounts internet_demographics(const topo::Topology& topology,
                                     std::size_t snapshot) {
  CategoryCounts counts{};
  const auto& cones = topology.cone_sizes(snapshot);
  const auto& alive = topology.alive_mask(snapshot);
  for (topo::AsId id = 0; id < topology.as_count(); ++id) {
    if (!alive[id]) continue;
    counts[static_cast<std::size_t>(topo::categorize(cones[id]))]++;
  }
  return counts;
}

std::array<double, topo::kCategoryCount> shares(const CategoryCounts& counts) {
  std::array<double, topo::kCategoryCount> out{};
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return out;
}

}  // namespace offnet::analysis
