#pragma once

#include <array>
#include <span>
#include <vector>

#include "topology/category.h"
#include "topology/topology.h"

namespace offnet::analysis {

/// Counts per AS size category (Stub, Small, Medium, Large, XLarge).
using CategoryCounts = std::array<std::size_t, topo::kCategoryCount>;

/// Category breakdown of an AS set at a snapshot (Fig. 5's stacked bars).
CategoryCounts categorize_set(const topo::Topology& topology,
                              std::span<const topo::AsId> ases,
                              std::size_t snapshot);

/// Category breakdown of the whole (alive) Internet at a snapshot — the
/// baseline demographics the paper contrasts against (§6.3: ~85% Stub,
/// ~12% Small, ~2.6% Medium, <0.5% Large, <0.1% XLarge).
CategoryCounts internet_demographics(const topo::Topology& topology,
                                     std::size_t snapshot);

/// Percentage shares of a counts vector.
std::array<double, topo::kCategoryCount> shares(const CategoryCounts& counts);

}  // namespace offnet::analysis
