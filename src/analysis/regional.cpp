#include "analysis/regional.h"

namespace offnet::analysis {

RegionCounts regionalize_set(const topo::Topology& topology,
                             std::span<const topo::AsId> ases) {
  RegionCounts counts{};
  for (topo::AsId id : ases) {
    auto country = topology.as(id).country;
    if (country == topo::kNoCountry) continue;
    counts[static_cast<std::size_t>(topology.country(country).region)]++;
  }
  return counts;
}

std::vector<topo::AsId> filter_region(const topo::Topology& topology,
                                      std::span<const topo::AsId> ases,
                                      topo::Region region) {
  std::vector<topo::AsId> out;
  for (topo::AsId id : ases) {
    auto country = topology.as(id).country;
    if (country == topo::kNoCountry) continue;
    if (topology.country(country).region == region) out.push_back(id);
  }
  return out;
}

std::vector<topo::AsId> filter_country(const topo::Topology& topology,
                                       std::span<const topo::AsId> ases,
                                       topo::CountryId country) {
  std::vector<topo::AsId> out;
  for (topo::AsId id : ases) {
    if (topology.as(id).country == country) out.push_back(id);
  }
  return out;
}

}  // namespace offnet::analysis
