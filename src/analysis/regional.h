#pragma once

#include <array>
#include <span>
#include <vector>

#include "topology/region.h"
#include "topology/topology.h"

namespace offnet::analysis {

using RegionCounts = std::array<std::size_t, topo::kRegionCount>;

/// Per-continent breakdown of an AS set (Fig. 6), via the AS-to-country
/// mapping (Appendix A.2 / §6.4).
RegionCounts regionalize_set(const topo::Topology& topology,
                             std::span<const topo::AsId> ases);

/// ASes of `set` within one region.
std::vector<topo::AsId> filter_region(const topo::Topology& topology,
                                      std::span<const topo::AsId> ases,
                                      topo::Region region);

/// ASes of `set` within one country.
std::vector<topo::AsId> filter_country(const topo::Topology& topology,
                                       std::span<const topo::AsId> ases,
                                       topo::CountryId country);

}  // namespace offnet::analysis
