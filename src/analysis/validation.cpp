#include "analysis/validation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/cohosting.h"
#include "hypergiant/profile.h"
#include "net/rng.h"

namespace offnet::analysis {

namespace {

std::size_t overlap_count(std::span<const topo::AsId> a,
                          std::span<const topo::AsId> b) {
  // Both sorted.
  std::size_t count = 0;
  auto it = b.begin();
  for (topo::AsId id : a) {
    it = std::lower_bound(it, b.end(), id);
    if (it == b.end()) break;
    if (*it == id) ++count;
  }
  return count;
}

/// Ground-truth "does this IP hold a valid certificate for HG g's
/// domains" oracle, from the fleet and background serve masks.
std::unordered_map<std::uint32_t, std::uint64_t> serve_masks(
    const scan::World& world, std::size_t snapshot) {
  std::unordered_map<std::uint32_t, std::uint64_t> masks;
  for (const hg::ServerRecord& rec : world.fleet().snapshot_fleet(snapshot)) {
    if (rec.serves_hgs != 0) masks[rec.ip.value()] |= rec.serves_hgs;
  }
  world.background().for_each(snapshot, [&](const scan::BgServer& server) {
    if (server.serves_hgs != 0) {
      masks[server.ip.value()] |= server.serves_hgs;
    }
  });
  return masks;
}

int world_profile_index(const scan::World& world, std::string_view name) {
  return hg::profile_index(world.profiles(), name);
}

}  // namespace

FootprintAccuracy compare_to_ground_truth(const scan::World& world,
                                          const core::SnapshotResult& result,
                                          std::string_view hypergiant) {
  FootprintAccuracy out;
  out.hypergiant = std::string(hypergiant);
  const core::HgFootprint* fp = result.find(hypergiant);
  if (fp == nullptr) return out;
  int idx = world_profile_index(world, hypergiant);
  if (idx < 0) return out;

  const auto& measured = effective_footprint(*fp);
  const auto& truth = world.plan().at(result.snapshot, idx).confirmed;
  out.measured = measured.size();
  out.truth = truth.size();
  out.overlap = overlap_count(measured, truth);
  return out;
}

CrossDomainResult cross_domain_validation(const scan::World& world,
                                          const core::SnapshotResult& result,
                                          std::uint64_t seed) {
  CrossDomainResult out;
  auto masks = serve_masks(world, result.snapshot);
  net::Rng rng = net::Rng(seed).fork("cross-domain");

  // Which HGs were inferred on each IP (to attribute Akamai).
  std::unordered_set<std::uint32_t> akamai_ips;
  if (const core::HgFootprint* ak = result.find("Akamai")) {
    for (net::IPv4 ip : ak->confirmed_ip_list) akamai_ips.insert(ip.value());
  }

  const std::size_t n_hg = result.per_hg.size();
  for (std::size_t h = 0; h < n_hg; ++h) {
    const core::HgFootprint& fp = result.per_hg[h];
    for (net::IPv4 ip : fp.confirmed_ip_list) {
      auto it = masks.find(ip.value());
      std::uint64_t mask = it == masks.end() ? 0u : it->second;
      // 10 random other HGs, one popular domain each.
      auto others = rng.sample_indices(n_hg, 11);
      std::size_t tested = 0;
      for (std::size_t g : others) {
        if (g == h || tested == 10) continue;
        ++tested;
        ++out.probes;
        int g_profile = world_profile_index(world, result.per_hg[g].name);
        if (g_profile >= 0 && (mask & (std::uint64_t{1} << g_profile))) {
          ++out.validated;
          if (akamai_ips.contains(ip.value())) ++out.validated_on_akamai;
        }
      }
    }
  }
  return out;
}

ReverseTestResult reverse_validation(const scan::World& world,
                                     const core::SnapshotResult& result,
                                     const scan::ScanSnapshot& snapshot,
                                     double sample_fraction,
                                     std::uint64_t seed) {
  ReverseTestResult out;
  auto masks = serve_masks(world, result.snapshot);
  net::Rng rng = net::Rng(seed).fork("reverse-test");

  // On-net IPs (excluded from the sample) and inferred off-net IPs.
  std::unordered_set<std::uint32_t> onnet_ips;
  std::unordered_set<std::uint32_t> offnet_ips;
  for (const hg::ServerRecord& rec :
       world.fleet().snapshot_fleet(result.snapshot)) {
    if (rec.role == hg::ServerRole::kOnNet) onnet_ips.insert(rec.ip.value());
  }
  for (const core::HgFootprint& fp : result.per_hg) {
    for (net::IPv4 ip : fp.confirmed_ip_list) offnet_ips.insert(ip.value());
  }

  const std::size_t n_hg = result.per_hg.size();
  std::unordered_set<std::uint32_t> seen;
  for (const scan::CertScanRecord& rec : snapshot.certs()) {
    if (!seen.insert(rec.ip.value()).second) continue;
    if (onnet_ips.contains(rec.ip.value())) continue;
    if (!rng.bernoulli(sample_fraction)) continue;
    ++out.sampled_ips;
    if (offnet_ips.contains(rec.ip.value())) ++out.sampled_offnet_ips;

    auto it = masks.find(rec.ip.value());
    std::uint64_t mask = it == masks.end() ? 0u : it->second;
    bool valid = false;
    if (mask != 0) {
      for (std::size_t pick : rng.sample_indices(n_hg, 10)) {
        int g_profile =
            world_profile_index(world, result.per_hg[pick].name);
        if (g_profile >= 0 && (mask & (std::uint64_t{1} << g_profile))) {
          valid = true;
          break;
        }
      }
    }
    if (valid) {
      ++out.valid_ips;
      if (offnet_ips.contains(rec.ip.value())) ++out.valid_inferred_offnets;
    }
  }
  return out;
}

EarlierComparison compare_to_earlier(const scan::World& world,
                                     const core::SnapshotResult& result,
                                     std::string_view study,
                                     std::string_view hypergiant,
                                     double earlier_coverage,
                                     std::uint64_t seed) {
  EarlierComparison out;
  out.study = std::string(study);
  out.hypergiant = std::string(hypergiant);
  out.month = net::study_snapshots()[result.snapshot];

  int idx = world_profile_index(world, hypergiant);
  const core::HgFootprint* fp = result.find(hypergiant);
  if (idx < 0 || fp == nullptr) return out;

  // The earlier technique saw an imperfect sample of the true footprint
  // (DNS pattern guessing / ECS coverage limits).
  const auto& truth = world.plan().at(result.snapshot, idx).confirmed;
  net::Rng rng = net::Rng(seed).fork(study);
  std::vector<topo::AsId> earlier;
  for (topo::AsId id : truth) {
    if (rng.bernoulli(earlier_coverage)) earlier.push_back(id);
  }
  out.earlier_ases = earlier.size();

  const auto& ours = effective_footprint(*fp);
  out.uncovered = overlap_count(earlier, ours);
  out.additional = ours.size() - overlap_count(ours, earlier);
  return out;
}

}  // namespace offnet::analysis
