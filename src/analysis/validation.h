#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "scan/world.h"

namespace offnet::analysis {

/// Accuracy of one measured footprint against the simulator's ground
/// truth — the quantity the paper could only estimate by surveying HG
/// operators (§5: "we correctly uncovered 89-95% of ASes hosting their
/// off-nets").
struct FootprintAccuracy {
  std::string hypergiant;
  std::size_t measured = 0;
  std::size_t truth = 0;
  std::size_t overlap = 0;

  /// Fraction of measured ASes that really host the HG ("6% of ASes we
  /// identified were not on the HG's list").
  double precision() const {
    return measured > 0 ? static_cast<double>(overlap) / measured : 1.0;
  }
  /// Fraction of true host ASes uncovered ("11% from the HG's list were
  /// not uncovered").
  double recall() const {
    return truth > 0 ? static_cast<double>(overlap) / truth : 1.0;
  }
};

/// Compares the pipeline's footprint (Netflix: envelope) against the
/// deployment plan at the result's snapshot.
FootprintAccuracy compare_to_ground_truth(const scan::World& world,
                                          const core::SnapshotResult& result,
                                          std::string_view hypergiant);

/// ZGrab-style active validation (§5): every inferred off-net IP is asked
/// for domains of 10 random *other* HGs; a correct inference should fail
/// TLS validation for all of them. The paper measured 89.7% failing, with
/// 97% of the unexpected successes on Akamai (which legitimately serves
/// other HGs' content).
struct CrossDomainResult {
  std::size_t probes = 0;
  std::size_t validated = 0;            // unexpectedly valid
  std::size_t validated_on_akamai = 0;  // of those, on Akamai-inferred IPs

  double failing_share() const {
    return probes > 0 ? 1.0 - static_cast<double>(validated) / probes : 1.0;
  }
  double akamai_share_of_validated() const {
    return validated > 0
               ? static_cast<double>(validated_on_akamai) / validated
               : 0.0;
  }
};

CrossDomainResult cross_domain_validation(const scan::World& world,
                                          const core::SnapshotResult& result,
                                          std::uint64_t seed = 1);

/// Reverse test (§5): a sample of responsive IPs *not* inferred as HG
/// on-nets, asked for random HG domains. The paper found 0.1% validating;
/// of those, 98% were IPs it had (correctly) inferred as off-nets.
struct ReverseTestResult {
  std::size_t sampled_ips = 0;
  std::size_t sampled_offnet_ips = 0;  // of sampled, inferred off-nets
  std::size_t valid_ips = 0;           // validated for some HG domain
  std::size_t valid_inferred_offnets = 0;

  double valid_share() const {
    return sampled_ips > 0 ? static_cast<double>(valid_ips) / sampled_ips
                           : 0.0;
  }
  double inferred_share_of_valid() const {
    return valid_ips > 0
               ? static_cast<double>(valid_inferred_offnets) / valid_ips
               : 0.0;
  }

  /// The paper's corpus has ~100x more background IPs than the simulator
  /// materializes (off-net IPs are unscaled; see DESIGN.md). This rescales
  /// the background part of the sample so the share is comparable with
  /// the paper's 0.1%.
  double scale_corrected_valid_share(double background_upscale) const {
    double bg_sampled =
        static_cast<double>(sampled_ips - sampled_offnet_ips);
    double bg_valid =
        static_cast<double>(valid_ips - valid_inferred_offnets);
    double denom = bg_sampled * background_upscale +
                   static_cast<double>(sampled_offnet_ips);
    double numer = bg_valid * background_upscale +
                   static_cast<double>(valid_inferred_offnets);
    return denom > 0.0 ? numer / denom : 0.0;
  }
};

ReverseTestResult reverse_validation(const scan::World& world,
                                     const core::SnapshotResult& result,
                                     const scan::ScanSnapshot& snapshot,
                                     double sample_fraction = 0.25,
                                     std::uint64_t seed = 1);

/// Comparison against earlier per-HG mapping studies (§5). The earlier
/// study's AS list is synthesized from ground truth with the imperfect
/// coverage such techniques had.
struct EarlierComparison {
  std::string study;
  std::string hypergiant;
  net::YearMonth month;
  std::size_t earlier_ases = 0;   // reported by the earlier study
  std::size_t uncovered = 0;      // of those, found by our technique
  std::size_t additional = 0;     // ours beyond the earlier list

  double uncovered_share() const {
    return earlier_ases > 0
               ? static_cast<double>(uncovered) / earlier_ases
               : 0.0;
  }
};

EarlierComparison compare_to_earlier(const scan::World& world,
                                     const core::SnapshotResult& result,
                                     std::string_view study,
                                     std::string_view hypergiant,
                                     double earlier_coverage,
                                     std::uint64_t seed = 1);

}  // namespace offnet::analysis
