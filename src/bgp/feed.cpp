#include "bgp/feed.h"

#include <algorithm>

#include "net/rng.h"

namespace offnet::bgp {

namespace {

std::uint64_t prefix_tag(const net::Prefix& p) {
  return (std::uint64_t{p.base().value()} << 8) | p.length();
}

}  // namespace

FeedSimulator::FeedSimulator(const topo::Topology& topology, FeedConfig config)
    : topology_(topology), config_(std::move(config)) {}

MonthlyFeed FeedSimulator::monthly_feed(std::size_t snapshot,
                                        Collector collector) const {
  MonthlyFeed feed;
  const auto& alive = topology_.alive_mask(snapshot);
  net::Rng base = net::Rng(config_.seed).fork("bgp-feed");

  for (topo::AsId id = 0; id < topology_.as_count(); ++id) {
    if (!alive[id]) continue;
    const topo::AsRecord& rec = topology_.as(id);
    for (const net::Prefix& prefix : rec.prefixes) {
      // Stable per-prefix decisions (identical across snapshots and
      // collectors): is this prefix routed at all? Hypergiant
      // infrastructure announces everything.
      net::Rng stable = base.fork(prefix_tag(prefix));
      if (!rec.always_routed &&
          !stable.bernoulli(config_.announce_probability)) {
        continue;
      }

      // Per-(prefix, collector, month) visibility.
      net::Rng monthly = base.fork(prefix_tag(prefix) * 1000003u +
                                   snapshot * 7u +
                                   static_cast<std::uint64_t>(collector));
      if (monthly.bernoulli(config_.collector_miss_rate)) continue;
      double fraction = monthly.uniform_real(0.85, 1.0);
      feed.push_back(MonthlyRouteObservation{prefix, rec.asn, collector,
                                             fraction});

      // Legitimate sibling MOAS: another AS of the same org also
      // originates the prefix, persistently.
      const auto& org_ases = topology_.orgs().ases_of(rec.org);
      if (org_ases.size() > 1 && stable.bernoulli(config_.sibling_moas_rate)) {
        topo::AsId sibling = org_ases[stable.index(org_ases.size())];
        if (sibling != id && alive[sibling]) {
          feed.push_back(MonthlyRouteObservation{
              prefix, topology_.as(sibling).asn, collector,
              monthly.uniform_real(0.6, 1.0)});
        }
      }

      // Hijacks / route leaks: bogus origin, usually short-lived.
      if (monthly.bernoulli(config_.hijack_rate)) {
        topo::AsId attacker =
            static_cast<topo::AsId>(monthly.index(topology_.as_count()));
        if (attacker != id && alive[attacker]) {
          double hijack_fraction =
              monthly.bernoulli(config_.hijack_long_fraction)
                  ? monthly.uniform_real(0.26, 0.6)
                  : monthly.uniform_real(0.0, 0.2);
          feed.push_back(MonthlyRouteObservation{
              prefix, topology_.as(attacker).asn, collector,
              hijack_fraction});
        }
      }
    }
  }
  return feed;
}

Ip2AsSeries::Ip2AsSeries(const topo::Topology& topology, FeedConfig config,
                         std::size_t cache_capacity)
    : topology_(topology),
      simulator_(topology, std::move(config)),
      cache_capacity_(std::max<std::size_t>(1, cache_capacity)) {}

const Ip2AsMap& Ip2AsSeries::at(std::size_t snapshot) const {
  core::MutexLock lock(mutex_);
  return *share_locked(snapshot);
}

core::Pinned<Ip2AsMap> Ip2AsSeries::share(std::size_t snapshot) const {
  core::MutexLock lock(mutex_);
  return core::Pinned<Ip2AsMap>(share_locked(snapshot));
}

std::shared_ptr<const Ip2AsMap> Ip2AsSeries::share_locked(
    std::size_t snapshot) const {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == snapshot) {
      cache_.splice(cache_.begin(), cache_, it);
      return cache_.front().second;
    }
  }
  Ip2AsBuilder builder;
  builder.add_feed(simulator_.monthly_feed(snapshot, Collector::kRipeRis));
  builder.add_feed(simulator_.monthly_feed(snapshot, Collector::kRouteViews));
  auto map = std::make_shared<const Ip2AsMap>(builder.build());
  stats_.emplace_back(snapshot, builder.stats());
  cache_.emplace_front(snapshot, map);
  while (cache_.size() > cache_capacity_) cache_.pop_back();
  return map;
}

Ip2AsBuilder::Stats Ip2AsSeries::stats_at(std::size_t snapshot) const {
  core::MutexLock lock(mutex_);
  for (const auto& [snap, stats] : stats_) {
    if (snap == snapshot) return stats;
  }
  share_locked(snapshot);
  return stats_.back().second;
}

}  // namespace offnet::bgp
