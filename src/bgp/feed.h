#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <utility>

#include "bgp/ip2as.h"
#include "bgp/route.h"
#include "core/mutex.h"
#include "core/pinned.h"
#include "core/thread_annotations.h"
#include "topology/topology.h"

namespace offnet::bgp {

/// Parameters of the synthetic BGP control plane.
struct FeedConfig {
  std::uint64_t seed = 20210823;

  /// Probability a prefix is announced at all (dark/unrouted space keeps
  /// IP-to-AS coverage well below 100%; the paper reports 75.8% of the
  /// routable space including unallocated blocks).
  double announce_probability = 0.93;

  /// Probability a given collector misses an announced prefix entirely
  /// (peering-dependent visibility).
  double collector_miss_rate = 0.04;

  /// Per announced prefix per month: probability of a hijack/leak event
  /// adding a bogus origin.
  double hijack_rate = 0.004;

  /// Fraction of hijacks persisting past the 25%-of-month filter (the
  /// paper cites <2% of hijacks lasting over a week).
  double hijack_long_fraction = 0.02;

  /// For organizations operating several ASes: probability a prefix is
  /// legitimately announced by a sibling AS too (real MOAS).
  double sibling_moas_rate = 0.10;
};

/// Generates monthly per-collector feeds from the topology. All decisions
/// are hash-derived from (prefix, snapshot, collector), so feeds are
/// stable across calls and mostly stable across snapshots, like real BGP.
class FeedSimulator {
 public:
  FeedSimulator(const topo::Topology& topology, FeedConfig config);

  MonthlyFeed monthly_feed(std::size_t snapshot, Collector collector) const;

 private:
  const topo::Topology& topology_;
  FeedConfig config_;
};

/// Lazily builds and caches the per-snapshot IP-to-AS maps from both
/// collectors, mirroring the paper's Appendix A.1 process. Keeps a small
/// LRU of built maps (they are large; longitudinal runs access snapshots
/// sequentially).
///
/// All accessors are serialized internally. References returned by at()
/// stay valid only until cache_capacity_ further snapshots have been
/// built; callers that hold a map across other lookups — the parallel
/// longitudinal runner pinning one map per in-flight snapshot — must use
/// share(), which keeps the map alive past LRU eviction.
class Ip2AsSeries final : public Ip2AsOracle {
 public:
  Ip2AsSeries(const topo::Topology& topology, FeedConfig config,
              std::size_t cache_capacity = 2);

  const Ip2AsMap& at(std::size_t snapshot) const override
      OFFNET_EXCLUDES(mutex_);

  /// Eviction-safe access: the returned pin owns the map independently
  /// of the internal LRU (the core::Pinned idiom — see core/pinned.h).
  core::Pinned<Ip2AsMap> share(std::size_t snapshot) const
      OFFNET_EXCLUDES(mutex_);

  Ip2AsBuilder::Stats stats_at(std::size_t snapshot) const
      OFFNET_EXCLUDES(mutex_);

 private:
  /// Cache lookup / build.
  std::shared_ptr<const Ip2AsMap> share_locked(std::size_t snapshot) const
      OFFNET_REQUIRES(mutex_);

  const topo::Topology& topology_;
  FeedSimulator simulator_;
  std::size_t cache_capacity_;
  mutable core::Mutex mutex_;
  mutable std::list<std::pair<std::size_t, std::shared_ptr<const Ip2AsMap>>>
      cache_ OFFNET_GUARDED_BY(mutex_);
  mutable std::vector<std::pair<std::size_t, Ip2AsBuilder::Stats>> stats_
      OFFNET_GUARDED_BY(mutex_);
};

}  // namespace offnet::bgp
