#include "bgp/ip2as.h"

#include <algorithm>

namespace offnet::bgp {

bool OriginSet::add(net::Asn asn) {
  if (count_ >= kMaxOrigins || contains(asn)) return false;
  asns_[count_++] = asn;
  return true;
}

bool OriginSet::contains(net::Asn asn) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (asns_[i] == asn) return true;
  }
  return false;
}

void Ip2AsMap::insert(const net::Prefix& prefix, const OriginSet& origins) {
  auto index = static_cast<std::uint32_t>(origin_sets_.size());
  origin_sets_.push_back(origins);
  trie_.insert(prefix, index);
}

std::span<const net::Asn> Ip2AsMap::lookup(net::IPv4 ip) const {
  const std::uint32_t* index = trie_.longest_match(ip);
  if (index == nullptr) return {};
  return origin_sets_[*index].origins();
}

net::Asn Ip2AsMap::primary(net::IPv4 ip) const {
  auto origins = lookup(ip);
  return origins.empty() ? net::kNoAsn : origins.front();
}

double Ip2AsMap::coverage(std::span<const net::IPv4> probes) const {
  if (probes.empty()) return 0.0;
  std::size_t mapped = 0;
  for (net::IPv4 ip : probes) {
    if (!lookup(ip).empty()) ++mapped;
  }
  return static_cast<double>(mapped) / static_cast<double>(probes.size());
}

void Ip2AsBuilder::add(const MonthlyRouteObservation& obs) {
  if (net::is_bogon(obs.prefix)) {
    ++stats_.bogon_prefix;
    return;
  }
  if (net::is_reserved_asn(obs.origin)) {
    ++stats_.reserved_origin;
    return;
  }
  if (obs.fraction_of_month <= kPersistenceThreshold) {
    ++stats_.below_persistence;
    return;
  }
  ++stats_.accepted;
  kept_.push_back(Kept{obs.prefix, obs.origin});
}

void Ip2AsBuilder::add_feed(const MonthlyFeed& feed) {
  for (const auto& obs : feed) add(obs);
}

Ip2AsMap Ip2AsBuilder::build() const {
  std::vector<Kept> sorted = kept_;
  std::sort(sorted.begin(), sorted.end(), [](const Kept& a, const Kept& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    return a.origin < b.origin;
  });

  Ip2AsMap map;
  stats_.moas_prefixes = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const net::Prefix& prefix = sorted[i].prefix;
    OriginSet origins;
    while (i < sorted.size() && sorted[i].prefix == prefix) {
      origins.add(sorted[i].origin);
      ++i;
    }
    if (origins.moas()) ++stats_.moas_prefixes;
    map.insert(prefix, origins);
  }
  return map;
}

}  // namespace offnet::bgp
