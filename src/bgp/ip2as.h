#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pinned.h"
#include "net/asn.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "bgp/route.h"

namespace offnet::bgp {

/// Origin ASes mapped to one prefix. Usually one; BGP MOAS cases carry
/// several (the paper treats all consistently-seen origins as valid).
class OriginSet {
 public:
  static constexpr std::size_t kMaxOrigins = 4;

  bool add(net::Asn asn);  // returns false if full or duplicate
  bool contains(net::Asn asn) const;
  std::size_t size() const { return count_; }
  bool moas() const { return count_ > 1; }
  std::span<const net::Asn> origins() const { return {asns_.data(), count_}; }
  net::Asn primary() const { return count_ > 0 ? asns_[0] : net::kNoAsn; }

 private:
  std::array<net::Asn, kMaxOrigins> asns_{};
  std::size_t count_ = 0;
};

/// The longest-prefix-match IP-to-AS mapping built from BGP data
/// (Appendix A.1). Lookups return every valid origin for the covering
/// prefix; callers decide how to treat MOAS.
class Ip2AsMap {
 public:
  void insert(const net::Prefix& prefix, const OriginSet& origins);

  /// Longest-prefix match; empty when no covering prefix was mapped.
  std::span<const net::Asn> lookup(net::IPv4 ip) const;

  /// First origin of the covering prefix, or kNoAsn.
  net::Asn primary(net::IPv4 ip) const;

  std::size_t prefix_count() const { return trie_.size(); }

  /// Fraction of a probe set of addresses that have a mapping; the paper
  /// reports 75.8% coverage of routable IPv4 space.
  double coverage(std::span<const net::IPv4> probes) const;

  /// Visits every (prefix, origins) mapping in prefix order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    trie_.for_each([&](const net::Prefix& prefix, std::uint32_t index) {
      fn(prefix, origin_sets_[index]);
    });
  }

 private:
  net::PrefixTrie<std::uint32_t> trie_;
  std::vector<OriginSet> origin_sets_;
};

/// Source of per-snapshot IP-to-AS maps. The simulation derives them
/// from synthetic BGP feeds (Ip2AsSeries); real deployments can load a
/// prefix2as file once (FixedIp2As).
class Ip2AsOracle {
 public:
  virtual ~Ip2AsOracle() = default;
  virtual const Ip2AsMap& at(std::size_t snapshot) const = 0;
};

/// One immutable map answering for every snapshot (e.g. loaded from a
/// CAIDA-style prefix2as file).
class FixedIp2As final : public Ip2AsOracle {
 public:
  explicit FixedIp2As(Ip2AsMap map) : map_(std::move(map)) {}
  const Ip2AsMap& at(std::size_t) const override { return map_; }

 private:
  Ip2AsMap map_;
};

/// One shared, immutable map answering for every snapshot. Produced by
/// Ip2AsSeries::share for the parallel longitudinal runner: each
/// in-flight snapshot pins its own map, so the series' LRU may evict
/// freely while workers run. This is the original instance of the
/// core::Pinned pinning idiom, which svc::VersionedStore generalizes
/// into an RCU-style snapshot swap (DESIGN.md §11).
class PinnedIp2As final : public Ip2AsOracle {
 public:
  explicit PinnedIp2As(core::Pinned<Ip2AsMap> map) : map_(std::move(map)) {}
  explicit PinnedIp2As(std::shared_ptr<const Ip2AsMap> map)
      : map_(core::Pinned<Ip2AsMap>(std::move(map))) {}
  const Ip2AsMap& at(std::size_t) const override { return *map_; }

 private:
  core::Pinned<Ip2AsMap> map_;
};

/// Applies the paper's cleaning rules to monthly collector feeds:
///   - discard bogon prefixes and reserved origin ASNs,
///   - keep only (prefix, origin) pairs seen for more than 25% of the
///     month at some collector (filters hijacks/leaks; <2% of hijacks
///     last over a week),
///   - merge collectors; conflicting origins become MOAS.
class Ip2AsBuilder {
 public:
  /// Minimum fraction of the month a mapping must persist.
  static constexpr double kPersistenceThreshold = 0.25;

  void add(const MonthlyRouteObservation& obs);
  void add_feed(const MonthlyFeed& feed);

  Ip2AsMap build() const;

  /// Number of observations rejected by each rule, for reporting.
  struct Stats {
    std::size_t accepted = 0;
    std::size_t below_persistence = 0;
    std::size_t bogon_prefix = 0;
    std::size_t reserved_origin = 0;
    std::size_t moas_prefixes = 0;  // filled by build()
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Kept {
    net::Prefix prefix;
    net::Asn origin;
  };

  std::vector<Kept> kept_;
  mutable Stats stats_;
};

}  // namespace offnet::bgp
