#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/asn.h"
#include "net/prefix.h"

namespace offnet::bgp {

/// The two public BGP collector projects the paper merges (Appendix A.1).
enum class Collector : std::uint8_t {
  kRipeRis,
  kRouteViews,
};

constexpr std::size_t kCollectorCount = 2;

constexpr std::string_view collector_name(Collector c) {
  switch (c) {
    case Collector::kRipeRis: return "RIPE RIS";
    case Collector::kRouteViews: return "RouteViews";
  }
  return "?";
}

/// One month of aggregated control-plane data for one (prefix, origin)
/// pair at one collector: the fraction of the month during which the
/// origin was observed announcing the prefix. This is the exact input
/// shape of the paper's monthly-aggregation step.
struct MonthlyRouteObservation {
  net::Prefix prefix;
  net::Asn origin = net::kNoAsn;
  Collector collector = Collector::kRipeRis;
  double fraction_of_month = 0.0;  // in [0, 1]
};

using MonthlyFeed = std::vector<MonthlyRouteObservation>;

}  // namespace offnet::bgp
