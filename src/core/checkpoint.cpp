#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/fault.h"
#include "io/atomic_file.h"

namespace offnet::core {

namespace {

// ---------------------------------------------------------------------
// Token escaping. Payload lines are space-separated tokens; tokens are
// escaped so arbitrary strings (error messages, header patterns, DNS
// names) survive: '\' -> "\\", ' ' -> "\s", newline -> "\n", tab ->
// "\t", and the empty string becomes the marker "\e".
// ---------------------------------------------------------------------

void append_token(std::string& out, std::string_view text) {
  if (!out.empty() && out.back() != '\n') out.push_back(' ');
  if (text.empty()) {
    out += "\\e";
    return;
  }
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
}

std::string unescape(std::string_view token) {
  if (token == "\\e") return {};
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 1 == token.size()) {
      throw CheckpointError("checkpoint: dangling escape in token");
    }
    switch (token[++i]) {
      case '\\': out.push_back('\\'); break;
      case 's': out.push_back(' '); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      default:
        throw CheckpointError("checkpoint: unknown escape in token");
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  append_token(out, std::to_string(v));
}

/// Shortest %g rendering that round-trips the value (the obs exporter's
/// convention), so re-encoding a decoded state is byte-identical.
void append_f64(std::string& out, double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  append_token(out, buf);
}

void end_line(std::string& out) { out.push_back('\n'); }

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

std::uint64_t parse_u64(const std::string& token, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0' ||
      token[0] == '-') {
    throw CheckpointError(std::string("checkpoint: bad ") + what + " '" +
                          token + "'");
  }
  return v;
}

std::int64_t parse_i64(const std::string& token, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    throw CheckpointError(std::string("checkpoint: bad ") + what + " '" +
                          token + "'");
  }
  return v;
}

double parse_f64(const std::string& token, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw CheckpointError(std::string("checkpoint: bad ") + what + " '" +
                          token + "'");
  }
  return v;
}

/// Line-at-a-time payload reader: every read names the record tag it
/// expects, so a malformed file fails with "expected X" instead of
/// silently misparsing.
class Reader {
 public:
  explicit Reader(std::string_view payload) : payload_(payload) {}

  /// Reads the next line, splits and unescapes its tokens, and checks
  /// the tag and minimum token count.
  std::vector<std::string> line(const char* tag, std::size_t min_tokens) {
    if (pos_ >= payload_.size()) {
      throw CheckpointError(std::string("checkpoint: truncated payload, "
                                        "expected '") +
                            tag + "' record");
    }
    std::size_t eol = payload_.find('\n', pos_);
    if (eol == std::string_view::npos) eol = payload_.size();
    std::string_view text = payload_.substr(pos_, eol - pos_);
    pos_ = eol + 1;

    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t space = text.find(' ', start);
      if (space == std::string_view::npos) space = text.size();
      tokens.push_back(unescape(text.substr(start, space - start)));
      start = space + 1;
    }
    if (tokens.empty() || tokens[0] != tag) {
      throw CheckpointError(std::string("checkpoint: expected '") + tag +
                            "' record, found '" +
                            (tokens.empty() ? "" : tokens[0]) + "'");
    }
    if (tokens.size() < min_tokens) {
      throw CheckpointError(std::string("checkpoint: '") + tag +
                            "' record too short");
    }
    return tokens;
  }

  bool at_end() const { return pos_ >= payload_.size(); }

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

// The FNV-1a 64 primitive itself is shared with the delta cache's key
// tables (core::fnv1a_64, declared in delta_cache.h).
std::string fnv1a_hex(std::string_view data) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a_64(data)));
  return buf;
}

// ---------------------------------------------------------------------
// Payload encoding, one helper per aggregate.
// ---------------------------------------------------------------------

void encode_metrics(std::string& out, const obs::RegistrySnapshot& m) {
  out += "counters";
  append_u64(out, m.counters.size());
  end_line(out);
  for (const auto& [name, value] : m.counters) {
    out += "c";
    append_token(out, name);
    append_u64(out, value);
    end_line(out);
  }
  out += "gauges";
  append_u64(out, m.gauges.size());
  end_line(out);
  for (const auto& [name, value] : m.gauges) {
    out += "g";
    append_token(out, name);
    append_token(out, std::to_string(value));
    end_line(out);
  }
  out += "histograms";
  append_u64(out, m.histograms.size());
  end_line(out);
  for (const auto& [name, data] : m.histograms) {
    out += "h";
    append_token(out, name);
    append_u64(out, data.bounds.size());
    for (double b : data.bounds) append_f64(out, b);
    append_u64(out, data.buckets.size());
    for (std::uint64_t b : data.buckets) append_u64(out, b);
    append_u64(out, data.count);
    end_line(out);
  }
  out += "timings";
  append_u64(out, m.timings.size());
  end_line(out);
  for (const auto& [name, stat] : m.timings) {
    out += "t";
    append_token(out, name);
    append_u64(out, stat.calls);
    append_f64(out, stat.total_seconds);
    append_f64(out, stat.min_seconds);
    append_f64(out, stat.max_seconds);
    end_line(out);
  }
}

obs::RegistrySnapshot decode_metrics(Reader& in) {
  obs::RegistrySnapshot m;
  std::size_t n = parse_u64(in.line("counters", 2)[1], "counter count");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> t = in.line("c", 3);
    m.counters[t[1]] = parse_u64(t[2], "counter value");
  }
  n = parse_u64(in.line("gauges", 2)[1], "gauge count");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> t = in.line("g", 3);
    m.gauges[t[1]] = parse_i64(t[2], "gauge value");
  }
  n = parse_u64(in.line("histograms", 2)[1], "histogram count");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> t = in.line("h", 4);
    obs::RegistrySnapshot::HistogramData data;
    std::size_t at = 2;
    const std::size_t n_bounds = parse_u64(t[at++], "bound count");
    if (t.size() < at + n_bounds + 1) {
      throw CheckpointError("checkpoint: 'h' record too short");
    }
    for (std::size_t b = 0; b < n_bounds; ++b) {
      data.bounds.push_back(parse_f64(t[at++], "histogram bound"));
    }
    const std::size_t n_buckets = parse_u64(t[at++], "bucket count");
    if (t.size() != at + n_buckets + 1) {
      throw CheckpointError("checkpoint: 'h' record length mismatch");
    }
    for (std::size_t b = 0; b < n_buckets; ++b) {
      data.buckets.push_back(parse_u64(t[at++], "histogram bucket"));
    }
    data.count = parse_u64(t[at], "histogram count");
    m.histograms[t[1]] = std::move(data);
  }
  n = parse_u64(in.line("timings", 2)[1], "timing count");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> t = in.line("t", 6);
    obs::TimingStat stat;
    stat.calls = parse_u64(t[2], "timing calls");
    stat.total_seconds = parse_f64(t[3], "timing total");
    stat.min_seconds = parse_f64(t[4], "timing min");
    stat.max_seconds = parse_f64(t[5], "timing max");
    m.timings[t[1]] = stat;
  }
  return m;
}

void encode_as_vector(std::string& out, const std::vector<topo::AsId>& v) {
  out += "as";
  append_u64(out, v.size());
  for (topo::AsId id : v) append_u64(out, id);
  end_line(out);
}

std::vector<topo::AsId> decode_as_vector(Reader& in) {
  std::vector<std::string> t = in.line("as", 2);
  const std::size_t n = parse_u64(t[1], "AS count");
  if (t.size() != n + 2) {
    throw CheckpointError("checkpoint: 'as' record length mismatch");
  }
  std::vector<topo::AsId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(
        static_cast<topo::AsId>(parse_u64(t[i + 2], "AS id")));
  }
  return v;
}

void encode_footprint(std::string& out, const HgFootprint& hg) {
  out += "hg";
  append_token(out, hg.name);
  append_u64(out, hg.onnet_ips);
  append_u64(out, hg.candidate_ips);
  append_u64(out, hg.confirmed_ips);
  end_line(out);
  encode_as_vector(out, hg.candidate_ases);
  encode_as_vector(out, hg.confirmed_or_ases);
  encode_as_vector(out, hg.confirmed_and_ases);
  encode_as_vector(out, hg.confirmed_expired_ases);
  encode_as_vector(out, hg.confirmed_expired_http_ases);

  out += "ipcerts";
  append_u64(out, hg.candidate_ip_certs.size());
  for (const auto& [ip, cert] : hg.candidate_ip_certs) {
    append_u64(out, ip.value());
    append_u64(out, cert);
  }
  end_line(out);

  out += "cips";
  append_u64(out, hg.confirmed_ip_list.size());
  for (net::IPv4 ip : hg.confirmed_ip_list) append_u64(out, ip.value());
  end_line(out);

  // The on-net name set is unordered in memory; serialize sorted so the
  // encoding is canonical.
  std::vector<std::string_view> names(hg.tls_fingerprint.onnet_names.begin(),
                                      hg.tls_fingerprint.onnet_names.end());
  std::sort(names.begin(), names.end());
  out += "tls";
  append_token(out, hg.tls_fingerprint.hypergiant);
  append_token(out, hg.tls_fingerprint.keyword);
  append_u64(out, names.size());
  for (std::string_view name : names) append_token(out, name);
  end_line(out);

  out += "hdr";
  append_u64(out, hg.header_fingerprint.patterns.size());
  end_line(out);
  for (const http::HeaderFingerprint& p : hg.header_fingerprint.patterns) {
    out += "p";
    append_token(out, p.name);
    append_token(out, p.value);
    append_u64(out, p.value_is_prefix ? 1 : 0);
    append_u64(out, p.name_is_prefix ? 1 : 0);
    end_line(out);
  }
}

HgFootprint decode_footprint(Reader& in) {
  HgFootprint hg;
  std::vector<std::string> t = in.line("hg", 5);
  hg.name = t[1];
  hg.onnet_ips = parse_u64(t[2], "onnet_ips");
  hg.candidate_ips = parse_u64(t[3], "candidate_ips");
  hg.confirmed_ips = parse_u64(t[4], "confirmed_ips");

  hg.candidate_ases = decode_as_vector(in);
  hg.confirmed_or_ases = decode_as_vector(in);
  hg.confirmed_and_ases = decode_as_vector(in);
  hg.confirmed_expired_ases = decode_as_vector(in);
  hg.confirmed_expired_http_ases = decode_as_vector(in);

  t = in.line("ipcerts", 2);
  std::size_t n = parse_u64(t[1], "ipcert count");
  if (t.size() != 2 * n + 2) {
    throw CheckpointError("checkpoint: 'ipcerts' record length mismatch");
  }
  hg.candidate_ip_certs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ip =
        static_cast<std::uint32_t>(parse_u64(t[2 + 2 * i], "IP"));
    const auto cert =
        static_cast<tls::CertId>(parse_u64(t[3 + 2 * i], "cert id"));
    hg.candidate_ip_certs.emplace_back(net::IPv4(ip), cert);
  }

  t = in.line("cips", 2);
  n = parse_u64(t[1], "confirmed IP count");
  if (t.size() != n + 2) {
    throw CheckpointError("checkpoint: 'cips' record length mismatch");
  }
  hg.confirmed_ip_list.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hg.confirmed_ip_list.emplace_back(
        static_cast<std::uint32_t>(parse_u64(t[i + 2], "IP")));
  }

  t = in.line("tls", 4);
  hg.tls_fingerprint.hypergiant = t[1];
  hg.tls_fingerprint.keyword = t[2];
  n = parse_u64(t[3], "name count");
  if (t.size() != n + 4) {
    throw CheckpointError("checkpoint: 'tls' record length mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    hg.tls_fingerprint.onnet_names.insert(t[i + 4]);
  }

  n = parse_u64(in.line("hdr", 2)[1], "pattern count");
  for (std::size_t i = 0; i < n; ++i) {
    t = in.line("p", 5);
    http::HeaderFingerprint p;
    p.name = t[1];
    p.value = t[2];
    p.value_is_prefix = parse_u64(t[3], "value_is_prefix") != 0;
    p.name_is_prefix = parse_u64(t[4], "name_is_prefix") != 0;
    hg.header_fingerprint.patterns.push_back(std::move(p));
  }
  return hg;
}

void encode_result(std::string& out, const SnapshotResult& r) {
  out += "result";
  append_u64(out, r.snapshot);
  append_u64(out, static_cast<std::uint64_t>(r.scanner));
  append_u64(out, static_cast<std::uint64_t>(r.health));
  append_token(out, r.error);
  end_line(out);

  out += "stats";
  append_u64(out, r.stats.total_records);
  append_u64(out, r.stats.valid_cert_ips);
  append_u64(out, r.stats.invalid_cert_ips);
  append_u64(out, r.stats.ases_with_certs);
  append_u64(out, r.stats.hg_cert_ips_onnet);
  append_u64(out, r.stats.hg_cert_ips_offnet);
  append_u64(out, r.stats.ases_with_any_hg);
  end_line(out);

  out += "report";
  append_u64(out, r.load_report.files.size());
  end_line(out);
  for (const io::FileReport& file : r.load_report.files) {
    out += "file";
    append_token(out, file.kind);
    append_u64(out, file.lines_ok);
    append_u64(out, file.lines_skipped);
    append_u64(out, file.samples.size());
    end_line(out);
    for (const io::LineError& sample : file.samples) {
      out += "sample";
      append_u64(out, sample.line);
      append_token(out, sample.what);
      end_line(out);
    }
  }

  out += "hgs";
  append_u64(out, r.per_hg.size());
  end_line(out);
  for (const HgFootprint& hg : r.per_hg) encode_footprint(out, hg);
}

SnapshotResult decode_result(Reader& in) {
  SnapshotResult r;
  std::vector<std::string> t = in.line("result", 5);
  r.snapshot = parse_u64(t[1], "snapshot index");
  r.scanner =
      static_cast<scan::ScannerKind>(parse_u64(t[2], "scanner"));
  const std::uint64_t health = parse_u64(t[3], "health");
  if (health > static_cast<std::uint64_t>(SnapshotHealth::kQuarantined)) {
    throw CheckpointError("checkpoint: unknown snapshot health " +
                          std::to_string(health));
  }
  r.health = static_cast<SnapshotHealth>(health);
  r.error = t[4];

  t = in.line("stats", 8);
  r.stats.total_records = parse_u64(t[1], "total_records");
  r.stats.valid_cert_ips = parse_u64(t[2], "valid_cert_ips");
  r.stats.invalid_cert_ips = parse_u64(t[3], "invalid_cert_ips");
  r.stats.ases_with_certs = parse_u64(t[4], "ases_with_certs");
  r.stats.hg_cert_ips_onnet = parse_u64(t[5], "hg_cert_ips_onnet");
  r.stats.hg_cert_ips_offnet = parse_u64(t[6], "hg_cert_ips_offnet");
  r.stats.ases_with_any_hg = parse_u64(t[7], "ases_with_any_hg");

  std::size_t n_files = parse_u64(in.line("report", 2)[1], "file count");
  for (std::size_t f = 0; f < n_files; ++f) {
    t = in.line("file", 5);
    io::FileReport file;
    file.kind = t[1];
    file.lines_ok = parse_u64(t[2], "lines_ok");
    file.lines_skipped = parse_u64(t[3], "lines_skipped");
    const std::size_t n_samples = parse_u64(t[4], "sample count");
    for (std::size_t s = 0; s < n_samples; ++s) {
      t = in.line("sample", 3);
      file.samples.push_back(
          {parse_u64(t[1], "sample line"), t[2]});
    }
    r.load_report.files.push_back(std::move(file));
  }

  const std::size_t n_hgs = parse_u64(in.line("hgs", 2)[1], "HG count");
  r.per_hg.reserve(n_hgs);
  for (std::size_t h = 0; h < n_hgs; ++h) {
    r.per_hg.push_back(decode_footprint(in));
  }
  return r;
}

// Delta-cache image (DESIGN.md §12). Rows are encoded in ascending id
// order — exactly DeltaCache::snapshot()'s iteration order — so the
// section is canonical like the rest of the payload.
void encode_delta(std::string& out, const DeltaCacheSnapshot& d) {
  out += "delta";
  append_u64(out, d.present ? 1 : 0);
  if (!d.present) {
    end_line(out);
    return;
  }
  append_token(out, d.config);
  append_u64(out, d.commit_count);
  append_u64(out, d.max_idle);
  append_u64(out, d.next_cert_id);
  append_u64(out, d.next_fp_id);
  append_u64(out, d.next_env_id);
  append_u64(out, d.next_origins_id);
  append_u64(out, d.certs.size());
  append_u64(out, d.fps.size());
  append_u64(out, d.envs.size());
  append_u64(out, d.origins.size());
  append_u64(out, d.covers.size());
  append_u64(out, d.onnet.size());
  end_line(out);
  for (const DeltaCacheSnapshot::CertRowImage& row : d.certs) {
    out += "dcert";
    append_u64(out, row.id);
    append_token(out, row.key);
    append_u64(out, row.kind);
    append_token(out, std::to_string(row.ee_nb));
    append_token(out, std::to_string(row.ee_na));
    append_u64(out, row.org_mask);
    append_u64(out, row.all_cloudflare ? 1 : 0);
    append_u64(out, row.last_used);
    append_u64(out, row.links.size());
    for (const auto& [nb, na] : row.links) {
      append_token(out, std::to_string(nb));
      append_token(out, std::to_string(na));
    }
    end_line(out);
  }
  auto encode_ctx = [&](const std::vector<DeltaCacheSnapshot::CtxRowImage>&
                            rows) {
    for (const DeltaCacheSnapshot::CtxRowImage& row : rows) {
      out += "dctx";
      append_u64(out, row.id);
      append_token(out, row.key);
      append_u64(out, row.last_used);
      end_line(out);
    }
  };
  encode_ctx(d.fps);
  encode_ctx(d.envs);
  encode_ctx(d.origins);
  auto encode_pairs = [&](const std::vector<DeltaCacheSnapshot::PairRowImage>&
                              rows) {
    for (const DeltaCacheSnapshot::PairRowImage& row : rows) {
      out += "dpair";
      append_u64(out, row.a);
      append_u64(out, row.b);
      append_u64(out, row.value);
      append_u64(out, row.last_used);
      end_line(out);
    }
  };
  encode_pairs(d.covers);
  encode_pairs(d.onnet);
}

DeltaCacheSnapshot decode_delta(Reader& in) {
  DeltaCacheSnapshot d;
  std::vector<std::string> t = in.line("delta", 2);
  d.present = parse_u64(t[1], "delta present flag") != 0;
  if (!d.present) return d;
  if (t.size() < 15) {
    throw CheckpointError("checkpoint: 'delta' record too short");
  }
  d.config = t[2];
  d.commit_count = parse_u64(t[3], "delta commit count");
  d.max_idle = parse_u64(t[4], "delta max idle");
  d.next_cert_id =
      static_cast<std::uint32_t>(parse_u64(t[5], "delta cert id"));
  d.next_fp_id = static_cast<std::uint32_t>(parse_u64(t[6], "delta fp id"));
  d.next_env_id =
      static_cast<std::uint32_t>(parse_u64(t[7], "delta env id"));
  d.next_origins_id =
      static_cast<std::uint32_t>(parse_u64(t[8], "delta origins id"));
  const std::size_t n_certs = parse_u64(t[9], "delta cert rows");
  const std::size_t n_fps = parse_u64(t[10], "delta fp rows");
  const std::size_t n_envs = parse_u64(t[11], "delta env rows");
  const std::size_t n_origins = parse_u64(t[12], "delta origins rows");
  const std::size_t n_covers = parse_u64(t[13], "delta covers rows");
  const std::size_t n_onnet = parse_u64(t[14], "delta onnet rows");
  for (std::size_t i = 0; i < n_certs; ++i) {
    t = in.line("dcert", 10);
    DeltaCacheSnapshot::CertRowImage row;
    row.id = static_cast<std::uint32_t>(parse_u64(t[1], "dcert id"));
    row.key = t[2];
    row.kind = static_cast<std::uint8_t>(parse_u64(t[3], "dcert kind"));
    row.ee_nb = parse_i64(t[4], "dcert not_before");
    row.ee_na = parse_i64(t[5], "dcert not_after");
    row.org_mask = parse_u64(t[6], "dcert org mask");
    row.all_cloudflare = parse_u64(t[7], "dcert cloudflare flag") != 0;
    row.last_used = parse_u64(t[8], "dcert last used");
    const std::size_t n_links = parse_u64(t[9], "dcert link count");
    if (t.size() != 10 + 2 * n_links) {
      throw CheckpointError("checkpoint: 'dcert' record length mismatch");
    }
    row.links.reserve(n_links);
    for (std::size_t l = 0; l < n_links; ++l) {
      row.links.emplace_back(parse_i64(t[10 + 2 * l], "dcert link nb"),
                             parse_i64(t[11 + 2 * l], "dcert link na"));
    }
    d.certs.push_back(std::move(row));
  }
  auto decode_ctx = [&](std::size_t n,
                        std::vector<DeltaCacheSnapshot::CtxRowImage>& rows) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::string> line = in.line("dctx", 4);
      rows.push_back(
          {static_cast<std::uint32_t>(parse_u64(line[1], "dctx id")),
           line[2], parse_u64(line[3], "dctx last used")});
    }
  };
  decode_ctx(n_fps, d.fps);
  decode_ctx(n_envs, d.envs);
  decode_ctx(n_origins, d.origins);
  auto decode_pairs = [&](std::size_t n,
                          std::vector<DeltaCacheSnapshot::PairRowImage>&
                              rows) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::string> line = in.line("dpair", 5);
      rows.push_back(
          {static_cast<std::uint32_t>(parse_u64(line[1], "dpair a")),
           static_cast<std::uint32_t>(parse_u64(line[2], "dpair b")),
           parse_u64(line[3], "dpair value"),
           parse_u64(line[4], "dpair last used")});
    }
  };
  decode_pairs(n_covers, d.covers);
  decode_pairs(n_onnet, d.onnet);
  return d;
}

}  // namespace

std::string run_digest(const PipelineOptions& options,
                       scan::ScannerKind scanner, std::size_t first) {
  std::string d = "scanner=";
  d += std::to_string(static_cast<int>(scanner));
  d += ";first=" + std::to_string(first);
  d += ";cloudflare_filter=";
  d += options.apply_cloudflare_ssl_filter ? '1' : '0';
  d += ";no_subset=";
  d += options.disable_subset_rule ? '1' : '0';
  d += ";no_edge_conflict=";
  d += options.disable_edge_conflict_rule ? '1' : '0';
  d += ";no_nginx=";
  d += options.disable_nginx_rule ? '1' : '0';
  d += ";delta=";
  d += options.delta != nullptr ? '1' : '0';
  return d;
}

std::string Checkpoint::encode(const RunState& state,
                               const std::string& digest) {
  std::string payload;
  payload += "state";
  append_u64(payload, state.first);
  append_u64(payload, static_cast<std::uint64_t>(state.scanner));
  append_u64(payload, state.results.size());
  end_line(payload);

  payload += "netflix";
  append_u64(payload, state.netflix_ips.size());
  for (std::uint32_t ip : state.netflix_ips) append_u64(payload, ip);
  end_line(payload);

  encode_delta(payload, state.delta);
  encode_metrics(payload, state.metrics);
  for (const SnapshotResult& result : state.results) {
    encode_result(payload, result);
  }

  std::string out(kMagic);
  out.push_back('\n');
  out += "digest";
  append_token(out, digest);
  end_line(out);
  out += "payload " + std::to_string(payload.size()) + " fnv1a " +
         fnv1a_hex(payload) + "\n";
  out += payload;
  return out;
}

RunState Checkpoint::decode(std::string_view content,
                            const std::string& expected_digest) {
  // Header: magic, digest, payload length + checksum. Each is checked
  // before the payload is trusted, so a torn or foreign file fails here
  // with a specific diagnostic.
  std::size_t eol = content.find('\n');
  if (eol == std::string_view::npos || content.substr(0, eol) != kMagic) {
    throw CheckpointError(
        "checkpoint: missing magic line (not a checkpoint file, or an "
        "unsupported version)");
  }
  content.remove_prefix(eol + 1);

  eol = content.find('\n');
  if (eol == std::string_view::npos) {
    throw CheckpointError("checkpoint: truncated before digest line");
  }
  std::string_view digest_line = content.substr(0, eol);
  content.remove_prefix(eol + 1);
  if (digest_line.substr(0, 7) != "digest ") {
    throw CheckpointError("checkpoint: malformed digest line");
  }
  const std::string digest = unescape(digest_line.substr(7));

  eol = content.find('\n');
  if (eol == std::string_view::npos) {
    throw CheckpointError("checkpoint: truncated before payload header");
  }
  std::string_view header = content.substr(0, eol);
  std::string_view payload = content.substr(eol + 1);
  std::size_t expected_bytes = 0;
  {
    std::string head(header);
    unsigned long long bytes = 0;
    char checksum[32];
    if (std::sscanf(head.c_str(), "payload %llu fnv1a %31s", &bytes,
                    checksum) != 2) {
      throw CheckpointError("checkpoint: malformed payload header");
    }
    expected_bytes = bytes;
    if (payload.size() != expected_bytes) {
      throw CheckpointError(
          "checkpoint: truncated payload (" +
          std::to_string(payload.size()) + " bytes, header promises " +
          std::to_string(expected_bytes) + ") — likely a torn write");
    }
    if (fnv1a_hex(payload) != checksum) {
      throw CheckpointError(
          "checkpoint: payload checksum mismatch — file is corrupt");
    }
  }

  // Only now compare digests: a torn file should report corruption, not
  // a spurious configuration mismatch. An empty expected digest accepts
  // any configuration — the read-only consumer contract (offnetd serves
  // whatever results the checkpoint holds; it never resumes the run).
  if (!expected_digest.empty() && digest != expected_digest) {
    throw CheckpointError(
        "checkpoint: run configuration mismatch — saved under '" + digest +
        "', resuming run expects '" + expected_digest +
        "'; refusing to mix results");
  }

  Reader in(payload);
  RunState state;
  std::vector<std::string> t = in.line("state", 4);
  state.first = parse_u64(t[1], "first snapshot");
  state.scanner =
      static_cast<scan::ScannerKind>(parse_u64(t[2], "scanner"));
  const std::size_t n_results = parse_u64(t[3], "result count");

  t = in.line("netflix", 2);
  const std::size_t n_ips = parse_u64(t[1], "Netflix IP count");
  if (t.size() != n_ips + 2) {
    throw CheckpointError("checkpoint: 'netflix' record length mismatch");
  }
  state.netflix_ips.reserve(n_ips);
  for (std::size_t i = 0; i < n_ips; ++i) {
    state.netflix_ips.push_back(
        static_cast<std::uint32_t>(parse_u64(t[i + 2], "Netflix IP")));
  }

  state.delta = decode_delta(in);
  state.metrics = decode_metrics(in);
  state.results.reserve(n_results);
  for (std::size_t i = 0; i < n_results; ++i) {
    state.results.push_back(decode_result(in));
  }
  if (!in.at_end()) {
    throw CheckpointError("checkpoint: trailing data after last record");
  }
  return state;
}

std::size_t Checkpoint::save(const std::string& path, const RunState& state,
                             const std::string& digest,
                             FaultInjector* faults) {
  const std::string content = encode(state, digest);
  io::AtomicFile file(path);
  file.stream() << content;
  // The checkpoint-write boundary sits after the temp write and before
  // the publish: a throwing fault here unwinds (the AtomicFile
  // destructor removes the temp), an aborting one leaves a torn temp
  // next to the intact previous checkpoint — exactly what a crash does.
  if (faults != nullptr) {
    faults->on(fault_stage::kCheckpointWrite);
    file.set_commit_hook(
        [faults] { faults->on(fault_stage::kArtifactRename); });
  }
  file.commit();
  return content.size();
}

RunState Checkpoint::load(const std::string& path,
                          const std::string& expected_digest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw CheckpointError("checkpoint: read error on '" + path + "'");
  }
  return decode(buffer.str(), expected_digest);
}

}  // namespace offnet::core
