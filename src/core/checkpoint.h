#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/delta_cache.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "scan/record.h"

/// Durable run state for supervised longitudinal runs (DESIGN.md §10).
/// After every snapshot the runner saves a checkpoint — the completed
/// SnapshotResults, the §6.2 Netflix prior-IP set, and a snapshot of the
/// metrics registry — published atomically via io::AtomicFile, so a
/// crash at any instant leaves either the previous checkpoint or the new
/// one, never a torn file. A resumed run restores that state and
/// continues; the contract (enforced by checkpoint_test) is that
/// interrupt-at-any-point + resume produces byte-identical results and
/// deterministic metrics, at any thread count.
namespace offnet::core {

class FaultInjector;

/// Every way a checkpoint can be unusable: unreadable file, wrong magic
/// or version, truncated or checksum-corrupt payload, malformed records,
/// or a run-configuration digest that disagrees with the resuming run.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything a supervised run needs to continue where it stopped.
struct RunState {
  std::size_t first = 0;  // first snapshot index of the run
  scan::ScannerKind scanner = scan::ScannerKind::kRapid7;

  /// Completed prefix of the series, placeholders included — the next
  /// snapshot to run is first + results.size().
  std::vector<SnapshotResult> results;

  /// IPs ever seen serving Netflix certificates (§6.2), sorted.
  std::vector<std::uint32_t> netflix_ips;

  /// The metrics registry at save time, minus the wall-clock timing
  /// stats (whose rendered lengths vary run to run and would make the
  /// checkpoint's byte size nondeterministic). Restored via
  /// Registry::absorb so a resumed run's exported counters equal an
  /// uninterrupted run's; timings restart with the resumed process.
  obs::RegistrySnapshot metrics;

  /// Delta-cache image at save time (present only for --delta runs).
  /// Persisting it keeps a resumed run's cache — and so its delta/*
  /// counters — byte-identical to an uninterrupted run's.
  DeltaCacheSnapshot delta;
};

/// Canonical description of the options that shape a run's results. A
/// checkpoint records it at save time and load() rejects a mismatch: a
/// checkpoint written with, say, the Cloudflare filter on must not seed
/// a run with it off. Includes whether a delta cache is attached: a
/// --delta checkpoint carries cache state a --no-delta resume would
/// silently drop (skewing the delta/* counters), and vice versa.
/// Deliberately excludes n_threads (results are bit-identical at any
/// thread count, so resuming at a different one is sound) and the
/// series end (a run may be resumed to a later `last`).
std::string run_digest(const PipelineOptions& options,
                       scan::ScannerKind scanner, std::size_t first);

class Checkpoint {
 public:
  /// First line of every checkpoint file.
  static constexpr std::string_view kMagic = "offnet-checkpoint v1";

  /// Renders the full checkpoint file: magic, digest, a payload header
  /// with byte count and FNV-1a 64 checksum, then the line-based
  /// payload. Canonical — unordered state is serialized sorted — so two
  /// encodes of equal state are byte-identical.
  static std::string encode(const RunState& state,
                            const std::string& digest);

  /// Parses and verifies a full checkpoint file. Throws CheckpointError
  /// with a distinct message for each failure: bad magic, truncated or
  /// checksum-corrupt payload, malformed records, digest mismatch. An
  /// empty `expected_digest` skips only the digest comparison (all
  /// integrity checks still apply) — for read-only consumers like
  /// offnetd that serve a checkpoint's results without resuming the run.
  static RunState decode(std::string_view content,
                         const std::string& expected_digest);

  /// Encodes and atomically publishes to `path`; returns the byte count
  /// written. `faults` (optional) is crossed at the checkpoint-write and
  /// artifact-rename stage boundaries.
  static std::size_t save(const std::string& path, const RunState& state,
                          const std::string& digest,
                          FaultInjector* faults = nullptr);

  /// Reads and decodes `path`. Throws CheckpointError when the file
  /// cannot be read or fails any decode() check.
  static RunState load(const std::string& path,
                       const std::string& expected_digest);
};

}  // namespace offnet::core
