#include "core/delta_cache.h"

#include <algorithm>

namespace offnet::core {

namespace {

// Field separators for the canonical encodings: neither occurs in
// organization strings, dNSNames, or decimal numbers, so every encoding
// parses back unambiguously and distinct contents get distinct keys.
constexpr char kFieldSep = '\x1e';
constexpr char kItemSep = '\x1f';

void append_num(std::string& out, std::int64_t value) {
  out += std::to_string(value);
  out += ' ';
}

}  // namespace

std::uint64_t fnv1a_64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

tls::CertStatus DeltaCache::CertEntry::status_at(net::DayTime at) const {
  // Mirrors tls::CertValidator::validate check-for-check; delta_test
  // holds the two byte-identical over full corpuses.
  if (kind == CertKind::kMalformed) return tls::CertStatus::kMalformed;
  const std::int64_t day = at.days();
  if (day < ee_nb) return tls::CertStatus::kNotYetValid;
  if (ee_na < day) return tls::CertStatus::kExpired;
  if (kind == CertKind::kSelfSignedEe) return tls::CertStatus::kSelfSigned;
  if (kind == CertKind::kNoAnchor) return tls::CertStatus::kUntrustedChain;
  for (const auto& [nb, na] : links) {
    if (day < nb || na < day) return tls::CertStatus::kUntrustedChain;
  }
  return tls::CertStatus::kValid;
}

DeltaCache::DeltaCache(std::uint64_t max_idle)
    : max_idle_(max_idle == 0 ? 1 : max_idle) {}

std::string DeltaCache::encode_cert(const tls::CertificateStore& certs,
                                    const tls::RootStore& roots,
                                    tls::CertId ee, CertEntry* entry) {
  const tls::Certificate& cert = certs.get(ee);
  entry->links.clear();
  entry->org_mask = 0;
  entry->all_cloudflare = false;
  entry->ee_nb = cert.not_before.days();
  entry->ee_na = cert.not_after.days();

  if (cert.subject.organization.empty() && cert.dns_names.empty()) {
    entry->kind = CertKind::kMalformed;
  } else if (cert.self_signed() && !cert.is_ca) {
    entry->kind = CertKind::kSelfSignedEe;
  } else {
    // Walk issuer links exactly as the validator does, recording each
    // link's validity window up to and including the first trusted
    // anchor. Links past the anchor can never influence a verdict; a
    // chain that never reaches an anchor is untrusted at every date, so
    // its windows are irrelevant too.
    entry->kind = CertKind::kNoAnchor;
    tls::CertId current = cert.issuer;
    while (current != tls::kNoCert) {
      const tls::Certificate& link = certs.get(current);
      entry->links.emplace_back(link.not_before.days(),
                                link.not_after.days());
      if (roots.is_trusted(current)) {
        entry->kind = CertKind::kChain;
        break;
      }
      current = link.issuer;
    }
    if (entry->kind == CertKind::kNoAnchor) entry->links.clear();
  }

  // Canonical content encoding. dNSNames are sorted: every cached
  // verdict derived from them (containment, universal-SSL shape,
  // malformedness) is order-independent.
  std::string key;
  key += cert.subject.organization;
  key += kFieldSep;
  std::vector<std::string> names(cert.dns_names.begin(),
                                 cert.dns_names.end());
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    key += name;
    key += kItemSep;
  }
  key += kFieldSep;
  append_num(key, static_cast<std::int64_t>(entry->kind));
  append_num(key, entry->ee_nb);
  append_num(key, entry->ee_na);
  append_num(key, static_cast<std::int64_t>(entry->links.size()));
  for (const auto& [nb, na] : entry->links) {
    append_num(key, nb);
    append_num(key, na);
  }
  return key;
}

std::string DeltaCache::encode_fp(const TlsFingerprint& fp) {
  std::vector<std::string> names(fp.onnet_names.begin(),
                                 fp.onnet_names.end());
  std::sort(names.begin(), names.end());
  std::string key;
  for (const std::string& name : names) {
    key += name;
    key += kItemSep;
  }
  return key;
}

std::string DeltaCache::encode_env(
    std::span<const std::unordered_set<net::Asn>> hg_asns) {
  std::string key;
  for (const std::unordered_set<net::Asn>& asns : hg_asns) {
    std::vector<net::Asn> sorted(asns.begin(), asns.end());
    std::sort(sorted.begin(), sorted.end());
    for (net::Asn asn : sorted) {
      append_num(key, static_cast<std::int64_t>(asn));
    }
    key += kFieldSep;
  }
  return key;
}

std::string DeltaCache::encode_origins(std::span<const net::Asn> origins) {
  std::vector<net::Asn> sorted(origins.begin(), origins.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key;
  for (net::Asn asn : sorted) {
    append_num(key, static_cast<std::int64_t>(asn));
  }
  return key;
}

std::string DeltaCache::encode_config(std::span<const HgInput> hypergiants) {
  std::string key = "v1";
  key += kFieldSep;
  for (const HgInput& hg : hypergiants) {
    key += hg.keyword;
    key += kItemSep;
  }
  return key;
}

void DeltaCache::begin_run(std::string config) {
  if (config != config_) {
    pending_invalidated_ += total_rows();
    clear_all();
    config_ = std::move(config);
  }
}

const DeltaCache::CertEntry* DeltaCache::find_cert(const std::string& key,
                                                   std::uint32_t* id) const {
  auto it = certs_.index.find(key);
  if (it == certs_.index.end()) return nullptr;
  *id = it->second;
  return &certs_.rows.at(it->second).entry;
}

std::optional<std::uint32_t> DeltaCache::find_fp(
    const std::string& key) const {
  auto it = fps_.index.find(key);
  if (it == fps_.index.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> DeltaCache::find_env(
    const std::string& key) const {
  auto it = envs_.index.find(key);
  if (it == envs_.index.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> DeltaCache::find_origins(
    const std::string& key) const {
  auto it = origins_.index.find(key);
  if (it == origins_.index.end()) return std::nullopt;
  return it->second;
}

std::optional<bool> DeltaCache::find_covers(std::uint32_t fp_id,
                                            std::uint32_t cert_id) const {
  auto it = covers_.find({fp_id, cert_id});
  if (it == covers_.end()) return std::nullopt;
  return it->second.covers;
}

std::optional<std::uint64_t> DeltaCache::find_onnet(
    std::uint32_t env_id, std::uint32_t origins_id) const {
  auto it = onnet_.find({env_id, origins_id});
  if (it == onnet_.end()) return std::nullopt;
  return it->second.mask;
}

template <typename Row>
std::uint32_t DeltaCache::upsert(Section<Row>& section,
                                 const std::string& key, Row row) {
  auto it = section.index.find(key);
  if (it != section.index.end()) {
    section.rows.at(it->second).last_used = commit_count_;
    return it->second;
  }
  const std::uint32_t id = section.next_id++;
  row.key = key;
  row.last_used = commit_count_;
  section.rows.emplace(id, std::move(row));
  section.index.emplace(key, id);
  return id;
}

std::uint64_t DeltaCache::commit(const RunDelta& delta) {
  ++commit_count_;
  std::uint64_t invalidated = pending_invalidated_;
  pending_invalidated_ = 0;

  // An empty env key means "no observation" (a run that produced no
  // on-net probes), not an environment whose canonical encoding is
  // empty — encode_env output is never empty for a nonzero HG set.
  std::uint32_t env_id = 0;
  if (!delta.env.empty()) env_id = upsert(envs_, delta.env, CtxRow{});
  std::vector<std::uint32_t> fp_ids;
  fp_ids.reserve(delta.fps.size());
  for (const std::string& key : delta.fps) {
    fp_ids.push_back(upsert(fps_, key, CtxRow{}));
  }
  std::vector<std::uint32_t> cert_ids;
  cert_ids.reserve(delta.certs.size());
  for (const RunDelta::CertObs& obs : delta.certs) {
    cert_ids.push_back(
        upsert(certs_, obs.key, CertRow{std::string(), obs.entry, 0}));
  }
  for (const RunDelta::CoversObs& obs : delta.covers) {
    const std::pair<std::uint32_t, std::uint32_t> key{fp_ids[obs.hg],
                                                      cert_ids[obs.cert]};
    covers_.try_emplace(key, CoversRow{obs.covers, 0})
        .first->second.last_used = commit_count_;
  }
  for (const RunDelta::OnnetObs& obs : delta.onnet) {
    const std::uint32_t origins_id =
        upsert(origins_, obs.origins_key, CtxRow{});
    const std::pair<std::uint32_t, std::uint32_t> key{env_id, origins_id};
    onnet_.try_emplace(key, OnnetRow{obs.mask, 0})
        .first->second.last_used = commit_count_;
  }

  // Idle sweep: rows unused for max_idle_ commits are invalidated.
  auto sweep_section = [&](auto& section) {
    for (auto it = section.rows.begin(); it != section.rows.end();) {
      if (commit_count_ - it->second.last_used >= max_idle_) {
        section.index.erase(it->second.key);
        it = section.rows.erase(it);
        ++invalidated;
      } else {
        ++it;
      }
    }
  };
  auto sweep_pairs = [&](auto& rows) {
    for (auto it = rows.begin(); it != rows.end();) {
      if (commit_count_ - it->second.last_used >= max_idle_) {
        it = rows.erase(it);
        ++invalidated;
      } else {
        ++it;
      }
    }
  };
  sweep_section(certs_);
  sweep_section(fps_);
  sweep_section(envs_);
  sweep_section(origins_);
  sweep_pairs(covers_);
  sweep_pairs(onnet_);
  return invalidated;
}

std::size_t DeltaCache::total_rows() const {
  return certs_.rows.size() + fps_.rows.size() + envs_.rows.size() +
         origins_.rows.size() + covers_.size() + onnet_.size();
}

void DeltaCache::clear_all() {
  certs_ = {};
  fps_ = {};
  envs_ = {};
  origins_ = {};
  covers_.clear();
  onnet_.clear();
}

DeltaCacheSnapshot DeltaCache::snapshot() const {
  DeltaCacheSnapshot image;
  image.present = true;
  image.config = config_;
  image.commit_count = commit_count_;
  image.max_idle = max_idle_;
  image.next_cert_id = certs_.next_id;
  image.next_fp_id = fps_.next_id;
  image.next_env_id = envs_.next_id;
  image.next_origins_id = origins_.next_id;
  for (const auto& [id, row] : certs_.rows) {
    DeltaCacheSnapshot::CertRowImage out;
    out.id = id;
    out.key = row.key;
    out.kind = static_cast<std::uint8_t>(row.entry.kind);
    out.ee_nb = row.entry.ee_nb;
    out.ee_na = row.entry.ee_na;
    out.links = row.entry.links;
    out.org_mask = row.entry.org_mask;
    out.all_cloudflare = row.entry.all_cloudflare;
    out.last_used = row.last_used;
    image.certs.push_back(std::move(out));
  }
  auto dump_ctx = [](const Section<CtxRow>& section,
                     std::vector<DeltaCacheSnapshot::CtxRowImage>& out) {
    for (const auto& [id, row] : section.rows) {
      out.push_back({id, row.key, row.last_used});
    }
  };
  dump_ctx(fps_, image.fps);
  dump_ctx(envs_, image.envs);
  dump_ctx(origins_, image.origins);
  for (const auto& [key, row] : covers_) {
    image.covers.push_back(
        {key.first, key.second, row.covers ? 1u : 0u, row.last_used});
  }
  for (const auto& [key, row] : onnet_) {
    image.onnet.push_back({key.first, key.second, row.mask, row.last_used});
  }
  return image;
}

void DeltaCache::restore(const DeltaCacheSnapshot& image) {
  clear_all();
  config_ = image.config;
  commit_count_ = image.commit_count;
  max_idle_ = image.max_idle == 0 ? 1 : image.max_idle;
  pending_invalidated_ = 0;
  certs_.next_id = image.next_cert_id;
  fps_.next_id = image.next_fp_id;
  envs_.next_id = image.next_env_id;
  origins_.next_id = image.next_origins_id;
  for (const DeltaCacheSnapshot::CertRowImage& in : image.certs) {
    CertRow row;
    row.key = in.key;
    row.entry.kind = static_cast<CertKind>(in.kind);
    row.entry.ee_nb = in.ee_nb;
    row.entry.ee_na = in.ee_na;
    row.entry.links = in.links;
    row.entry.org_mask = in.org_mask;
    row.entry.all_cloudflare = in.all_cloudflare;
    row.last_used = in.last_used;
    certs_.index.emplace(row.key, in.id);
    certs_.rows.emplace(in.id, std::move(row));
  }
  auto load_ctx = [](Section<CtxRow>& section,
                     const std::vector<DeltaCacheSnapshot::CtxRowImage>& in) {
    for (const DeltaCacheSnapshot::CtxRowImage& row : in) {
      section.index.emplace(row.key, row.id);
      section.rows.emplace(row.id, CtxRow{row.key, row.last_used});
    }
  };
  load_ctx(fps_, image.fps);
  load_ctx(envs_, image.envs);
  load_ctx(origins_, image.origins);
  for (const DeltaCacheSnapshot::PairRowImage& row : image.covers) {
    covers_.emplace(std::make_pair(row.a, row.b),
                    CoversRow{row.value != 0, row.last_used});
  }
  for (const DeltaCacheSnapshot::PairRowImage& row : image.onnet) {
    onnet_.emplace(std::make_pair(row.a, row.b),
                   OnnetRow{row.value, row.last_used});
  }
}

}  // namespace offnet::core
