#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/tls_fingerprint.h"
#include "net/asn.h"
#include "net/date.h"
#include "tls/certificate.h"
#include "tls/validator.h"

namespace offnet::core {

/// FNV-1a 64-bit over `text`. This is the checkpoint checksum primitive
/// (core::Checkpoint guards its payload with it); the delta cache reuses
/// it as the hash function of its key-lookup tables.
std::uint64_t fnv1a_64(std::string_view text);

/// Hasher for the canonical-key lookup tables below. The hash is only a
/// bucket selector: table keys are the full canonical encodings compared
/// with operator==, never the raw 64-bit hash. A map keyed on a raw hash
/// silently returns a wrong cached verdict on a collision — the same
/// rule hg::FleetBuilder's certificate cache follows.
struct Fnv1aKeyHash {
  std::size_t operator()(const std::string& key) const {
    return static_cast<std::size_t>(fnv1a_64(key));
  }
};

/// Plain-data image of a DeltaCache, embedded in the supervised-run
/// checkpoint (core::RunState). Persisting the cache — not rebuilding it
/// cold — keeps the delta/* counters of a crashed-and-resumed series
/// byte-identical to an uninterrupted one.
struct DeltaCacheSnapshot {
  bool present = false;
  std::string config;
  std::uint64_t commit_count = 0;
  std::uint64_t max_idle = 0;
  std::uint32_t next_cert_id = 0;
  std::uint32_t next_fp_id = 0;
  std::uint32_t next_env_id = 0;
  std::uint32_t next_origins_id = 0;

  struct CertRowImage {
    std::uint32_t id = 0;
    std::string key;
    std::uint8_t kind = 0;
    std::int64_t ee_nb = 0;
    std::int64_t ee_na = 0;
    std::vector<std::pair<std::int64_t, std::int64_t>> links;
    std::uint64_t org_mask = 0;
    bool all_cloudflare = false;
    std::uint64_t last_used = 0;
  };
  struct CtxRowImage {
    std::uint32_t id = 0;
    std::string key;
    std::uint64_t last_used = 0;
  };
  struct PairRowImage {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint64_t value = 0;  // covers: 0/1; onnet: the per-HG bit mask
    std::uint64_t last_used = 0;
  };

  std::vector<CertRowImage> certs;    // ascending id
  std::vector<CtxRowImage> fps;       // ascending id
  std::vector<CtxRowImage> envs;      // ascending id
  std::vector<CtxRowImage> origins;   // ascending id
  std::vector<PairRowImage> covers;   // ascending (fp id, cert id)
  std::vector<PairRowImage> onnet;    // ascending (env id, origins id)
};

/// Cross-snapshot verdict cache for incremental longitudinal runs
/// (DESIGN.md §12). Most certificates, origin-AS sets, and fingerprints
/// recur unchanged from one quarterly snapshot to the next; the cache
/// keys each derived verdict by a canonical content encoding so
/// OffnetPipeline::run skips recomputing them.
///
/// Cached verdicts, each a pure function of its key:
///  - per-certificate: a date-independent validation digest (CertEntry),
///    the §4.2 Organization keyword mask, and the §7 universal-SSL fact;
///  - per-(fingerprint, certificate): the §4.3 containment verdict;
///  - per-(environment, origin-set): the per-HG on-net membership mask.
///
/// Determinism protocol (frozen probes): begin_run() is called serially
/// at the start of a pipeline run; the sharded passes then issue
/// const-only probes against that frozen state and tally hits/misses per
/// shard; commit() applies all observations serially at the end of the
/// run. Probe verdicts therefore never depend on thread count or record
/// interleaving, and since the pipeline merges observations in global
/// record order, even the intern-id layout is identical at any thread
/// count. A DeltaCache must not be shared by concurrently running
/// pipelines (LongitudinalRunner's wave fan-out disables it).
///
/// Eviction: every row carries the commit index it was last probed or
/// inserted at; commit() sweeps rows idle for `max_idle` commits and
/// reports them as invalidations. Ids are monotone and never reused, so
/// a composite row whose referenced id was evicted is unreachable (its
/// key re-interns under a fresh id) and idles out on its own.
class DeltaCache {
 public:
  static constexpr std::uint64_t kDefaultMaxIdle = 8;

  /// How a certificate's chain resolves, independent of scan date.
  enum class CertKind : std::uint8_t {
    kMalformed = 0,     // missing critical information (§4.6)
    kSelfSignedEe = 1,  // self-signed end-entity certificate
    kNoAnchor = 2,      // chain exhausted without a trusted anchor
    kChain = 3,         // reaches an anchor; links carry windows
  };

  /// Date-independent digest of one certificate's validation-relevant
  /// facts: status_at(at) reproduces tls::CertValidator::validate for
  /// every scan date, so one cached entry serves all 31 snapshots.
  struct CertEntry {
    CertKind kind = CertKind::kMalformed;
    std::int64_t ee_nb = 0;  // end-entity NotBefore, in days
    std::int64_t ee_na = 0;  // end-entity NotAfter, in days
    /// kChain only: validity windows of each issuer link up to and
    /// including the first trusted anchor, in walk order.
    std::vector<std::pair<std::int64_t, std::int64_t>> links;
    std::uint64_t org_mask = 0;   // §4.2 Organization keyword matches
    bool all_cloudflare = false;  // §7 universal-SSL dNSName shape

    tls::CertStatus status_at(net::DayTime at) const;
  };

  explicit DeltaCache(std::uint64_t max_idle = kDefaultMaxIdle);

  // ---- Canonical key builders (pure functions of content). ----

  /// Canonical content key for `ee`, plus the date-structure part of its
  /// entry (kind, windows). org_mask and all_cloudflare are left for the
  /// caller to fill on a miss: they need the HG keyword configuration /
  /// name scans the cache exists to skip.
  static std::string encode_cert(const tls::CertificateStore& certs,
                                 const tls::RootStore& roots, tls::CertId ee,
                                 CertEntry* entry);

  /// Canonical key of a learned TLS fingerprint: its on-net dNSName set.
  static std::string encode_fp(const TlsFingerprint& fp);

  /// Canonical key of the on-net AS environment: every HG's AS numbers,
  /// in HG order.
  static std::string encode_env(
      std::span<const std::unordered_set<net::Asn>> hg_asns);

  /// Canonical key of one scan record's origin-AS set (sorted, unique).
  static std::string encode_origins(std::span<const net::Asn> origins);

  /// Configuration fingerprint: the HG keyword list, in order (org_mask
  /// bit positions depend on it). begin_run clears the cache when it
  /// changes.
  static std::string encode_config(std::span<const HgInput> hypergiants);

  // ---- Run lifecycle. ----

  /// Serial, before the sharded passes. Clears the cache when the
  /// configuration fingerprint changed; cleared rows count toward the
  /// next commit's invalidation tally.
  void begin_run(std::string config);

  // ---- Frozen probes: const, safe to call concurrently from sharded
  // pipeline passes between begin_run() and commit(). ----

  /// Returns the cached entry and its intern id, or nullptr on miss.
  const CertEntry* find_cert(const std::string& key,
                             std::uint32_t* id) const;
  std::optional<std::uint32_t> find_fp(const std::string& key) const;
  std::optional<std::uint32_t> find_env(const std::string& key) const;
  std::optional<std::uint32_t> find_origins(const std::string& key) const;
  std::optional<bool> find_covers(std::uint32_t fp_id,
                                  std::uint32_t cert_id) const;
  std::optional<std::uint64_t> find_onnet(std::uint32_t env_id,
                                          std::uint32_t origins_id) const;

  /// Everything one pipeline run observed, in deterministic order. Every
  /// observation is an upsert: a key already interned is touched, a new
  /// one is interned under the next id.
  struct RunDelta {
    struct CertObs {
      std::string key;
      CertEntry entry;
    };
    struct OnnetObs {
      std::string origins_key;
      std::uint64_t mask = 0;
    };
    struct CoversObs {
      std::size_t hg = 0;    // index into fps
      std::size_t cert = 0;  // index into certs
      bool covers = false;
    };
    std::vector<CertObs> certs;   // ascending pipeline certificate id
    std::vector<std::string> fps; // by hypergiant index
    std::string env;
    std::vector<OnnetObs> onnet;  // global record order; duplicates fine
    std::vector<CoversObs> covers;
  };

  /// Serial, once per pipeline run (the run's last act, so a failed and
  /// retried snapshot never half-commits). Applies the observations,
  /// then sweeps idle rows. Returns the invalidation count: swept rows
  /// plus any rows cleared by a begin_run configuration change.
  std::uint64_t commit(const RunDelta& delta);

  // ---- Persistence (supervised checkpoint / resume). ----
  DeltaCacheSnapshot snapshot() const;
  void restore(const DeltaCacheSnapshot& image);

  // ---- Introspection. ----
  std::uint64_t commit_count() const { return commit_count_; }
  std::size_t cert_rows() const { return certs_.rows.size(); }
  std::size_t total_rows() const;

 private:
  struct CertRow {
    std::string key;
    CertEntry entry;
    std::uint64_t last_used = 0;
  };
  struct CtxRow {
    std::string key;
    std::uint64_t last_used = 0;
  };
  struct CoversRow {
    bool covers = false;
    std::uint64_t last_used = 0;
  };
  struct OnnetRow {
    std::uint64_t mask = 0;
    std::uint64_t last_used = 0;
  };

  using KeyIndex =
      std::unordered_map<std::string, std::uint32_t, Fnv1aKeyHash>;

  /// One interned section: rows ordered by id (canonical iteration for
  /// snapshot()), plus the canonical-key lookup table.
  template <typename Row>
  struct Section {
    std::map<std::uint32_t, Row> rows;
    KeyIndex index;
    std::uint32_t next_id = 0;
  };

  template <typename Row>
  std::uint32_t upsert(Section<Row>& section, const std::string& key,
                       Row row);
  void clear_all();

  Section<CertRow> certs_;
  Section<CtxRow> fps_;
  Section<CtxRow> envs_;
  Section<CtxRow> origins_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, CoversRow> covers_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, OnnetRow> onnet_;

  std::string config_;
  std::uint64_t commit_count_ = 0;
  std::uint64_t max_idle_ = kDefaultMaxIdle;
  std::uint64_t pending_invalidated_ = 0;
};

}  // namespace offnet::core
