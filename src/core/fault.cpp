#include "core/fault.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>

namespace offnet::core {

std::string errno_name(int error) {
  switch (error) {
    case ENOSPC:
      return "ENOSPC";
    case EIO:
      return "EIO";
    case EMFILE:
      return "EMFILE";
    case EINTR:
      return "EINTR";
    default:
      return "errno-" + std::to_string(error);
  }
}

int errno_from_name(std::string_view name) {
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EIO") return EIO;
  if (name == "EMFILE") return EMFILE;
  if (name == "EINTR") return EINTR;
  return 0;
}

FaultInjector& FaultInjector::fail_at(std::string_view stage,
                                      std::size_t occurrence, bool abort) {
  if (occurrence == 0) {
    throw std::invalid_argument("fault occurrences are 1-based");
  }
  MutexLock lock(mutex_);
  points_[std::string(stage)].push_back({occurrence, abort, 0});
  return *this;
}

FaultInjector& FaultInjector::fail_with_errno(std::string_view stage,
                                              std::size_t occurrence,
                                              int error) {
  if (occurrence == 0) {
    throw std::invalid_argument("fault occurrences are 1-based");
  }
  if (error <= 0) {
    throw std::invalid_argument("injected errno must be positive");
  }
  MutexLock lock(mutex_);
  points_[std::string(stage)].push_back({occurrence, false, error});
  return *this;
}

FaultInjector& FaultInjector::fail_randomly(std::string_view stage, double p,
                                            std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault probability must be in [0, 1]");
  }
  MutexLock lock(mutex_);
  // Non-zero xorshift state, derived from the seed alone.
  random_[std::string(stage)] = {p, seed * 2654435761u + 1u};
  return *this;
}

FaultInjector::Fired FaultInjector::evaluate(std::string_view stage) {
  MutexLock lock(mutex_);
  auto count_it = counts_.find(stage);
  if (count_it == counts_.end()) {
    count_it = counts_.emplace(std::string(stage), 0).first;
  }
  Fired fired;
  fired.crossing = ++count_it->second;

  if (auto it = points_.find(stage); it != points_.end()) {
    for (const Point& point : it->second) {
      if (point.occurrence == fired.crossing) {
        fired.fire = true;
        fired.abort = fired.abort || point.abort;
        if (point.error != 0) fired.error = point.error;
      }
    }
  }
  if (auto it = random_.find(stage); it != random_.end()) {
    RandomPlan& plan = it->second;
    // xorshift64: deterministic per (seed, crossing index).
    plan.state ^= plan.state << 13;
    plan.state ^= plan.state >> 7;
    plan.state ^= plan.state << 17;
    const double draw =
        static_cast<double>(plan.state >> 11) / 9007199254740992.0;
    if (draw < plan.probability) fired.fire = true;
  }
  return fired;
}

void FaultInjector::on(std::string_view stage) {
  const Fired fired = evaluate(stage);
  if (!fired.fire) return;
  if (fired.abort) std::_Exit(kAbortExitCode);
  if (fired.error != 0) {
    // A control-flow boundary has no errno to return; resource
    // exhaustion degrades to a recoverable injected failure that names
    // the class it simulated.
    throw InjectedFault("injected " + errno_name(fired.error) +
                        " at stage '" + std::string(stage) + "' (crossing " +
                        std::to_string(fired.crossing) + ")");
  }
  throw InjectedFault("injected fault at stage '" + std::string(stage) +
                      "' (crossing " + std::to_string(fired.crossing) + ")");
}

SysResult FaultInjector::on_sys(std::string_view stage) {
  const Fired fired = evaluate(stage);
  if (!fired.fire) return SysResult::success();
  if (fired.abort) std::_Exit(kAbortExitCode);
  if (fired.error != 0) return SysResult::failure(fired.error);
  throw InjectedFault("injected fault at stage '" + std::string(stage) +
                      "' (crossing " + std::to_string(fired.crossing) + ")");
}

std::size_t FaultInjector::occurrences(std::string_view stage) const {
  MutexLock lock(mutex_);
  auto it = counts_.find(stage);
  return it == counts_.end() ? 0 : it->second;
}

std::map<std::string, std::size_t> FaultInjector::occurrence_counts() const {
  MutexLock lock(mutex_);
  return {counts_.begin(), counts_.end()};
}

void arm_fault_spec(FaultInjector& faults, std::string_view spec) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string_view::npos ? first : spec.find(':', first + 1);
  if (second == std::string_view::npos) {
    throw std::invalid_argument("fault spec '" + std::string(spec) +
                                "' is not STAGE:OCCURRENCE:MODE");
  }
  const std::string_view stage = spec.substr(0, first);
  const std::string occurrence_text(
      spec.substr(first + 1, second - first - 1));
  const std::string_view mode = spec.substr(second + 1);
  char* end = nullptr;
  const unsigned long long occurrence =
      std::strtoull(occurrence_text.c_str(), &end, 10);
  if (stage.empty() || end == occurrence_text.c_str() || *end != '\0' ||
      occurrence == 0) {
    throw std::invalid_argument("fault spec '" + std::string(spec) +
                                "' needs a 1-based occurrence");
  }
  if (mode == "throw") {
    faults.fail_at(stage, occurrence);
  } else if (mode == "abort") {
    faults.fail_at(stage, occurrence, /*abort=*/true);
  } else if (const int error = errno_from_name(mode); error != 0) {
    faults.fail_with_errno(stage, occurrence, error);
  } else {
    throw std::invalid_argument(
        "fault spec '" + std::string(spec) +
        "' mode must be throw, abort, ENOSPC, EIO, EMFILE, or EINTR");
  }
}

namespace {
std::atomic<FaultInjector*> g_sys_faults{nullptr};
}  // namespace

void install_sys_fault_injector(FaultInjector* injector) {
  g_sys_faults.store(injector, std::memory_order_release);
}

FaultInjector* sys_fault_injector() {
  return g_sys_faults.load(std::memory_order_acquire);
}

SysResult sys_fault(const char* stage) {
  FaultInjector* faults = g_sys_faults.load(std::memory_order_acquire);
  if (faults == nullptr) return SysResult::success();
  return faults->on_sys(stage);
}

}  // namespace offnet::core
