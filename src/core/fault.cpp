#include "core/fault.h"

#include <cstdlib>

namespace offnet::core {

FaultInjector& FaultInjector::fail_at(std::string_view stage,
                                      std::size_t occurrence, bool abort) {
  if (occurrence == 0) {
    throw std::invalid_argument("fault occurrences are 1-based");
  }
  points_[std::string(stage)].push_back({occurrence, abort});
  return *this;
}

FaultInjector& FaultInjector::fail_randomly(std::string_view stage, double p,
                                            std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault probability must be in [0, 1]");
  }
  // Non-zero xorshift state, derived from the seed alone.
  random_[std::string(stage)] = {p, seed * 2654435761u + 1u};
  return *this;
}

void FaultInjector::on(std::string_view stage) {
  auto count_it = counts_.find(stage);
  if (count_it == counts_.end()) {
    count_it = counts_.emplace(std::string(stage), 0).first;
  }
  const std::size_t crossing = ++count_it->second;

  bool fire = false;
  bool abort = false;
  if (auto it = points_.find(stage); it != points_.end()) {
    for (const Point& point : it->second) {
      if (point.occurrence == crossing) {
        fire = true;
        abort = abort || point.abort;
      }
    }
  }
  if (auto it = random_.find(stage); it != random_.end()) {
    RandomPlan& plan = it->second;
    // xorshift64: deterministic per (seed, crossing index).
    plan.state ^= plan.state << 13;
    plan.state ^= plan.state >> 7;
    plan.state ^= plan.state << 17;
    const double draw =
        static_cast<double>(plan.state >> 11) / 9007199254740992.0;
    if (draw < plan.probability) fire = true;
  }
  if (!fire) return;
  if (abort) std::_Exit(kAbortExitCode);
  throw InjectedFault("injected fault at stage '" + std::string(stage) +
                      "' (crossing " + std::to_string(crossing) + ")");
}

std::size_t FaultInjector::occurrences(std::string_view stage) const {
  auto it = counts_.find(stage);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace offnet::core
