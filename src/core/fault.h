#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/mutex.h"

/// Deterministic fault injection — the control-flow counterpart of
/// io::CorruptionInjector's data faults. A FaultInjector carries an
/// explicit plan of (stage, occurrence) points; instrumented code calls
/// on() or on_sys() at each named stage boundary, and the plan decides
/// whether that particular crossing throws an InjectedFault (recoverable
/// — drives the retry/quarantine paths), hard-kills the process (abort —
/// the crash half of the crash/resume tests), or reports an injected
/// errno (on_sys only — the resource-exhaustion half: full disk, fd
/// exhaustion, interrupted syscalls). The same plan against the same run
/// faults at exactly the same points, independent of thread count, so
/// recovery tests are reproducible, and offnet_chaos can sweep the whole
/// (stage × occurrence × mode) space cell by cell.
namespace offnet::core {

/// The stage boundaries instrumented code exposes. Every constant here
/// must appear in offnet_chaos's sweep table (the fault-stage-unswept
/// analyze rule and a static_assert in the tool both enforce it).
namespace fault_stage {
inline constexpr const char* kFeed = "feed";
inline constexpr const char* kPipeline = "pipeline";
inline constexpr const char* kCheckpointWrite = "checkpoint-write";
inline constexpr const char* kArtifactRename = "artifact-rename";
/// offnetd's reload path (svc::Server::do_reload), crossed before the
/// candidate snapshot is published: a throwing fault here must leave the
/// previous version serving.
inline constexpr const char* kSvcReload = "svc-reload";
/// io::AtomicFile::commit, before the flushed stream is checked: an
/// injected errno here is a write that hit a full disk.
inline constexpr const char* kAtomicWrite = "atomic-write";
/// io::AtomicFile::commit, before the data fsync: a lost write that only
/// surfaces when durability is demanded.
inline constexpr const char* kAtomicFsync = "atomic-fsync";
/// io::stream::LineReader::fill, before each chunk read from the stream.
inline constexpr const char* kStreamRead = "stream-read";
/// svc::Listener::accept_with_timeout, after poll says readable and
/// before ::accept — EMFILE lives here.
inline constexpr const char* kSvcAccept = "svc-accept";
/// svc::Stream::read_line, after poll and before each ::recv.
inline constexpr const char* kSvcRead = "svc-read";
/// svc::Stream::write_all, after poll and before each ::send.
inline constexpr const char* kSvcWrite = "svc-write";

/// Every registered stage, in sweep order; offnet_chaos enumerates this
/// and its --fault-counts dump reports exactly these names.
inline constexpr const char* kAllStages[] = {
    kFeed,        kPipeline,   kCheckpointWrite, kArtifactRename,
    kSvcReload,   kAtomicWrite, kAtomicFsync,    kStreamRead,
    kSvcAccept,   kSvcRead,    kSvcWrite};
}  // namespace fault_stage

/// The exception a throwing fault point raises. Deliberately a plain
/// runtime_error subclass: the supervisor treats it like any other
/// snapshot failure.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a syscall-level fault seam: success, or the errno the plan
/// injected. Instrumented code converts a failure into the exact error
/// path a real syscall failure would take (IoError, dropped connection,
/// EINTR retry), so the sweep exercises production error handling, not
/// injection-only shortcuts.
struct SysResult {
  int error = 0;  // 0 = ok, else an errno value (ENOSPC, EIO, ...)
  bool ok() const { return error == 0; }
  static SysResult success() { return {}; }
  static SysResult failure(int err) { return {err}; }
};

/// Spells the errno classes the plan understands ("ENOSPC", "EIO",
/// "EMFILE", "EINTR"); anything else renders as "errno-N" so injected
/// error messages stay deterministic across libc flavors.
std::string errno_name(int error);

/// Inverse of errno_name for the sanctioned classes; 0 when unknown.
int errno_from_name(std::string_view name);

class FaultInjector {
 public:
  /// The exit status an abort-mode fault kills the process with
  /// (std::_Exit: no cleanup, no atexit, no flushing — as close to
  /// `kill -9` as the process can do to itself).
  static constexpr int kAbortExitCode = 70;

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms the `occurrence`-th crossing (1-based) of `stage`: it throws
  /// InjectedFault, or with abort=true exits the process. Multiple
  /// points per stage are allowed (e.g. occurrences 2, 3, 4 to exhaust
  /// a retry budget).
  FaultInjector& fail_at(std::string_view stage, std::size_t occurrence,
                         bool abort = false);

  /// Arms the `occurrence`-th crossing of `stage` with an injected
  /// errno. At an on_sys() seam the crossing reports the errno exactly
  /// as the underlying syscall would; at a control-flow on() boundary it
  /// degrades to an InjectedFault naming the errno (resource exhaustion
  /// surfacing as a recoverable snapshot failure).
  FaultInjector& fail_with_errno(std::string_view stage,
                                 std::size_t occurrence, int error);

  /// Seeded probabilistic plan: every crossing of `stage` faults with
  /// probability `p`, drawn from a private xorshift stream — the same
  /// seed always faults the same crossings.
  FaultInjector& fail_randomly(std::string_view stage, double p,
                               std::uint64_t seed);

  /// Called by instrumented code at a control-flow stage boundary.
  /// Counts the crossing, then faults if the plan says so (errno points
  /// throw InjectedFault naming the errno).
  void on(std::string_view stage);

  /// Called by instrumented code at a syscall seam. Counts the crossing;
  /// an armed errno point returns it as a failure for the caller to
  /// handle like the real syscall error, throw/abort points behave as in
  /// on(). Unarmed crossings return success.
  SysResult on_sys(std::string_view stage);

  /// How often `stage` has been crossed so far.
  std::size_t occurrences(std::string_view stage) const;

  /// All crossing counts seen so far, for the --fault-counts dry-run
  /// dump offnet_chaos uses to discover each stage's occurrence space.
  std::map<std::string, std::size_t> occurrence_counts() const;

 private:
  struct Point {
    std::size_t occurrence = 0;
    bool abort = false;
    int error = 0;  // nonzero selects errno mode
  };
  struct RandomPlan {
    double probability = 0.0;
    std::uint64_t state = 0;
  };
  struct Fired {
    bool fire = false;
    bool abort = false;
    int error = 0;
    std::size_t crossing = 0;
  };

  /// Counts the crossing and evaluates the plan under the lock; the
  /// caller raises/returns outside it (never throw while holding it).
  Fired evaluate(std::string_view stage);

  /// Seams are crossed from the accept thread, svc workers, and pipeline
  /// threads at once; the plan itself must not be the race.
  mutable Mutex mutex_;
  std::map<std::string, std::vector<Point>, std::less<>> points_
      OFFNET_GUARDED_BY(mutex_);
  std::map<std::string, RandomPlan, std::less<>> random_
      OFFNET_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t, std::less<>> counts_
      OFFNET_GUARDED_BY(mutex_);
};

/// Parses "STAGE:OCCURRENCE:MODE" (MODE ∈ throw | abort | ENOSPC | EIO |
/// EMFILE | EINTR) and arms that point — the spec grammar behind the
/// --fail-at flag on offnet_cli and offnetd, and the cell encoding
/// offnet_chaos emits. Throws std::invalid_argument on a malformed spec.
void arm_fault_spec(FaultInjector& faults, std::string_view spec);

/// The process-wide syscall-fault seam. Production code never installs
/// an injector — sys_fault() then reports success without counting; the
/// --fail-at/--fault-counts flags and tests install one so the io/svc
/// seams consult the same plan the supervisor was handed, without
/// threading an injector through every layer ("no global interposition"
/// means no LD_PRELOAD tricks; this is an explicit, in-process seam).
/// Not thread-safe against concurrent install; install before the
/// workload starts and uninstall after it drains.
void install_sys_fault_injector(FaultInjector* injector);
FaultInjector* sys_fault_injector();

/// What the instrumented layers call: crosses `stage` on the installed
/// injector, or reports success when none is installed.
SysResult sys_fault(const char* stage);

/// RAII install/uninstall for tests.
class ScopedSysFaultInjector {
 public:
  explicit ScopedSysFaultInjector(FaultInjector& faults) {
    install_sys_fault_injector(&faults);
  }
  ~ScopedSysFaultInjector() { install_sys_fault_injector(nullptr); }
  ScopedSysFaultInjector(const ScopedSysFaultInjector&) = delete;
  ScopedSysFaultInjector& operator=(const ScopedSysFaultInjector&) = delete;
};

}  // namespace offnet::core
