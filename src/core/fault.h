#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Deterministic control-flow fault injection for the supervised
/// longitudinal runner — the control-flow counterpart of
/// io::CorruptionInjector's data faults. A FaultInjector carries an
/// explicit plan of (stage, occurrence) points; the runner calls on()
/// at each named stage boundary, and the plan decides whether that
/// particular crossing throws an InjectedFault (recoverable — drives
/// the retry/quarantine paths) or hard-kills the process (abort — the
/// crash half of the crash/resume tests). The same plan against the
/// same run faults at exactly the same points, independent of thread
/// count, so recovery tests are reproducible.
namespace offnet::core {

/// The stage boundaries run_supervised and Checkpoint::save expose.
namespace fault_stage {
inline constexpr const char* kFeed = "feed";
inline constexpr const char* kPipeline = "pipeline";
inline constexpr const char* kCheckpointWrite = "checkpoint-write";
inline constexpr const char* kArtifactRename = "artifact-rename";
/// offnetd's reload path (svc::Server::do_reload), crossed before the
/// candidate snapshot is published: a throwing fault here must leave the
/// previous version serving.
inline constexpr const char* kSvcReload = "svc-reload";
}  // namespace fault_stage

/// The exception a throwing fault point raises. Deliberately a plain
/// runtime_error subclass: the supervisor treats it like any other
/// snapshot failure.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// The exit status an abort-mode fault kills the process with
  /// (std::_Exit: no cleanup, no atexit, no flushing — as close to
  /// `kill -9` as the process can do to itself).
  static constexpr int kAbortExitCode = 70;

  FaultInjector() = default;

  /// Arms the `occurrence`-th crossing (1-based) of `stage`: it throws
  /// InjectedFault, or with abort=true exits the process. Multiple
  /// points per stage are allowed (e.g. occurrences 2, 3, 4 to exhaust
  /// a retry budget).
  FaultInjector& fail_at(std::string_view stage, std::size_t occurrence,
                         bool abort = false);

  /// Seeded probabilistic plan: every crossing of `stage` faults with
  /// probability `p`, drawn from a private xorshift stream — the same
  /// seed always faults the same crossings.
  FaultInjector& fail_randomly(std::string_view stage, double p,
                               std::uint64_t seed);

  /// Called by instrumented code at a stage boundary. Counts the
  /// crossing, then faults if the plan says so.
  void on(std::string_view stage);

  /// How often `stage` has been crossed so far.
  std::size_t occurrences(std::string_view stage) const;

 private:
  struct Point {
    std::size_t occurrence = 0;
    bool abort = false;
  };
  struct RandomPlan {
    double probability = 0.0;
    std::uint64_t state = 0;
  };

  std::map<std::string, std::vector<Point>, std::less<>> points_;
  std::map<std::string, RandomPlan, std::less<>> random_;
  std::map<std::string, std::size_t, std::less<>> counts_;
};

}  // namespace offnet::core
