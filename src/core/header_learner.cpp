#include "core/header_learner.h"

#include <algorithm>

#include "core/known_headers.h"
#include "net/table.h"

namespace offnet::core {

HeaderFingerprintLearner::HeaderFingerprintLearner(std::string hypergiant,
                                                   std::string keyword)
    : hypergiant_(std::move(hypergiant)), keyword_(std::move(keyword)) {}

void HeaderFingerprintLearner::observe(const http::HeaderMap& headers) {
  ++samples_;
  auto bump = [](std::vector<Tally>& tallies, std::string_view name,
                 std::string_view value) {
    for (Tally& t : tallies) {
      if (http::header_name_equals(t.name, name) && t.value == value) {
        ++t.count;
        return;
      }
    }
    tallies.push_back(Tally{std::string(name), std::string(value), 1});
  };
  for (const http::Header& h : headers.all()) {
    bump(pair_tallies_, h.name, h.value);
    if (!http::is_standard_header(h.name)) {
      bump(name_tallies_, h.name, "");
    }
  }
}

std::vector<HeaderFingerprintLearner::Candidate>
HeaderFingerprintLearner::candidates(std::size_t top_n) const {
  auto top = [top_n](const std::vector<Tally>& tallies) {
    std::vector<Tally> sorted = tallies;
    std::sort(sorted.begin(), sorted.end(),
              [](const Tally& a, const Tally& b) { return a.count > b.count; });
    if (sorted.size() > top_n) sorted.resize(top_n);
    return sorted;
  };
  std::vector<Candidate> out;
  for (const Tally& t : top(pair_tallies_)) {
    out.push_back(Candidate{t.name, t.value, t.count});
  }
  for (const Tally& t : top(name_tallies_)) {
    out.push_back(Candidate{t.name, "", t.count});
  }
  return out;
}

bool HeaderFingerprintLearner::classify(const Candidate& candidate,
                                        http::HeaderFingerprint* out) const {
  // Automatic rule: the header name or value carries the HG keyword.
  if (!http::is_standard_header(candidate.name) &&
      (net::icontains(candidate.name, keyword_) ||
       net::icontains(candidate.value, keyword_))) {
    out->name = candidate.name;
    out->value = candidate.value;
    return true;
  }
  // Documentation oracle (the paper's manual verification, Table 4): the
  // observed header must conform to a documented pattern for this HG.
  for (const http::HeaderFingerprint& known :
       known_fingerprints(hypergiant_)) {
    http::HeaderMap probe;
    probe.add(candidate.name, candidate.value);
    if (known.matches(probe)) {
      *out = known;
      return true;
    }
  }
  return false;
}

http::HeaderFingerprintSet HeaderFingerprintLearner::learn(
    std::size_t top_n) const {
  http::HeaderFingerprintSet set;
  for (const Candidate& candidate : candidates(top_n)) {
    http::HeaderFingerprint fp;
    if (!classify(candidate, &fp)) continue;
    if (std::find(set.patterns.begin(), set.patterns.end(), fp) ==
        set.patterns.end()) {
      set.patterns.push_back(fp);
    }
  }
  return set;
}

}  // namespace offnet::core
