#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "http/fingerprint.h"
#include "http/headers.h"

namespace offnet::core {

/// Learns a Hypergiant's HTTP(S) header fingerprint from on-net responses
/// (§4.4): tallies the most frequent non-standard header name-value pairs
/// and header names, then classifies candidates as HG-identifying when
/// the name/value carries the HG keyword or when the pattern is publicly
/// documented (the Table 4 oracle standing in for the paper's manual
/// step).
class HeaderFingerprintLearner {
 public:
  HeaderFingerprintLearner(std::string hypergiant, std::string keyword);

  /// Feeds one on-net server response.
  void observe(const http::HeaderMap& headers);

  /// Number of responses observed.
  std::size_t sample_count() const { return samples_; }

  struct Candidate {
    std::string name;
    std::string value;  // empty for name-only candidates
    std::size_t count = 0;
  };

  /// The frequency candidates considered (top pairs + top names), for
  /// reporting.
  std::vector<Candidate> candidates(std::size_t top_n = 50) const;

  /// The classified fingerprint set.
  http::HeaderFingerprintSet learn(std::size_t top_n = 50) const;

 private:
  bool classify(const Candidate& candidate,
                http::HeaderFingerprint* out) const;

  std::string hypergiant_;
  std::string keyword_;
  std::size_t samples_ = 0;
  // name-value pair and name-only tallies (lower-cased keys, original
  // spellings preserved for output).
  struct Tally {
    std::string name;
    std::string value;
    std::size_t count = 0;
  };
  std::vector<Tally> pair_tallies_;
  std::vector<Tally> name_tallies_;
};

}  // namespace offnet::core
