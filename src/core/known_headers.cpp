#include "core/known_headers.h"

#include <array>

namespace offnet::core {

namespace {

// Appendix A.5, Table 4.
constexpr std::array<KnownHeaderEntry, 33> kTable = {{
    {"Akamai", "Server:AkamaiGHost", true},
    {"Akamai", "Server:AkamaiNetStorage", true},
    {"Alibaba", "Server:tengine*", true},
    {"Alibaba", "Eagleid:", true},
    {"Alibaba", "Server:AliyunOSS*", true},
    {"Amazon", "x-amz-id2:", true},
    {"Amazon", "x-amz-request-id:", true},
    {"Amazon", "Server:AmazonS3", true},
    {"Amazon", "Server:awselb*", true},
    {"Amazon", "X-Amz-Cf-Id:", true},
    {"Amazon", "X-Amz-Cf-Pop:", true},
    {"Amazon", "x-amzn-RequestId:", true},
    {"Apple", "CDNUUID:", false},
    {"Cdnetworks", "Server:PWS/*", true},
    {"Cloudflare", "Server:Cloudflare", true},
    {"Cloudflare", "cf-cache-status:", true},
    {"Cloudflare", "cf-ray:", true},
    {"Cloudflare", "cf-request-id:", true},
    {"Facebook", "Server:proxygen*", true},
    {"Facebook", "X-FB-Debug:", true},
    {"Facebook", "X-FB-TRIP-ID:", true},
    {"Fastly", "X-Served-By:cache-*", true},
    {"Google", "Server:gws*", true},
    {"Google", "Server:gvs*", true},
    {"Google", "X-Google-Security-Signals:", true},
    {"Hulu", "X-Hulu-Request-Id:", false},
    {"Hulu", "X-HULU-NGINX:", false},
    {"Incapsula", "X-CDN:Incapsula", false},
    {"Limelight", "Server:EdgePrism*", true},
    {"Limelight", "X-LLID:", true},
    {"Microsoft", "X-MSEdge-Ref:", true},
    {"Netflix", "X-Netflix.*:", false},
    {"Twitter", "Server:tsa_a", true},
}};

}  // namespace

std::span<const KnownHeaderEntry> known_header_table() { return kTable; }

std::vector<http::HeaderFingerprint> known_fingerprints(
    std::string_view hypergiant) {
  std::vector<http::HeaderFingerprint> out;
  for (const KnownHeaderEntry& entry : kTable) {
    if (entry.hypergiant == hypergiant) {
      out.push_back(http::HeaderFingerprint::parse(entry.pattern));
    }
  }
  return out;
}

bool nginx_default_rule_applies(std::string_view hypergiant) {
  return hypergiant == "Netflix";
}

bool is_default_nginx(const http::HeaderMap& headers) {
  const std::string* server = headers.find("Server");
  return server != nullptr && *server == "nginx";
}

}  // namespace offnet::core
