#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "http/fingerprint.h"

namespace offnet::core {

/// One row of the paper's Table 4: headers whose association with a
/// Hypergiant is publicly documented or disclosed. This table encodes the
/// outcome of the paper's *manual* classification step (§4.4) — the
/// fingerprint learner still has to surface each pattern from on-net scan
/// frequency statistics before it may be used.
struct KnownHeaderEntry {
  std::string_view hypergiant;
  std::string_view pattern;  // paper notation, e.g. "Server:AkamaiGHost"
  bool documented;
};

std::span<const KnownHeaderEntry> known_header_table();

/// Patterns documented for one Hypergiant (by name, case-sensitive).
std::vector<http::HeaderFingerprint> known_fingerprints(
    std::string_view hypergiant);

/// §4.4 special case: "we consider a server with a Netflix certificate
/// and the default nginx HTTP(S) header as a Netflix off-net."
bool nginx_default_rule_applies(std::string_view hypergiant);

/// True if `headers` is a bare default-nginx response.
bool is_default_nginx(const http::HeaderMap& headers);

}  // namespace offnet::core
