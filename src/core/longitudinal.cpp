#include "core/longitudinal.h"

namespace offnet::core {

LongitudinalRunner::LongitudinalRunner(const scan::World& world,
                                       scan::ScannerKind scanner,
                                       PipelineOptions options)
    : world_(world), scanner_(scanner), options_(std::move(options)) {}

std::vector<SnapshotResult> LongitudinalRunner::run(
    std::size_t first, std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  for (std::size_t t = first; t <= last; ++t) {
    if (!world_.scanner_available(t, scanner_)) continue;
    scan::ScanSnapshot snapshot = world_.scan(t, scanner_);

    PipelineOptions options = options_;
    options.netflix_prior_ips = &netflix_ips;
    OffnetPipeline pipeline(world_.topology(), world_.ip2as(), world_.certs(),
                            world_.roots(), standard_hg_inputs(), options);
    SnapshotResult result = pipeline.run(snapshot);

    // Remember every IP seen with a (valid) Netflix certificate: the raw
    // material for the HTTP-only recovery in later snapshots.
    if (const HgFootprint* netflix = result.find("Netflix")) {
      for (const auto& [ip, cert] : netflix->candidate_ip_certs) {
        netflix_ips.insert(ip.value());
      }
    }

    if (progress) progress(result);
    results.push_back(std::move(result));
  }
  return results;
}

SnapshotResult LongitudinalRunner::run_one(std::size_t snapshot) const {
  scan::ScanSnapshot snap = world_.scan(snapshot, scanner_);
  OffnetPipeline pipeline(world_.topology(), world_.ip2as(), world_.certs(),
                          world_.roots(), standard_hg_inputs(), options_);
  return pipeline.run(snap);
}

}  // namespace offnet::core
