#include "core/longitudinal.h"

#include <cassert>
#include <memory>
#include <optional>

#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace offnet::core {

namespace {

/// Remember every IP seen with a (valid) Netflix certificate: the raw
/// material for the HTTP-only recovery in later snapshots.
void absorb_netflix_ips(const SnapshotResult& result,
                        std::unordered_set<std::uint32_t>& netflix_ips) {
  if (const HgFootprint* netflix = result.find("Netflix")) {
    for (const auto& [ip, cert] : netflix->candidate_ip_certs) {
      netflix_ips.insert(ip.value());
    }
  }
}

/// Series-level accounting for one finished (or skipped) snapshot:
/// health tallies and the ingestion skip counts from the LoadReport.
/// The pipeline's own funnel counters accumulate separately inside
/// OffnetPipeline::run; everything here is deterministic, so the
/// exported JSON (minus timing) is identical at any thread count.
void record_series_metrics(const SnapshotResult& result,
                           obs::Registry* metrics) {
  if (metrics == nullptr) return;
  metrics->counter("series/snapshots").add(1);
  metrics->counter(std::string("series/health/") + to_string(result.health))
      .add(1);
  result.load_report.export_metrics(*metrics);
}

}  // namespace

LongitudinalRunner::LongitudinalRunner(const scan::World& world,
                                       scan::ScannerKind scanner,
                                       PipelineOptions options)
    : world_(&world), scanner_(scanner), options_(std::move(options)) {}

LongitudinalRunner::LongitudinalRunner(PipelineOptions options,
                                       scan::ScannerKind scanner)
    : scanner_(scanner), options_(std::move(options)) {}

std::vector<SnapshotResult> LongitudinalRunner::run(
    std::size_t first, std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  assert(world_ != nullptr && "run() needs the world constructor");
  const std::size_t threads = resolve_thread_count(options_.n_threads);
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  if (threads <= 1) {
    for (std::size_t t = first; t <= last; ++t) {
      if (!world_->scanner_available(t, scanner_)) {
        if (include_missing_) {
          SnapshotResult placeholder;
          placeholder.snapshot = t;
          placeholder.scanner = scanner_;
          placeholder.health = SnapshotHealth::kMissing;
          record_series_metrics(placeholder, options_.metrics);
          if (progress) progress(placeholder);
          results.push_back(std::move(placeholder));
        }
        continue;
      }
      scan::ScanSnapshot snapshot = world_->scan(t, scanner_);

      PipelineOptions options = options_;
      options.netflix_prior_ips = &netflix_ips;
      OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                              world_->certs(), world_->roots(),
                              standard_hg_inputs(), options);
      SnapshotResult result = [&] {
        obs::StageTimer timer(options_.metrics, "series/snapshot");
        return pipeline.run(snapshot);
      }();
      absorb_netflix_ips(result, netflix_ips);

      record_series_metrics(result, options_.metrics);
      if (progress) progress(result);
      results.push_back(std::move(result));
    }
    return results;
  }

  // Snapshot-level fan-out. Scan production and IP-to-AS map building
  // keep internal caches, so each wave's inputs are produced serially
  // here; the per-snapshot pipelines then run concurrently with the
  // Netflix prior deferred, and the one cross-snapshot dependency — the
  // §6.2 HTTP-only recovery, which reads IPs seen in *earlier* snapshots
  // — is re-applied in snapshot order afterwards. The recovery only
  // rewrites confirmed_expired_http_ases, so the result is bit-identical
  // to the serial path.
  ThreadPool pool(threads);
  struct Job {
    std::size_t t = 0;
    bool missing = false;
    std::optional<scan::ScanSnapshot> snap;
    std::shared_ptr<const bgp::Ip2AsMap> map;
    SnapshotResult result;
  };

  std::size_t t = first;
  while (t <= last) {
    std::vector<Job> wave;
    while (t <= last && wave.size() < pool.concurrency()) {
      Job job;
      job.t = t;
      if (!world_->scanner_available(t, scanner_)) {
        job.missing = true;
        if (include_missing_) wave.push_back(std::move(job));
      } else {
        job.snap.emplace(world_->scan(t, scanner_));
        job.map = world_->ip2as().share(t);
        wave.push_back(std::move(job));
      }
      ++t;
    }

    std::vector<std::function<void()>> tasks;
    for (Job& job : wave) {
      if (job.missing) continue;
      tasks.push_back([this, &job] {
        obs::StageTimer timer(options_.metrics, "series/snapshot");
        bgp::PinnedIp2As pinned(job.map);
        PipelineOptions options = options_;
        options.netflix_prior_ips = nullptr;
        options.n_threads = 1;  // parallelism is spent across snapshots
        OffnetPipeline pipeline(world_->topology(), pinned, world_->certs(),
                                world_->roots(), standard_hg_inputs(),
                                options);
        job.result = pipeline.run(*job.snap);
      });
    }
    pool.run_all(std::move(tasks));

    for (Job& job : wave) {
      if (job.missing) {
        SnapshotResult placeholder;
        placeholder.snapshot = job.t;
        placeholder.scanner = scanner_;
        placeholder.health = SnapshotHealth::kMissing;
        record_series_metrics(placeholder, options_.metrics);
        if (progress) progress(placeholder);
        results.push_back(std::move(placeholder));
        continue;
      }
      bgp::PinnedIp2As pinned(job.map);
      OffnetPipeline pipeline(world_->topology(), pinned, world_->certs(),
                              world_->roots(), standard_hg_inputs(),
                              options_);
      pipeline.apply_netflix_http_recovery(*job.snap, job.result,
                                           netflix_ips);
      absorb_netflix_ips(job.result, netflix_ips);
      record_series_metrics(job.result, options_.metrics);
      if (progress) progress(job.result);
      results.push_back(std::move(job.result));
    }
  }
  return results;
}

std::vector<SnapshotResult> LongitudinalRunner::run_loaded(
    const std::function<SnapshotFeed(std::size_t)>& feed, std::size_t first,
    std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  for (std::size_t t = first; t <= last; ++t) {
    SnapshotFeed input = feed(t);
    SnapshotResult result;
    if (input.dataset.has_value()) {
      const io::Dataset& dataset = *input.dataset;
      // The feed may tally into its own report or rely on the dataset's.
      const io::LoadReport& report =
          input.report.files.empty() ? dataset.report() : input.report;

      PipelineOptions options = options_;
      options.netflix_prior_ips = &netflix_ips;
      OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                              dataset.certs(), dataset.roots(),
                              standard_hg_inputs(), options);
      result = [&] {
        obs::StageTimer timer(options_.metrics, "series/snapshot");
        return pipeline.run(dataset.snapshot());
      }();
      result.health = report.clean() ? SnapshotHealth::kComplete
                                     : SnapshotHealth::kPartial;
      result.load_report = report;
      absorb_netflix_ips(result, netflix_ips);
    } else {
      result.health = input.corrupt ? SnapshotHealth::kCorrupt
                                    : SnapshotHealth::kMissing;
      result.load_report = std::move(input.report);
    }
    result.snapshot = t;
    result.scanner = scanner_;

    record_series_metrics(result, options_.metrics);
    if (progress) progress(result);
    results.push_back(std::move(result));
  }
  return results;
}

SnapshotResult LongitudinalRunner::run_one(std::size_t snapshot) const {
  assert(world_ != nullptr && "run_one() needs the world constructor");
  scan::ScanSnapshot snap = world_->scan(snapshot, scanner_);
  OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                          world_->certs(), world_->roots(),
                          standard_hg_inputs(), options_);
  return pipeline.run(snap);
}

}  // namespace offnet::core
