#include "core/longitudinal.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/fault.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace offnet::core {

namespace {

/// Remember every IP seen with a (valid) Netflix certificate: the raw
/// material for the HTTP-only recovery in later snapshots.
void absorb_netflix_ips(const SnapshotResult& result,
                        std::unordered_set<std::uint32_t>& netflix_ips) {
  if (const HgFootprint* netflix = result.find("Netflix")) {
    for (const auto& [ip, cert] : netflix->candidate_ip_certs) {
      netflix_ips.insert(ip.value());
    }
  }
}

/// Series-level accounting for one finished (or skipped) snapshot:
/// health tallies and the ingestion skip counts from the LoadReport.
/// The pipeline's own funnel counters accumulate separately inside
/// OffnetPipeline::run; everything here is deterministic, so the
/// exported JSON (minus timing) is identical at any thread count.
void record_series_metrics(const SnapshotResult& result,
                           obs::Registry* metrics) {
  if (metrics == nullptr) return;
  metrics->counter(metric_names::kSeriesSnapshots).add(1);
  metrics
      ->counter(std::string(metric_names::kSeriesHealthPrefix) +
                to_string(result.health))
      .add(1);
  result.load_report.export_metrics(*metrics);
}

}  // namespace

LongitudinalRunner::LongitudinalRunner(const scan::World& world,
                                       scan::ScannerKind scanner,
                                       PipelineOptions options)
    : world_(&world), scanner_(scanner), options_(std::move(options)) {}

LongitudinalRunner::LongitudinalRunner(PipelineOptions options,
                                       scan::ScannerKind scanner)
    : scanner_(scanner), options_(std::move(options)) {}

std::vector<SnapshotResult> LongitudinalRunner::run(
    std::size_t first, std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  assert(world_ != nullptr && "run() needs the world constructor");
  const std::size_t threads = resolve_thread_count(options_.n_threads);
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  if (threads <= 1) {
    for (std::size_t t = first; t <= last; ++t) {
      if (!world_->scanner_available(t, scanner_)) {
        if (include_missing_) {
          SnapshotResult placeholder;
          placeholder.snapshot = t;
          placeholder.scanner = scanner_;
          placeholder.health = SnapshotHealth::kMissing;
          record_series_metrics(placeholder, options_.metrics);
          if (progress) progress(placeholder);
          results.push_back(std::move(placeholder));
        }
        continue;
      }
      scan::ScanSnapshot snapshot = world_->scan(t, scanner_);

      PipelineOptions options = options_;
      options.netflix_prior_ips = &netflix_ips;
      // The world-backed entry point regenerates scans rather than
      // loading immutable feeds, so the delta cache stays a loaded-run
      // feature; dropping it here also keeps the serial and fanned-out
      // paths byte-identical (a cache shared across the wave would race).
      options.delta = nullptr;
      OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                              world_->certs(), world_->roots(),
                              standard_hg_inputs(), options);
      SnapshotResult result = [&] {
        obs::StageTimer timer(options_.metrics, metric_names::kTimerSeriesSnapshot);
        return pipeline.run(snapshot);
      }();
      absorb_netflix_ips(result, netflix_ips);

      record_series_metrics(result, options_.metrics);
      if (progress) progress(result);
      results.push_back(std::move(result));
    }
    return results;
  }

  // Snapshot-level fan-out. Scan production and IP-to-AS map building
  // keep internal caches, so each wave's inputs are produced serially
  // here; the per-snapshot pipelines then run concurrently with the
  // Netflix prior deferred, and the one cross-snapshot dependency — the
  // §6.2 HTTP-only recovery, which reads IPs seen in *earlier* snapshots
  // — is re-applied in snapshot order afterwards. The recovery only
  // rewrites confirmed_expired_http_ases, so the result is bit-identical
  // to the serial path.
  ThreadPool pool(threads);
  struct Job {
    std::size_t t = 0;
    bool missing = false;
    std::optional<scan::ScanSnapshot> snap;
    core::Pinned<bgp::Ip2AsMap> map;
    SnapshotResult result;
  };

  std::size_t t = first;
  while (t <= last) {
    std::vector<Job> wave;
    while (t <= last && wave.size() < pool.concurrency()) {
      Job job;
      job.t = t;
      if (!world_->scanner_available(t, scanner_)) {
        job.missing = true;
        if (include_missing_) wave.push_back(std::move(job));
      } else {
        job.snap.emplace(world_->scan(t, scanner_));
        job.map = world_->ip2as().share(t);
        wave.push_back(std::move(job));
      }
      ++t;
    }

    std::vector<std::function<void()>> tasks;
    for (Job& job : wave) {
      if (job.missing) continue;
      tasks.push_back([this, &job] {
        obs::StageTimer timer(options_.metrics, metric_names::kTimerSeriesSnapshot);
        bgp::PinnedIp2As pinned(job.map);
        PipelineOptions options = options_;
        options.netflix_prior_ips = nullptr;
        options.n_threads = 1;  // parallelism is spent across snapshots
        options.delta = nullptr;  // see the serial path above
        OffnetPipeline pipeline(world_->topology(), pinned, world_->certs(),
                                world_->roots(), standard_hg_inputs(),
                                options);
        job.result = pipeline.run(*job.snap);
      });
    }
    pool.run_all(std::move(tasks));

    for (Job& job : wave) {
      if (job.missing) {
        SnapshotResult placeholder;
        placeholder.snapshot = job.t;
        placeholder.scanner = scanner_;
        placeholder.health = SnapshotHealth::kMissing;
        record_series_metrics(placeholder, options_.metrics);
        if (progress) progress(placeholder);
        results.push_back(std::move(placeholder));
        continue;
      }
      bgp::PinnedIp2As pinned(job.map);
      OffnetPipeline pipeline(world_->topology(), pinned, world_->certs(),
                              world_->roots(), standard_hg_inputs(),
                              options_);
      pipeline.apply_netflix_http_recovery(*job.snap, job.result,
                                           netflix_ips);
      absorb_netflix_ips(job.result, netflix_ips);
      record_series_metrics(job.result, options_.metrics);
      if (progress) progress(job.result);
      results.push_back(std::move(job.result));
    }
  }
  return results;
}

std::vector<SnapshotResult> LongitudinalRunner::run_loaded(
    const std::function<SnapshotFeed(std::size_t)>& feed, std::size_t first,
    std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  for (std::size_t t = first; t <= last; ++t) {
    SnapshotResult result = compute_loaded_snapshot(
        feed(t), t, netflix_ips, options_.metrics);
    if (result.usable()) absorb_netflix_ips(result, netflix_ips);

    record_series_metrics(result, options_.metrics);
    if (progress) progress(result);
    results.push_back(std::move(result));
  }
  return results;
}

SnapshotResult LongitudinalRunner::compute_loaded_snapshot(
    SnapshotFeed input, std::size_t t,
    const std::unordered_set<std::uint32_t>& netflix_ips,
    obs::Registry* metrics) const {
  SnapshotResult result;
  if (input.dataset.has_value()) {
    const io::Dataset& dataset = *input.dataset;
    // The feed may tally into its own report or rely on the dataset's.
    const io::LoadReport& report =
        input.report.files.empty() ? dataset.report() : input.report;

    PipelineOptions options = options_;
    options.netflix_prior_ips = &netflix_ips;
    options.metrics = metrics;
    OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                            dataset.certs(), dataset.roots(),
                            standard_hg_inputs(), options);
    result = [&] {
      obs::StageTimer timer(metrics, metric_names::kTimerSeriesSnapshot);
      return pipeline.run(dataset.snapshot());
    }();
    result.health = report.clean() ? SnapshotHealth::kComplete
                                   : SnapshotHealth::kPartial;
    result.load_report = report;
  } else {
    result.health = input.corrupt ? SnapshotHealth::kCorrupt
                                  : SnapshotHealth::kMissing;
    result.load_report = std::move(input.report);
  }
  result.snapshot = t;
  result.scanner = scanner_;
  return result;
}

std::vector<SnapshotResult> LongitudinalRunner::run_supervised(
    const std::function<SnapshotFeed(std::size_t)>& feed,
    const SupervisorOptions& supervisor, std::size_t first,
    std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  const std::string digest = run_digest(options_, scanner_, first);
  obs::Registry* metrics = options_.metrics;

  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;
  std::size_t next = first;

  if (supervisor.resume) {
    if (supervisor.checkpoint_path.empty()) {
      throw std::invalid_argument(
          "run_supervised: resume needs a checkpoint path");
    }
    RunState state = Checkpoint::load(supervisor.checkpoint_path, digest);
    netflix_ips.insert(state.netflix_ips.begin(), state.netflix_ips.end());
    // Restore the delta cache before the first resumed snapshot, so the
    // resumed run's probe results — and the delta/* counters — match an
    // uninterrupted run byte for byte. The digest's delta bit guarantees
    // the checkpoint and this run agree on whether a cache is attached.
    if (options_.delta != nullptr && state.delta.present) {
      options_.delta->restore(state.delta);
    }
    if (metrics != nullptr) {
      metrics->absorb(state.metrics);
      // A checkpoint's payload counts the bytes of every checkpoint
      // published before it — its own size is only known after it is
      // encoded, and is added to the live registry after the write.
      // Re-adding the loaded file's size here restores the invariant
      // that save_bytes counts every checkpoint published so far, so a
      // resumed run's total equals an uninterrupted run's.
      std::error_code ec;
      const auto bytes =
          std::filesystem::file_size(supervisor.checkpoint_path, ec);
      if (!ec) {
        metrics->counter(metric_names::kCheckpointBytes).add(bytes);
      }
    }
    results = std::move(state.results);
    next = first + results.size();
  }

  for (std::size_t t = next; t <= last; ++t) {
    // Exception-isolated attempts. Each attempt records into a scratch
    // registry that is absorbed only on success, so the funnel counters
    // count every snapshot exactly once no matter how many attempts it
    // took — the exported metrics stay deterministic under retry.
    SnapshotResult result;
    std::string last_error;
    bool done = false;
    for (std::size_t attempt = 0;
         attempt <= supervisor.max_retries && !done; ++attempt) {
      obs::Registry scratch;
      try {
        if (supervisor.faults != nullptr) {
          supervisor.faults->on(fault_stage::kFeed);
        }
        SnapshotFeed input = feed(t);
        if (supervisor.faults != nullptr) {
          supervisor.faults->on(fault_stage::kPipeline);
        }
        result = compute_loaded_snapshot(
            std::move(input), t, netflix_ips,
            metrics != nullptr ? &scratch : nullptr);
        // A corrupt feed spends the retry budget too: a transient read
        // fault (EIO mid-load) looks exactly like on-disk corruption to
        // the loader, and only a re-read can tell them apart. The last
        // attempt accepts the degraded classification — persistent
        // corruption stays kCorrupt, never kQuarantined.
        if (result.health == SnapshotHealth::kCorrupt &&
            attempt < supervisor.max_retries) {
          last_error = "corrupt feed";
        } else {
          done = true;
        }
      } catch (const std::exception& e) {
        last_error = e.what();
      } catch (...) {
        last_error = "unknown exception";
      }
      if (done) {
        if (metrics != nullptr) metrics->absorb(scratch.snapshot());
      } else if (metrics != nullptr) {
        metrics->counter(metric_names::kRetryAttempts).add(1);
      }
    }

    if (!done) {
      result = SnapshotResult{};
      result.snapshot = t;
      result.scanner = scanner_;
      result.health = SnapshotHealth::kQuarantined;
      result.error = last_error;
      if (metrics != nullptr) {
        metrics->counter(metric_names::kRetryExhausted).add(1);
        metrics->counter(metric_names::kQuarantinedSnapshots).add(1);
      }
    } else if (result.usable()) {
      absorb_netflix_ips(result, netflix_ips);
    }
    record_series_metrics(result, metrics);
    if (progress) progress(result);
    results.push_back(std::move(result));

    if (!supervisor.checkpoint_path.empty()) {
      // Counter order matters for resume invariance: saves is bumped
      // before the registry snapshot (so checkpoint k records k saves)
      // and save_bytes after the write (so a checkpoint never has to
      // know its own size).
      if (metrics != nullptr) {
        metrics->counter(metric_names::kCheckpointSaves).add(1);
      }
      RunState state;
      state.first = first;
      state.scanner = scanner_;
      state.results = results;
      state.netflix_ips.assign(netflix_ips.begin(), netflix_ips.end());
      std::sort(state.netflix_ips.begin(), state.netflix_ips.end());
      if (options_.delta != nullptr) {
        state.delta = options_.delta->snapshot();
      }
      if (metrics != nullptr) {
        state.metrics = metrics->snapshot();
        // Timing stats are wall-clock: their rendered lengths vary run
        // to run, which would make the checkpoint's byte size (and so
        // checkpoint/save_bytes) nondeterministic. Persist only the
        // deterministic sections; a resumed process starts its own
        // timings, just as it starts its own clock.
        state.metrics.timings.clear();
      }
      const std::size_t bytes = Checkpoint::save(
          supervisor.checkpoint_path, state, digest, supervisor.faults);
      if (metrics != nullptr) {
        metrics->counter(metric_names::kCheckpointBytes).add(bytes);
      }
    }
  }
  return results;
}

SnapshotResult LongitudinalRunner::run_one(std::size_t snapshot) const {
  assert(world_ != nullptr && "run_one() needs the world constructor");
  scan::ScanSnapshot snap = world_->scan(snapshot, scanner_);
  OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                          world_->certs(), world_->roots(),
                          standard_hg_inputs(), options_);
  return pipeline.run(snap);
}

}  // namespace offnet::core
