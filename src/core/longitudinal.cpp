#include "core/longitudinal.h"

#include <cassert>

namespace offnet::core {

namespace {

/// Remember every IP seen with a (valid) Netflix certificate: the raw
/// material for the HTTP-only recovery in later snapshots.
void absorb_netflix_ips(const SnapshotResult& result,
                        std::unordered_set<std::uint32_t>& netflix_ips) {
  if (const HgFootprint* netflix = result.find("Netflix")) {
    for (const auto& [ip, cert] : netflix->candidate_ip_certs) {
      netflix_ips.insert(ip.value());
    }
  }
}

}  // namespace

LongitudinalRunner::LongitudinalRunner(const scan::World& world,
                                       scan::ScannerKind scanner,
                                       PipelineOptions options)
    : world_(&world), scanner_(scanner), options_(std::move(options)) {}

LongitudinalRunner::LongitudinalRunner(PipelineOptions options,
                                       scan::ScannerKind scanner)
    : scanner_(scanner), options_(std::move(options)) {}

std::vector<SnapshotResult> LongitudinalRunner::run(
    std::size_t first, std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  assert(world_ != nullptr && "run() needs the world constructor");
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  for (std::size_t t = first; t <= last; ++t) {
    if (!world_->scanner_available(t, scanner_)) {
      if (include_missing_) {
        SnapshotResult placeholder;
        placeholder.snapshot = t;
        placeholder.scanner = scanner_;
        placeholder.health = SnapshotHealth::kMissing;
        if (progress) progress(placeholder);
        results.push_back(std::move(placeholder));
      }
      continue;
    }
    scan::ScanSnapshot snapshot = world_->scan(t, scanner_);

    PipelineOptions options = options_;
    options.netflix_prior_ips = &netflix_ips;
    OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                            world_->certs(), world_->roots(),
                            standard_hg_inputs(), options);
    SnapshotResult result = pipeline.run(snapshot);
    absorb_netflix_ips(result, netflix_ips);

    if (progress) progress(result);
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<SnapshotResult> LongitudinalRunner::run_loaded(
    const std::function<SnapshotFeed(std::size_t)>& feed, std::size_t first,
    std::size_t last,
    const std::function<void(const SnapshotResult&)>& progress) const {
  std::vector<SnapshotResult> results;
  std::unordered_set<std::uint32_t> netflix_ips;

  for (std::size_t t = first; t <= last; ++t) {
    SnapshotFeed input = feed(t);
    SnapshotResult result;
    if (input.dataset.has_value()) {
      const io::Dataset& dataset = *input.dataset;
      // The feed may tally into its own report or rely on the dataset's.
      const io::LoadReport& report =
          input.report.files.empty() ? dataset.report() : input.report;

      PipelineOptions options = options_;
      options.netflix_prior_ips = &netflix_ips;
      OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                              dataset.certs(), dataset.roots(),
                              standard_hg_inputs(), options);
      result = pipeline.run(dataset.snapshot());
      result.health = report.clean() ? SnapshotHealth::kComplete
                                     : SnapshotHealth::kPartial;
      result.load_report = report;
      absorb_netflix_ips(result, netflix_ips);
    } else {
      result.health = input.corrupt ? SnapshotHealth::kCorrupt
                                    : SnapshotHealth::kMissing;
      result.load_report = std::move(input.report);
    }
    result.snapshot = t;
    result.scanner = scanner_;

    if (progress) progress(result);
    results.push_back(std::move(result));
  }
  return results;
}

SnapshotResult LongitudinalRunner::run_one(std::size_t snapshot) const {
  assert(world_ != nullptr && "run_one() needs the world constructor");
  scan::ScanSnapshot snap = world_->scan(snapshot, scanner_);
  OffnetPipeline pipeline(world_->topology(), world_->ip2as(),
                          world_->certs(), world_->roots(),
                          standard_hg_inputs(), options_);
  return pipeline.run(snap);
}

}  // namespace offnet::core
