#pragma once

#include <functional>
#include <vector>

#include "core/pipeline.h"
#include "scan/world.h"

namespace offnet::core {

/// Runs the pipeline over every study snapshot for one scanner, carrying
/// the cross-snapshot state the paper's longitudinal analysis needs (the
/// set of IPs ever seen serving Netflix certificates, used to restore the
/// HTTP-only servers of 2017-2019).
class LongitudinalRunner {
 public:
  LongitudinalRunner(const scan::World& world,
                     scan::ScannerKind scanner = scan::ScannerKind::kRapid7,
                     PipelineOptions options = {});

  /// Runs snapshots [first, last]; by default the whole study. Results
  /// for snapshots where the scanner has no data are skipped.
  std::vector<SnapshotResult> run(
      std::size_t first = 0, std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Runs a single snapshot (stateless: without the HTTP-only recovery).
  SnapshotResult run_one(std::size_t snapshot) const;

 private:
  const scan::World& world_;
  scan::ScannerKind scanner_;
  PipelineOptions options_;
};

}  // namespace offnet::core
