#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "io/loaders.h"
#include "scan/world.h"

namespace offnet::core {

class FaultInjector;

/// Per-snapshot input to a degraded-mode run over loaded data: either a
/// usable (possibly partial) dataset, or the verdict that the snapshot's
/// corpus is missing or corrupt. Produced on demand by a feed callback
/// so a 31-snapshot study never holds more than one dataset in memory.
struct SnapshotFeed {
  std::optional<io::Dataset> dataset;  // nullopt: nothing usable
  io::LoadReport report;               // ingestion accounting (may be empty)
  bool corrupt = false;                // load aborted, vs. simply absent
};

/// Configuration for LongitudinalRunner::run_supervised (DESIGN.md §10).
struct SupervisorOptions {
  /// Where the run's checkpoint is saved after every snapshot (and, with
  /// `resume`, loaded from before the first). Empty disables
  /// checkpointing; retry and quarantine still apply.
  std::string checkpoint_path;

  /// Restore state from checkpoint_path and continue at the first
  /// snapshot the checkpoint does not cover. The checkpoint's run
  /// digest must match this run's (see core/checkpoint.h).
  bool resume = false;

  /// A failing snapshot is retried this many times — max_retries + 1
  /// attempts in total — before it is quarantined.
  std::size_t max_retries = 2;

  /// Optional fault plan, crossed at the feed / pipeline /
  /// checkpoint-write / artifact-rename stage boundaries.
  FaultInjector* faults = nullptr;
};

/// Runs the pipeline over every study snapshot for one scanner, carrying
/// the cross-snapshot state the paper's longitudinal analysis needs (the
/// set of IPs ever seen serving Netflix certificates, used to restore the
/// HTTP-only servers of 2017-2019). That state survives missing and
/// corrupt snapshots, so a degraded series still recovers correctly
/// after a gap.
class LongitudinalRunner {
 public:
  LongitudinalRunner(const scan::World& world,
                     scan::ScannerKind scanner = scan::ScannerKind::kRapid7,
                     PipelineOptions options = {});

  /// Runner for dataset-driven studies (run_loaded) only; run() and
  /// run_one() require a world.
  explicit LongitudinalRunner(PipelineOptions options,
                              scan::ScannerKind scanner =
                                  scan::ScannerKind::kRapid7);

  /// When set, run() emits a kMissing placeholder result for snapshots
  /// the scanner has no data for, instead of dropping them from the
  /// series.
  void set_include_missing(bool include) { include_missing_ = include; }

  /// Runs snapshots [first, last]; by default the whole study. Results
  /// for snapshots where the scanner has no data are skipped (or
  /// annotated kMissing under set_include_missing).
  ///
  /// With options.n_threads > 1 snapshots fan out across threads: each
  /// wave's inputs are produced serially (scan and IP-to-AS caches are
  /// not shard-safe), pipelines run concurrently, and the cross-snapshot
  /// Netflix §6.2 recovery is re-applied in snapshot order — results are
  /// bit-identical to a serial run. options.delta is ignored here (a
  /// cache shared across a wave would race; see DESIGN.md §12) — the
  /// delta cache is a run_loaded / run_supervised feature.
  std::vector<SnapshotResult> run(
      std::size_t first = 0, std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Degraded-mode run over loaded data: `feed(t)` supplies each
  /// snapshot's dataset (or its missing/corrupt verdict). A corrupt or
  /// missing snapshot yields an annotated placeholder and the series
  /// keeps going; usable snapshots are marked kComplete or kPartial from
  /// their LoadReport.
  ///
  /// Snapshots stay sequential here — the feed contract is "one dataset
  /// in memory at a time" — but options.n_threads still parallelizes
  /// each snapshot's pipeline internally.
  std::vector<SnapshotResult> run_loaded(
      const std::function<SnapshotFeed(std::size_t)>& feed,
      std::size_t first = 0, std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Crash-safe variant of run_loaded (DESIGN.md §10): each snapshot is
  /// computed in an exception-isolated attempt with a bounded retry
  /// budget; a snapshot that fails every attempt becomes a kQuarantined
  /// placeholder (carrying the failure message) and the series
  /// continues, with the §6.2 Netflix state intact. With a checkpoint
  /// path, the run saves its state atomically after every snapshot, and
  /// with resume it restores that state first — interrupting the run at
  /// any point and resuming produces results and deterministic metrics
  /// byte-identical to an uninterrupted run, at any n_threads.
  ///
  /// Attempt metrics are recorded into a scratch registry and folded
  /// into options.metrics only on success, so retries never double-count
  /// the funnel. With options.delta set, the cache image is persisted in
  /// every checkpoint and restored on resume, so delta verdicts and the
  /// delta/* counters survive a crash byte-identically (DESIGN.md §12). Checkpoint save failures (including injected
  /// checkpoint-write faults) are not retried: they propagate, because a
  /// run that cannot persist its progress should stop, not limp on.
  std::vector<SnapshotResult> run_supervised(
      const std::function<SnapshotFeed(std::size_t)>& feed,
      const SupervisorOptions& supervisor, std::size_t first = 0,
      std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Runs a single snapshot (stateless: without the HTTP-only recovery).
  SnapshotResult run_one(std::size_t snapshot) const;

 private:
  /// One loaded snapshot, shared by run_loaded and run_supervised: runs
  /// the pipeline over the feed's dataset (or builds the missing/corrupt
  /// placeholder) and annotates health and ingestion accounting. Reads
  /// but never mutates `netflix_ips`, so a failed supervised attempt
  /// leaves no trace.
  SnapshotResult compute_loaded_snapshot(
      SnapshotFeed input, std::size_t t,
      const std::unordered_set<std::uint32_t>& netflix_ips,
      obs::Registry* metrics) const;

  const scan::World* world_ = nullptr;
  scan::ScannerKind scanner_;
  PipelineOptions options_;
  bool include_missing_ = false;
};

}  // namespace offnet::core
