#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "io/loaders.h"
#include "scan/world.h"

namespace offnet::core {

/// Per-snapshot input to a degraded-mode run over loaded data: either a
/// usable (possibly partial) dataset, or the verdict that the snapshot's
/// corpus is missing or corrupt. Produced on demand by a feed callback
/// so a 31-snapshot study never holds more than one dataset in memory.
struct SnapshotFeed {
  std::optional<io::Dataset> dataset;  // nullopt: nothing usable
  io::LoadReport report;               // ingestion accounting (may be empty)
  bool corrupt = false;                // load aborted, vs. simply absent
};

/// Runs the pipeline over every study snapshot for one scanner, carrying
/// the cross-snapshot state the paper's longitudinal analysis needs (the
/// set of IPs ever seen serving Netflix certificates, used to restore the
/// HTTP-only servers of 2017-2019). That state survives missing and
/// corrupt snapshots, so a degraded series still recovers correctly
/// after a gap.
class LongitudinalRunner {
 public:
  LongitudinalRunner(const scan::World& world,
                     scan::ScannerKind scanner = scan::ScannerKind::kRapid7,
                     PipelineOptions options = {});

  /// Runner for dataset-driven studies (run_loaded) only; run() and
  /// run_one() require a world.
  explicit LongitudinalRunner(PipelineOptions options,
                              scan::ScannerKind scanner =
                                  scan::ScannerKind::kRapid7);

  /// When set, run() emits a kMissing placeholder result for snapshots
  /// the scanner has no data for, instead of dropping them from the
  /// series.
  void set_include_missing(bool include) { include_missing_ = include; }

  /// Runs snapshots [first, last]; by default the whole study. Results
  /// for snapshots where the scanner has no data are skipped (or
  /// annotated kMissing under set_include_missing).
  ///
  /// With options.n_threads > 1 snapshots fan out across threads: each
  /// wave's inputs are produced serially (scan and IP-to-AS caches are
  /// not shard-safe), pipelines run concurrently, and the cross-snapshot
  /// Netflix §6.2 recovery is re-applied in snapshot order — results are
  /// bit-identical to a serial run.
  std::vector<SnapshotResult> run(
      std::size_t first = 0, std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Degraded-mode run over loaded data: `feed(t)` supplies each
  /// snapshot's dataset (or its missing/corrupt verdict). A corrupt or
  /// missing snapshot yields an annotated placeholder and the series
  /// keeps going; usable snapshots are marked kComplete or kPartial from
  /// their LoadReport.
  ///
  /// Snapshots stay sequential here — the feed contract is "one dataset
  /// in memory at a time" — but options.n_threads still parallelizes
  /// each snapshot's pipeline internally.
  std::vector<SnapshotResult> run_loaded(
      const std::function<SnapshotFeed(std::size_t)>& feed,
      std::size_t first = 0, std::size_t last = net::snapshot_count() - 1,
      const std::function<void(const SnapshotResult&)>& progress = {}) const;

  /// Runs a single snapshot (stateless: without the HTTP-only recovery).
  SnapshotResult run_one(std::size_t snapshot) const;

 private:
  const scan::World* world_ = nullptr;
  scan::ScannerKind scanner_;
  PipelineOptions options_;
  bool include_missing_ = false;
};

}  // namespace offnet::core
