#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "core/thread_annotations.h"

namespace offnet::core {

/// std::mutex with the capability attribute the Clang thread-safety
/// analysis needs (libstdc++'s std::mutex carries no annotations, so
/// GUARDED_BY members locked through it are invisible to the analysis).
/// All mutex-protected state in the repo uses this type; locking is via
/// MutexLock — offnet_lint bans raw lock()/unlock() call sites.
class OFFNET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OFFNET_ACQUIRE() {
    m_.lock();  // offnet-lint: allow(raw-lock): the RAII primitive itself
  }
  void unlock() OFFNET_RELEASE() {
    m_.unlock();  // offnet-lint: allow(raw-lock): the RAII primitive itself
  }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

/// RAII lock over Mutex, understood by the analysis as a scoped
/// capability: constructing it satisfies GUARDED_BY/REQUIRES checks for
/// the rest of the scope.
class OFFNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) OFFNET_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() OFFNET_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. There is no
/// predicate-taking wait: predicates would be analyzed as unannotated
/// lambdas reading guarded state. Callers write the standard
/// `while (!condition()) cv.wait(lock);` loop with `condition()` either
/// inline (the lock is in scope, so guarded reads check out) or a
/// REQUIRES-annotated helper.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks until notified, reacquires.
  /// May wake spuriously; always re-check the condition.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// wait() with a timeout. Returns false when `ms` elapsed without a
  /// notification (the lock is reacquired either way). Spurious wakeups
  /// return true; callers re-check their condition in the usual
  /// while-loop, with the timeout bounding each individual wait.
  bool wait_for_ms(MutexLock& lock, std::int64_t ms) {
    return cv_.wait_for(lock.lock_, std::chrono::milliseconds(ms)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace offnet::core
