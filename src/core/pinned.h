#pragma once

#include <cstdint>
#include <memory>
#include <utility>

/// The shared-pointer pinning idiom, extracted from bgp::PinnedIp2As
/// (DESIGN.md §11): readers take a Pinned<T> — an owning, immutable
/// handle — so a publisher (LRU eviction in bgp::Ip2AsSeries, an
/// RCU-style swap in svc::VersionedStore) can drop or replace the
/// current object freely while every in-flight reader keeps the version
/// it started with alive. A pin is cheap (one shared_ptr copy under the
/// publisher's lock), never blocks the publisher afterwards, and frees
/// the pinned object when the last pin dies.
namespace offnet::core {

template <class T>
class Pinned {
 public:
  Pinned() = default;
  explicit Pinned(std::shared_ptr<const T> object, std::uint64_t version = 0)
      : object_(std::move(object)), version_(version) {}

  /// The published version this pin holds (0 for unversioned sources,
  /// e.g. an Ip2AsSeries cache entry).
  std::uint64_t version() const { return version_; }

  explicit operator bool() const { return object_ != nullptr; }
  const T& operator*() const { return *object_; }
  const T* operator->() const { return object_.get(); }
  const T* get() const { return object_.get(); }

  /// The underlying shared owner, for adapters that need shared
  /// ownership themselves (e.g. bgp::PinnedIp2As).
  const std::shared_ptr<const T>& shared() const { return object_; }

 private:
  std::shared_ptr<const T> object_;
  std::uint64_t version_ = 0;
};

}  // namespace offnet::core
