#include "core/pipeline.h"

#include <algorithm>

#include "core/known_headers.h"
#include "net/table.h"

namespace offnet::core {

namespace {

std::vector<topo::AsId> sorted_vector(
    const std::unordered_set<topo::AsId>& set) {
  std::vector<topo::AsId> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<HgInput> standard_hg_inputs() {
  return {
      {"Akamai", "akamai"},         {"Alibaba", "alibaba"},
      {"Amazon", "amazon"},         {"Apple", "apple"},
      {"Bamtech", "bamtech"},       {"Highwinds", "highwinds"},
      {"CDN77", "cdn77"},           {"Cachefly", "cachefly"},
      {"Cdnetworks", "cdnetworks"}, {"Chinacache", "chinacache"},
      {"Cloudflare", "cloudflare"}, {"Disney", "disney"},
      {"Facebook", "facebook"},     {"Fastly", "fastly"},
      {"Google", "google"},         {"Hulu", "hulu"},
      {"Incapsula", "incapsula"},   {"Limelight", "limelight"},
      {"Microsoft", "microsoft"},   {"Netflix", "netflix"},
      {"Twitter", "twitter"},       {"Verizon", "verizon"},
      {"Yahoo", "yahoo"},
  };
}

const char* to_string(SnapshotHealth health) {
  switch (health) {
    case SnapshotHealth::kComplete: return "complete";
    case SnapshotHealth::kPartial: return "partial";
    case SnapshotHealth::kMissing: return "missing";
    case SnapshotHealth::kCorrupt: return "corrupt";
  }
  return "unknown";
}

const HgFootprint* SnapshotResult::find(std::string_view name) const {
  for (const HgFootprint& fp : per_hg) {
    if (fp.name == name) return &fp;
  }
  return nullptr;
}

OffnetPipeline::OffnetPipeline(const topo::Topology& topology,
                               const bgp::Ip2AsOracle& ip2as,
                               const tls::CertificateStore& certs,
                               const tls::RootStore& roots,
                               std::vector<HgInput> hypergiants,
                               PipelineOptions options)
    : topology_(topology),
      ip2as_(ip2as),
      certs_(certs),
      validator_(certs, roots),
      hypergiants_(std::move(hypergiants)),
      options_(std::move(options)) {}

SnapshotResult OffnetPipeline::run(const scan::ScanSnapshot& scan) const {
  const std::size_t n_hg = hypergiants_.size();
  const net::DayTime at = scan.time();
  const bgp::Ip2AsMap& ip2as = ip2as_.at(scan.snapshot_index());

  SnapshotResult result;
  result.snapshot = scan.snapshot_index();
  result.scanner = scan.scanner();
  result.per_hg.resize(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) {
    result.per_hg[h].name = hypergiants_[h].name;
    result.per_hg[h].tls_fingerprint.hypergiant = hypergiants_[h].name;
    result.per_hg[h].tls_fingerprint.keyword = hypergiants_[h].keyword;
  }

  // ---- Hypergiant on-net AS sets from the organization database (the
  // CAIDA AS Organizations step, Appendix A.2). ----
  std::vector<std::unordered_set<net::Asn>> hg_asns(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) {
    for (topo::OrgId org :
         topology_.orgs().find_by_keyword(hypergiants_[h].keyword)) {
      for (topo::AsId id : topology_.orgs().ases_of(org)) {
        hg_asns[h].insert(topology_.as(id).asn);
      }
    }
  }

  // ---- Per-certificate caches (certificates repeat across many IPs). ----
  const std::size_t n_certs = certs_.size();
  std::vector<std::uint8_t> status_cache(n_certs, 0xff);
  auto status_of = [&](tls::CertId id) {
    if (status_cache[id] == 0xff) {
      status_cache[id] =
          static_cast<std::uint8_t>(validator_.validate(id, at));
    }
    return static_cast<tls::CertStatus>(status_cache[id]);
  };
  std::vector<std::uint8_t> mask_known(n_certs, 0);
  std::vector<std::uint32_t> mask_cache(n_certs, 0);
  auto org_mask_of = [&](tls::CertId id) {
    if (!mask_known[id]) {
      std::uint32_t mask = 0;
      const auto& org = certs_.get(id).subject.organization;
      for (std::size_t h = 0; h < n_hg; ++h) {
        if (net::icontains(org, hypergiants_[h].keyword)) mask |= 1u << h;
      }
      mask_cache[id] = mask;
      mask_known[id] = 1;
    }
    return mask_cache[id];
  };

  // ---- Pass 1: corpus stats, on-net discovery, TLS fingerprints. ----
  std::unordered_set<net::Asn> ases_with_certs;
  std::vector<std::vector<net::IPv4>> onnet_ips(n_hg);
  std::unordered_set<std::uint32_t> corpus_ips;
  corpus_ips.reserve(scan.certs().size() * 2);

  for (const scan::CertScanRecord& rec : scan.certs()) {
    ++result.stats.total_records;
    corpus_ips.insert(rec.ip.value());
    auto origins = ip2as.lookup(rec.ip);
    for (net::Asn asn : origins) ases_with_certs.insert(asn);

    tls::CertStatus status = status_of(rec.cert);
    if (status != tls::CertStatus::kValid) {
      ++result.stats.invalid_cert_ips;
      continue;
    }
    ++result.stats.valid_cert_ips;

    std::uint32_t mask = org_mask_of(rec.cert);
    if (mask == 0) continue;
    const tls::Certificate& cert = certs_.get(rec.cert);
    for (std::size_t h = 0; h < n_hg; ++h) {
      if (!(mask & (1u << h))) continue;
      bool onnet = std::any_of(origins.begin(), origins.end(),
                               [&](net::Asn a) {
                                 return hg_asns[h].contains(a);
                               });
      if (onnet) {
        result.per_hg[h].tls_fingerprint.absorb(cert);
        onnet_ips[h].push_back(rec.ip);
        ++result.per_hg[h].onnet_ips;
        ++result.stats.hg_cert_ips_onnet;
      }
    }
  }

  // ---- Pass 2: candidate off-nets (§4.3). ----
  std::vector<std::unordered_set<std::uint32_t>> candidate_ips(n_hg);
  std::vector<std::unordered_set<topo::AsId>> candidate_ases(n_hg);
  std::unordered_set<topo::AsId> any_hg_ases;
  // Netflix recovery (§6.2).
  const auto netflix_idx = [&]() -> int {
    for (std::size_t h = 0; h < n_hg; ++h) {
      if (nginx_default_rule_applies(hypergiants_[h].name)) {
        return static_cast<int>(h);
      }
    }
    return -1;
  }();
  std::unordered_set<std::uint32_t> netflix_expired_ips;

  auto map_ases = [&](net::IPv4 ip,
                      const std::unordered_set<net::Asn>& exclude)
      -> std::vector<topo::AsId> {
    std::vector<topo::AsId> out;
    for (net::Asn asn : ip2as.lookup(ip)) {
      if (exclude.contains(asn)) continue;
      if (auto id = topology_.find_asn(asn)) out.push_back(*id);
    }
    return out;
  };

  // Per-(hg, cert) containment-rule cache: 0 unknown, 1 pass, 2 fail.
  std::vector<std::vector<std::uint8_t>> subset_cache(
      n_hg, std::vector<std::uint8_t>(n_certs, 0));

  for (const scan::CertScanRecord& rec : scan.certs()) {
    std::uint32_t mask = org_mask_of(rec.cert);
    if (mask == 0) continue;
    tls::CertStatus status = status_of(rec.cert);
    bool valid = status == tls::CertStatus::kValid;
    bool netflix_expired = status == tls::CertStatus::kExpired;
    if (!valid && !netflix_expired) continue;

    const tls::Certificate& cert = certs_.get(rec.cert);
    auto origins = ip2as.lookup(rec.ip);
    for (std::size_t h = 0; h < n_hg; ++h) {
      if (!(mask & (1u << h))) continue;
      if (!valid &&
          !(netflix_expired && static_cast<int>(h) == netflix_idx)) {
        continue;
      }
      bool onnet = std::any_of(origins.begin(), origins.end(),
                               [&](net::Asn a) {
                                 return hg_asns[h].contains(a);
                               });
      if (onnet) continue;

      auto& cache = subset_cache[h][rec.cert];
      if (cache == 0) {
        bool pass = options_.disable_subset_rule
                        ? !cert.dns_names.empty()
                        : result.per_hg[h].tls_fingerprint.covers_all_names(
                              cert);
        if (pass && options_.apply_cloudflare_ssl_filter &&
            all_cloudflare_customer_names(cert)) {
          pass = false;
        }
        cache = pass ? 1 : 2;
      }
      if (cache != 1) continue;

      if (!valid) {
        // Expired Netflix default certificate: only the recovery
        // variants count these.
        netflix_expired_ips.insert(rec.ip.value());
        continue;
      }
      if (candidate_ips[h].insert(rec.ip.value()).second) {
        result.per_hg[h].candidate_ip_certs.emplace_back(rec.ip, rec.cert);
        auto ases = map_ases(rec.ip, hg_asns[h]);
        for (topo::AsId id : ases) {
          candidate_ases[h].insert(id);
          any_hg_ases.insert(id);
        }
        ++result.stats.hg_cert_ips_offnet;
      }
    }
  }

  // ---- Pass 3: header fingerprints from on-net responses (§4.4). ----
  std::vector<http::HeaderFingerprintSet> learned(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) {
    HeaderFingerprintLearner learner(hypergiants_[h].name,
                                     hypergiants_[h].keyword);
    for (net::IPv4 ip : onnet_ips[h]) {
      if (const http::HeaderMap* headers = scan.https_headers(ip)) {
        learner.observe(*headers);
      } else if (const http::HeaderMap* fallback = scan.http_headers(ip)) {
        learner.observe(*fallback);
      }
    }
    learned[h] = learner.learn();
    result.per_hg[h].header_fingerprint = learned[h];
  }

  // Third-party edge fingerprints for the reverse-proxy conflict rule
  // (§7): when a response carries both an edge CDN's and an origin HG's
  // headers, the edge CDN owns the server.
  std::vector<std::size_t> edge_hgs;
  for (std::size_t h = 0; h < n_hg; ++h) {
    if (hypergiants_[h].name == "Akamai" ||
        hypergiants_[h].name == "Cloudflare") {
      edge_hgs.push_back(h);
    }
  }

  // ---- Pass 4: header confirmation (§4.5). ----
  for (std::size_t h = 0; h < n_hg; ++h) {
    HgFootprint& fp = result.per_hg[h];
    const bool nginx_rule = !options_.disable_nginx_rule &&
                            nginx_default_rule_applies(hypergiants_[h].name);
    auto matches = [&](const http::HeaderMap& headers) {
      if (learned[h].matches(headers)) return true;
      return nginx_rule && is_default_nginx(headers);
    };
    auto edge_conflict = [&](const http::HeaderMap& headers) {
      if (options_.disable_edge_conflict_rule) return false;
      for (std::size_t e : edge_hgs) {
        if (e == h) continue;
        if (learned[e].matches(headers)) return true;
      }
      return false;
    };

    std::unordered_set<topo::AsId> confirmed_or;
    std::unordered_set<topo::AsId> confirmed_and;
    std::unordered_set<topo::AsId> confirmed_expired;

    auto confirm_ip = [&](net::IPv4 ip, bool into_expired_only) {
      const http::HeaderMap* https = scan.https_headers(ip);
      const http::HeaderMap* http = scan.http_headers(ip);
      bool m_https = https != nullptr && matches(*https);
      bool m_http = http != nullptr && matches(*http);
      if (!m_https && !m_http) return;
      const http::HeaderMap* matched = m_https ? https : http;
      if (edge_conflict(*matched)) return;
      auto ases = map_ases(ip, hg_asns[h]);
      if (!into_expired_only) {
        ++fp.confirmed_ips;
        fp.confirmed_ip_list.push_back(ip);
        for (topo::AsId id : ases) confirmed_or.insert(id);
        if (m_https && m_http) {
          for (topo::AsId id : ases) confirmed_and.insert(id);
        }
      }
      for (topo::AsId id : ases) confirmed_expired.insert(id);
    };

    for (std::uint32_t ip_value : candidate_ips[h]) {
      confirm_ip(net::IPv4(ip_value), false);
    }
    fp.candidate_ips = candidate_ips[h].size();
    fp.candidate_ases = sorted_vector(candidate_ases[h]);
    fp.confirmed_or_ases = sorted_vector(confirmed_or);
    fp.confirmed_and_ases = sorted_vector(confirmed_and);

    if (static_cast<int>(h) == netflix_idx) {
      // Variant 1: restore IPs behind the expired default certificate.
      for (std::uint32_t ip_value : netflix_expired_ips) {
        confirm_ip(net::IPv4(ip_value), true);
      }
      fp.confirmed_expired_ases = sorted_vector(confirmed_expired);

      // Variant 2: additionally restore servers that moved to plain HTTP
      // (identified by having served Netflix certificates in earlier
      // snapshots and still answering with the fingerprint on port 80).
      if (options_.netflix_prior_ips != nullptr) {
        std::unordered_set<topo::AsId> with_http = confirmed_expired;
        for (std::uint32_t ip_value : *options_.netflix_prior_ips) {
          net::IPv4 ip(ip_value);
          if (corpus_ips.contains(ip_value)) continue;  // still on HTTPS
          const http::HeaderMap* http = scan.http_headers(ip);
          if (http == nullptr || !matches(*http)) continue;
          for (topo::AsId id : map_ases(ip, hg_asns[h])) {
            with_http.insert(id);
          }
        }
        fp.confirmed_expired_http_ases = sorted_vector(with_http);
      } else {
        fp.confirmed_expired_http_ases = fp.confirmed_expired_ases;
      }
    }
  }

  result.stats.ases_with_certs = ases_with_certs.size();
  result.stats.ases_with_any_hg = any_hg_ases.size();
  return result;
}

}  // namespace offnet::core
