#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>

#include "core/delta_cache.h"
#include "core/known_headers.h"
#include "core/thread_pool.h"
#include "net/table.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace offnet::core {

namespace {

// The per-certificate status cache packs tls::CertStatus into a byte.
// Every referenced certificate is precomputed up front, so no sentinel
// value is reserved — but the pack still requires the enum to fit.
static_assert(static_cast<unsigned>(tls::CertStatus::kMalformed) <= 0xffu,
              "CertStatus must fit the byte-wide pipeline status cache");

std::vector<topo::AsId> sorted_vector(
    const std::unordered_set<topo::AsId>& set) {
  std::vector<topo::AsId> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<HgInput> standard_hg_inputs() {
  return {
      {"Akamai", "akamai"},         {"Alibaba", "alibaba"},
      {"Amazon", "amazon"},         {"Apple", "apple"},
      {"Bamtech", "bamtech"},       {"Highwinds", "highwinds"},
      {"CDN77", "cdn77"},           {"Cachefly", "cachefly"},
      {"Cdnetworks", "cdnetworks"}, {"Chinacache", "chinacache"},
      {"Cloudflare", "cloudflare"}, {"Disney", "disney"},
      {"Facebook", "facebook"},     {"Fastly", "fastly"},
      {"Google", "google"},         {"Hulu", "hulu"},
      {"Incapsula", "incapsula"},   {"Limelight", "limelight"},
      {"Microsoft", "microsoft"},   {"Netflix", "netflix"},
      {"Twitter", "twitter"},       {"Verizon", "verizon"},
      {"Yahoo", "yahoo"},
  };
}

const char* to_string(SnapshotHealth health) {
  switch (health) {
    case SnapshotHealth::kComplete: return "complete";
    case SnapshotHealth::kPartial: return "partial";
    case SnapshotHealth::kMissing: return "missing";
    case SnapshotHealth::kCorrupt: return "corrupt";
    case SnapshotHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

const HgFootprint* SnapshotResult::find(std::string_view name) const {
  for (const HgFootprint& fp : per_hg) {
    if (fp.name == name) return &fp;
  }
  return nullptr;
}

OffnetPipeline::OffnetPipeline(const topo::Topology& topology,
                               const bgp::Ip2AsOracle& ip2as,
                               const tls::CertificateStore& certs,
                               const tls::RootStore& roots,
                               std::vector<HgInput> hypergiants,
                               PipelineOptions options)
    : topology_(topology),
      ip2as_(ip2as),
      certs_(certs),
      roots_(roots),
      validator_(certs, roots),
      hypergiants_(std::move(hypergiants)),
      options_(std::move(options)) {
  if (hypergiants_.size() > kMaxHypergiants) {
    throw std::invalid_argument(
        "OffnetPipeline supports at most " + std::to_string(kMaxHypergiants) +
        " hypergiants (got " + std::to_string(hypergiants_.size()) +
        "): per-certificate Organization matches are a 64-bit mask");
  }
}

int OffnetPipeline::netflix_index() const {
  for (std::size_t h = 0; h < hypergiants_.size(); ++h) {
    if (nginx_default_rule_applies(hypergiants_[h].name)) {
      return static_cast<int>(h);
    }
  }
  return -1;
}

std::unordered_set<net::Asn> OffnetPipeline::onnet_asns(std::size_t h) const {
  std::unordered_set<net::Asn> asns;
  for (topo::OrgId org :
       topology_.orgs().find_by_keyword(hypergiants_[h].keyword)) {
    for (topo::AsId id : topology_.orgs().ases_of(org)) {
      asns.insert(topology_.as(id).asn);
    }
  }
  return asns;
}

SnapshotResult OffnetPipeline::run(const scan::ScanSnapshot& scan) const {
  const std::size_t n_hg = hypergiants_.size();
  const net::DayTime at = scan.time();
  const bgp::Ip2AsMap& ip2as = ip2as_.at(scan.snapshot_index());
  const std::vector<scan::CertScanRecord>& records = scan.certs();

  // Observability (DESIGN.md §9): every counter below is fed from
  // deterministic post-merge results or shard-local tallies summed in
  // shard order, so metrics are byte-identical at any thread count; only
  // the StageTimer wall-clock section varies.
  obs::Registry* metrics = options_.metrics;
  obs::StageTimer run_timer(metrics, metric_names::kTimerRun);

  // Every sharded pass below scans a contiguous record (or certificate)
  // range into per-shard accumulators that are merged in shard order, so
  // the result is bit-identical at any thread count.
  ThreadPool pool(resolve_thread_count(options_.n_threads));
  const std::size_t n_shards = pool.concurrency();

  SnapshotResult result;
  result.snapshot = scan.snapshot_index();
  result.scanner = scan.scanner();
  result.per_hg.resize(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) {
    result.per_hg[h].name = hypergiants_[h].name;
    result.per_hg[h].tls_fingerprint.hypergiant = hypergiants_[h].name;
    result.per_hg[h].tls_fingerprint.keyword = hypergiants_[h].keyword;
  }

  // ---- Hypergiant on-net AS sets from the organization database (the
  // CAIDA AS Organizations step, Appendix A.2). ----
  std::vector<std::unordered_set<net::Asn>> hg_asns(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) hg_asns[h] = onnet_asns(h);

  // Netflix recovery (§6.2).
  const int netflix_idx = netflix_index();

  // ---- Per-certificate caches (certificates repeat across many IPs),
  // precomputed in a parallel pass so the sharded record passes are
  // read-only over shared state. Only certificates referenced by the
  // corpus are validated. ----
  const std::size_t n_certs = certs_.size();
  std::vector<std::atomic<std::uint8_t>> cert_used(n_certs);
  pool.for_shards(records.size(), n_shards,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      cert_used[records[i].cert].store(
                          1, std::memory_order_relaxed);
                    }
                  });

  // ---- Incremental delta cache (DESIGN.md §12). begin_run freezes the
  // cross-snapshot cache state; the sharded passes below issue
  // const-only probes against it (tallying hits and misses per shard)
  // and record their observations; one serial commit at the end of the
  // run applies them. Probing frozen state keeps every verdict — and
  // every counter — independent of thread count. ----
  DeltaCache* const delta = options_.delta;
  struct DeltaShard {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::vector<DeltaCache::RunDelta::OnnetObs> onnet;  // locally deduped
    std::unordered_set<std::string> onnet_seen;
    std::vector<DeltaCache::RunDelta::CoversObs> covers;
  };
  std::vector<DeltaShard> d_val(n_shards);
  std::vector<DeltaShard> d_p1(n_shards);
  std::vector<DeltaShard> d_p2(n_shards);
  std::vector<DeltaShard> d_sub(n_shards);
  DeltaCache::RunDelta run_delta;
  std::optional<std::uint32_t> env_frozen;
  // Per-certificate run tables (indexed by pipeline certificate id;
  // shards write disjoint ranges): canonical key, derived entry, and
  // whether the probe hit the frozen cache (with its intern id).
  std::vector<std::string> cert_key;
  std::vector<DeltaCache::CertEntry> cert_entry;
  std::vector<std::uint8_t> cert_hit;
  std::vector<std::uint32_t> cert_frozen;
  std::vector<std::uint8_t> cert_cf;
  std::vector<std::size_t> cert_obs;  // index into run_delta.certs
  if (delta != nullptr) {
    delta->begin_run(DeltaCache::encode_config(hypergiants_));
    run_delta.env = DeltaCache::encode_env(hg_asns);
    env_frozen = delta->find_env(run_delta.env);
    cert_key.resize(n_certs);
    cert_entry.resize(n_certs);
    cert_hit.assign(n_certs, 0);
    cert_frozen.assign(n_certs, 0);
    cert_cf.assign(n_certs, 0);
    cert_obs.assign(n_certs, 0);
  }
  // Per-record on-net membership, cached by (environment, origin-set).
  // A miss computes the full per-HG mask — over every HG, not just the
  // certificate's keyword matches — so the cached value is independent
  // of which record happened to probe first.
  auto probe_onnet = [&](DeltaShard& dsh,
                         std::span<const net::Asn> origins) -> std::uint64_t {
    std::string okey = DeltaCache::encode_origins(origins);
    std::optional<std::uint64_t> cached;
    if (env_frozen.has_value()) {
      if (auto oid = delta->find_origins(okey)) {
        cached = delta->find_onnet(*env_frozen, *oid);
      }
    }
    std::uint64_t onnet_mask = 0;
    if (cached.has_value()) {
      onnet_mask = *cached;
      ++dsh.hits;
    } else {
      ++dsh.misses;
      for (std::size_t h = 0; h < n_hg; ++h) {
        if (std::any_of(origins.begin(), origins.end(), [&](net::Asn a) {
              return hg_asns[h].contains(a);
            })) {
          onnet_mask |= 1ull << h;
        }
      }
    }
    if (dsh.onnet_seen.insert(okey).second) {
      dsh.onnet.push_back({std::move(okey), onnet_mask});
    }
    return onnet_mask;
  };

  std::vector<std::uint8_t> status(n_certs, 0);
  std::vector<std::uint64_t> org_mask(n_certs, 0);
  std::vector<std::size_t> certs_referenced(n_shards, 0);
  {
    obs::StageTimer timer(metrics, metric_names::kTimerValidateCerts);
    pool.for_shards(
        n_certs, n_shards,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          for (std::size_t id = begin; id < end; ++id) {
            if (!cert_used[id].load(std::memory_order_relaxed)) continue;
            ++certs_referenced[shard];
            const auto cert_id = static_cast<tls::CertId>(id);
            if (delta != nullptr) {
              // Probe by canonical content key. A hit replays the cached
              // keyword mask / validation digest; a miss derives them
              // for commit. status_at(at) is the validator's twin, so
              // both paths yield the byte the non-delta pass computes.
              DeltaCache::CertEntry entry;
              std::string key =
                  DeltaCache::encode_cert(certs_, roots_, cert_id, &entry);
              std::uint32_t frozen = 0;
              if (const DeltaCache::CertEntry* hit =
                      delta->find_cert(key, &frozen)) {
                entry = *hit;
                cert_hit[id] = 1;
                cert_frozen[id] = frozen;
                ++d_val[shard].hits;
              } else {
                const auto& org = certs_.get(cert_id).subject.organization;
                for (std::size_t h = 0; h < n_hg; ++h) {
                  if (net::icontains(org, hypergiants_[h].keyword)) {
                    entry.org_mask |= 1ull << h;
                  }
                }
                entry.all_cloudflare =
                    all_cloudflare_customer_names(certs_.get(cert_id));
                ++d_val[shard].misses;
              }
              status[id] = static_cast<std::uint8_t>(entry.status_at(at));
              org_mask[id] = entry.org_mask;
              cert_cf[id] = entry.all_cloudflare ? 1 : 0;
              cert_key[id] = std::move(key);
              cert_entry[id] = std::move(entry);
              continue;
            }
            status[id] =
                static_cast<std::uint8_t>(validator_.validate(cert_id, at));
            std::uint64_t mask = 0;
            const auto& org = certs_.get(cert_id).subject.organization;
            for (std::size_t h = 0; h < n_hg; ++h) {
              if (net::icontains(org, hypergiants_[h].keyword)) {
                mask |= 1ull << h;
              }
            }
            org_mask[id] = mask;
          }
        });
  }

  // Cert observations in ascending certificate id — a deterministic,
  // thread-count-independent intern order for the commit.
  if (delta != nullptr) {
    for (std::size_t id = 0; id < n_certs; ++id) {
      if (!cert_used[id].load(std::memory_order_relaxed)) continue;
      cert_obs[id] = run_delta.certs.size();
      run_delta.certs.push_back(
          {std::move(cert_key[id]), std::move(cert_entry[id])});
    }
  }

  // ---- Pass 1: corpus stats, on-net discovery, TLS fingerprints. ----
  struct Pass1Hg {
    std::vector<net::IPv4> onnet_ips;          // per record, in order
    std::vector<tls::CertId> absorb_certs;     // locally deduped, in order
    std::unordered_set<tls::CertId> absorbed;
    std::size_t onnet_records = 0;
  };
  struct Pass1Partial {
    // (ip, valid) for each IP first seen in this shard, in record order;
    // the IP-deduplicated corpus counters classify each IP by its first
    // record.
    std::vector<std::pair<std::uint32_t, std::uint8_t>> first_ips;
    std::unordered_set<std::uint32_t> seen_ips;
    std::unordered_set<net::Asn> ases_with_certs;
    std::vector<Pass1Hg> hg;
    std::size_t drop_invalid_chain = 0;    // §4.1 records, per shard
    std::size_t drop_org_keyword_miss = 0; // §4.2 records, per shard
  };
  std::vector<Pass1Partial> p1(n_shards);
  obs::StageTimer pass1_timer(metrics, metric_names::kTimerPass1Onnet);
  pool.for_shards(
      records.size(), n_shards,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        Pass1Partial& part = p1[shard];
        part.hg.resize(n_hg);
        for (std::size_t i = begin; i < end; ++i) {
          const scan::CertScanRecord& rec = records[i];
          const bool valid = static_cast<tls::CertStatus>(status[rec.cert]) ==
                             tls::CertStatus::kValid;
          if (part.seen_ips.insert(rec.ip.value()).second) {
            part.first_ips.emplace_back(rec.ip.value(), valid ? 1 : 0);
          }
          auto origins = ip2as.lookup(rec.ip);
          for (net::Asn asn : origins) part.ases_with_certs.insert(asn);
          if (!valid) {
            ++part.drop_invalid_chain;
            continue;
          }
          const std::uint64_t mask = org_mask[rec.cert];
          if (mask == 0) {
            ++part.drop_org_keyword_miss;
            continue;
          }
          std::uint64_t onnet_mask = 0;
          if (delta != nullptr) {
            onnet_mask = probe_onnet(d_p1[shard], origins);
          }
          for (std::size_t h = 0; h < n_hg; ++h) {
            if (!(mask & (1ull << h))) continue;
            const bool onnet =
                delta != nullptr
                    ? ((onnet_mask >> h) & 1) != 0
                    : std::any_of(origins.begin(), origins.end(),
                                  [&](net::Asn a) {
                                    return hg_asns[h].contains(a);
                                  });
            if (onnet) {
              Pass1Hg& ph = part.hg[h];
              if (ph.absorbed.insert(rec.cert).second) {
                ph.absorb_certs.push_back(rec.cert);
              }
              ph.onnet_ips.push_back(rec.ip);
              ++ph.onnet_records;
            }
          }
        }
      });

  pass1_timer.stop();

  std::unordered_set<net::Asn> ases_with_certs;
  std::vector<std::vector<net::IPv4>> onnet_ips(n_hg);
  std::unordered_set<std::uint32_t> corpus_ips;
  corpus_ips.reserve(records.size() * 2);
  std::vector<std::unordered_set<tls::CertId>> absorbed(n_hg);
  std::size_t drop_invalid_chain = 0;
  std::size_t drop_org_keyword_miss = 0;
  for (Pass1Partial& part : p1) {
    obs::StageTimer merge_timer(metrics, metric_names::kTimerMergePass1Shard);
    drop_invalid_chain += part.drop_invalid_chain;
    drop_org_keyword_miss += part.drop_org_keyword_miss;
    for (const auto& [ip, valid] : part.first_ips) {
      if (!corpus_ips.insert(ip).second) continue;
      ++result.stats.total_records;
      if (valid) {
        ++result.stats.valid_cert_ips;
      } else {
        ++result.stats.invalid_cert_ips;
      }
    }
    ases_with_certs.insert(part.ases_with_certs.begin(),
                           part.ases_with_certs.end());
    for (std::size_t h = 0; h < n_hg; ++h) {
      Pass1Hg& ph = part.hg[h];
      for (tls::CertId id : ph.absorb_certs) {
        if (absorbed[h].insert(id).second) {
          result.per_hg[h].tls_fingerprint.absorb(certs_.get(id));
        }
      }
      onnet_ips[h].insert(onnet_ips[h].end(), ph.onnet_ips.begin(),
                          ph.onnet_ips.end());
      result.per_hg[h].onnet_ips += ph.onnet_records;
      result.stats.hg_cert_ips_onnet += ph.onnet_records;
    }
  }

  auto map_ases = [&](net::IPv4 ip,
                      const std::unordered_set<net::Asn>& exclude)
      -> std::vector<topo::AsId> {
    std::vector<topo::AsId> out;
    for (net::Asn asn : ip2as.lookup(ip)) {
      if (exclude.contains(asn)) continue;
      if (auto id = topology_.find_asn(asn)) out.push_back(*id);
    }
    return out;
  };

  // Fingerprint keys exist only after the pass-1 merge finalizes the
  // on-net dNSName sets; frozen ids gate the §4.3 covers probes below.
  std::vector<std::optional<std::uint32_t>> fp_frozen(n_hg);
  if (delta != nullptr) {
    run_delta.fps.resize(n_hg);
    for (std::size_t h = 0; h < n_hg; ++h) {
      run_delta.fps[h] =
          DeltaCache::encode_fp(result.per_hg[h].tls_fingerprint);
      fp_frozen[h] = delta->find_fp(run_delta.fps[h]);
    }
  }

  // ---- Pass 2: candidate off-nets (§4.3). The per-(hg, cert)
  // containment-rule verdicts depend only on the merged pass-1
  // fingerprints, so they are precomputed in parallel and the record
  // pass reads them. ----
  std::vector<std::uint8_t> subset_pass(n_hg * n_certs, 0);
  struct SubsetTally {
    std::size_t subset_rule = 0;     // §4.3 (hg, cert) containment failures
    std::size_t cloudflare_ssl = 0;  // §7 universal-SSL filter hits
  };
  std::vector<SubsetTally> subset_tallies(n_shards);
  {
    obs::StageTimer timer(metrics, metric_names::kTimerSubsetRule);
    pool.for_shards(
        n_certs, n_shards,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          SubsetTally& tally = subset_tallies[shard];
          for (std::size_t id = begin; id < end; ++id) {
            const std::uint64_t mask = org_mask[id];
            if (mask == 0) continue;
            const auto st = static_cast<tls::CertStatus>(status[id]);
            const bool valid = st == tls::CertStatus::kValid;
            const bool netflix_expired = st == tls::CertStatus::kExpired;
            if (!valid && !netflix_expired) continue;
            const tls::Certificate& cert =
                certs_.get(static_cast<tls::CertId>(id));
            for (std::size_t h = 0; h < n_hg; ++h) {
              if (!(mask & (1ull << h))) continue;
              if (!valid && static_cast<int>(h) != netflix_idx) continue;
              bool pass;
              if (options_.disable_subset_rule) {
                pass = !cert.dns_names.empty();
              } else if (delta != nullptr) {
                // Covers verdicts key on (fingerprint, certificate)
                // intern ids, so only pairs whose both sides were in the
                // frozen cache can hit; everything probed this run is
                // recorded for commit either way.
                DeltaShard& dsh = d_sub[shard];
                std::optional<bool> cached;
                if (fp_frozen[h].has_value() && cert_hit[id] != 0) {
                  cached = delta->find_covers(*fp_frozen[h], cert_frozen[id]);
                }
                if (cached.has_value()) {
                  pass = *cached;
                  ++dsh.hits;
                } else {
                  pass = result.per_hg[h].tls_fingerprint.covers_all_names(
                      cert);
                  ++dsh.misses;
                }
                dsh.covers.push_back({h, cert_obs[id], pass});
              } else {
                pass = result.per_hg[h].tls_fingerprint.covers_all_names(
                    cert);
              }
              if (!pass) ++tally.subset_rule;
              if (pass && options_.apply_cloudflare_ssl_filter &&
                  (delta != nullptr ? cert_cf[id] != 0
                                    : all_cloudflare_customer_names(cert))) {
                pass = false;
                ++tally.cloudflare_ssl;
              }
              subset_pass[h * n_certs + id] = pass ? 1 : 0;
            }
          }
        });
  }

  struct Pass2Candidate {
    net::IPv4 ip;
    tls::CertId cert;
    std::vector<topo::AsId> ases;
  };
  struct Pass2Partial {
    std::vector<std::vector<Pass2Candidate>> hg;  // locally IP-deduped
    std::vector<std::unordered_set<std::uint32_t>> hg_seen;
    std::vector<std::uint32_t> netflix_expired;   // locally IP-deduped
    std::unordered_set<std::uint32_t> netflix_seen;
  };
  std::vector<Pass2Partial> p2(n_shards);
  obs::StageTimer pass2_timer(metrics, metric_names::kTimerPass2Candidates);
  pool.for_shards(
      records.size(), n_shards,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        Pass2Partial& part = p2[shard];
        part.hg.resize(n_hg);
        part.hg_seen.resize(n_hg);
        for (std::size_t i = begin; i < end; ++i) {
          const scan::CertScanRecord& rec = records[i];
          const std::uint64_t mask = org_mask[rec.cert];
          if (mask == 0) continue;
          const auto st = static_cast<tls::CertStatus>(status[rec.cert]);
          const bool valid = st == tls::CertStatus::kValid;
          const bool netflix_expired = st == tls::CertStatus::kExpired;
          if (!valid && !netflix_expired) continue;
          auto origins = ip2as.lookup(rec.ip);
          std::uint64_t onnet_mask = 0;
          if (delta != nullptr) {
            onnet_mask = probe_onnet(d_p2[shard], origins);
          }
          for (std::size_t h = 0; h < n_hg; ++h) {
            if (!(mask & (1ull << h))) continue;
            if (!valid &&
                !(netflix_expired && static_cast<int>(h) == netflix_idx)) {
              continue;
            }
            const bool onnet =
                delta != nullptr
                    ? ((onnet_mask >> h) & 1) != 0
                    : std::any_of(origins.begin(), origins.end(),
                                  [&](net::Asn a) {
                                    return hg_asns[h].contains(a);
                                  });
            if (onnet) continue;
            if (!subset_pass[h * n_certs + rec.cert]) continue;
            if (!valid) {
              // Expired Netflix default certificate: only the recovery
              // variants count these.
              if (part.netflix_seen.insert(rec.ip.value()).second) {
                part.netflix_expired.push_back(rec.ip.value());
              }
              continue;
            }
            if (part.hg_seen[h].insert(rec.ip.value()).second) {
              part.hg[h].push_back(
                  {rec.ip, rec.cert, map_ases(rec.ip, hg_asns[h])});
            }
          }
        }
      });

  pass2_timer.stop();

  // Merge in shard order: global first occurrence per IP wins, exactly
  // as in one serial pass over the whole corpus.
  std::vector<std::unordered_set<std::uint32_t>> candidate_set(n_hg);
  std::vector<std::vector<std::uint32_t>> candidate_order(n_hg);
  std::vector<std::unordered_set<topo::AsId>> candidate_ases(n_hg);
  std::unordered_set<topo::AsId> any_hg_ases;
  std::vector<std::uint32_t> netflix_expired_order;
  std::unordered_set<std::uint32_t> netflix_expired_set;
  for (Pass2Partial& part : p2) {
    obs::StageTimer merge_timer(metrics, metric_names::kTimerMergePass2Shard);
    for (std::size_t h = 0; h < n_hg; ++h) {
      for (Pass2Candidate& cand : part.hg[h]) {
        if (!candidate_set[h].insert(cand.ip.value()).second) continue;
        candidate_order[h].push_back(cand.ip.value());
        result.per_hg[h].candidate_ip_certs.emplace_back(cand.ip, cand.cert);
        for (topo::AsId id : cand.ases) {
          candidate_ases[h].insert(id);
          any_hg_ases.insert(id);
        }
        ++result.stats.hg_cert_ips_offnet;
      }
    }
    for (std::uint32_t ip : part.netflix_expired) {
      if (netflix_expired_set.insert(ip).second) {
        netflix_expired_order.push_back(ip);
      }
    }
  }

  // ---- Pass 3: header fingerprints from on-net responses (§4.4).
  // Hypergiants are independent of each other here, so they fan out. ----
  std::vector<http::HeaderFingerprintSet> learned(n_hg);
  {
    obs::StageTimer timer(metrics, metric_names::kTimerLearnHeaders);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n_hg);
    for (std::size_t h = 0; h < n_hg; ++h) {
      tasks.push_back([&, h] {
        HeaderFingerprintLearner learner(hypergiants_[h].name,
                                         hypergiants_[h].keyword);
        for (net::IPv4 ip : onnet_ips[h]) {
          if (const http::HeaderMap* headers = scan.https_headers(ip)) {
            learner.observe(*headers);
          } else if (const http::HeaderMap* fallback = scan.http_headers(ip)) {
            learner.observe(*fallback);
          }
        }
        learned[h] = learner.learn();
        result.per_hg[h].header_fingerprint = learned[h];
      });
    }
    pool.run_all(std::move(tasks));
  }

  // Third-party edge fingerprints for the reverse-proxy conflict rule
  // (§7): when a response carries both an edge CDN's and an origin HG's
  // headers, the edge CDN owns the server.
  std::vector<std::size_t> edge_hgs;
  for (std::size_t h = 0; h < n_hg; ++h) {
    if (hypergiants_[h].name == "Akamai" ||
        hypergiants_[h].name == "Cloudflare") {
      edge_hgs.push_back(h);
    }
  }

  // ---- Pass 4: header confirmation (§4.5). Fully learned fingerprints
  // and merged candidate sets are read-only now; each Hypergiant writes
  // only its own footprint (and its own confirm-tally slot). ----
  struct ConfirmTally {
    std::size_t header_miss = 0;    // §4.5 candidate IPs with no match
    std::size_t edge_conflict = 0;  // §7 candidate IPs owned by an edge CDN
  };
  std::vector<ConfirmTally> confirm_tallies(n_hg);
  obs::StageTimer confirm_timer(metrics, metric_names::kTimerConfirm);
  std::vector<std::function<void()>> confirm_tasks;
  confirm_tasks.reserve(n_hg);
  for (std::size_t h = 0; h < n_hg; ++h) {
    confirm_tasks.push_back([&, h] {
      HgFootprint& fp = result.per_hg[h];
      const bool nginx_rule = !options_.disable_nginx_rule &&
                              nginx_default_rule_applies(hypergiants_[h].name);
      auto matches = [&](const http::HeaderMap& headers) {
        if (learned[h].matches(headers)) return true;
        return nginx_rule && is_default_nginx(headers);
      };
      auto edge_conflict = [&](const http::HeaderMap& headers) {
        if (options_.disable_edge_conflict_rule) return false;
        for (std::size_t e : edge_hgs) {
          if (e == h) continue;
          if (learned[e].matches(headers)) return true;
        }
        return false;
      };

      std::unordered_set<topo::AsId> confirmed_or;
      std::unordered_set<topo::AsId> confirmed_and;
      std::unordered_set<topo::AsId> confirmed_expired;

      auto confirm_ip = [&](net::IPv4 ip, bool into_expired_only) {
        const http::HeaderMap* https = scan.https_headers(ip);
        const http::HeaderMap* http = scan.http_headers(ip);
        bool m_https = https != nullptr && matches(*https);
        bool m_http = http != nullptr && matches(*http);
        if (!m_https && !m_http) {
          if (!into_expired_only) ++confirm_tallies[h].header_miss;
          return;
        }
        const http::HeaderMap* matched = m_https ? https : http;
        if (edge_conflict(*matched)) {
          if (!into_expired_only) ++confirm_tallies[h].edge_conflict;
          return;
        }
        auto ases = map_ases(ip, hg_asns[h]);
        if (!into_expired_only) {
          ++fp.confirmed_ips;
          fp.confirmed_ip_list.push_back(ip);
          for (topo::AsId id : ases) confirmed_or.insert(id);
          if (m_https && m_http) {
            for (topo::AsId id : ases) confirmed_and.insert(id);
          }
        }
        for (topo::AsId id : ases) confirmed_expired.insert(id);
      };

      for (std::uint32_t ip_value : candidate_order[h]) {
        confirm_ip(net::IPv4(ip_value), false);
      }
      fp.candidate_ips = candidate_set[h].size();
      fp.candidate_ases = sorted_vector(candidate_ases[h]);
      fp.confirmed_or_ases = sorted_vector(confirmed_or);
      fp.confirmed_and_ases = sorted_vector(confirmed_and);

      if (static_cast<int>(h) == netflix_idx) {
        // Variant 1: restore IPs behind the expired default certificate.
        for (std::uint32_t ip_value : netflix_expired_order) {
          confirm_ip(net::IPv4(ip_value), true);
        }
        fp.confirmed_expired_ases = sorted_vector(confirmed_expired);

        // Variant 2: additionally restore servers that moved to plain
        // HTTP (identified by having served Netflix certificates in
        // earlier snapshots and still answering with the fingerprint on
        // port 80).
        if (options_.netflix_prior_ips != nullptr) {
          std::unordered_set<topo::AsId> with_http = confirmed_expired;
          // offnet-lint: allow(unordered-iter): set union, sorted by sorted_vector below
          for (std::uint32_t ip_value : *options_.netflix_prior_ips) {
            net::IPv4 ip(ip_value);
            if (corpus_ips.contains(ip_value)) continue;  // still on HTTPS
            const http::HeaderMap* http = scan.http_headers(ip);
            if (http == nullptr || !matches(*http)) continue;
            for (topo::AsId id : map_ases(ip, hg_asns[h])) {
              with_http.insert(id);
            }
          }
          fp.confirmed_expired_http_ases = sorted_vector(with_http);
        } else {
          fp.confirmed_expired_http_ases = fp.confirmed_expired_ases;
        }
      }
    });
  }
  pool.run_all(std::move(confirm_tasks));
  confirm_timer.stop();

  // ---- Delta commit: the run's last mutating act, so a snapshot that
  // fails and retries never half-commits (exactly-once under
  // run_supervised). Shard observations merge in pass order then shard
  // order — global record order for first occurrences — so intern-id
  // assignment is identical at any thread count. ----
  std::uint64_t delta_hits = 0;
  std::uint64_t delta_misses = 0;
  std::uint64_t delta_invalidated = 0;
  if (delta != nullptr) {
    obs::StageTimer timer(metrics, metric_names::kTimerDeltaCommit);
    for (std::vector<DeltaShard>* pass : {&d_val, &d_p1, &d_p2, &d_sub}) {
      for (DeltaShard& dsh : *pass) {
        delta_hits += dsh.hits;
        delta_misses += dsh.misses;
        for (DeltaCache::RunDelta::OnnetObs& obs : dsh.onnet) {
          run_delta.onnet.push_back(std::move(obs));
        }
        for (const DeltaCache::RunDelta::CoversObs& obs : dsh.covers) {
          run_delta.covers.push_back(obs);
        }
      }
    }
    delta_invalidated = delta->commit(run_delta);
  }

  result.stats.ases_with_certs = ases_with_certs.size();
  result.stats.ases_with_any_hg = any_hg_ases.size();

  if (metrics != nullptr) {
    namespace mn = metric_names;
    std::size_t referenced = 0;
    for (std::size_t n : certs_referenced) referenced += n;
    SubsetTally subset_total;
    for (const SubsetTally& tally : subset_tallies) {
      subset_total.subset_rule += tally.subset_rule;
      subset_total.cloudflare_ssl += tally.cloudflare_ssl;
    }
    ConfirmTally confirm_total;
    std::size_t confirmed_ips = 0;
    obs::Histogram& candidate_ases_hist = metrics->histogram(
        mn::kCandidateAsesPerHg, {1.0, 10.0, 100.0, 1000.0});
    for (std::size_t h = 0; h < n_hg; ++h) {
      confirm_total.header_miss += confirm_tallies[h].header_miss;
      confirm_total.edge_conflict += confirm_tallies[h].edge_conflict;
      confirmed_ips += result.per_hg[h].confirmed_ips;
      candidate_ases_hist.observe(
          static_cast<double>(result.per_hg[h].candidate_ases.size()));
    }

    metrics->gauge(mn::kHypergiants).set(static_cast<std::int64_t>(n_hg));
    metrics->counter(mn::kRecords).add(records.size());
    metrics->counter(mn::kIps).add(result.stats.total_records);
    metrics->counter(mn::kCertsReferenced).add(referenced);
    metrics->counter(mn::kOnnetRecords).add(result.stats.hg_cert_ips_onnet);
    metrics->counter(mn::kCandidateIps).add(result.stats.hg_cert_ips_offnet);
    metrics->counter(mn::kConfirmedIps).add(confirmed_ips);
    metrics->counter(mn::kDropInvalidChain).add(drop_invalid_chain);
    metrics->counter(mn::kDropOrgKeywordMiss).add(drop_org_keyword_miss);
    metrics->counter(mn::kDropSubsetRule).add(subset_total.subset_rule);
    metrics->counter(mn::kDropCloudflareSsl).add(subset_total.cloudflare_ssl);
    metrics->counter(mn::kDropHeaderMiss).add(confirm_total.header_miss);
    metrics->counter(mn::kDropEdgeConflict).add(confirm_total.edge_conflict);
    if (delta != nullptr) {
      metrics->counter(mn::kDeltaHits).add(delta_hits);
      metrics->counter(mn::kDeltaMisses).add(delta_misses);
      metrics->counter(mn::kDeltaInvalidated).add(delta_invalidated);
    }
  }
  return result;
}

void OffnetPipeline::apply_netflix_http_recovery(
    const scan::ScanSnapshot& scan, SnapshotResult& result,
    const std::unordered_set<std::uint32_t>& prior_ips) const {
  const int netflix_idx = netflix_index();
  if (netflix_idx < 0) return;
  HgFootprint& fp = result.per_hg[netflix_idx];
  const bgp::Ip2AsMap& ip2as = ip2as_.at(scan.snapshot_index());
  const std::unordered_set<net::Asn> exclude =
      onnet_asns(static_cast<std::size_t>(netflix_idx));

  std::unordered_set<std::uint32_t> corpus_ips;
  corpus_ips.reserve(scan.certs().size() * 2);
  for (const scan::CertScanRecord& rec : scan.certs()) {
    corpus_ips.insert(rec.ip.value());
  }

  const bool nginx_rule =
      !options_.disable_nginx_rule &&
      nginx_default_rule_applies(hypergiants_[netflix_idx].name);
  auto matches = [&](const http::HeaderMap& headers) {
    if (fp.header_fingerprint.matches(headers)) return true;
    return nginx_rule && is_default_nginx(headers);
  };

  std::unordered_set<topo::AsId> with_http(fp.confirmed_expired_ases.begin(),
                                           fp.confirmed_expired_ases.end());
  // offnet-lint: allow(unordered-iter): set union, sorted by sorted_vector below
  for (std::uint32_t ip_value : prior_ips) {
    net::IPv4 ip(ip_value);
    if (corpus_ips.contains(ip_value)) continue;  // still on HTTPS
    const http::HeaderMap* http = scan.http_headers(ip);
    if (http == nullptr || !matches(*http)) continue;
    for (net::Asn asn : ip2as.lookup(ip)) {
      if (exclude.contains(asn)) continue;
      if (auto id = topology_.find_asn(asn)) with_http.insert(*id);
    }
  }
  fp.confirmed_expired_http_ases = sorted_vector(with_http);
}

}  // namespace offnet::core
