#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "bgp/feed.h"
#include "bgp/ip2as.h"
#include "core/header_learner.h"
#include "core/tls_fingerprint.h"
#include "http/fingerprint.h"
#include "io/report.h"
#include "scan/record.h"
#include "tls/validator.h"
#include "topology/topology.h"

namespace offnet::obs {
class Registry;
}  // namespace offnet::obs

namespace offnet::core {

class DeltaCache;

/// One Hypergiant to search for: the §4.6 inputs are just a name and the
/// Organization keyword.
struct HgInput {
  std::string name;
  std::string keyword;
};

/// The paper's 23 examined Hypergiants (§4.6).
std::vector<HgInput> standard_hg_inputs();

/// Optional pipeline behaviours.
struct PipelineOptions {
  /// §7 mitigation: drop candidate certificates whose dNSNames are all
  /// (ssl|sni)[0-9]*.cloudflaressl.com (universal-SSL customers).
  bool apply_cloudflare_ssl_filter = false;

  /// Ablation: skip the §4.3 containment rule (all dNSNames must appear
  /// on on-net certificates). Demonstrates why the rule exists.
  bool disable_subset_rule = false;

  /// Ablation: skip the §7 reverse-proxy conflict rule (edge CDN headers
  /// win over origin debug headers). Without it, third-party-hosted
  /// services are confirmed as the origin HG's off-nets.
  bool disable_edge_conflict_rule = false;

  /// Ablation: skip the §4.4 Netflix special case (certificate plus
  /// default-nginx header). Netflix confirmations collapse without it.
  bool disable_nginx_rule = false;

  /// IPs known to have served Netflix certificates in earlier snapshots;
  /// used to restore the HTTP-only Open Connect servers of 2017-2019
  /// (§6.2, the "w/ expired, non-tls" line). Maintained by the
  /// longitudinal runner.
  const std::unordered_set<std::uint32_t>* netflix_prior_ips = nullptr;

  /// Worker threads for the sharded pipeline passes (and, in
  /// LongitudinalRunner::run, for snapshot-level fan-out). 1 = serial,
  /// 0 = one per hardware thread. Results are bit-identical at every
  /// thread count: workers scan contiguous record ranges into per-shard
  /// accumulators that are merged in shard order.
  std::size_t n_threads = 1;

  /// When set, run() records the §4 funnel into this registry: per-stage
  /// record counts, per-reason drop counters (see metric_names below),
  /// and per-pass / per-shard-merge stage timings. Counter values are
  /// deterministic at any n_threads — only the exporter's "timing"
  /// section varies between runs. The registry accumulates across calls,
  /// so a longitudinal series sums its snapshots.
  obs::Registry* metrics = nullptr;

  /// Cross-snapshot verdict cache (DESIGN.md §12). When set, run()
  /// probes it instead of recomputing per-certificate validation /
  /// keyword masks, §4.3 containment verdicts, and per-origin-set on-net
  /// membership for content already seen in earlier snapshots, and
  /// commits this run's observations at the end. Results are
  /// byte-identical with or without the cache at any thread count; the
  /// delta/* counters below account for its effectiveness. The cache is
  /// probed concurrently but committed serially, so one cache must not
  /// be shared by concurrently running pipelines.
  DeltaCache* delta = nullptr;
};

/// The §4.1–§4.5 funnel metric names OffnetPipeline::run emits, one
/// constant per counter so instrumentation, tests, and the check.sh
/// smoke stay in sync.
namespace metric_names {
// Stage counts.
inline constexpr const char* kRecords = "pipeline/records";
inline constexpr const char* kIps = "pipeline/ips";
inline constexpr const char* kCertsReferenced = "pipeline/certs_referenced";
inline constexpr const char* kOnnetRecords = "pipeline/onnet_records";
inline constexpr const char* kCandidateIps = "pipeline/candidate_ips";
inline constexpr const char* kConfirmedIps = "pipeline/confirmed_ips";
// Drop reasons, in funnel order.
inline constexpr const char* kDropInvalidChain =
    "pipeline/drop/invalid_chain";  // §4.1: certificate fails validation
inline constexpr const char* kDropOrgKeywordMiss =
    "pipeline/drop/org_keyword_miss";  // §4.2: no HG Organization match
inline constexpr const char* kDropSubsetRule =
    "pipeline/drop/subset_rule";  // §4.3: dNSNames not on on-net certs
inline constexpr const char* kDropCloudflareSsl =
    "pipeline/drop/cloudflare_ssl_filter";  // §7: universal-SSL customers
inline constexpr const char* kDropHeaderMiss =
    "pipeline/drop/header_miss";  // §4.5: no header-fingerprint match
inline constexpr const char* kDropEdgeConflict =
    "pipeline/drop/edge_conflict";  // §7: edge CDN owns the response
// Supervision accounting (LongitudinalRunner::run_supervised). Values
// are invariant under crash + resume: a resumed run restores them from
// the checkpoint and ends with the same totals as an uninterrupted one.
inline constexpr const char* kRetryAttempts =
    "retry/attempts";  // failed snapshot attempts (one per thrown attempt)
inline constexpr const char* kRetryExhausted =
    "retry/exhausted";  // snapshots whose whole retry budget failed
inline constexpr const char* kQuarantinedSnapshots =
    "quarantine/snapshots";  // kQuarantined placeholders emitted
inline constexpr const char* kCheckpointSaves =
    "checkpoint/saves";  // checkpoints published (one per snapshot)
inline constexpr const char* kCheckpointBytes =
    "checkpoint/save_bytes";  // bytes published across those saves
// Incremental-run accounting (PipelineOptions::delta). Emitted only when
// a delta cache is attached, and deterministic at any thread count:
// probes judge against the frozen begin-of-run cache state.
inline constexpr const char* kDeltaHits =
    "delta/hits";  // verdicts served from the cross-snapshot cache
inline constexpr const char* kDeltaMisses =
    "delta/misses";  // verdicts computed and committed this run
inline constexpr const char* kDeltaInvalidated =
    "delta/invalidated";  // rows evicted (idle) or cleared (config change)
// Stage timings (obs::StageTimer), one per run() phase. Wall-clock, so
// excluded from determinism comparisons; the names still live here so
// report tooling and tests can refer to them without respelling.
inline constexpr const char* kTimerRun = "pipeline/run";
inline constexpr const char* kTimerValidateCerts = "pipeline/validate_certs";
inline constexpr const char* kTimerPass1Onnet = "pipeline/pass1_onnet";
inline constexpr const char* kTimerMergePass1Shard =
    "pipeline/merge/pass1_shard";
inline constexpr const char* kTimerSubsetRule = "pipeline/subset_rule";
inline constexpr const char* kTimerPass2Candidates =
    "pipeline/pass2_candidates";
inline constexpr const char* kTimerMergePass2Shard =
    "pipeline/merge/pass2_shard";
inline constexpr const char* kTimerLearnHeaders = "pipeline/learn_headers";
inline constexpr const char* kTimerConfirm = "pipeline/confirm";
inline constexpr const char* kTimerDeltaCommit = "pipeline/delta_commit";
// Run-shape distributions.
inline constexpr const char* kCandidateAsesPerHg =
    "pipeline/candidate_ases_per_hg";  // histogram, Fig. 5 shape
inline constexpr const char* kHypergiants =
    "pipeline/hypergiants";  // gauge: HG lists in this run
// Longitudinal-series accounting (LongitudinalRunner).
inline constexpr const char* kSeriesSnapshots =
    "series/snapshots";  // snapshots finished (complete or quarantined)
inline constexpr const char* kSeriesHealthPrefix =
    "series/health/";  // + SnapshotHealth name: per-health tallies
inline constexpr const char* kTimerSeriesSnapshot =
    "series/snapshot";  // per-snapshot wall clock inside a series
}  // namespace metric_names

/// Everything inferred about one Hypergiant from one scan snapshot.
struct HgFootprint {
  std::string name;

  // --- IP level ---
  std::size_t onnet_ips = 0;      // valid HG certs inside the HG's ASes
  std::size_t candidate_ips = 0;  // §4.3 candidates outside the HG
  std::size_t confirmed_ips = 0;  // header-confirmed off-net server IPs

  // --- AS level (sorted AsId vectors) ---
  std::vector<topo::AsId> candidate_ases;       // certificates only
  std::vector<topo::AsId> confirmed_or_ases;    // certs & (HTTP or HTTPS)
  std::vector<topo::AsId> confirmed_and_ases;   // certs & (HTTP and HTTPS)

  /// Netflix-only recovery variants (§6.2): counting expired
  /// certificates, and additionally the HTTP-only servers.
  std::vector<topo::AsId> confirmed_expired_ases;
  std::vector<topo::AsId> confirmed_expired_http_ases;

  /// (ip, cert) of every candidate off-net IP — feeds the certificate
  /// IP-group analysis (Fig. 11).
  std::vector<std::pair<net::IPv4, tls::CertId>> candidate_ip_certs;

  /// Header-confirmed off-net server IPs (for the §5 active-measurement
  /// validation experiments).
  std::vector<net::IPv4> confirmed_ip_list;

  /// The learned fingerprints, for inspection.
  TlsFingerprint tls_fingerprint;
  http::HeaderFingerprintSet header_fingerprint;

  /// The default confirmed set (the OR rule, as used throughout §6).
  const std::vector<topo::AsId>& confirmed_ases() const {
    return confirmed_or_ases;
  }
};

/// Corpus-level statistics (Fig. 2, Table 2). The three IP counters are
/// deduplicated by address: duplicate scan records for one IP contribute
/// once, classified by the IP's first record in corpus order.
struct CorpusStats {
  std::size_t total_records = 0;       // distinct IPs with any certificate
  std::size_t valid_cert_ips = 0;      // distinct IPs passing §4.1
  std::size_t invalid_cert_ips = 0;    // distinct IPs failing §4.1
  std::size_t ases_with_certs = 0;     // distinct origin ASes
  std::size_t hg_cert_ips_onnet = 0;   // HG-cert IPs inside HG ASes
  std::size_t hg_cert_ips_offnet = 0;  // HG-cert IPs outside (candidates)
  std::size_t ases_with_any_hg = 0;    // union of candidate AS sets
};

/// Outcome of acquiring one snapshot's input data. The paper's corpuses
/// are quarterly public exports that simply do not exist before each
/// scanner's start and are occasionally damaged (§5, Table 2); a
/// longitudinal study must record that instead of dying on it.
enum class SnapshotHealth {
  kComplete,     // all inputs ingested cleanly
  kPartial,      // ingested with skipped lines, within the error budget
  kMissing,      // no data for this scanner/snapshot
  kCorrupt,      // inputs unusable: strict failure or error budget blown
  kQuarantined,  // supervised run: failed every retry, isolated from the
                 // series (DESIGN.md §10); the run continued past it
};

const char* to_string(SnapshotHealth health);

struct SnapshotResult {
  std::size_t snapshot = 0;
  scan::ScannerKind scanner = scan::ScannerKind::kRapid7;
  CorpusStats stats;
  std::vector<HgFootprint> per_hg;

  /// Degraded-mode annotations: how this snapshot's inputs were
  /// acquired. World-driven runs always produce kComplete results; runs
  /// over loaded data carry the ingestion accounting along.
  SnapshotHealth health = SnapshotHealth::kComplete;
  io::LoadReport load_report;

  /// kQuarantined only: what the last failed attempt threw.
  std::string error;

  /// Whether per_hg/stats hold real results (missing and corrupt
  /// snapshots are placeholders).
  bool usable() const {
    return health == SnapshotHealth::kComplete ||
           health == SnapshotHealth::kPartial;
  }

  const HgFootprint* find(std::string_view name) const;
};

/// The paper's methodology (§4): validate certificates, learn per-HG TLS
/// fingerprints from on-net address space, identify candidate off-nets by
/// Organization + dNSName containment, learn header fingerprints from
/// on-net responses, and confirm candidates via HTTP(S) headers, with
/// IP-to-AS mapping from BGP data.
class OffnetPipeline {
 public:
  /// Hard cap on the Hypergiant list: per-certificate Organization
  /// matches are packed into a 64-bit mask.
  static constexpr std::size_t kMaxHypergiants = 64;

  /// Throws std::invalid_argument when `hypergiants` exceeds
  /// kMaxHypergiants entries.
  OffnetPipeline(const topo::Topology& topology,
                 const bgp::Ip2AsOracle& ip2as,
                 const tls::CertificateStore& certs,
                 const tls::RootStore& roots,
                 std::vector<HgInput> hypergiants = standard_hg_inputs(),
                 PipelineOptions options = {});

  SnapshotResult run(const scan::ScanSnapshot& scan) const;

  /// Recomputes the Netflix §6.2 HTTP-only recovery (the "w/ expired,
  /// non-tls" variant) on an already-computed result, given the set of
  /// IPs seen serving Netflix certificates in earlier snapshots. This is
  /// exactly the computation run() performs inline when
  /// options().netflix_prior_ips is set; splitting it out lets the
  /// longitudinal runner fan snapshots out in parallel and apply the one
  /// cross-snapshot dependency afterwards, in snapshot order.
  void apply_netflix_http_recovery(
      const scan::ScanSnapshot& scan, SnapshotResult& result,
      const std::unordered_set<std::uint32_t>& prior_ips) const;

  std::span<const HgInput> hypergiants() const { return hypergiants_; }
  const PipelineOptions& options() const { return options_; }
  void set_options(PipelineOptions options) { options_ = std::move(options); }

 private:
  /// Index of the Hypergiant the §4.4 nginx rule applies to (Netflix),
  /// or -1.
  int netflix_index() const;

  /// The Hypergiant's on-net AS numbers from the organization database.
  std::unordered_set<net::Asn> onnet_asns(std::size_t h) const;

  const topo::Topology& topology_;
  const bgp::Ip2AsOracle& ip2as_;
  const tls::CertificateStore& certs_;
  const tls::RootStore& roots_;  // for canonical chain encodings (§12)
  tls::CertValidator validator_;
  std::vector<HgInput> hypergiants_;
  PipelineOptions options_;
};

}  // namespace offnet::core
