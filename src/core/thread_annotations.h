#pragma once

/// Clang thread-safety-analysis attribute macros (-Wthread-safety).
///
/// Annotate every mutex-protected structure with these so lock-discipline
/// violations are compile errors under Clang instead of runtime findings
/// under TSan: GUARDED_BY names the capability protecting a member,
/// REQUIRES/ACQUIRE/RELEASE document function contracts, and
/// ACQUIRED_BEFORE/AFTER pin the global lock order. All macros expand to
/// nothing on compilers without the attributes (GCC), so annotated code
/// stays portable. See DESIGN.md "Static analysis & enforced invariants"
/// for conventions; the std::mutex wrappers the analysis understands live
/// in core/mutex.h.

#if defined(__clang__) && defined(__has_attribute)
#define OFFNET_THREAD_ATTR__(x) __attribute__((x))
#else
#define OFFNET_THREAD_ATTR__(x)  // no-op off Clang
#endif

/// Marks a type usable as a capability ("mutex" in diagnostics).
#define OFFNET_CAPABILITY(x) OFFNET_THREAD_ATTR__(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define OFFNET_SCOPED_CAPABILITY OFFNET_THREAD_ATTR__(scoped_lockable)

/// Member data protected by the given capability (held for writes and,
/// unless PT_GUARDED_BY, for reads too).
#define OFFNET_GUARDED_BY(x) OFFNET_THREAD_ATTR__(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define OFFNET_PT_GUARDED_BY(x) OFFNET_THREAD_ATTR__(pt_guarded_by(x))

/// Global lock order: this capability is acquired before/after the others.
#define OFFNET_ACQUIRED_BEFORE(...) \
  OFFNET_THREAD_ATTR__(acquired_before(__VA_ARGS__))
#define OFFNET_ACQUIRED_AFTER(...) \
  OFFNET_THREAD_ATTR__(acquired_after(__VA_ARGS__))

/// The caller must hold the capabilities (exclusively / shared).
#define OFFNET_REQUIRES(...) \
  OFFNET_THREAD_ATTR__(requires_capability(__VA_ARGS__))
#define OFFNET_REQUIRES_SHARED(...) \
  OFFNET_THREAD_ATTR__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capabilities itself.
#define OFFNET_ACQUIRE(...) \
  OFFNET_THREAD_ATTR__(acquire_capability(__VA_ARGS__))
#define OFFNET_ACQUIRE_SHARED(...) \
  OFFNET_THREAD_ATTR__(acquire_shared_capability(__VA_ARGS__))
#define OFFNET_RELEASE(...) \
  OFFNET_THREAD_ATTR__(release_capability(__VA_ARGS__))
#define OFFNET_RELEASE_SHARED(...) \
  OFFNET_THREAD_ATTR__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability only when returning `ret`.
#define OFFNET_TRY_ACQUIRE(ret, ...) \
  OFFNET_THREAD_ATTR__(try_acquire_capability(ret, __VA_ARGS__))

/// The caller must NOT hold the capabilities (deadlock prevention).
#define OFFNET_EXCLUDES(...) OFFNET_THREAD_ATTR__(locks_excluded(__VA_ARGS__))

/// Returns a reference to the named capability.
#define OFFNET_RETURN_CAPABILITY(x) OFFNET_THREAD_ATTR__(lock_returned(x))

/// Escape hatch for code the analysis cannot follow; use sparingly and
/// say why at the call site.
#define OFFNET_NO_THREAD_SAFETY_ANALYSIS \
  OFFNET_THREAD_ATTR__(no_thread_safety_analysis)
