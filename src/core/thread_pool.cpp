#include "core/thread_pool.h"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>

namespace offnet::core {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// One fork-join invocation: tasks are claimed via an atomic cursor by
/// any participating thread; completion and the first failure are
/// tracked under the batch mutex so the submitter can block until the
/// batch has fully drained. The batch mutex is self-contained — it is
/// never held together with the pool mutex.
struct ThreadPool::Batch {
  std::vector<std::function<void()>> tasks;
  std::atomic<std::size_t> next{0};
  Mutex m;
  std::size_t done OFFNET_GUARDED_BY(m) = 0;
  std::exception_ptr error OFFNET_GUARDED_BY(m);   // first failure
  std::size_t failures OFFNET_GUARDED_BY(m) = 0;  // all failed tasks
  CondVar finished;
};

ThreadPool::ThreadPool(std::size_t concurrency) {
  const std::size_t total = resolve_thread_count(concurrency);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Batch& batch) {
  const std::size_t n = batch.tasks.size();
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    std::exception_ptr error;
    try {
      batch.tasks[i]();
    } catch (...) {
      error = std::current_exception();
    }
    MutexLock lock(batch.m);
    if (error) {
      if (!batch.error) batch.error = std::move(error);
      ++batch.failures;
    }
    if (++batch.done == n) batch.finished.notify_all();
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);

  if (!workers_.empty()) {
    MutexLock lock(mutex_);
    queue_.push_back(batch);
    work_available_.notify_all();
  }

  drain(*batch);
  std::exception_ptr error;
  std::size_t failures = 0;
  {
    MutexLock lock(batch->m);
    while (batch->done != batch->tasks.size()) batch->finished.wait(lock);
    error = batch->error;
    failures = batch->failures;
  }
  if (!workers_.empty()) {
    MutexLock lock(mutex_);
    std::erase(queue_, batch);
  }
  if (!error) return;
  if (failures == 1) std::rethrow_exception(error);
  // Several tasks failed: rethrowing only the first would silently drop
  // the rest, so fold the suppressed count into the message.
  std::string what = "unknown exception";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  throw std::runtime_error(what + " (and " + std::to_string(failures - 1) +
                           " more task failures suppressed)");
}

bool ThreadPool::has_claimable_work() const {
  if (stop_) return true;
  for (const auto& queued : queue_) {
    if (queued->next.load(std::memory_order_relaxed) < queued->tasks.size()) {
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mutex_);
      // Fully-claimed batches are skipped (their submitter removes them);
      // waking only on stop or claimable work avoids a busy loop.
      while (!has_claimable_work()) work_available_.wait(lock);
      if (stop_) return;
      for (const auto& queued : queue_) {
        if (queued->next.load(std::memory_order_relaxed) <
            queued->tasks.size()) {
          batch = queued;
          break;
        }
      }
    }
    if (batch) drain(*batch);
  }
}

void ThreadPool::for_shards(
    std::size_t n, std::size_t shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (shards == 0) shards = 1;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    tasks.push_back([&fn, s, begin, end] { fn(s, begin, end); });
  }
  run_all(std::move(tasks));
}

}  // namespace offnet::core
