#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace offnet::core {

/// Resolves a user-facing thread-count option: 0 means "one per hardware
/// thread", anything else is taken literally.
std::size_t resolve_thread_count(std::size_t requested);

/// A small fixed-size fork-join pool for the sharded pipeline passes.
///
/// The calling thread always participates in draining its own batch, so
/// run_all may be invoked from inside a running task (nested fork-join)
/// without deadlocking, and a pool built with concurrency 1 degenerates
/// to plain inline execution with no worker threads at all.
///
/// Lock order: the pool-wide mutex_ and each batch's own mutex are never
/// held together; every method is annotated so Clang's -Wthread-safety
/// rejects call sites that would nest them.
class ThreadPool {
 public:
  /// `concurrency` is the total parallelism of run_all, including the
  /// calling thread; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t concurrency = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads plus the participating caller.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Runs every task to completion and returns. If tasks throw, every
  /// remaining task still runs and the first exception (in completion
  /// order) is rethrown here once the batch has drained. When more than
  /// one task failed, a std::runtime_error carrying the first failure's
  /// message plus the suppressed-failure count is thrown instead, so
  /// additional failures are reported rather than dropped. The pool
  /// itself is unaffected: the next run_all starts from a clean batch.
  void run_all(std::vector<std::function<void()>> tasks)
      OFFNET_EXCLUDES(mutex_);

  /// Partitions [0, n) into `shards` contiguous ranges (trailing shards
  /// may be empty when shards > n) and runs fn(shard, begin, end) for
  /// each. Shard boundaries depend only on n and `shards`, never on the
  /// thread count, so per-shard accumulators merged in shard order are
  /// reproducible.
  void for_shards(std::size_t n, std::size_t shards,
                  const std::function<void(std::size_t shard, std::size_t begin,
                                           std::size_t end)>& fn)
      OFFNET_EXCLUDES(mutex_);

 private:
  struct Batch;

  void worker_loop() OFFNET_EXCLUDES(mutex_);
  static void drain(Batch& batch);

  /// True when the pool is stopping or some queued batch still has
  /// unclaimed tasks (the worker wake condition).
  bool has_claimable_work() const OFFNET_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar work_available_;
  std::deque<std::shared_ptr<Batch>> queue_ OFFNET_GUARDED_BY(mutex_);
  bool stop_ OFFNET_GUARDED_BY(mutex_) = false;
};

}  // namespace offnet::core
