#include "core/tls_fingerprint.h"

#include "net/table.h"

namespace offnet::core {

bool TlsFingerprint::organization_matches(const tls::Certificate& cert) const {
  return net::icontains(cert.subject.organization, keyword);
}

bool TlsFingerprint::covers_all_names(const tls::Certificate& cert) const {
  if (cert.dns_names.empty()) return false;
  for (const std::string& name : cert.dns_names) {
    if (!onnet_names.contains(name)) return false;
  }
  return true;
}

void TlsFingerprint::absorb(const tls::Certificate& cert) {
  for (const std::string& name : cert.dns_names) {
    onnet_names.insert(name);
  }
}

bool is_cloudflare_customer_name(std::string_view name) {
  std::string_view rest;
  if (name.substr(0, 3) == "ssl") {
    rest = name.substr(3);
  } else if (name.substr(0, 3) == "sni") {
    rest = name.substr(3);
  } else {
    return false;
  }
  std::size_t digits = 0;
  while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
    ++digits;
  }
  return rest.substr(digits) == ".cloudflaressl.com";
}

bool all_cloudflare_customer_names(const tls::Certificate& cert) {
  if (cert.dns_names.empty()) return false;
  for (const std::string& name : cert.dns_names) {
    if (!is_cloudflare_customer_name(name)) return false;
  }
  return true;
}

}  // namespace offnet::core
