#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "tls/certificate.h"

namespace offnet::core {

/// A Hypergiant's TLS fingerprint (§4.2): its Organization keyword plus
/// the authoritative set of DNS names collected from end-entity
/// certificates served inside the HG's own address space.
struct TlsFingerprint {
  std::string hypergiant;
  std::string keyword;
  std::unordered_set<std::string> onnet_names;

  /// True when the certificate's Organization names the HG (case-
  /// insensitive substring, §4.2).
  bool organization_matches(const tls::Certificate& cert) const;

  /// §4.3 containment rule: every dNSName of the certificate must appear
  /// in the on-net name set. Filters cert-provider customers and shared
  /// certificates.
  bool covers_all_names(const tls::Certificate& cert) const;

  void absorb(const tls::Certificate& cert);
};

/// §7 Cloudflare mitigation: true when `name` matches
/// (ssl|sni)[0-9]*.cloudflaressl.com.
bool is_cloudflare_customer_name(std::string_view name);

/// True when every dNSName on the certificate is a Cloudflare universal-
/// SSL customer name.
bool all_cloudflare_customer_names(const tls::Certificate& cert);

}  // namespace offnet::core
