#include "dns/authority.h"

#include <algorithm>
#include <cctype>

#include "net/date.h"
#include "net/rng.h"

namespace offnet::dns {

namespace {

/// Distinct serving locations per country in the naming scheme.
constexpr int kCodesPerCountry = 6;

/// Share of deployments with non-standard hostnames the enumeration
/// baselines cannot guess (why they miss ~4-6% of ASes, §5).
constexpr double kNonStandardNameShare = 0.05;

bool nonstandard_name(net::Asn asn) {
  return net::Rng::hash("fna-nonstandard-" + std::to_string(asn)) % 100 <
         kNonStandardNameShare * 100;
}

/// When Google's authority stopped handing off-net addresses to ECS
/// queries (§1: "ECS-based mapping efforts no longer uncover Google
/// off-nets").
const net::YearMonth kGoogleEcsCutoff{2016, 7};

}  // namespace

std::string airport_code(const topo::Topology& topology, topo::AsId as) {
  auto country = topology.as(as).country;
  if (country == topo::kNoCountry) return "xx0";
  std::string code(topology.country(country).code);
  std::transform(code.begin(), code.end(), code.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  auto slot = net::Rng::hash("airport-" + std::to_string(topology.as(as).asn)) %
              kCodesPerCountry;
  return code + std::to_string(slot);
}

HgAuthority::HgAuthority(const WorldView& world, int hg)
    : world_(world), hg_(hg) {}

const HgAuthority::Cache& HgAuthority::cache(std::size_t snapshot) const {
  if (cache_.snapshot != snapshot) {
    Cache fresh;
    fresh.snapshot = snapshot;
    world_.for_each_server(snapshot, hg_, [&](const ServerView& server) {
      if (!server.offnet) {
        if (fresh.onnets.size() < 8) fresh.onnets.push_back(server.ip);
      } else {
        auto& ips = fresh.offnets[server.as];
        if (ips.size() < 3) ips.push_back(server.ip);
      }
    });
    cache_ = std::move(fresh);
  }
  return cache_;
}

bool HgAuthority::in_domains(std::string_view hostname) const {
  for (const std::string& domain : world_.profile(hg_).domains) {
    if (hostname == domain) return true;
    if (hostname.size() > domain.size() + 1 &&
        hostname.substr(hostname.size() - domain.size()) == domain &&
        hostname[hostname.size() - domain.size() - 1] == '.') {
      return true;
    }
  }
  return false;
}

bool HgAuthority::ecs_usable(std::size_t snapshot) const {
  const HgView p = world_.profile(hg_);
  // Only some HGs ever honoured ECS (§1: "many HGs do not support ECS").
  if (p.name != "Google" && p.name != "Akamai") return false;
  if (p.name == "Google" &&
      net::study_snapshots()[snapshot] >= kGoogleEcsCutoff) {
    return false;  // off-nets no longer exposed via ECS
  }
  return true;
}

HgAuthority::Response HgAuthority::resolve_ecs(std::string_view hostname,
                                               const net::Prefix& client,
                                               std::size_t snapshot) const {
  Response response;
  if (!in_domains(hostname)) return response;  // NXDOMAIN

  const HgView p = world_.profile(hg_);
  const Cache& state = cache(snapshot);
  auto onnet_answer = [&]() {
    // The default: an on-net front end.
    if (!state.onnets.empty()) response.addresses.push_back(state.onnets[0]);
  };

  if (p.name != "Google" && p.name != "Akamai") {
    response.refused = true;  // ECS option ignored/unsupported
    onnet_answer();
    return response;
  }
  if (!ecs_usable(snapshot)) {
    onnet_answer();
    return response;
  }

  // Client prefix -> AS (the authority's own BGP-derived view).
  auto origins = world_.ip2as().at(snapshot).lookup(client.first_address());
  topo::AsId client_as = topo::kNoAs;
  for (net::Asn asn : origins) {
    if (auto id = world_.topology().find_asn(asn)) {
      client_as = *id;
      break;
    }
  }
  if (client_as == topo::kNoAs) {
    onnet_answer();
    return response;
  }

  // Serve from the client's AS, else from a provider hosting an off-net
  // (cone serving, §6.5), else on-net.
  auto direct = state.offnets.find(client_as);
  if (direct != state.offnets.end()) {
    response.addresses = direct->second;
    return response;
  }
  for (topo::AsId provider : world_.topology().graph().providers(client_as)) {
    auto via_provider = state.offnets.find(provider);
    if (via_provider != state.offnets.end()) {
      response.addresses = via_provider->second;
      return response;
    }
  }
  onnet_answer();
  return response;
}

std::string HgAuthority::server_hostname(const ServerView& server,
                                         std::size_t snapshot) const {
  if (!server.offnet) return {};
  const HgView p = world_.profile(hg_);
  const topo::Topology& topology = world_.topology();

  std::string suffix;
  if (p.name == "Facebook") {
    suffix = ".fna.fbcdn.net";
  } else if (p.name == "Netflix") {
    suffix = ".isp.oca.nflxvideo.net";
  } else {
    return {};  // no exploitable per-server naming convention (§1)
  }
  if (nonstandard_name(topology.as(server.as).asn)) {
    return "edge-" + std::to_string(topology.as(server.as).asn) + suffix;
  }
  // "<code><k>" where k is the AS's rank among same-code hosts.
  const auto hosts = world_.confirmed_hosts(snapshot, hg_);
  std::string code = airport_code(topology, server.as);
  int k = 0;
  for (topo::AsId as : hosts) {
    if (nonstandard_name(topology.as(as).asn)) continue;
    if (airport_code(topology, as) != code) continue;
    ++k;
    if (as == server.as) break;
  }
  return code + "-" + std::to_string(k) + suffix;
}

HgAuthority::Response HgAuthority::resolve_name(std::string_view hostname,
                                                std::size_t snapshot) const {
  Response response;
  const HgView p = world_.profile(hg_);
  std::string_view suffix;
  if (p.name == "Facebook") {
    suffix = ".fna.fbcdn.net";
  } else if (p.name == "Netflix") {
    suffix = ".isp.oca.nflxvideo.net";
  } else {
    return response;
  }
  if (hostname.size() <= suffix.size() ||
      hostname.substr(hostname.size() - suffix.size()) != suffix) {
    return response;
  }
  std::string_view label = hostname.substr(0, hostname.size() - suffix.size());

  const topo::Topology& topology = world_.topology();
  const auto hosts = world_.confirmed_hosts(snapshot, hg_);
  topo::AsId target = topo::kNoAs;
  if (label.substr(0, 5) == "edge-") {
    // Non-standard direct names resolve too — if you know them.
    net::Asn asn = 0;
    for (char c : label.substr(5)) {
      if (c < '0' || c > '9') return response;
      asn = asn * 10 + static_cast<net::Asn>(c - '0');
    }
    if (auto id = topology.find_asn(asn)) {
      if (std::binary_search(hosts.begin(), hosts.end(), *id)) target = *id;
    }
  } else {
    auto dash = label.rfind('-');
    if (dash == std::string_view::npos) return response;
    std::string code(label.substr(0, dash));
    int want = 0;
    for (char c : label.substr(dash + 1)) {
      if (c < '0' || c > '9') return response;
      want = want * 10 + (c - '0');
    }
    int k = 0;
    for (topo::AsId as : hosts) {
      if (nonstandard_name(topology.as(as).asn)) continue;
      if (airport_code(topology, as) != code) continue;
      if (++k == want) {
        target = as;
        break;
      }
    }
  }
  if (target == topo::kNoAs) return response;  // NXDOMAIN

  const Cache& state = cache(snapshot);
  auto it = state.offnets.find(target);
  if (it != state.offnets.end()) response.addresses = it->second;
  return response;
}

}  // namespace offnet::dns
