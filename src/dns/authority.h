#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/world_view.h"
#include "net/prefix.h"

/// A DNS control-plane simulation for the earlier mapping techniques the
/// paper compares against (§1, §5): EDNS Client-Subnet redirection
/// (Calder et al.'s Google mapping) and per-HG hostname naming schemes
/// (Facebook FNA / Netflix Open Connect enumeration).
namespace offnet::dns {

/// One Hypergiant's authoritative DNS with client-aware redirection:
/// queries for its domains are answered with a server near the client —
/// an off-net inside the client's AS when one exists, else inside a
/// provider in whose customer cone the client sits, else an on-net.
class HgAuthority {
 public:
  /// `world` must outlive the authority (it is a facade over the
  /// simulation; see scan::WorldDnsView).
  HgAuthority(const WorldView& world, int hg);

  struct Response {
    std::vector<net::IPv4> addresses;
    bool refused = false;  // ECS unsupported / resolver not whitelisted
  };

  /// Resolves `hostname` with an EDNS Client-Subnet option.
  Response resolve_ecs(std::string_view hostname, const net::Prefix& client,
                       std::size_t snapshot) const;

  /// Resolves a concrete per-server hostname (the FNA/OCA naming
  /// scheme), with no client information.
  Response resolve_name(std::string_view hostname,
                        std::size_t snapshot) const;

  /// The naming-scheme hostname of an off-net server of this HG (empty
  /// when the HG has no per-server naming convention or the server
  /// opted out of it).
  std::string server_hostname(const ServerView& server,
                              std::size_t snapshot) const;

  /// Whether this HG's authority honours ECS at this point of the study
  /// (Google stopped exposing off-nets to ECS queries for its main
  /// domains after ~2016, §1).
  bool ecs_usable(std::size_t snapshot) const;

  int hg() const { return hg_; }

 private:
  struct Cache {
    std::size_t snapshot = static_cast<std::size_t>(-1);
    std::unordered_map<topo::AsId, std::vector<net::IPv4>> offnets;
    std::vector<net::IPv4> onnets;
  };

  bool in_domains(std::string_view hostname) const;
  const Cache& cache(std::size_t snapshot) const;

  const WorldView& world_;
  int hg_;
  mutable Cache cache_;
};

/// Pseudo airport code of a hosting AS (stable, derived from its country
/// and ASN) — the location tag the FNA-style naming scheme embeds.
std::string airport_code(const topo::Topology& topology, topo::AsId as);

}  // namespace offnet::dns
