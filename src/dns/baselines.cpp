#include "dns/baselines.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace offnet::dns {

namespace {

std::vector<topo::AsId> to_sorted_ases(
    const WorldView& world, int hg,
    const std::unordered_set<std::uint32_t>& ips, std::size_t snapshot) {
  // Both techniques end with the standard IP-to-AS mapping step; HG-own
  // ASes are on-nets, not off-nets.
  std::unordered_set<net::Asn> own;
  if (auto org = world.topology().orgs().find_exact(
          world.profile(hg).org_name)) {
    for (topo::AsId id : world.topology().orgs().ases_of(*org)) {
      own.insert(world.topology().as(id).asn);
    }
  }
  std::unordered_set<topo::AsId> ases;
  const auto& map = world.ip2as().at(snapshot);
  // offnet-lint: allow(unordered-iter): accumulates into a set that is sorted below
  for (std::uint32_t ip : ips) {
    for (net::Asn asn : map.lookup(net::IPv4(ip))) {
      if (own.contains(asn)) continue;
      if (auto id = world.topology().find_asn(asn)) ases.insert(*id);
    }
  }
  std::vector<topo::AsId> out(ases.begin(), ases.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

EcsMapper::EcsMapper(const WorldView& world, int hg)
    : world_(world), authority_(world, hg) {}

std::vector<topo::AsId> EcsMapper::map_footprint(std::size_t snapshot) const {
  if (!authority_.ecs_usable(snapshot)) return {};
  const topo::Topology& topology = world_.topology();
  const std::string hostname =
      "www." + world_.profile(authority_.hg()).domains.front();
  const auto& alive = topology.alive_mask(snapshot);

  std::unordered_set<std::uint32_t> ips;
  for (topo::AsId id = 0; id < topology.as_count(); ++id) {
    if (!alive[id] || topology.as(id).prefixes.empty()) continue;
    // One query per announced prefix of the client AS.
    for (const net::Prefix& prefix : topology.as(id).prefixes) {
      auto response = authority_.resolve_ecs(hostname, prefix, snapshot);
      for (net::IPv4 ip : response.addresses) ips.insert(ip.value());
    }
  }
  return to_sorted_ases(world_, authority_.hg(), ips, snapshot);
}

PatternEnumerator::PatternEnumerator(const WorldView& world, int hg)
    : world_(world), authority_(world, hg) {}

std::size_t PatternEnumerator::guesses_per_snapshot() const {
  // codes-per-country * countries * counter range.
  return world_.topology().country_count() * 6 * 60;
}

std::vector<topo::AsId> PatternEnumerator::map_footprint(
    std::size_t snapshot) const {
  const HgView p = world_.profile(authority_.hg());
  std::string suffix;
  if (p.name == "Facebook") {
    suffix = ".fna.fbcdn.net";
  } else if (p.name == "Netflix") {
    suffix = ".isp.oca.nflxvideo.net";
  } else {
    return {};  // no exploitable naming convention (§1)
  }

  const topo::Topology& topology = world_.topology();
  std::unordered_set<std::uint32_t> ips;
  for (topo::CountryId c = 0; c < topology.country_count(); ++c) {
    std::string country(topology.country(c).code);
    std::transform(country.begin(), country.end(), country.begin(),
                   [](unsigned char ch) {
                     return static_cast<char>(std::tolower(ch));
                   });
    for (int slot = 0; slot < 6; ++slot) {
      // Walk the per-location counter until a few consecutive misses.
      int misses = 0;
      for (int k = 1; k <= 60 && misses < 3; ++k) {
        std::string hostname =
            country + std::to_string(slot) + "-" + std::to_string(k) + suffix;
        auto response = authority_.resolve_name(hostname, snapshot);
        if (response.addresses.empty()) {
          ++misses;
          continue;
        }
        misses = 0;
        for (net::IPv4 ip : response.addresses) ips.insert(ip.value());
      }
    }
  }
  return to_sorted_ases(world_, authority_.hg(), ips, snapshot);
}

BaselineComparison compare_footprints(std::span<const topo::AsId> baseline,
                                      std::span<const topo::AsId> pipeline) {
  BaselineComparison out;
  out.baseline_ases = baseline.size();
  out.pipeline_ases = pipeline.size();
  std::vector<topo::AsId> overlap;
  std::set_intersection(baseline.begin(), baseline.end(), pipeline.begin(),
                        pipeline.end(), std::back_inserter(overlap));
  out.overlap = overlap.size();
  return out;
}

}  // namespace offnet::dns
