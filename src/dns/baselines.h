#pragma once

#include <vector>

#include "dns/authority.h"

namespace offnet::dns {

/// The earlier mapping techniques the paper compares against (§5),
/// implemented for real against the simulated DNS control plane.

/// Calder et al.'s EDNS-Client-Subnet mapper: issue queries that appear
/// to come from every routed prefix and collect the addresses the HG's
/// authority returns, mapped to ASes with the same BGP-derived IP-to-AS
/// mapping the certificate pipeline uses.
class EcsMapper {
 public:
  /// `world` must outlive the mapper (see dns::WorldView).
  EcsMapper(const WorldView& world, int hg);

  /// The AS footprint uncovered by the ECS sweep (sorted, HG's own ASes
  /// excluded). Empty when the HG ignores ECS or has stopped exposing
  /// off-nets to it.
  std::vector<topo::AsId> map_footprint(std::size_t snapshot) const;

 private:
  const WorldView& world_;
  HgAuthority authority_;
};

/// The hostname-pattern enumeration used to map Facebook's FNA and
/// Netflix's Open Connect (§1/§5): guess per-location hostnames from
/// public airport codes and counters, resolve each, and keep the hits.
/// "Fragile and tedious": non-standard names are never found.
class PatternEnumerator {
 public:
  /// `world` must outlive the enumerator (see dns::WorldView).
  PatternEnumerator(const WorldView& world, int hg);

  std::vector<topo::AsId> map_footprint(std::size_t snapshot) const;

  /// The guessed hostname space (for reporting query cost).
  std::size_t guesses_per_snapshot() const;

 private:
  const WorldView& world_;
  HgAuthority authority_;
};

/// Overlap statistics between a baseline footprint and the certificate
/// pipeline's footprint (both sorted AsId vectors).
struct BaselineComparison {
  std::size_t baseline_ases = 0;
  std::size_t pipeline_ases = 0;
  std::size_t overlap = 0;

  /// Share of the baseline's ASes the pipeline also uncovers (the
  /// paper's headline: 94-98%).
  double covered_share() const {
    return baseline_ases > 0 ? static_cast<double>(overlap) / baseline_ases
                             : 0.0;
  }
  /// ASes only the pipeline finds (its coverage advantage).
  std::size_t pipeline_extra() const { return pipeline_ases - overlap; }
};

BaselineComparison compare_footprints(std::span<const topo::AsId> baseline,
                                      std::span<const topo::AsId> pipeline);

}  // namespace offnet::dns
