#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "bgp/feed.h"
#include "net/prefix.h"
#include "topology/topology.h"

/// The World-facing facade of the DNS control-plane simulation. The
/// authority and the baseline mappers need exactly four things from the
/// simulated Internet: the AS topology, the BGP-derived IP-to-AS view,
/// a Hypergiant's public identity, and where that HG's servers sit in a
/// given snapshot. scan::WorldDnsView projects the full scan::World onto
/// this interface, so src/dns depends only on layer-2 domain types and
/// the old dns -> scan layer back-edge is gone (ROADMAP item).
namespace offnet::dns {

/// One deployed server as the naming schemes and redirection logic see
/// it: where it is, not what fleet machinery produced it.
struct ServerView {
  topo::AsId as = topo::kNoAs;
  net::IPv4 ip;
  bool offnet = false;  // false: an on-net front end
};

/// A Hypergiant's public identity: what its authoritative DNS serves
/// and under which org its own ASes register.
struct HgView {
  std::string_view name;      // "Google", "Facebook", ...
  std::string_view org_name;  // "Google LLC" (CAIDA-style org entry)
  std::span<const std::string> domains;
};

class WorldView {
 public:
  virtual ~WorldView() = default;

  virtual const topo::Topology& topology() const = 0;
  virtual const bgp::Ip2AsSeries& ip2as() const = 0;

  /// Identity of hypergiant `hg` (index into the study's HG list).
  virtual HgView profile(int hg) const = 0;

  /// Visits every on-net/off-net server of `hg` deployed in `snapshot`,
  /// in the fleet's deterministic order.
  virtual void for_each_server(
      std::size_t snapshot, int hg,
      const std::function<void(const ServerView&)>& fn) const = 0;

  /// The ASes hosting a confirmed deployment of `hg` at `snapshot`,
  /// sorted ascending (the ground-truth footprint the naming schemes
  /// enumerate).
  virtual std::span<const topo::AsId> confirmed_hosts(std::size_t snapshot,
                                                      int hg) const = 0;
};

}  // namespace offnet::dns
