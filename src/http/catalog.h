#pragma once

#include <cstdint>
#include <vector>

#include "http/headers.h"

namespace offnet::http {

using HeaderSetId = std::uint32_t;
constexpr HeaderSetId kNoHeaders = 0xffffffffu;

/// Interning pool for header sets. Scan corpuses reference header sets by
/// id: servers of the same software emit identical headers, so interning
/// keeps hundreds of thousands of scan records cheap.
class HeaderCatalog {
 public:
  HeaderSetId add(HeaderMap headers) {
    sets_.push_back(std::move(headers));
    return static_cast<HeaderSetId>(sets_.size() - 1);
  }

  const HeaderMap& get(HeaderSetId id) const { return sets_[id]; }
  std::size_t size() const { return sets_.size(); }

  static const HeaderMap& empty_set() {
    static const HeaderMap kEmpty;
    return kEmpty;
  }

  const HeaderMap& get_or_empty(HeaderSetId id) const {
    return id == kNoHeaders ? empty_set() : get(id);
  }

 private:
  std::vector<HeaderMap> sets_;
};

}  // namespace offnet::http
