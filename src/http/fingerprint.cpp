#include "http/fingerprint.h"

#include <algorithm>

namespace offnet::http {

namespace {

bool value_matches(const HeaderFingerprint& fp, std::string_view value) {
  if (fp.value.empty()) return true;
  if (fp.value_is_prefix) {
    return value.substr(0, fp.value.size()) == fp.value;
  }
  return value == fp.value;
}

bool name_matches(const HeaderFingerprint& fp, std::string_view name) {
  if (fp.name_is_prefix) {
    if (name.size() < fp.name.size()) return false;
    return header_name_equals(name.substr(0, fp.name.size()), fp.name);
  }
  return header_name_equals(name, fp.name);
}

}  // namespace

bool HeaderFingerprint::matches(const HeaderMap& headers) const {
  for (const Header& h : headers.all()) {
    if (name_matches(*this, h.name) && value_matches(*this, h.value)) {
      return true;
    }
  }
  return false;
}

HeaderFingerprint HeaderFingerprint::parse(std::string_view text) {
  HeaderFingerprint fp;
  auto colon = text.find(':');
  std::string_view name =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  std::string_view value =
      colon == std::string_view::npos ? std::string_view{}
                                      : text.substr(colon + 1);
  if (name.size() >= 2 && name.substr(name.size() - 2) == ".*") {
    fp.name_is_prefix = true;
    name = name.substr(0, name.size() - 2);
  }
  if (!value.empty() && value.back() == '*') {
    fp.value_is_prefix = true;
    value = value.substr(0, value.size() - 1);
  }
  fp.name = std::string(name);
  fp.value = std::string(value);
  return fp;
}

std::string HeaderFingerprint::to_string() const {
  std::string out = name;
  if (name_is_prefix) out += ".*";
  out += ":";
  out += value;
  if (value_is_prefix) out += "*";
  return out;
}

bool HeaderFingerprintSet::matches(const HeaderMap& headers) const {
  return std::any_of(patterns.begin(), patterns.end(),
                     [&](const HeaderFingerprint& fp) {
                       return fp.matches(headers);
                     });
}

}  // namespace offnet::http
