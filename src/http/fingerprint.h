#pragma once

#include <string>
#include <vector>

#include "http/headers.h"

namespace offnet::http {

/// One header-based server fingerprint (a row of the paper's Table 4).
/// An empty value means "header name present" suffices; a value ending
/// in '*' is matched as a prefix; ".*" after a name prefix (as in
/// "X-Netflix.*") is matched as a header-NAME prefix.
struct HeaderFingerprint {
  std::string name;
  std::string value;           // empty => name-only match
  bool value_is_prefix = false;
  bool name_is_prefix = false;

  bool matches(const HeaderMap& headers) const;

  /// Parses the paper's notation: "Server:AkamaiGHost", "CF-Request-Id:",
  /// "Server:gws*", "X-Netflix.*:".
  static HeaderFingerprint parse(std::string_view text);

  std::string to_string() const;
  bool operator==(const HeaderFingerprint&) const = default;
};

/// A Hypergiant's full header fingerprint: any listed pattern matching
/// classifies the response as that Hypergiant's server software.
struct HeaderFingerprintSet {
  std::vector<HeaderFingerprint> patterns;

  bool matches(const HeaderMap& headers) const;
  bool empty() const { return patterns.empty(); }
};

}  // namespace offnet::http
