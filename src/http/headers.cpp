#include "http/headers.h"

#include <array>

namespace offnet::http {

void HeaderMap::add(std::string name, std::string value) {
  headers_.push_back(Header{std::move(name), std::move(value)});
}

const std::string* HeaderMap::find(std::string_view name) const {
  for (const Header& h : headers_) {
    if (header_name_equals(h.name, name)) return &h.value;
  }
  return nullptr;
}

bool header_name_equals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
    char cb = b[i] >= 'A' && b[i] <= 'Z' ? char(b[i] - 'A' + 'a') : b[i];
    if (ca != cb) return false;
  }
  return true;
}

bool is_standard_header(std::string_view name) {
  static constexpr std::array<std::string_view, 20> kStandard = {
      "cache-control",  "content-length",   "content-type",
      "date",           "expires",          "connection",
      "etag",           "last-modified",    "accept-ranges",
      "vary",           "age",              "content-encoding",
      "keep-alive",     "transfer-encoding","pragma",
      "set-cookie",     "location",         "content-language",
      "strict-transport-security",          "x-content-type-options",
  };
  for (std::string_view s : kStandard) {
    if (header_name_equals(name, s)) return true;
  }
  return false;
}

}  // namespace offnet::http
