#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace offnet::http {

/// One HTTP response header.
struct Header {
  std::string name;
  std::string value;

  bool operator==(const Header&) const = default;
};

/// An ordered HTTP response header list, as captured by banner scans.
/// Name lookups are case-insensitive per RFC 9110.
class HeaderMap {
 public:
  HeaderMap() = default;
  HeaderMap(std::initializer_list<Header> headers) : headers_(headers) {}

  void add(std::string name, std::string value);

  /// First value for `name`, or nullptr.
  const std::string* find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  std::span<const Header> all() const { return headers_; }
  std::size_t size() const { return headers_.size(); }
  bool empty() const { return headers_.empty(); }

 private:
  std::vector<Header> headers_;
};

/// Case-insensitive header-name equality.
bool header_name_equals(std::string_view a, std::string_view b);

/// True for ubiquitous standard response headers (Cache-Control,
/// Content-Length, ...). The fingerprint learner filters these out when
/// looking for name-only debug headers (§4.4); name-value pairs such as
/// "Server: AkamaiGHost" remain eligible.
bool is_standard_header(std::string_view name);

}  // namespace offnet::http
