#include "hypergiant/deployment.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "net/date.h"
#include "net/rng.h"
#include "topology/category.h"

namespace offnet::hg {

namespace {

/// Weighted sampling without replacement (Efraimidis-Spirakis): draw `k`
/// distinct items, probability proportional to weight. Exact for any
/// k <= n.
std::vector<topo::AsId> weighted_sample(net::Rng& rng,
                                        std::span<const topo::AsId> items,
                                        std::span<const double> weights,
                                        std::size_t k) {
  k = std::min(k, items.size());
  if (k == 0) return {};
  std::vector<std::pair<double, topo::AsId>> keyed;
  keyed.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    double w = weights[i];
    if (w <= 0.0) continue;
    double u = rng.uniform_real(1e-12, 1.0);
    keyed.emplace_back(-std::log(u) / w, items[i]);
  }
  k = std::min(k, keyed.size());
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end());
  std::vector<topo::AsId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(keyed[i].second);
  return out;
}

RegionWeights lerp_weights(const RegionWeights& a, const RegionWeights& b,
                           double t) {
  RegionWeights out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a[i] + (b[i] - a[i]) * t;
  }
  return out;
}

}  // namespace

DeploymentPlan::DeploymentPlan(
    std::vector<std::vector<HgDeployment>> per_snapshot, std::size_t as_count)
    : per_snapshot_(std::move(per_snapshot)), as_count_(as_count) {}

std::vector<char> DeploymentPlan::confirmed_mask(std::size_t snapshot,
                                                 int hg) const {
  std::vector<char> mask(as_count_, 0);
  for (topo::AsId id : at(snapshot, hg).confirmed) mask[id] = 1;
  return mask;
}

DeploymentPlanner::DeploymentPlanner(const topo::Topology& topology,
                                     std::span<const HgProfile> profiles,
                                     DeploymentConfig config)
    : topology_(topology), profiles_(profiles), config_(std::move(config)) {}

DeploymentPlan DeploymentPlanner::plan() const {
  const auto snapshots = net::study_snapshots();
  const std::size_t n_as = topology_.as_count();
  const std::size_t n_hg = profiles_.size();
  net::Rng rng = net::Rng(config_.seed).fork("deployment");

  // ASes owned by any Hypergiant can never host another HG's off-net.
  std::vector<char> hg_owned(n_as, 0);
  for (const HgProfile& p : profiles_) {
    if (auto org = topology_.orgs().find_exact(p.org_name)) {
      for (topo::AsId id : topology_.orgs().ases_of(*org)) hg_owned[id] = 1;
    }
  }

  // Stable per-AS stratum for the early-footprint decorrelation.
  std::vector<double> stratum(n_as);
  for (topo::AsId id = 0; id < n_as; ++id) {
    stratum[id] = static_cast<double>(
                      net::Rng::hash(std::to_string(topology_.as(id).asn)) %
                      100000) /
                  100000.0;
  }

  std::vector<topo::Region> as_region(n_as);
  for (topo::AsId id = 0; id < n_as; ++id) {
    auto c = topology_.as(id).country;
    as_region[id] = c == topo::kNoCountry
                        ? topo::Region::kNorthAmerica
                        : topology_.country(c).region;
  }

  // Hosting-pool state.
  std::vector<char> in_pool(n_as, 0);
  std::vector<topo::AsId> pool;

  // Per-HG state.
  std::vector<std::vector<char>> in_set(n_hg, std::vector<char>(n_as, 0));
  std::vector<std::vector<topo::AsId>> members(n_hg);
  std::vector<std::vector<char>> in_certonly(n_hg,
                                             std::vector<char>(n_as, 0));
  std::vector<std::vector<topo::AsId>> certonly_members(n_hg);

  std::vector<std::vector<HgDeployment>> result(snapshots.size());

  const int akamai_idx =
      profile_index(profiles_, "Akamai");

  for (std::size_t t = 0; t < snapshots.size(); ++t) {
    const net::YearMonth month = snapshots[t];
    const double frac =
        snapshots.size() > 1
            ? static_cast<double>(t) / static_cast<double>(snapshots.size() - 1)
            : 0.0;
    const auto& alive = topology_.alive_mask(t);
    const auto& cones = topology_.cone_sizes(t);

    auto category_of = [&](topo::AsId id) {
      return static_cast<std::size_t>(topo::categorize(cones[id]));
    };

    // ---- Grow the hosting pool to its target size. ----
    {
      auto target = static_cast<std::size_t>(
          anchor_value(config_.pool_size, month) * config_.pool_calibration);
      if (pool.size() < target) {
        std::vector<topo::AsId> candidates;
        std::vector<double> weights;
        for (topo::AsId id = 0; id < n_as; ++id) {
          if (!alive[id] || in_pool[id] || hg_owned[id]) continue;
          double w = config_.pool_category_weights[category_of(id)] *
                     config_.pool_region_weights[static_cast<int>(
                         as_region[id])] *
                     std::pow(topology_.as(id).user_share + 0.002, 0.4) *
                     (topology_.as(id).eyeball ? 1.0 : 0.45);
          candidates.push_back(id);
          weights.push_back(w);
        }
        for (topo::AsId id :
             weighted_sample(rng, candidates, weights, target - pool.size())) {
          in_pool[id] = 1;
          pool.push_back(id);
        }
      }
    }

    // ---- Confirmed (real server) deployments per HG. ----
    for (std::size_t h = 0; h < n_hg; ++h) {
      const HgProfile& p = profiles_[h];
      auto target = static_cast<std::size_t>(std::llround(
          anchor_value(p.offnet_ases, month) * p.anchor_calibration));
      auto& set = in_set[h];
      auto& list = members[h];

      RegionWeights region_w =
          lerp_weights(p.initial_region_weights, p.late_region_weights, frac);

      std::vector<char> excluded_country(topo::country_table().size(), 0);
      for (const std::string& code : p.excluded_countries) {
        for (topo::CountryId c = 0; c < topo::country_table().size(); ++c) {
          if (topo::country_table()[c].code == code) excluded_country[c] = 1;
        }
      }

      auto removal_weight = [&](topo::AsId id) {
        double cat = p.category_weights[category_of(id)];
        double reg = p.late_region_weights[static_cast<int>(as_region[id])];
        return 1.0 / std::max(1e-3, cat * (reg + 0.02));
      };

      // Churn: a small slice of hosts stops hosting each snapshot; the
      // deficit below re-fills with newcomers.
      if (!list.empty() && config_.churn_rate > 0.0) {
        std::size_t churn = static_cast<std::size_t>(
            std::floor(config_.churn_rate * static_cast<double>(list.size())));
        if (churn > 0) {
          std::vector<double> w(list.size());
          for (std::size_t i = 0; i < list.size(); ++i) w[i] = 1.0;
          for (topo::AsId id : weighted_sample(rng, list, w, churn)) {
            set[id] = 0;
          }
          std::erase_if(list, [&](topo::AsId id) { return !set[id]; });
        }
      }

      if (list.size() > target) {
        // Shrink event (Akamai): drop the least-preferred hosts first.
        std::size_t drop = list.size() - target;
        std::vector<double> w(list.size());
        for (std::size_t i = 0; i < list.size(); ++i) {
          w[i] = removal_weight(list[i]);
        }
        for (topo::AsId id : weighted_sample(rng, list, w, drop)) set[id] = 0;
        std::erase_if(list, [&](topo::AsId id) { return !set[id]; });
      } else if (list.size() < target) {
        std::size_t want = target - list.size();
        std::vector<topo::AsId> candidates;
        std::vector<double> weights;
        candidates.reserve(pool.size());
        for (topo::AsId id : pool) {
          if (set[id] || !alive[id]) continue;
          auto country = topology_.as(id).country;
          if (country != topo::kNoCountry && excluded_country[country]) {
            continue;
          }
          double d = stratum[id] - p.pool_stratum_home;
          double w = p.category_weights[category_of(id)] *
                     (region_w[static_cast<int>(as_region[id])] + 0.01) *
                     std::pow(topology_.as(id).user_share + 0.001,
                              p.popularity_bias) *
                     (0.08 + std::exp(-(d * d) / (2 * 0.30 * 0.30)));
          candidates.push_back(id);
          weights.push_back(w);
        }
        for (topo::AsId id : weighted_sample(rng, candidates, weights, want)) {
          set[id] = 1;
          list.push_back(id);
        }
      }
    }

    // ---- Service-present (cert-only) placements per HG. ----
    for (std::size_t h = 0; h < n_hg; ++h) {
      const HgProfile& p = profiles_[h];
      auto confirmed_n = static_cast<long long>(members[h].size());
      auto service_n = static_cast<long long>(std::llround(
          anchor_value(p.certonly_ases, month) * p.anchor_calibration));
      auto target =
          static_cast<std::size_t>(std::max(0ll, service_n - confirmed_n));
      auto& set = in_certonly[h];
      auto& list = certonly_members[h];

      // Hosts may have gained a confirmed deployment; cert-only is
      // disjoint from confirmed.
      std::erase_if(list, [&](topo::AsId id) {
        if (in_set[h][id]) {
          set[id] = 0;
          return true;
        }
        return false;
      });

      if (list.size() > target) {
        std::size_t drop = list.size() - target;
        std::vector<double> w(list.size(), 1.0);
        for (topo::AsId id : weighted_sample(rng, list, w, drop)) set[id] = 0;
        std::erase_if(list, [&](topo::AsId id) { return !set[id]; });
      } else if (list.size() < target) {
        std::size_t want = target - list.size();
        std::vector<topo::AsId> candidates;
        std::vector<double> weights;
        if (p.third_party_served && akamai_idx >= 0) {
          // Service rides a third-party CDN: place inside that CDN's
          // hosting ASes (this is what makes Akamai edges answer for
          // Apple/LinkedIn/Disney domains, §5).
          for (topo::AsId id : members[akamai_idx]) {
            if (set[id] || in_set[h][id]) continue;
            candidates.push_back(id);
            weights.push_back(1.0);
          }
        } else {
          // Cloud-hosted frontends / management interfaces: mostly pool
          // networks plus some arbitrary hosting ASes.
          for (topo::AsId id : pool) {
            if (set[id] || in_set[h][id] || !alive[id]) continue;
            candidates.push_back(id);
            weights.push_back(
                1.0 + 2.0 * (category_of(id) >= 2 /* Medium+ */ ? 1.0 : 0.0));
          }
        }
        for (topo::AsId id : weighted_sample(rng, candidates, weights, want)) {
          set[id] = 1;
          list.push_back(id);
        }
      }
    }

    // ---- Record the snapshot. ----
    auto& snap = result[t];
    snap.resize(n_hg);
    for (std::size_t h = 0; h < n_hg; ++h) {
      snap[h].confirmed = members[h];
      std::sort(snap[h].confirmed.begin(), snap[h].confirmed.end());
      snap[h].cert_only = certonly_members[h];
      std::sort(snap[h].cert_only.begin(), snap[h].cert_only.end());
    }
  }

  return DeploymentPlan(std::move(result), n_as);
}

}  // namespace offnet::hg
