#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergiant/profile.h"
#include "topology/topology.h"

namespace offnet::hg {

/// Planner knobs. The hosting-pool series calibrates the co-hosting
/// behaviour of Fig. 10: networks willing to host one Hypergiant tend to
/// host more, so all HGs draw hosts from a shared, slowly growing pool.
struct DeploymentConfig {
  std::uint64_t seed = 20210823;

  /// Target size of the hosting pool over time (#ASes ever available to
  /// host HG servers at that point). Slightly above the paper's union of
  /// ASes hosting >=1 top-4 HG (Fig. 10b).
  Anchors pool_size = {
      {net::YearMonth(2013, 10), 3000}, {net::YearMonth(2014, 10), 3250},
      {net::YearMonth(2015, 10), 3500}, {net::YearMonth(2016, 10), 3700},
      {net::YearMonth(2017, 10), 3900}, {net::YearMonth(2018, 10), 4100},
      {net::YearMonth(2019, 10), 4350}, {net::YearMonth(2020, 10), 4600},
      {net::YearMonth(2021, 4), 4800},
  };

  /// Pool-admission category weights (per member, on top of
  /// availability), tuned so pool demographics match Fig. 5.
  CategoryWeights pool_category_weights = {1.0, 10.0, 24.0, 36.0, 50.0};

  /// Pool-admission region weights (Africa, Asia, Europe, NorthAmerica,
  /// Oceania, SouthAmerica): hosting willingness skews toward the regions
  /// where HGs actually expanded — most dramatically South America
  /// (Fig. 6c's exponential growth needs the hosts to exist in the pool).
  RegionWeights pool_region_weights = {1.0, 1.1, 0.9, 0.7, 0.7, 2.3};

  /// Ground-truth inflation of the pool series (the measured union of
  /// host ASes sits below the true one, like per-HG footprints).
  double pool_calibration = 1.08;

  /// Per-snapshot fraction of each HG's hosts replaced (host churn keeps
  /// ~5% newcomers per snapshot, Appendix A.8).
  double churn_rate = 0.012;
};

/// One Hypergiant's host ASes at one snapshot.
struct HgDeployment {
  /// ASes with real HG server installations (certificates AND headers
  /// will confirm). Sorted.
  std::vector<topo::AsId> confirmed;
  /// ASes where only the service is present (HG certificate on third-
  /// party hardware; header confirmation will fail). Sorted, disjoint
  /// from `confirmed`.
  std::vector<topo::AsId> cert_only;
};

/// Ground-truth deployments for every HG at every study snapshot.
class DeploymentPlan {
 public:
  DeploymentPlan(std::vector<std::vector<HgDeployment>> per_snapshot,
                 std::size_t as_count);

  const HgDeployment& at(std::size_t snapshot, int hg) const {
    return per_snapshot_[snapshot][hg];
  }
  std::size_t snapshot_count() const { return per_snapshot_.size(); }
  std::size_t hg_count() const {
    return per_snapshot_.empty() ? 0 : per_snapshot_[0].size();
  }

  /// Mask of ASes hosting a confirmed deployment of `hg` at `snapshot`.
  std::vector<char> confirmed_mask(std::size_t snapshot, int hg) const;

 private:
  std::vector<std::vector<HgDeployment>> per_snapshot_;
  std::size_t as_count_;
};

/// Evolves every Hypergiant's footprint across the study period against
/// the calibrated anchor curves: shared hosting pool, per-HG region and
/// category preferences, eyeball chasing, shrink events (Akamai), churn,
/// and third-party service placement.
class DeploymentPlanner {
 public:
  DeploymentPlanner(const topo::Topology& topology,
                    std::span<const HgProfile> profiles,
                    DeploymentConfig config);

  DeploymentPlan plan() const;

 private:
  const topo::Topology& topology_;
  std::span<const HgProfile> profiles_;
  DeploymentConfig config_;
};

}  // namespace offnet::hg
