#include "hypergiant/fleet.h"

#include <algorithm>
#include <cmath>

#include "net/rng.h"
#include "net/table.h"

namespace offnet::hg {

namespace {

constexpr net::YearMonth kNetflixEpisodeStart{2017, 4};
constexpr net::YearMonth kNetflixEpisodeEnd{2019, 10};  // exclusive

// Free Cloudflare customer certificates scattered around the Internet;
// the dNSName-containment rule (§4.3) must filter all of them.
constexpr int kFreeCloudflareCustomers = 400;

// Dedicated-IP Cloudflare customers; their certificates appear as default
// certs on Cloudflare's own edge IPs too (two edge IPs each), which is
// what lets backend copies slip past the containment rule (§6.1, §7).
constexpr int kDedicatedCloudflareSlots = 150;

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x632be59bd9b4e019ull + (h << 6) + (h >> 2);
  h ^= c + 0xd6e8feb86659fd93ull + (h << 6) + (h >> 2);
  return h;
}

// Per-call-site domains for the cert cache key (first tuple element).
// The remaining elements carry the call site's full identifying tuple
// verbatim — never a mix3 of it (see the CertKey comment in fleet.h).
constexpr std::uint64_t kKeyServing = 1;     // (hg, slot, generation)
constexpr std::uint64_t kKeySni = 2;         // (hg, domain, generation)
constexpr std::uint64_t kKeyAnonymous = 3;   // (base cert)
constexpr std::uint64_t kKeyExpired = 4;     // (hg)
constexpr std::uint64_t kKeyCloudflare = 5;  // (index, dedicated)

}  // namespace

FleetBuilder::FleetBuilder(const topo::Topology& topology,
                           std::span<const HgProfile> profiles,
                           const DeploymentPlan& plan,
                           tls::CertificateStore& certs,
                           tls::RootStore& roots,
                           http::HeaderCatalog& catalog, std::uint64_t seed,
                           Countermeasures countermeasures)
    : topology_(topology),
      profiles_(profiles),
      plan_(plan),
      certs_(certs),
      catalog_(catalog),
      ca_(certs, roots),
      seed_(seed),
      countermeasures_(countermeasures) {
  // Public CAs the HGs buy from.
  tls::CertId root1 = ca_.create_root("GlobalTrust Services");
  tls::CertId root2 = ca_.create_root("WebSecure Authority");
  issuers_.push_back(ca_.create_intermediate(root1, "GlobalTrust RSA CA 1"));
  issuers_.push_back(ca_.create_intermediate(root1, "GlobalTrust ECC CA 2"));
  issuers_.push_back(ca_.create_intermediate(root2, "WebSecure DV CA"));
  issuers_.push_back(ca_.create_intermediate(root2, "WebSecure OV CA"));

  own_ases_.resize(profiles_.size());
  for (std::size_t h = 0; h < profiles_.size(); ++h) {
    if (auto org = topology_.orgs().find_exact(profiles_[h].org_name)) {
      auto span = topology_.orgs().ases_of(*org);
      own_ases_[h].assign(span.begin(), span.end());
    }
  }

  akamai_idx_ = profile_index(profiles_, "Akamai");
  cloudflare_idx_ = profile_index(profiles_, "Cloudflare");
  for (std::string_view customer :
       {"Akamai", "Apple", "Twitter", "Microsoft", "Disney"}) {
    int idx = profile_index(profiles_, customer);
    if (idx >= 0) akamai_service_mask_ |= std::uint64_t{1} << idx;
  }

  build_header_sets();
}

bool FleetBuilder::in_netflix_episode(net::YearMonth month) {
  return month >= kNetflixEpisodeStart && month < kNetflixEpisodeEnd;
}

net::DayTime FleetBuilder::scan_time(std::size_t snapshot) {
  return net::DayTime::from(net::study_snapshots()[snapshot], 15);
}

void FleetBuilder::build_header_sets() {
  auto standard = [](http::HeaderMap& m) {
    m.add("Content-Type", "text/html");
    m.add("Cache-Control", "max-age=3600");
    m.add("Content-Length", "5120");
  };
  auto debug_headers = [](const HgProfile& p, http::HeaderMap& m) {
    for (const std::string& line : p.server_headers) {
      auto fp = http::HeaderFingerprint::parse(line);
      std::string name = fp.name + (fp.name_is_prefix ? ".trace-id" : "");
      std::string value = fp.value.empty()
                              ? "f3a9c1d2e4"
                              : fp.value + (fp.value_is_prefix ? "/2.1" : "");
      m.add(std::move(name), std::move(value));
    }
  };

  http::HeaderMap nginx;
  standard(nginx);
  nginx.add("Server", "nginx");
  nginx_headers_ = catalog_.add(std::move(nginx));

  http::HeaderMap apache;
  standard(apache);
  apache.add("Server", "Apache/2.4.41 (Unix)");
  apache_headers_ = catalog_.add(std::move(apache));

  header_sets_.resize(profiles_.size());
  conflict_headers_.resize(profiles_.size(), http::kNoHeaders);
  for (std::size_t h = 0; h < profiles_.size(); ++h) {
    const HgProfile& p = profiles_[h];

    http::HeaderMap onnet;
    standard(onnet);
    http::HeaderMap offnet;
    standard(offnet);
    if (p.login_only_headers) {
      // Debug headers only reach logged-in users; banner scans see the
      // bare server software (§7 "Missing Headers").
      if (p.nginx_default_offnets) {
        onnet.add("Server", "nginx");
        offnet.add("Server", "nginx");
      }
    } else {
      debug_headers(p, onnet);
      debug_headers(p, offnet);
    }
    header_sets_[h].onnet = catalog_.add(std::move(onnet));
    header_sets_[h].offnet = catalog_.add(std::move(offnet));

    // Reverse-proxy conflict responses: third-party edge (Akamai) headers
    // together with the origin HG's debug headers (§7).
    if (akamai_idx_ >= 0 && !p.login_only_headers) {
      http::HeaderMap conflict;
      standard(conflict);
      debug_headers(profiles_[akamai_idx_], conflict);
      debug_headers(p, conflict);
      conflict_headers_[h] = catalog_.add(std::move(conflict));
    }
  }
}

int FleetBuilder::cert_slot_count(int hg, std::size_t snapshot) const {
  const HgProfile& p = profiles_[hg];
  double frac = snapshot /
                std::max<double>(1.0, double(net::snapshot_count() - 1));
  double n = p.cert_count_start +
             (p.cert_count_end - p.cert_count_start) * frac;
  return std::max(1, static_cast<int>(n));
}

int FleetBuilder::pick_cert_slot(int hg, std::size_t snapshot,
                                 net::Rng& rng) const {
  const HgProfile& p = profiles_[hg];
  double frac = snapshot /
                std::max<double>(1.0, double(net::snapshot_count() - 1));
  double s = p.cert_zipf_start + (p.cert_zipf_end - p.cert_zipf_start) * frac;
  int slots = cert_slot_count(hg, snapshot);
  // Inverse-CDF draw on the (truncated) Zipf distribution.
  double total = 0.0;
  for (int i = 0; i < slots; ++i) total += std::pow(i + 1.0, -s);
  double target = rng.uniform_real(0.0, total);
  double cumulative = 0.0;
  for (int i = 0; i < slots; ++i) {
    cumulative += std::pow(i + 1.0, -s);
    if (target < cumulative) return i;
  }
  return slots - 1;
}

tls::CertId FleetBuilder::cert_for(int hg, int slot,
                                   std::size_t snapshot) const {
  const HgProfile& p = profiles_[hg];
  net::DayTime at = scan_time(snapshot);
  std::int64_t generation = at.days() / std::max(1, p.cert_validity_days);
  CertKey key{kKeyServing, static_cast<std::uint64_t>(hg),
              static_cast<std::uint64_t>(slot),
              static_cast<std::uint64_t>(generation)};
  auto it = cert_cache_.find(key);
  if (it != cert_cache_.end()) return it->second;

  net::Rng rng = net::Rng(seed_).fork(
      mix3(net::Rng::hash(p.name), static_cast<std::uint64_t>(slot), 17));
  // SANs are a stable per-slot subset of the HG's domain universe; the
  // lowest slots carry the high-volume serving domains.
  std::vector<std::string> sans;
  std::size_t n_domains = 1 + rng.index(3);
  for (std::size_t d = 0; d < n_domains && d < p.domains.size(); ++d) {
    std::size_t pick =
        slot < 3 ? (slot + d) % p.domains.size() : rng.index(p.domains.size());
    std::string wildcard = "*." + p.domains[pick];
    if (std::find(sans.begin(), sans.end(), wildcard) == sans.end()) {
      sans.push_back(std::move(wildcard));
    }
  }

  tls::DistinguishedName subject;
  subject.organization = p.org_name;
  subject.common_name = sans.front();
  tls::CertId issuer = issuers_[net::Rng::hash(p.name) % issuers_.size()];
  net::DayTime not_before(generation * std::max(1, p.cert_validity_days));
  tls::CertId id = ca_.issue(issuer, std::move(subject), std::move(sans),
                             not_before, p.cert_validity_days + 10);
  cert_cache_.emplace(key, id);
  return id;
}

tls::CertId FleetBuilder::sni_response(const ServerRecord& server,
                                       std::string_view hostname,
                                       std::size_t snapshot) const {
  for (std::size_t g = 0; g < profiles_.size(); ++g) {
    if (!(server.serves_hgs & (std::uint64_t{1} << g))) continue;
    const HgProfile& p = profiles_[g];
    for (std::size_t d = 0; d < p.domains.size(); ++d) {
      if (!tls::dns_name_matches("*." + p.domains[d], hostname) &&
          p.domains[d] != hostname) {
        continue;
      }
      // A dedicated certificate covering exactly this domain (cached per
      // (hg, domain, generation) like every other cert).
      CertKey key{kKeySni, g, d,
                  static_cast<std::uint64_t>(
                      scan_time(snapshot).days() /
                      std::max(1, p.cert_validity_days))};
      auto it = cert_cache_.find(key);
      if (it != cert_cache_.end()) return it->second;
      tls::DistinguishedName subject;
      subject.organization =
          countermeasures_.strip_organization &&
                  server.role == ServerRole::kOffNet
              ? std::string{}
              : p.org_name;
      subject.common_name = "*." + p.domains[d];
      net::DayTime at = scan_time(snapshot);
      std::int64_t generation =
          at.days() / std::max(1, p.cert_validity_days);
      net::DayTime not_before(generation *
                              std::max(1, p.cert_validity_days));
      tls::CertId id = ca_.issue(
          issuers_[net::Rng::hash(p.name) % issuers_.size()],
          std::move(subject), {"*." + p.domains[d]}, not_before,
          p.cert_validity_days + 10);
      cert_cache_.emplace(key, id);
      return id;
    }
  }
  return tls::kNoCert;
}

tls::CertId FleetBuilder::anonymous_cert_for(int hg, int slot,
                                             std::size_t snapshot) const {
  // Countermeasure (3): same SANs and validity, but no Organization
  // entry — the keyword search has nothing to match.
  tls::CertId base = cert_for(hg, slot, snapshot);
  CertKey key{kKeyAnonymous, base, 0, 0};
  auto it = cert_cache_.find(key);
  if (it != cert_cache_.end()) return it->second;
  const tls::Certificate& original = certs_.get(base);
  tls::DistinguishedName subject;
  subject.common_name = original.subject.common_name;
  tls::CertId id =
      ca_.issue(original.issuer, std::move(subject), original.dns_names,
                original.not_before,
                static_cast<int>(original.not_after.days() -
                                 original.not_before.days()));
  cert_cache_.emplace(key, id);
  return id;
}

tls::CertId FleetBuilder::expired_cert_for(int hg,
                                           std::size_t snapshot) const {
  (void)snapshot;
  // The long-lived Open Connect default certificate that expired in
  // April 2017 and was only replaced in October 2019.
  CertKey key{kKeyExpired, static_cast<std::uint64_t>(hg), 0, 0};
  auto it = cert_cache_.find(key);
  if (it != cert_cache_.end()) return it->second;

  const HgProfile& p = profiles_[hg];
  tls::DistinguishedName subject;
  subject.organization = p.org_name;
  subject.common_name = "*." + p.domains.front();
  std::vector<std::string> sans = {"*." + p.domains.front()};
  if (p.domains.size() > 1) sans.push_back("*." + p.domains[1]);
  // Issued before the study starts, expiring at the episode boundary:
  // valid throughout 2013..2017-04, expired afterwards (§6.2).
  net::DayTime not_before = net::DayTime::from(net::YearMonth(2012, 6));
  net::DayTime expiry = net::DayTime::from(kNetflixEpisodeStart, 5);
  int validity = static_cast<int>(expiry.days() - not_before.days());
  tls::CertId id = ca_.issue(issuers_.front(), std::move(subject),
                             std::move(sans), not_before, validity);
  cert_cache_.emplace(key, id);
  return id;
}

tls::CertId FleetBuilder::cloudflare_customer_cert(int index,
                                                   bool dedicated) const {
  CertKey key{kKeyCloudflare, static_cast<std::uint64_t>(index),
              dedicated ? 1u : 0u, 0};
  auto it = cert_cache_.find(key);
  if (it != cert_cache_.end()) return it->second;

  tls::DistinguishedName subject;
  subject.organization = profiles_[cloudflare_idx_].org_name;
  std::string sni_name = "sni" + std::to_string(10000 + index) +
                         ".cloudflaressl.com";
  subject.common_name = sni_name;
  std::vector<std::string> sans = {sni_name};
  if (!dedicated) {
    // Free universal-SSL certs also name the customer's domain, which
    // never appears on Cloudflare's default on-net certs — the
    // containment rule (§4.3) filters these.
    sans.push_back("www.customer-" + std::to_string(index) + ".example");
  }
  net::DayTime not_before = net::DayTime::from(net::YearMonth(2013, 6));
  tls::CertId id = ca_.issue(issuers_.back(), std::move(subject),
                             std::move(sans), not_before, 360 * 9);
  cert_cache_.emplace(key, id);
  return id;
}

namespace {

net::IPv4 stable_ip(const topo::AsRecord& rec, std::uint64_t tag) {
  const auto& prefixes = rec.prefixes;
  const net::Prefix& prefix = prefixes[tag % prefixes.size()];
  std::uint64_t span = prefix.size() > 2 ? prefix.size() - 2 : 1;
  std::uint32_t offset = static_cast<std::uint32_t>(
      1 + (mix3(tag, prefix.base().value(), 0x51) % span));
  return prefix.base() + offset;
}

}  // namespace

void FleetBuilder::emit_onnet(std::vector<ServerRecord>& out, int hg,
                              std::size_t snapshot) const {
  const HgProfile& p = profiles_[hg];
  const auto& own = own_ases_[hg];
  if (own.empty()) return;
  int slots = cert_slot_count(hg, snapshot);
  // On-net capacity grows with the study like the rest of the fleet, but
  // never below what is needed to expose every serving certificate on
  // the HG's own address space (the §4.2 learning input).
  const double growth =
      0.40 + 0.60 * (static_cast<double>(snapshot) /
                   std::max<double>(1.0, double(net::snapshot_count() - 1)));
  int floor_count = slots;
  if (hg == cloudflare_idx_) {
    floor_count = std::max(floor_count, 2 * kDedicatedCloudflareSlots);
  }
  int count = std::max(static_cast<int>(p.onnet_servers * growth),
                       std::min(p.onnet_servers, floor_count));
  for (int i = 0; i < count; ++i) {
    topo::AsId as = own[i % own.size()];
    ServerRecord rec;
    rec.ip = stable_ip(topology_.as(as),
                       mix3(net::Rng::hash(p.name), 0x0, i));
    rec.as = as;
    rec.hg = static_cast<std::int16_t>(hg);
    rec.role = ServerRole::kOnNet;
    if (hg == cloudflare_idx_ && i < 2 * kDedicatedCloudflareSlots) {
      // Dedicated-IP edges: the customer's certificate IS the default.
      rec.https_cert =
          cloudflare_customer_cert(i % kDedicatedCloudflareSlots, true);
    } else {
      // Round-robin over slots so every serving certificate appears on
      // the HG's own address space (the fingerprint-learning input).
      rec.https_cert = cert_for(hg, i % slots, snapshot);
    }
    rec.https_headers = header_sets_[hg].onnet;
    rec.http_headers = header_sets_[hg].onnet;
    rec.serves_hgs = std::uint64_t{1} << hg;
    if (p.serves_other_hgs) rec.serves_hgs |= akamai_service_mask_;
    out.push_back(rec);
  }
}

void FleetBuilder::emit_offnet(std::vector<ServerRecord>& out, int hg,
                               std::size_t snapshot) const {
  const HgProfile& p = profiles_[hg];
  const net::YearMonth month = net::study_snapshots()[snapshot];

  // Anycast HGs (§7): one production IP announced from the HG's own AS
  // answers everywhere; scans see a single on-net instance. Off-net
  // sites below are their unicast debug addresses in the hosting AS.
  if (p.anycast_serving && !own_ases_[hg].empty()) {
    topo::AsId own = own_ases_[hg].front();
    ServerRecord anycast;
    anycast.ip = stable_ip(topology_.as(own),
                           mix3(net::Rng::hash(p.name), 0xA11, 0));
    anycast.as = own;
    anycast.hg = static_cast<std::int16_t>(hg);
    anycast.role = ServerRole::kOnNet;
    anycast.https_cert = cert_for(hg, 0, snapshot);
    anycast.https_headers = header_sets_[hg].offnet;
    anycast.http_headers = header_sets_[hg].offnet;
    anycast.serves_hgs = std::uint64_t{1} << hg;
    out.push_back(anycast);
  }
  const bool episode = p.netflix_cert_episode && in_netflix_episode(month);
  const bool pre_replacement =
      p.netflix_cert_episode && month < kNetflixEpisodeEnd;

  // Per-AS server counts grow over the study: HGs keep adding capacity to
  // existing sites (Fig. 2's HG-IP share rises even as the corpus grows).
  const double site_growth =
      0.30 + 0.70 * (static_cast<double>(snapshot) /
                     std::max<double>(1.0, double(net::snapshot_count() - 1)));

  for (topo::AsId as : plan_.at(snapshot, hg).confirmed) {
    const topo::AsRecord& rec_as = topology_.as(as);
    std::uint64_t as_tag = mix3(net::Rng::hash(p.name), rec_as.asn, 0x10);
    net::Rng rng = net::Rng(seed_).fork(as_tag);
    // Even a fresh site exposes a handful of front-end IPs; without the
    // floor, early single-IP sites vanish behind per-IP scan losses and
    // the early footprints undershoot their calibration anchors.
    int count = std::max(
        4, static_cast<int>(p.ips_per_offnet_as * site_growth *
                            std::exp(rng.uniform_real(-0.9, 0.9))));

    // Netflix episode buckets are stable per AS: ~50% keep valid certs,
    // ~25% sit behind the expired default cert, ~25% fall back to HTTP.
    int bucket = static_cast<int>(mix3(rec_as.asn, 0x77, 3) % 100);
    bool expired_bucket = pre_replacement && bucket >= 50 && bucket < 75;
    bool http_only_bucket = episode && bucket >= 75;

    for (int i = 0; i < count; ++i) {
      ServerRecord rec;
      rec.ip = stable_ip(rec_as, mix3(as_tag, 0x20, i));
      rec.as = as;
      rec.hg = static_cast<std::int16_t>(hg);
      rec.role = ServerRole::kOffNet;
      rec.https_headers = header_sets_[hg].offnet;
      rec.http_headers = header_sets_[hg].offnet;
      rec.serves_hgs = std::uint64_t{1} << hg;
      if (p.serves_other_hgs) rec.serves_hgs |= akamai_service_mask_;

      if (http_only_bucket) {
        rec.https_enabled = false;  // stopped answering on :443
      } else if (expired_bucket) {
        rec.https_cert = expired_cert_for(hg, snapshot);
      } else {
        int slot = pick_cert_slot(hg, snapshot, rng);
        rec.https_cert = countermeasures_.strip_organization
                             ? anonymous_cert_for(hg, slot, snapshot)
                             : cert_for(hg, slot, snapshot);
      }
      // §8 countermeasures applied to off-net servers.
      if (countermeasures_.null_default_certs) {
        rec.https_cert = tls::kNoCert;  // SNI-only: no default banner
      }
      if (countermeasures_.anonymize_headers) {
        rec.https_headers = nginx_headers_;
        rec.http_headers = nginx_headers_;
      }
      out.push_back(rec);
    }
  }
}

void FleetBuilder::emit_certonly(std::vector<ServerRecord>& out, int hg,
                                 std::size_t snapshot) const {
  const HgProfile& p = profiles_[hg];
  for (topo::AsId as : plan_.at(snapshot, hg).cert_only) {
    const topo::AsRecord& rec_as = topology_.as(as);
    std::uint64_t as_tag = mix3(net::Rng::hash(p.name), rec_as.asn, 0x30);
    net::Rng rng = net::Rng(seed_).fork(as_tag);
    int count = 1 + static_cast<int>(rng.index(3));
    for (int i = 0; i < count; ++i) {
      ServerRecord rec;
      rec.ip = stable_ip(rec_as, mix3(as_tag, 0x40, i));
      rec.as = as;
      rec.hg = static_cast<std::int16_t>(hg);
      rec.role = ServerRole::kThirdPartyService;
      rec.https_cert = cert_for(hg, static_cast<int>(rng.index(2)), snapshot);
      rec.serves_hgs = std::uint64_t{1} << hg;

      // The hosting platform's software answers, not the HG's.
      if (p.third_party_served && akamai_idx_ >= 0) {
        bool conflict = rng.bernoulli(0.25) &&
                        conflict_headers_[hg] != http::kNoHeaders;
        rec.https_headers = conflict ? conflict_headers_[hg]
                                     : header_sets_[akamai_idx_].offnet;
        rec.serves_hgs |= akamai_service_mask_;
      } else if (p.nginx_default_offnets) {
        // Netflix-style frontends ride clouds (AWS ELB / Apache), never
        // the bare-nginx appliance banner — otherwise the §4.4 nginx
        // special case would wrongly confirm them.
        rec.https_headers =
            rng.bernoulli(0.6) ? apache_headers_
                               : (akamai_idx_ >= 0
                                      ? header_sets_[akamai_idx_].offnet
                                      : apache_headers_);
      } else {
        rec.https_headers =
            rng.bernoulli(0.6) ? nginx_headers_ : apache_headers_;
      }
      rec.http_headers = rec.https_headers;
      out.push_back(rec);
    }
  }
}

void FleetBuilder::emit_cloudflare_customers(std::vector<ServerRecord>& out,
                                             int hg,
                                             std::size_t snapshot) const {
  const auto& deployment = plan_.at(snapshot, hg);

  // Customers whose proxied responses carry Cloudflare headers: these are
  // the ones the methodology misidentifies as off-nets (§6.1). Each runs
  // a couple of backends.
  int index = 0;
  for (topo::AsId as : deployment.confirmed) {
    for (int i = 0; i < 2; ++i) {
      ServerRecord rec;
      rec.ip = stable_ip(topology_.as(as),
                         mix3(0xcf01, topology_.as(as).asn, 1 + i));
      rec.as = as;
      rec.hg = static_cast<std::int16_t>(hg);
      rec.role = ServerRole::kCloudflareCustomer;
      rec.https_cert =
          cloudflare_customer_cert(index % kDedicatedCloudflareSlots, true);
      rec.https_headers = header_sets_[hg].offnet;  // proxied CF headers
      rec.http_headers = rec.https_headers;
      out.push_back(rec);
    }
    ++index;
  }
  // Customers with origin software showing through: certificate-only.
  for (topo::AsId as : deployment.cert_only) {
    ServerRecord rec;
    rec.ip = stable_ip(topology_.as(as), mix3(0xcf02, topology_.as(as).asn, 2));
    rec.as = as;
    rec.hg = static_cast<std::int16_t>(hg);
    rec.role = ServerRole::kCloudflareCustomer;
    rec.https_cert =
        cloudflare_customer_cert(index % kDedicatedCloudflareSlots, true);
    rec.https_headers = nginx_headers_;
    rec.http_headers = nginx_headers_;
    out.push_back(rec);
    ++index;
  }

  // Free universal-SSL customers all over the Internet; the containment
  // rule must filter every one of them.
  net::Rng rng = net::Rng(seed_).fork("cloudflare-free");
  const auto& alive = topology_.alive_mask(snapshot);
  for (int k = 0; k < kFreeCloudflareCustomers; ++k) {
    auto as = static_cast<topo::AsId>(
        mix3(0xcf03, k, 5) % topology_.as_count());
    if (!alive[as] || topology_.as(as).prefixes.empty()) continue;
    ServerRecord rec;
    rec.ip = stable_ip(topology_.as(as), mix3(0xcf04, k, 6));
    rec.as = as;
    rec.hg = static_cast<std::int16_t>(hg);
    rec.role = ServerRole::kCloudflareCustomer;
    rec.https_cert = cloudflare_customer_cert(k, /*dedicated=*/false);
    rec.https_headers = rng.bernoulli(0.5) ? nginx_headers_ : apache_headers_;
    rec.http_headers = rec.https_headers;
    out.push_back(rec);
  }
}

std::vector<ServerRecord> FleetBuilder::snapshot_fleet(
    std::size_t snapshot) const {
  std::vector<ServerRecord> out;
  for (std::size_t h = 0; h < profiles_.size(); ++h) {
    emit_onnet(out, static_cast<int>(h), snapshot);
    if (profiles_[h].is_cert_issuer) {
      emit_cloudflare_customers(out, static_cast<int>(h), snapshot);
    } else {
      emit_offnet(out, static_cast<int>(h), snapshot);
      emit_certonly(out, static_cast<int>(h), snapshot);
    }
  }
  return out;
}

}  // namespace offnet::hg
