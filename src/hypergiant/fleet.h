#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <tuple>
#include <vector>

#include "http/catalog.h"
#include "http/fingerprint.h"
#include "hypergiant/deployment.h"
#include "hypergiant/profile.h"
#include "net/ipv4.h"
#include "net/rng.h"
#include "tls/ca.h"
#include "topology/topology.h"

namespace offnet::hg {

/// §8 "Hide-and-Seek": countermeasures a Hypergiant could take to hide
/// its off-net footprint from the methodology. Applied to off-net
/// servers only (on-nets must keep working for real clients).
struct Countermeasures {
  /// (1) Serve no default certificate — answer only TLS-SNI requests for
  /// first-party domains. Off-nets vanish from default-cert scans.
  bool null_default_certs = false;
  /// (3) Strip the Organization entry from end-entity certificates. The
  /// keyword search finds nothing.
  bool strip_organization = false;
  /// (4) Anonymize response headers. Candidates survive (certificates
  /// still match) but header confirmation fails.
  bool anonymize_headers = false;

  bool any() const {
    return null_default_certs || strip_organization || anonymize_headers;
  }
};

/// What a server is, in ground truth.
enum class ServerRole : std::uint8_t {
  kOnNet,               // inside the HG's own AS
  kOffNet,              // real HG hardware inside a hosting AS
  kThirdPartyService,   // HG certificate on third-party hardware
  kCloudflareCustomer,  // customer backend holding a CF-issued cert
};

/// One HG-related server as scans would see it. `serves_hgs` is the
/// ground-truth bitmask of profile indices whose domains the server will
/// validly answer for (used by the active-measurement validation, §5).
struct ServerRecord {
  net::IPv4 ip;
  topo::AsId as = topo::kNoAs;
  std::int16_t hg = -1;  // branded HG (profile index)
  ServerRole role = ServerRole::kOnNet;
  bool https_enabled = true;
  bool http_enabled = true;
  tls::CertId https_cert = tls::kNoCert;  // default cert on :443
  http::HeaderSetId https_headers = http::kNoHeaders;
  http::HeaderSetId http_headers = http::kNoHeaders;
  // Bitmask over profile indices; kMaxHypergiants is 64, so this must be
  // 64-bit — a 32-bit mask makes `1 << hg` UB for hg >= 32 and silently
  // drops high-index HGs from validation masks.
  std::uint64_t serves_hgs = 0;
};

/// Builds the per-snapshot Hypergiant server fleet from the deployment
/// plan: assigns stable server IPs inside hosting ASes, issues and rolls
/// certificates per each HG's policy (validity, aggregation), attaches
/// header sets, and implements the deployment quirks (Netflix's
/// expired-cert and HTTP-only episodes, Cloudflare customer certificates,
/// third-party CDN serving, Alibaba's regional hardware strategy).
class FleetBuilder {
 public:
  FleetBuilder(const topo::Topology& topology,
               std::span<const HgProfile> profiles,
               const DeploymentPlan& plan, tls::CertificateStore& certs,
               tls::RootStore& roots, http::HeaderCatalog& catalog,
               std::uint64_t seed, Countermeasures countermeasures = {});

  /// All HG-related servers active at a study snapshot.
  std::vector<ServerRecord> snapshot_fleet(std::size_t snapshot) const;

  /// The date at which snapshot scans are taken (mid-month).
  static net::DayTime scan_time(std::size_t snapshot);

  const topo::Topology& topology() const { return topology_; }
  std::span<const HgProfile> profiles() const { return profiles_; }
  const DeploymentPlan& plan() const { return plan_; }

  /// The Netflix episode window (2017-04 .. 2019-10): expired default
  /// certificates and HTTP-only servers (§6.2).
  static bool in_netflix_episode(net::YearMonth month);

  /// What a server answers to a TLS ClientHello carrying SNI `hostname`:
  /// the covering certificate of one of the HGs it serves, or kNoCert
  /// (handshake fails / default behaviour). Powers the §8 SNI-scan
  /// counter-countermeasure and the ZGrab-style validation.
  tls::CertId sni_response(const ServerRecord& server,
                           std::string_view hostname,
                           std::size_t snapshot) const;

 private:
  struct HgHeaderSets {
    http::HeaderSetId onnet = http::kNoHeaders;
    http::HeaderSetId offnet = http::kNoHeaders;
  };

  /// Lazily mints the certificate for (hg, slot, generation); a
  /// generation spans the cert's validity period, so certificates roll
  /// like real reissues.
  tls::CertId cert_for(int hg, int slot, std::size_t snapshot) const;
  tls::CertId anonymous_cert_for(int hg, int slot,
                                 std::size_t snapshot) const;
  tls::CertId expired_cert_for(int hg, std::size_t snapshot) const;
  tls::CertId cloudflare_customer_cert(int index, bool dedicated) const;

  int cert_slot_count(int hg, std::size_t snapshot) const;
  /// Zipf-distributed slot choice implementing each HG's aggregation
  /// profile (Fig. 11).
  int pick_cert_slot(int hg, std::size_t snapshot, net::Rng& rng) const;

  void build_header_sets();
  void emit_onnet(std::vector<ServerRecord>& out, int hg,
                  std::size_t snapshot) const;
  void emit_offnet(std::vector<ServerRecord>& out, int hg,
                   std::size_t snapshot) const;
  void emit_certonly(std::vector<ServerRecord>& out, int hg,
                     std::size_t snapshot) const;
  void emit_cloudflare_customers(std::vector<ServerRecord>& out, int hg,
                                 std::size_t snapshot) const;

  const topo::Topology& topology_;
  std::span<const HgProfile> profiles_;
  const DeploymentPlan& plan_;
  tls::CertificateStore& certs_;
  http::HeaderCatalog& catalog_;
  // Certificates are minted lazily from const accessors (reissues roll on
  // demand), hence mutable.
  mutable tls::CaService ca_;
  std::uint64_t seed_;
  Countermeasures countermeasures_;

  std::vector<std::vector<topo::AsId>> own_ases_;  // per HG
  std::vector<HgHeaderSets> header_sets_;
  http::HeaderSetId nginx_headers_ = http::kNoHeaders;
  http::HeaderSetId apache_headers_ = http::kNoHeaders;
  std::vector<http::HeaderSetId> conflict_headers_;  // per HG: edge+origin
  std::vector<tls::CertId> issuers_;
  std::uint64_t akamai_service_mask_ = 0;
  int akamai_idx_ = -1;
  int cloudflare_idx_ = -1;

  /// Cache key: a per-call-site domain tag plus the full identifying
  /// tuple. Keys MUST be the exact identity, never a hash of it: a map
  /// keyed on a raw 64-bit hash (the old mix3(...) scheme) silently
  /// returns the wrong certificate on a collision. Any content-addressed
  /// cache in this codebase (including core::DeltaCache) follows the same
  /// rule — compare full canonical keys, use hashes only as hashers.
  using CertKey =
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;
  mutable std::map<CertKey, tls::CertId> cert_cache_;
};

}  // namespace offnet::hg
