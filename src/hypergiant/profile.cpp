#include "hypergiant/profile.h"

#include <algorithm>
#include <cassert>

namespace offnet::hg {

double anchor_value(std::span<const std::pair<net::YearMonth, double>> anchors,
                    net::YearMonth when) {
  assert(!anchors.empty());
  if (when <= anchors.front().first) return anchors.front().second;
  if (when >= anchors.back().first) return anchors.back().second;
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    if (when <= anchors[i].first) {
      const auto& [t0, v0] = anchors[i - 1];
      const auto& [t1, v1] = anchors[i];
      double span = static_cast<double>(t0.months_until(t1));
      double pos = static_cast<double>(t0.months_until(when));
      return v0 + (v1 - v0) * (span > 0 ? pos / span : 0.0);
    }
  }
  return anchors.back().second;
}

namespace {

using net::YearMonth;

// Region weight order: Africa, Asia, Europe, NorthAmerica, Oceania,
// SouthAmerica (matches topo::Region).
constexpr RegionWeights kGenericRegions = {0.06, 0.24, 0.30, 0.22, 0.03,
                                           0.15};

// Category weight order: Stub, Small, Medium, Large, XLarge. These are
// per-member preference multipliers on top of pool availability,
// calibrated so the measured footprint demographics land near Fig. 5
// (Stub 27-31%, Small 41-44%, Medium 22-24%, Large+XLarge ~5%).
constexpr CategoryWeights kEyeballCdnCategories = {1.0, 1.0, 1.3, 2.2, 3.0};
constexpr CategoryWeights kAkamaiCategories = {0.6, 0.9, 1.6, 9.0, 14.0};

HgProfile google() {
  HgProfile p;
  p.name = "Google";
  p.keyword = "google";
  p.org_name = "Google LLC";
  p.country_code = "US";
  p.own_as_count = 2;
  p.onnet_prefixes_per_as = 14;
  p.onnet_servers = 600;
  p.domains = {"google.com",     "googlevideo.com", "gstatic.com",
               "youtube.com",    "ggpht.com",       "googleapis.com",
               "google.com.br",  "googleusercontent.com",
               "android.com",    "gvt1.com"};
  p.server_headers = {"Server:gws*", "Server:gvs*",
                      "X-Google-Security-Signals:on"};
  p.offnet_ases = {{YearMonth(2013, 10), 1044}, {YearMonth(2014, 10), 1380},
                   {YearMonth(2015, 10), 1700}, {YearMonth(2016, 4), 1860},
                   {YearMonth(2017, 4), 2230},  {YearMonth(2017, 10), 2500},
                   {YearMonth(2018, 10), 2900}, {YearMonth(2019, 10), 3140},
                   {YearMonth(2020, 4), 3300},  {YearMonth(2020, 10), 3560},
                   {YearMonth(2021, 4), 3810}};
  p.certonly_ases = {{YearMonth(2013, 10), 1105}, {YearMonth(2016, 4), 1900},
                     {YearMonth(2019, 10), 3170}, {YearMonth(2021, 4), 3835}};
  p.initial_region_weights = {0.07, 0.20, 0.33, 0.24, 0.03, 0.13};
  p.late_region_weights = {0.07, 0.24, 0.17, 0.08, 0.02, 0.42};
  p.category_weights = kEyeballCdnCategories;
  p.popularity_bias = 0.72;
  p.ips_per_offnet_as = 9.0;
  p.cert_validity_days = 90;
  p.cert_count_start = 30;
  p.cert_count_end = 300;
  p.cert_zipf_start = 1.95;  // top group (*.googlevideo.com) > 50% of IPs
  p.cert_zipf_end = 1.90;
  p.anchor_calibration = 1.075;
  p.pool_stratum_home = 0.15;
  return p;
}

HgProfile netflix() {
  HgProfile p;
  p.name = "Netflix";
  p.keyword = "netflix";
  p.org_name = "Netflix, Inc.";
  p.country_code = "US";
  p.own_as_count = 2;  // backbone + Open Connect AS
  p.onnet_prefixes_per_as = 8;
  p.onnet_servers = 250;
  p.domains = {"netflix.com", "nflxvideo.net", "nflximg.net",
               "nflxext.com", "nflxso.net"};
  // Netflix debug headers exist but only for logged-in users; scans see
  // the bare nginx banner on Open Connect appliances (§4.4).
  p.server_headers = {"X-Netflix.*:", "X-TCP-Info:"};
  p.login_only_headers = true;
  p.nginx_default_offnets = true;
  p.netflix_cert_episode = true;
  // True (envelope) footprint; the expired-cert and HTTP-only episodes
  // between 2017-04 and 2019-10 are applied by the fleet builder.
  p.offnet_ases = {{YearMonth(2013, 10), 47},  {YearMonth(2014, 10), 260},
                   {YearMonth(2015, 10), 500}, {YearMonth(2016, 10), 660},
                   {YearMonth(2017, 4), 769},  {YearMonth(2018, 4), 1120},
                   {YearMonth(2019, 4), 1450}, {YearMonth(2019, 10), 1760},
                   {YearMonth(2020, 10), 2000}, {YearMonth(2021, 4), 2115}};
  p.certonly_ases = {{YearMonth(2013, 10), 143}, {YearMonth(2017, 4), 880},
                     {YearMonth(2019, 10), 1890}, {YearMonth(2021, 4), 2288}};
  p.initial_region_weights = {0.01, 0.08, 0.30, 0.38, 0.08, 0.15};
  p.late_region_weights = {0.01, 0.16, 0.26, 0.13, 0.04, 0.40};
  p.category_weights = kEyeballCdnCategories;
  p.popularity_bias = 0.5;
  p.excluded_countries = {"CN"};  // no Netflix service in China
  p.ips_per_offnet_as = 9.0;
  p.cert_validity_days = 540;  // median oscillates, drops to 35d in 2019
  p.cert_count_start = 6;
  p.cert_count_end = 60;
  p.anchor_calibration = 1.03;
  p.pool_stratum_home = 0.4;
  return p;
}

HgProfile facebook() {
  HgProfile p;
  p.name = "Facebook";
  p.keyword = "facebook";
  p.org_name = "Facebook, Inc.";
  p.country_code = "US";
  p.own_as_count = 2;
  p.onnet_prefixes_per_as = 10;
  p.onnet_servers = 400;
  p.domains = {"facebook.com", "fbcdn.net",   "instagram.com",
               "cdninstagram.com", "whatsapp.net", "fb.com"};
  p.server_headers = {"Server:proxygen*", "X-FB-Debug:", "X-FB-TRIP-ID:"};
  // FNA (Facebook Network Appliance) launched summer 2016.
  p.offnet_ases = {{YearMonth(2013, 10), 0},   {YearMonth(2016, 4), 0},
                   {YearMonth(2016, 7), 40},   {YearMonth(2017, 4), 620},
                   {YearMonth(2017, 10), 1000}, {YearMonth(2018, 4), 1250},
                   {YearMonth(2018, 10), 1430}, {YearMonth(2019, 10), 1737},
                   {YearMonth(2020, 4), 1880},  {YearMonth(2020, 10), 2060},
                   {YearMonth(2021, 4), 2214}};
  p.certonly_ases = {{YearMonth(2013, 10), 8},   {YearMonth(2016, 4), 25},
                     {YearMonth(2019, 10), 1760}, {YearMonth(2021, 4), 2229}};
  p.initial_region_weights = {0.07, 0.22, 0.25, 0.18, 0.02, 0.26};
  p.late_region_weights = {0.07, 0.25, 0.14, 0.10, 0.02, 0.42};
  p.category_weights = kEyeballCdnCategories;
  p.popularity_bias = 0.68;
  p.ips_per_offnet_as = 20.0;
  p.cert_validity_days = 180;
  p.cert_count_start = 8;
  p.cert_count_end = 400;
  p.cert_zipf_start = 1.8;  // heavy aggregation in 2014 ...
  p.cert_zipf_end = 0.35;   // ... disaggregated by 2021 (Fig. 11b)
  p.anchor_calibration = 1.04;
  p.pool_stratum_home = 0.6;
  return p;
}

HgProfile akamai() {
  HgProfile p;
  p.name = "Akamai";
  p.keyword = "akamai";
  p.org_name = "Akamai Technologies, Inc.";
  p.country_code = "US";
  p.own_as_count = 3;
  p.onnet_prefixes_per_as = 10;
  p.onnet_servers = 500;
  p.domains = {"akamai.com",      "akamaiedge.net", "akamaihd.net",
               "edgekey.net",     "edgesuite.net",  "akamaized.net",
               "akamaitechnologies.com"};
  p.server_headers = {"Server:AkamaiGHost", "Server:AkamaiNetStorage"};
  p.serves_other_hgs = true;  // delivers LinkedIn/Disney/Apple/... content
  p.offnet_ases = {{YearMonth(2013, 10), 978},  {YearMonth(2014, 10), 1160},
                   {YearMonth(2015, 10), 1290}, {YearMonth(2016, 10), 1390},
                   {YearMonth(2017, 10), 1445}, {YearMonth(2018, 4), 1463},
                   {YearMonth(2019, 4), 1320},  {YearMonth(2019, 10), 1235},
                   {YearMonth(2020, 10), 1130}, {YearMonth(2021, 4), 1094}};
  p.certonly_ases = {{YearMonth(2013, 10), 1013}, {YearMonth(2018, 4), 1490},
                     {YearMonth(2021, 4), 1107}};
  p.initial_region_weights = {0.03, 0.28, 0.28, 0.31, 0.04, 0.06};
  p.late_region_weights = {0.03, 0.46, 0.24, 0.11, 0.03, 0.13};
  p.category_weights = kAkamaiCategories;
  p.popularity_bias = 0.95;
  p.ips_per_offnet_as = 95.0;
  p.cert_validity_days = 365;
  p.cert_count_start = 40;
  p.cert_count_end = 200;
  p.anchor_calibration = 1.02;
  p.pool_stratum_home = 0.88;
  return p;
}

HgProfile alibaba() {
  HgProfile p;
  p.name = "Alibaba";
  p.keyword = "alibaba";
  p.org_name = "Alibaba Cloud LLC";
  p.country_code = "CN";
  p.onnet_servers = 150;
  p.domains = {"alibaba.com", "aliyun.com", "alicdn.com", "taobao.com",
               "alibabacloud.com"};
  p.server_headers = {"Server:tengine*", "Eagleid:", "Server:AliyunOSS*"};
  p.asia_only_hardware = true;
  p.offnet_ases = {{YearMonth(2013, 10), 0},  {YearMonth(2014, 10), 6},
                   {YearMonth(2015, 10), 45}, {YearMonth(2016, 10), 95},
                   {YearMonth(2017, 10), 165}, {YearMonth(2018, 1), 184},
                   {YearMonth(2019, 4), 168},  {YearMonth(2020, 4), 150},
                   {YearMonth(2021, 4), 136}};
  p.certonly_ases = {{YearMonth(2013, 10), 0}, {YearMonth(2018, 1), 240},
                     {YearMonth(2021, 4), 301}};
  p.initial_region_weights = {0.01, 0.88, 0.04, 0.04, 0.01, 0.02};
  p.late_region_weights = {0.01, 0.85, 0.05, 0.05, 0.01, 0.03};
  p.category_weights = kEyeballCdnCategories;
  p.ips_per_offnet_as = 6.0;
  return p;
}

HgProfile cloudflare() {
  HgProfile p;
  p.name = "Cloudflare";
  p.keyword = "cloudflare";
  p.org_name = "Cloudflare, Inc.";
  p.country_code = "US";
  p.onnet_servers = 400;
  p.domains = {"cloudflare.com", "cloudflaressl.com", "cloudflare-dns.com"};
  p.server_headers = {"Server:Cloudflare", "cf-cache-status:", "cf-ray:",
                      "cf-request-id:"};
  p.anycast_serving = true;
  p.is_cert_issuer = true;  // universal SSL: customer certs everywhere
  // These "off-nets" are customer servers misidentified because they host
  // Cloudflare-issued certificates and proxied responses (§6.1, §7).
  p.offnet_ases = {{YearMonth(2013, 10), 0},  {YearMonth(2015, 10), 12},
                   {YearMonth(2017, 10), 45}, {YearMonth(2019, 10), 85},
                   {YearMonth(2021, 1), 110}, {YearMonth(2021, 4), 110}};
  p.certonly_ases = {{YearMonth(2013, 10), 2}, {YearMonth(2017, 10), 60},
                     {YearMonth(2021, 4), 137}};
  p.anchor_calibration = 1.15;  // single-IP customers suffer the most loss
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  p.ips_per_offnet_as = 2.0;
  p.cert_validity_days = 365;
  p.cert_count_start = 50;
  p.cert_count_end = 400;
  return p;
}

HgProfile amazon() {
  HgProfile p;
  p.name = "Amazon";
  p.keyword = "amazon";
  p.org_name = "Amazon.com, Inc.";
  p.country_code = "US";
  p.own_as_count = 2;
  p.onnet_prefixes_per_as = 14;
  p.onnet_servers = 500;
  p.domains = {"amazon.com", "amazonaws.com", "cloudfront.net",
               "media-amazon.com", "primevideo.com"};
  p.server_headers = {"Server:AmazonS3", "x-amz-request-id:",
                      "X-Amz-Cf-Id:", "Server:awselb*"};
  p.offnet_ases = {{YearMonth(2013, 10), 0},  {YearMonth(2014, 10), 22},
                   {YearMonth(2016, 4), 80},  {YearMonth(2017, 7), 112},
                   {YearMonth(2018, 10), 92}, {YearMonth(2019, 10), 74},
                   {YearMonth(2021, 4), 62}};
  p.certonly_ases = {{YearMonth(2013, 10), 147}, {YearMonth(2017, 7), 240},
                     {YearMonth(2021, 4), 218}};
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  p.ips_per_offnet_as = 5.0;
  return p;
}

HgProfile cdnetworks() {
  HgProfile p;
  p.name = "Cdnetworks";
  p.keyword = "cdnetworks";
  p.org_name = "CDNetworks Inc.";
  p.country_code = "KR";
  p.onnet_servers = 120;
  p.domains = {"cdnetworks.com", "cdngc.net", "panthercdn.com"};
  p.server_headers = {"Server:PWS/*"};
  p.offnet_ases = {{YearMonth(2013, 10), 0},  {YearMonth(2015, 10), 12},
                   {YearMonth(2017, 10), 32}, {YearMonth(2019, 1), 51},
                   {YearMonth(2020, 4), 24},  {YearMonth(2021, 4), 11}};
  p.certonly_ases = {{YearMonth(2013, 10), 4}, {YearMonth(2019, 1), 62},
                     {YearMonth(2021, 4), 31}};
  p.initial_region_weights = {0.02, 0.60, 0.18, 0.14, 0.02, 0.04};
  p.late_region_weights = {0.02, 0.60, 0.18, 0.14, 0.02, 0.04};
  p.ips_per_offnet_as = 4.0;
  return p;
}

HgProfile limelight() {
  HgProfile p;
  p.name = "Limelight";
  p.keyword = "limelight";
  p.org_name = "Limelight Networks, Inc.";
  p.country_code = "US";
  p.onnet_servers = 150;
  p.domains = {"limelight.com", "llnwd.net", "llnwi.net"};
  p.server_headers = {"Server:EdgePrism*", "X-LLID:"};
  p.anycast_serving = true;
  p.offnet_ases = {{YearMonth(2013, 10), 0},  {YearMonth(2015, 10), 6},
                   {YearMonth(2017, 10), 16}, {YearMonth(2019, 4), 30},
                   {YearMonth(2020, 4), 42},  {YearMonth(2021, 4), 32}};
  p.certonly_ases = {{YearMonth(2013, 10), 1}, {YearMonth(2020, 4), 45},
                     {YearMonth(2021, 4), 32}};
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  p.ips_per_offnet_as = 6.0;
  return p;
}

HgProfile apple() {
  HgProfile p;
  p.name = "Apple";
  p.keyword = "apple";
  p.org_name = "Apple Inc.";
  p.country_code = "US";
  p.onnet_servers = 250;
  p.domains = {"apple.com", "icloud.com", "mzstatic.com", "cdn-apple.com",
               "apple-cloudkit.com"};
  p.server_headers = {"CDNUUID:"};
  p.third_party_served = true;  // rides Akamai/other CDNs for reach
  p.offnet_ases = {{YearMonth(2013, 10), 0}, {YearMonth(2017, 10), 2},
                   {YearMonth(2020, 4), 6},  {YearMonth(2021, 4), 0}};
  p.certonly_ases = {{YearMonth(2013, 10), 113}, {YearMonth(2017, 10), 190},
                     {YearMonth(2020, 4), 280},  {YearMonth(2021, 4), 267}};
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  p.ips_per_offnet_as = 3.0;
  return p;
}

HgProfile twitter() {
  HgProfile p;
  p.name = "Twitter";
  p.keyword = "twitter";
  p.org_name = "Twitter, Inc.";
  p.country_code = "US";
  p.onnet_servers = 200;
  p.domains = {"twitter.com", "twimg.com", "t.co"};
  p.server_headers = {"Server:tsa_a"};
  p.third_party_served = true;  // images via Akamai and Verizon
  p.offnet_ases = {{YearMonth(2013, 10), 0}, {YearMonth(2017, 10), 2},
                   {YearMonth(2020, 4), 4},  {YearMonth(2021, 4), 4}};
  p.certonly_ases = {{YearMonth(2013, 10), 101}, {YearMonth(2017, 10), 140},
                     {YearMonth(2021, 4), 180}};
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  p.ips_per_offnet_as = 3.0;
  return p;
}

// ---- Hypergiants for which the methodology inferred no off-net
// footprint during the study (§6.1). They still run on-nets, hold
// certificates, and may appear as service-present on third-party
// platforms.

HgProfile no_offnet(std::string name, std::string keyword,
                    std::string org_name, std::string country,
                    std::vector<std::string> domains,
                    std::vector<std::string> headers,
                    double certonly_end = 0.0) {
  HgProfile p;
  p.name = std::move(name);
  p.keyword = std::move(keyword);
  p.org_name = std::move(org_name);
  p.country_code = std::move(country);
  p.onnet_servers = 150;
  p.domains = std::move(domains);
  p.server_headers = std::move(headers);
  p.headers_identifiable = !p.server_headers.empty();
  p.offnet_ases = {{YearMonth(2013, 10), 0}, {YearMonth(2021, 4), 0}};
  p.certonly_ases = {{YearMonth(2013, 10), 0},
                     {YearMonth(2021, 4), certonly_end}};
  p.initial_region_weights = kGenericRegions;
  p.late_region_weights = kGenericRegions;
  return p;
}

}  // namespace

const std::vector<HgProfile>& standard_profiles() {
  static const std::vector<HgProfile> kProfiles = [] {
    std::vector<HgProfile> v;
    v.push_back(google());
    v.push_back(facebook());
    v.push_back(netflix());
    v.push_back(akamai());
    v.push_back(alibaba());
    v.push_back(cloudflare());
    v.push_back(amazon());
    v.push_back(cdnetworks());
    v.push_back(limelight());
    v.push_back(apple());
    v.push_back(twitter());
    v.push_back(no_offnet("Microsoft", "microsoft", "Microsoft Corporation",
                          "US",
                          {"microsoft.com", "azureedge.net", "linkedin.com",
                           "msedge.net", "azure.com"},
                          {"X-MSEdge-Ref:"}, 120));
    v.push_back(no_offnet("Hulu", "hulu", "Hulu, LLC", "US",
                          {"hulu.com", "hulustream.com"},
                          {"X-Hulu-Request-Id:", "X-HULU-NGINX:"}, 10));
    auto& hulu = v.back();
    hulu.login_only_headers = true;  // headers only when logged in (§7)
    v.push_back(no_offnet("Disney", "disney", "Disney Streaming Services",
                          "US", {"disney.com", "disneyplus.com", "bamgrid.com"},
                          {}, 40));
    v.back().third_party_served = true;
    v.push_back(no_offnet("Yahoo", "yahoo", "Yahoo Holdings, Inc.", "US",
                          {"yahoo.com", "yimg.com", "yahooapis.com"}, {}, 15));
    v.push_back(no_offnet("Chinacache", "chinacache", "ChinaCache Networks",
                          "CN", {"chinacache.com", "ccgslb.com"}, {}, 8));
    v.push_back(no_offnet("Fastly", "fastly", "Fastly, Inc.", "US",
                          {"fastly.com", "fastly.net", "fastlylb.net"},
                          {"X-Served-By:cache-*"}, 20));
    v.push_back(no_offnet("Cachefly", "cachefly", "CacheFly Networks, Inc.",
                          "US", {"cachefly.com", "cachefly.net"}, {}, 5));
    v.push_back(no_offnet("Verizon", "verizon", "Verizon Digital Media", "US",
                          {"verizondigitalmedia.com", "vdms.io",
                           "edgecastcdn.net"},
                          {"Server:ECacc*"}, 25));
    v.push_back(no_offnet("Incapsula", "incapsula", "Incapsula Inc.", "US",
                          {"incapsula.com", "incapdns.net"},
                          {"X-CDN:Incapsula"}, 12));
    v.push_back(no_offnet("CDN77", "cdn77", "CDN77 Ltd.", "GB",
                          {"cdn77.com", "cdn77.org"}, {}, 6));
    v.push_back(no_offnet("Bamtech", "bamtech", "BAMTech Media", "US",
                          {"bamtech.com", "bamgrid.net"}, {}, 4));
    v.push_back(no_offnet("Highwinds", "highwinds", "Highwinds Network Group",
                          "US", {"highwinds.com", "hwcdn.net"}, {}, 5));
    return v;
  }();
  return kProfiles;
}

int profile_index(std::span<const HgProfile> profiles,
                  std::string_view name) {
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> top4_indices(std::span<const HgProfile> profiles) {
  std::vector<int> out;
  for (std::string_view name : {"Google", "Netflix", "Facebook", "Akamai"}) {
    int idx = profile_index(profiles, name);
    if (idx >= 0) out.push_back(idx);
  }
  return out;
}

}  // namespace offnet::hg
