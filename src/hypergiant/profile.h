#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/date.h"
#include "topology/region.h"

namespace offnet::hg {

/// Piecewise-linear time series anchored at (month, value) points; the
/// calibration curves digitized from the paper's tables and figures.
using Anchors = std::vector<std::pair<net::YearMonth, double>>;

/// Interpolated value at `when` (clamped before the first and after the
/// last anchor).
double anchor_value(std::span<const std::pair<net::YearMonth, double>> anchors,
                    net::YearMonth when);

/// Region weight vectors used when choosing where a HG expands.
using RegionWeights = std::array<double, topo::kRegionCount>;

/// Per-category deployment preference multipliers, indexed by
/// topo::SizeCategory (Stub, Small, Medium, Large, XLarge).
using CategoryWeights = std::array<double, 5>;

/// How a Hypergiant's deployment looks to scans; drives the simulator,
/// never read by the inference pipeline.
struct HgProfile {
  std::string name;          // "Google"
  std::string keyword;       // Organization search key, lower case
  std::string org_name;      // "Google LLC" (CAIDA-style org entry)
  std::string country_code;  // HQ country
  int own_as_count = 1;      // on-net ASes
  int onnet_prefixes_per_as = 8;
  int onnet_servers = 200;   // on-net server IPs

  /// Domains this HG serves (dNSName universe of its certificates).
  std::vector<std::string> domains;

  /// Header lines (paper Table 4 notation) its web servers emit; first
  /// entries are the most characteristic.
  std::vector<std::string> server_headers;
  bool headers_identifiable = true;  // false: no unique header fingerprint
  bool login_only_headers = false;   // Netflix/Hulu: headers need login
  bool nginx_default_offnets = false; // Netflix: off-nets show bare nginx

  /// Confirmed off-net footprint (certificates AND headers), #ASes — the
  /// values the paper *measured* (Table 3, Fig. 3).
  Anchors offnet_ases;
  /// Service-present footprint (certificates only), #ASes (>= confirmed).
  Anchors certonly_ases;
  /// Ground-truth inflation over the measured anchors: real deployments
  /// exceed what scans uncover (the §5 survey found 5-11% of host ASes
  /// missed). The planner deploys anchors * calibration; the pipeline's
  /// losses bring measurements back down to the anchor values.
  double anchor_calibration = 1.05;

  RegionWeights initial_region_weights{};  // composition at first nonzero
  RegionWeights late_region_weights{};     // weights of late additions
  CategoryWeights category_weights{1, 1, 1, 1, 1};
  /// Exponent on (user_share + eps) when picking host ASes; higher means
  /// the HG chases eyeballs harder.
  double popularity_bias = 0.5;

  /// Countries the HG does not deploy in (market restrictions — e.g.
  /// Netflix does not operate in China, which caps its user coverage in
  /// Fig. 7b despite a large AS footprint).
  std::vector<std::string> excluded_countries;

  /// Business-relationship stratum in [0,1]: HGs with distant homes drew
  /// from largely disjoint host populations early on (in 2013 Google's
  /// and Akamai's hosts barely overlapped, Fig. 10b), converging only as
  /// footprints grew into the whole pool.
  double pool_stratum_home = 0.5;

  /// Mean off-net server IPs per hosting AS (heavy-tailed draw).
  double ips_per_offnet_as = 8.0;

  /// Certificate policy (Appendix A.3).
  int cert_validity_days = 365;
  int cert_count_start = 4;    // distinct serving certs at study start
  int cert_count_end = 40;     // ... at study end
  /// Zipf exponent of the cert->IP assignment at start/end; higher is
  /// more aggregated (Fig. 11: Google stays aggregated, Facebook
  /// disaggregates).
  double cert_zipf_start = 1.2;
  double cert_zipf_end = 1.2;

  // ---- quirks ----
  /// Serves production traffic over one anycast IP announced from the
  /// HG's AS (§7): the user-facing address looks on-net everywhere, but
  /// each off-net also exposes a unicast debug address of the hosting AS
  /// that answers identically — which is what the methodology finds.
  bool anycast_serving = false;
  bool is_cert_issuer = false;       // Cloudflare universal SSL
  bool serves_other_hgs = false;     // Akamai: delivers other HGs' content
  bool third_party_served = false;   // Apple/Twitter/...: rides other CDNs
  bool netflix_cert_episode = false; // expired-cert + HTTP-only window
  bool asia_only_hardware = false;   // Alibaba: own servers only in Asia
};

/// The paper's 23 examined Hypergiants with calibrated curves.
const std::vector<HgProfile>& standard_profiles();

/// Index of a profile by name, or -1.
int profile_index(std::span<const HgProfile> profiles, std::string_view name);

/// The four Hypergiants with the largest footprints (Google, Netflix,
/// Facebook, Akamai), as profile indices.
std::vector<int> top4_indices(std::span<const HgProfile> profiles);

}  // namespace offnet::hg
