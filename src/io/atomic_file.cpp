#include "io/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define OFFNET_HAVE_FSYNC 1
#endif

namespace offnet::io {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Crosses a syscall fault seam. Injected EINTR is retried exactly as an
/// interrupted write would be; any other injected errno surfaces as the
/// IoError a real syscall failure at this point produces.
void sys_check(const char* stage, const std::string& what,
               const std::string& path) {
  for (;;) {
    const core::SysResult result = core::sys_fault(stage);
    if (result.ok()) return;
    if (result.error == EINTR) continue;
    errno = result.error;
    fail(what, path);
  }
}

/// Flushes file (and, for directories, rename) durability to the device.
/// Without this, rename() can land before the data blocks and a power
/// loss yields exactly the torn artifact the rename was meant to
/// prevent.
void fsync_path(const std::string& path, bool directory) {
#ifdef OFFNET_HAVE_FSYNC
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) {
    if (directory) return;  // some filesystems refuse directory opens
    fail("cannot reopen for fsync", path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  // Directory fsync is best-effort (EINVAL on some filesystems); a data
  // fsync failure is a real lost write and must surface.
  if (rc != 0 && !directory) fail("fsync failed for", path);
#else
  (void)path;
  (void)directory;
#endif
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  out_.open(temp_path(), std::ios::binary | std::ios::trunc);
  if (!out_) fail("cannot open temp file for", path_);
}

AtomicFile::~AtomicFile() {
  if (committed_) return;
  out_.close();
  std::error_code ignored;
  std::filesystem::remove(temp_path(), ignored);
}

void AtomicFile::commit() {
  if (committed_) throw std::logic_error("AtomicFile::commit called twice");
  try {
    sys_check(core::fault_stage::kAtomicWrite, "write failed for", path_);
    out_.flush();
    if (!out_) fail("write failed for", path_);
    out_.close();
    if (!out_) fail("close failed for", path_);
    sys_check(core::fault_stage::kAtomicFsync, "fsync failed for",
              temp_path());
    fsync_path(temp_path(), /*directory=*/false);
    if (commit_hook_) commit_hook_();
    std::error_code ec;
    std::filesystem::rename(temp_path(), path_, ec);
    if (ec) {
      throw IoError("cannot publish " + path_ + ": " + ec.message());
    }
  } catch (...) {
    // No .tmp orphans: whichever step broke — write, fsync, rename, or
    // an injected commit-hook fault — the temp file is gone before the
    // exception reaches the caller. (An abort-mode fault still leaves
    // it, deliberately: that is a crash, and the destructor never runs.)
    out_.close();
    std::error_code ignored;
    std::filesystem::remove(temp_path(), ignored);
    throw;
  }
  committed_ = true;
  const std::string dir = std::filesystem::path(path_).parent_path().string();
  if (!dir.empty()) fsync_path(dir, /*directory=*/true);
}

void AtomicFile::write(const std::string& path, std::string_view content) {
  AtomicFile file(path);
  file.stream() << content;
  file.commit();
}

}  // namespace offnet::io
