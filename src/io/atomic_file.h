#pragma once

#include <fstream>
#include <functional>
#include <string>
#include <string_view>

#include "io/report.h"  // IoError: shared with the streaming reader

namespace offnet::io {

/// The one sanctioned way to emit a final artifact (DESIGN.md §10): all
/// bytes go to `<path>.tmp`, and only commit() — flush, stream check,
/// fsync, rename — makes them visible under the final name. A crash at
/// any point leaves either the previous artifact or nothing, never a
/// torn file that looks complete; a write failure (bad directory, full
/// disk) surfaces as an exception instead of a silently short file.
///
/// The temp name is deterministic (`<path>.tmp`), so concurrent writers
/// of the *same* path are not supported — final artifacts have exactly
/// one producer per run. A leftover temp from a crashed run is
/// truncated on the next open and cannot be mistaken for the artifact.
class AtomicFile {
 public:
  /// Opens `<path>.tmp` for writing (truncating any crash leftover).
  /// Throws std::runtime_error when the temp file cannot be opened.
  explicit AtomicFile(std::string path);

  /// Abandons the write: removes the temp file unless commit() ran.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The stream to write artifact bytes into.
  std::ostream& stream() { return out_; }

  /// Test seam: runs after the temp file is flushed and closed, just
  /// before the rename. Fault-injection hooks a crash here to prove the
  /// previous artifact survives an interrupted publish.
  void set_commit_hook(std::function<void()> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Publishes the artifact: flush, verify the stream never failed,
  /// fsync the temp file, rename it over `path`. Throws
  /// std::runtime_error (naming the path) on any failure; the final
  /// path is untouched unless commit() returns, and the temp file is
  /// unlinked before the exception propagates — a failed commit leaves
  /// no `.tmp` orphan, whether the write, the fsync, the rename, or an
  /// injected commit-hook fault broke it. Crosses the atomic-write and
  /// atomic-fsync syscall fault seams (core::sys_fault).
  void commit();

  bool committed() const { return committed_; }
  const std::string& path() const { return path_; }
  std::string temp_path() const { return path_ + ".tmp"; }

  /// Convenience: writes `content` to `path` atomically in one call.
  static void write(const std::string& path, std::string_view content);

 private:
  std::string path_;
  // offnet-lint: allow(raw-artifact-write): the sanctioned writer itself;
  std::ofstream out_;  // every artifact's bytes pass through this stream
  std::function<void()> commit_hook_;
  bool committed_ = false;
};

}  // namespace offnet::io
