#include "io/corruption.h"

#include <vector>

#include "net/rng.h"

namespace offnet::io {

namespace {

char separator_of(InputKind input) {
  switch (input) {
    case InputKind::kRelationships:
    case InputKind::kOrganizations:
      return '|';
    default:
      return '\t';
  }
}

const char* stream_tag(InputKind input) {
  switch (input) {
    case InputKind::kRelationships: return "corrupt/relationships";
    case InputKind::kOrganizations: return "corrupt/organizations";
    case InputKind::kPrefix2As: return "corrupt/prefix2as";
    case InputKind::kCertificates: return "corrupt/certificates";
    case InputKind::kHosts: return "corrupt/hosts";
    case InputKind::kHeaders: return "corrupt/headers";
  }
  return "corrupt/unknown";
}

/// Bytes that never start a comment and break every field grammar.
constexpr std::string_view kGarbageAlphabet = "@~^?$%&!\x01\x7f";

std::vector<std::string> split_fields(std::string_view line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(line.substr(start));
      return out;
    }
    out.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join_fields(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += sep;
    out += fields[i];
  }
  return out;
}

std::string garbage_splat(std::string line, net::Rng& rng) {
  // push_back, not `line = "?"`: GCC 12 -Wrestrict misfires on the
  // inlined const char* assignment path at -O2.
  if (line.empty()) line.push_back('?');
  std::size_t pos = rng.index(line.size());
  std::size_t len = static_cast<std::size_t>(
      rng.uniform(1, static_cast<std::int64_t>(
                         std::min<std::size_t>(8, line.size() - pos))));
  for (std::size_t i = pos; i < pos + len; ++i) {
    line[i] = kGarbageAlphabet[rng.index(kGarbageAlphabet.size())];
  }
  return line;
}

std::string apply_corruption(CorruptionKind kind, const std::string& line,
                             char sep, net::Rng& rng) {
  switch (kind) {
    case kTruncateLine: {
      if (line.size() < 2) return garbage_splat(line, rng);
      return line.substr(0, static_cast<std::size_t>(rng.uniform(
                                1, static_cast<std::int64_t>(line.size()) - 1)));
    }
    case kDeleteField: {
      auto fields = split_fields(line, sep);
      if (fields.size() < 2) return garbage_splat(line, rng);
      fields.erase(fields.begin() +
                   static_cast<std::ptrdiff_t>(rng.index(fields.size())));
      return join_fields(fields, sep);
    }
    case kSwapFields: {
      auto fields = split_fields(line, sep);
      if (fields.size() < 2) return garbage_splat(line, rng);
      std::size_t i = rng.index(fields.size());
      std::size_t j = rng.index(fields.size() - 1);
      if (j >= i) ++j;
      std::swap(fields[i], fields[j]);
      return join_fields(fields, sep);
    }
    case kGarbageBytes:
      return garbage_splat(line, rng);
    case kDuplicateLine:
      return line + '\n' + line;
    case kPrefixLenOutOfRange: {
      auto fields = split_fields(line, sep);
      if (fields.size() < 2) return garbage_splat(line, rng);
      fields[1] = std::to_string(rng.uniform(33, 200));
      return join_fields(fields, sep);
    }
    case kReverseDateRange: {
      auto fields = split_fields(line, sep);
      if (fields.size() < 4) return garbage_splat(line, rng);
      std::swap(fields[2], fields[3]);
      return join_fields(fields, sep);
    }
    default:
      return garbage_splat(line, rng);
  }
}

bool data_line(std::string_view line) {
  return !line.empty() && line[0] != '#' &&
         line.find_first_not_of(" \t\r") != std::string_view::npos;
}

/// Failure classes applicable to this format.
std::vector<CorruptionKind> kinds_for(InputKind input, unsigned mask) {
  std::vector<CorruptionKind> kinds;
  for (unsigned bit : {kTruncateLine, kDeleteField, kSwapFields, kGarbageBytes,
                       kDuplicateLine}) {
    if (mask & bit) kinds.push_back(static_cast<CorruptionKind>(bit));
  }
  if ((mask & kPrefixLenOutOfRange) && input == InputKind::kPrefix2As) {
    kinds.push_back(kPrefixLenOutOfRange);
  }
  if ((mask & kReverseDateRange) && input == InputKind::kCertificates) {
    kinds.push_back(kReverseDateRange);
  }
  return kinds;
}

}  // namespace

CorruptionInjector::CorruptionInjector(CorruptionConfig config)
    : config_(config) {}

std::optional<std::string> CorruptionInjector::corrupt_record(
    std::string_view line, InputKind input, std::size_t record_index) const {
  std::vector<CorruptionKind> kinds = kinds_for(input, config_.kinds);
  if (kinds.empty() || !data_line(line)) return std::nullopt;
  // One RNG per record, forked from (seed, stream, record index): the
  // draw sequence never depends on earlier lines, which is what makes
  // the fault plan identical under whole-buffer and streamed application.
  net::Rng rng = net::Rng(config_.seed)
                     .fork(stream_tag(input))
                     .fork(static_cast<std::uint64_t>(record_index));
  if (!rng.bernoulli(config_.intensity)) return std::nullopt;
  CorruptionKind kind = kinds[rng.index(kinds.size())];
  return apply_corruption(kind, std::string(line), separator_of(input), rng);
}

std::string CorruptionInjector::corrupt(std::string_view text, InputKind input,
                                        CorruptionSummary* summary) const {
  CorruptionSummary stats;
  std::string out;
  out.reserve(text.size() + text.size() / 16);
  std::size_t start = 0;
  std::size_t record = 0;  // data-line index, the corruption key
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    bool last = end == std::string_view::npos;
    std::string_view line = text.substr(
        start, last ? std::string_view::npos : end - start);
    if (last && line.empty()) break;

    if (data_line(line)) {
      ++stats.data_lines;
      if (auto damaged = corrupt_record(line, input, record++)) {
        ++stats.corrupted_lines;
        out += *damaged;
      } else {
        out += line;
      }
    } else {
      out += line;
    }
    out += '\n';
    if (last) break;
    start = end + 1;
  }
  if (summary != nullptr) *summary = stats;
  return out;
}

std::string CorruptionInjector::destroy(std::string_view text) {
  std::string out;
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    ++lines;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  if (lines == 0) lines = 1;
  for (std::size_t i = 0; i < lines; ++i) {
    out += "\x01@@unreadable@@\x01\n";
  }
  return out;
}

}  // namespace offnet::io
