#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// Deterministic fault injection for the on-disk dataset formats, so
/// tests can drive the permissive loaders and degraded-mode longitudinal
/// runs through every failure class real corpuses exhibit — without
/// shipping fixture files. The same (seed, input kind, text) always
/// produces the same damage, independent of call order.
namespace offnet::io {

/// Which dataset format a corpus is in — decides the field separator and
/// which format-specific corruptions apply.
enum class InputKind {
  kRelationships,
  kOrganizations,
  kPrefix2As,
  kCertificates,
  kHosts,
  kHeaders,
};

/// Failure classes, combinable as a bitmask.
enum CorruptionKind : unsigned {
  kTruncateLine = 1u << 0,   // cut a line short, possibly mid-field
  kDeleteField = 1u << 1,    // drop one separator-delimited field
  kSwapFields = 1u << 2,     // exchange two fields
  kGarbageBytes = 1u << 3,   // splat non-format bytes over a span
  kDuplicateLine = 1u << 4,  // emit a line twice (duplicate keys)
  kPrefixLenOutOfRange = 1u << 5,  // prefix2as only: length > 32
  kReverseDateRange = 1u << 6,     // certificates only: not_after < not_before
  kAllCorruptions = (1u << 7) - 1,
};

struct CorruptionConfig {
  std::uint64_t seed = 20210823;
  double intensity = 0.01;          // fraction of data lines damaged
  unsigned kinds = kAllCorruptions; // enabled failure classes
};

/// What one corrupt() call did.
struct CorruptionSummary {
  std::size_t data_lines = 0;       // non-comment, non-blank lines seen
  std::size_t corrupted_lines = 0;  // lines damaged
};

class CorruptionInjector {
 public:
  explicit CorruptionInjector(CorruptionConfig config = {});

  /// Returns `text` with ~intensity of its data lines mangled by failure
  /// classes applicable to `input`. Comments and blank lines pass
  /// through untouched.
  std::string corrupt(std::string_view text, InputKind input,
                      CorruptionSummary* summary = nullptr) const;

  /// Replaces every line with garbage: an unrecoverably corrupt file
  /// that blows any error budget.
  static std::string destroy(std::string_view text);

 private:
  CorruptionConfig config_;
};

}  // namespace offnet::io
