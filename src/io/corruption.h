#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// Deterministic fault injection for the on-disk dataset formats, so
/// tests can drive the permissive loaders and degraded-mode longitudinal
/// runs through every failure class real corpuses exhibit — without
/// shipping fixture files. Damage is record-indexed: each data line's
/// fate is a pure function of (seed, input kind, record index, line), so
/// the same fault plan falls out whether a corpus is corrupted as one
/// buffer or streamed line by line in any chunking.
namespace offnet::io {

/// Which dataset format a corpus is in — decides the field separator and
/// which format-specific corruptions apply.
enum class InputKind {
  kRelationships,
  kOrganizations,
  kPrefix2As,
  kCertificates,
  kHosts,
  kHeaders,
};

/// Failure classes, combinable as a bitmask.
enum CorruptionKind : unsigned {
  kTruncateLine = 1u << 0,   // cut a line short, possibly mid-field
  kDeleteField = 1u << 1,    // drop one separator-delimited field
  kSwapFields = 1u << 2,     // exchange two fields
  kGarbageBytes = 1u << 3,   // splat non-format bytes over a span
  kDuplicateLine = 1u << 4,  // emit a line twice (duplicate keys)
  kPrefixLenOutOfRange = 1u << 5,  // prefix2as only: length > 32
  kReverseDateRange = 1u << 6,     // certificates only: not_after < not_before
  kAllCorruptions = (1u << 7) - 1,
};

struct CorruptionConfig {
  std::uint64_t seed = 20210823;
  double intensity = 0.01;          // fraction of data lines damaged
  unsigned kinds = kAllCorruptions; // enabled failure classes
};

/// What one corrupt() call did.
struct CorruptionSummary {
  std::size_t data_lines = 0;       // non-comment, non-blank lines seen
  std::size_t corrupted_lines = 0;  // lines damaged
};

class CorruptionInjector {
 public:
  explicit CorruptionInjector(CorruptionConfig config = {});

  /// Returns `text` with ~intensity of its data lines mangled by failure
  /// classes applicable to `input`. Comments and blank lines pass
  /// through untouched.
  std::string corrupt(std::string_view text, InputKind input,
                      CorruptionSummary* summary = nullptr) const;

  /// Record-indexed damage: the fault decision for data record
  /// `record_index` (0-based among the data lines of this input) depends
  /// only on (seed, input, record_index, line text) — never on preceding
  /// lines or buffer offsets — so a streaming consumer applying it line
  /// by line produces exactly the fault plan corrupt() produces on the
  /// whole buffer, at any chunk size. Returns the damaged line (which
  /// may contain an embedded '\n' for kDuplicateLine), or nullopt when
  /// this record is left intact.
  std::optional<std::string> corrupt_record(std::string_view line,
                                            InputKind input,
                                            std::size_t record_index) const;

  /// Replaces every line with garbage: an unrecoverably corrupt file
  /// that blows any error budget.
  static std::string destroy(std::string_view text);

 private:
  CorruptionConfig config_;
};

}  // namespace offnet::io
