#include "io/exporter.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace offnet::io {

namespace {

/// Flattens a chain verdict into the loader's trust field (validity
/// windows are preserved separately, so "trusted but expired" survives a
/// round trip).
const char* trust_of(const tls::CertificateStore& store,
                     const tls::RootStore& roots, tls::CertId id) {
  const tls::Certificate& cert = store.get(id);
  if (cert.self_signed()) return "self-signed";
  for (tls::CertId link = cert.issuer; link != tls::kNoCert;
       link = store.get(link).issuer) {
    if (roots.is_trusted(link)) return "trusted";
  }
  return "untrusted";
}

}  // namespace

void export_dataset(const DatasetSources& sources,
                    const scan::ScanSnapshot& snapshot, ExportStreams out) {
  const topo::Topology& topology = sources.topology;

  // ---- AS relationships (CAIDA serial-1). Peer links are symmetric in
  // the graph; emit each once. ----
  out.relationships << "# offnet export | serial-1\n";
  for (topo::AsId id = 0; id < topology.as_count(); ++id) {
    for (topo::AsId customer : topology.graph().customers(id)) {
      out.relationships << topology.as(id).asn << '|'
                        << topology.as(customer).asn << "|-1\n";
    }
    for (topo::AsId peer : topology.graph().peers(id)) {
      if (peer > id) {
        out.relationships << topology.as(id).asn << '|'
                          << topology.as(peer).asn << "|0\n";
      }
    }
  }

  // ---- Organizations. ----
  out.organizations << "# offnet export | org_id|name then asn|org_id\n";
  for (topo::OrgId org = 0; org < topology.orgs().org_count(); ++org) {
    out.organizations << "O" << org << '|' << topology.orgs().name(org)
                      << '\n';
  }
  for (topo::AsId id = 0; id < topology.as_count(); ++id) {
    if (topology.as(id).org != topo::kNoOrg) {
      out.organizations << topology.as(id).asn << "|O" << topology.as(id).org
                        << '\n';
    }
  }

  // ---- prefix2as for this snapshot. ----
  out.prefix2as << "# offnet export | base\\tlen\\torigins\n";
  sources.prefix2as.for_each(
      [&](const net::Prefix& prefix, const bgp::OriginSet& origins) {
        out.prefix2as << prefix.base().to_string() << '\t'
                      << static_cast<int>(prefix.length()) << '\t';
        bool first = true;
        for (net::Asn asn : origins.origins()) {
          if (!first) out.prefix2as << '_';
          out.prefix2as << asn;
          first = false;
        }
        out.prefix2as << '\n';
      });

  // ---- Certificates referenced by the snapshot, then hosts. Emitted in
  // ascending id order so exports are byte-identical across runs. ----
  std::unordered_set<tls::CertId> referenced_set;
  for (const scan::CertScanRecord& rec : snapshot.certs()) {
    referenced_set.insert(rec.cert);
  }
  std::vector<tls::CertId> referenced(referenced_set.begin(),
                                      referenced_set.end());
  std::sort(referenced.begin(), referenced.end());
  out.certificates
      << "# offnet export | id\\torg\\tnot_before\\tnot_after\\ttrust"
         "\\tsans\n";
  for (tls::CertId id : referenced) {
    const tls::Certificate& cert = sources.certs.get(id);
    out.certificates << "c" << id << '\t' << cert.subject.organization
                     << '\t' << cert.not_before.date_string() << '\t'
                     << cert.not_after.date_string() << '\t'
                     << trust_of(sources.certs, sources.roots, id) << '\t';
    bool first = true;
    for (const std::string& san : cert.dns_names) {
      if (!first) out.certificates << ',';
      out.certificates << san;
      first = false;
    }
    out.certificates << '\n';
  }
  out.hosts << "# offnet export | ip\\tcert_id\n";
  for (const scan::CertScanRecord& rec : snapshot.certs()) {
    out.hosts << rec.ip.to_string() << "\tc" << rec.cert << '\n';
  }

  // ---- Headers. ----
  out.headers << "# offnet export | ip\\tport\\tName: value|...\n";
  auto emit = [&](bool https) {
    snapshot.for_each_headers(https, [&](net::IPv4 ip,
                                         const http::HeaderMap& headers) {
      if (headers.empty()) return;
      out.headers << ip.to_string() << '\t' << (https ? "443" : "80") << '\t';
      bool first = true;
      for (const http::Header& h : headers.all()) {
        if (!first) out.headers << '|';
        out.headers << h.name << ": " << h.value;
        first = false;
      }
      out.headers << '\n';
    });
  };
  if (snapshot.has_https_headers()) emit(true);
  if (snapshot.has_http_headers()) emit(false);
}

}  // namespace offnet::io
