#pragma once

#include <ostream>
#include <string>

#include "scan/record.h"
#include "scan/world.h"

namespace offnet::io {

/// Writes a simulated snapshot in the on-disk formats `loaders.h` reads —
/// useful for interoperability testing and for handing simulated corpuses
/// to external tools. export + load round-trips to an equivalent
/// pipeline input.
struct ExportStreams {
  std::ostream& relationships;
  std::ostream& organizations;
  std::ostream& prefix2as;
  std::ostream& certificates;
  std::ostream& hosts;
  std::ostream& headers;
};

void export_dataset(const scan::World& world,
                    const scan::ScanSnapshot& snapshot, ExportStreams out);

/// Writes the six dataset files (relationships.txt, organizations.txt,
/// prefix2as.txt, certificates.tsv, hosts.tsv, headers.tsv) into `dir`
/// through io::AtomicFile: every file is staged to a temp name and
/// published only after its bytes are flushed and verified, so a crash
/// or full disk can never leave a torn file under a final name. Throws
/// std::runtime_error (naming the file) on any write failure.
void export_dataset_to_dir(const scan::World& world,
                           const scan::ScanSnapshot& snapshot,
                           const std::string& dir);

}  // namespace offnet::io
