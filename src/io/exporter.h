#pragma once

#include <ostream>

#include "bgp/ip2as.h"
#include "scan/record.h"
#include "tls/certificate.h"
#include "tls/validator.h"
#include "topology/topology.h"

namespace offnet::io {

/// Writes a simulated snapshot in the on-disk formats `loaders.h` reads —
/// useful for interoperability testing and for handing simulated corpuses
/// to external tools. export + load round-trips to an equivalent
/// pipeline input.
struct ExportStreams {
  std::ostream& relationships;
  std::ostream& organizations;
  std::ostream& prefix2as;
  std::ostream& certificates;
  std::ostream& hosts;
  std::ostream& headers;
};

/// The slices of the simulation the exporter reads, as plain references
/// to layer-2 stores. Callers that hold a scan::World assemble this DTO
/// via scan::export_dataset / export_dataset_to_dir; keeping the World
/// out of this header keeps src/io below src/scan in the layer DAG.
struct DatasetSources {
  const topo::Topology& topology;
  const bgp::Ip2AsMap& prefix2as;  // the snapshot being exported
  const tls::CertificateStore& certs;
  const tls::RootStore& roots;
};

void export_dataset(const DatasetSources& sources,
                    const scan::ScanSnapshot& snapshot, ExportStreams out);

}  // namespace offnet::io
