#pragma once

#include <ostream>

#include "scan/record.h"
#include "scan/world.h"

namespace offnet::io {

/// Writes a simulated snapshot in the on-disk formats `loaders.h` reads —
/// useful for interoperability testing and for handing simulated corpuses
/// to external tools. export + load round-trips to an equivalent
/// pipeline input.
struct ExportStreams {
  std::ostream& relationships;
  std::ostream& organizations;
  std::ostream& prefix2as;
  std::ostream& certificates;
  std::ostream& hosts;
  std::ostream& headers;
};

void export_dataset(const scan::World& world,
                    const scan::ScanSnapshot& snapshot, ExportStreams out);

}  // namespace offnet::io
