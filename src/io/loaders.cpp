#include "io/loaders.h"

#include <charconv>
#include <unordered_map>

#include "tls/ca.h"

namespace offnet::io {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t line) {
  throw LoadError(std::string(what) + " at line " + std::to_string(line));
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_number(std::string_view text, std::size_t line) {
  std::uint64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    fail("malformed number '" + std::string(text) + "'", line);
  }
  return value;
}

/// "YYYY-MM-DD" -> DayTime.
net::DayTime parse_date(std::string_view text, std::size_t line) {
  auto parts = split(text, '-');
  if (parts.size() != 3) fail("malformed date", line);
  int year = static_cast<int>(parse_number(parts[0], line));
  int month = static_cast<int>(parse_number(parts[1], line));
  int day = static_cast<int>(parse_number(parts[2], line));
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    fail("date out of range", line);
  }
  return net::DayTime::from(net::YearMonth(year, month), day);
}

bool is_comment_or_blank(std::string_view line) {
  return line.empty() || line[0] == '#';
}

std::string_view rstrip(std::string_view text,
                        std::string_view chars = " \t\r") {
  std::size_t end = text.find_last_not_of(chars);
  return end == std::string_view::npos ? std::string_view{}
                                       : text.substr(0, end + 1);
}

/// Per-file error accounting under the configured policy. Loaders parse
/// each data line inside a try block; `skip()` is called from the catch
/// handler and rethrows in strict mode, so strict failures keep their
/// exact line numbers while permissive mode tallies and moves on.
/// `finish()` enforces the error budget once the file is read.
class Tally {
 public:
  Tally(std::string kind, const ReadOptions& options, LoadReport* report)
      : options_(options), report_(report) {
    file_.kind = std::move(kind);
  }

  void ok() { ++file_.lines_ok; }

  /// Must be called while a LoadError is in flight (from a catch block).
  void skip(std::size_t line, const char* what) {
    if (!options_.permissive()) throw;
    record(line, what);
  }

  /// Retracts a previously ok() line whose cross-reference turned out to
  /// be broken (e.g. an asn->org assignment naming an unknown org).
  /// Throws in strict mode.
  void demote(std::size_t line, const std::string& what) {
    if (!options_.permissive()) throw LoadError(what);
    if (file_.lines_ok > 0) --file_.lines_ok;
    record(line, what.c_str());
  }

  void finish() {
    double fraction = file_.error_fraction();
    std::string kind = file_.kind;
    std::size_t skipped = file_.lines_skipped;
    std::size_t total = file_.lines_ok + skipped;
    std::string first_error =
        file_.samples.empty() ? std::string("n/a") : file_.samples[0].what;
    if (report_ != nullptr) report_->files.push_back(std::move(file_));
    if (options_.permissive() && fraction > options_.max_error_fraction) {
      throw LoadError("error budget exceeded in " + kind + ": skipped " +
                      std::to_string(skipped) + " of " +
                      std::to_string(total) + " lines (budget " +
                      std::to_string(options_.max_error_fraction) +
                      "); first error: " + first_error);
    }
  }

 private:
  void record(std::size_t line, const char* what) {
    ++file_.lines_skipped;
    if (file_.samples.size() < options_.max_error_samples) {
      file_.samples.push_back({line, what});
    }
  }

  FileReport file_;
  const ReadOptions& options_;
  LoadReport* report_;
};

/// Reads every data line of `in` through `fn` (which throws LoadError on
/// malformed input), routing failures through the tally. Trailing
/// whitespace is stripped (`strip`), and blank / whitespace-only /
/// comment lines are skipped without counting.
template <class Fn>
void scan_lines(std::istream& in, Tally& tally, Fn&& fn,
                std::string_view strip = " \t\r") {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = rstrip(line, strip);
    if (is_comment_or_blank(text) ||
        text.find_first_not_of(" \t") == std::string_view::npos) {
      continue;
    }
    try {
      fn(text, line_no);
      tally.ok();
    } catch (const LoadError& e) {
      tally.skip(line_no, e.what());
    }
  }
}

}  // namespace

RelationshipData load_as_relationships(std::istream& in,
                                       const ReadOptions& options,
                                       LoadReport* report) {
  RelationshipData data;
  std::unordered_map<net::Asn, topo::AsId> ids;
  auto intern = [&](net::Asn asn) {
    auto it = ids.find(asn);
    if (it != ids.end()) return it->second;
    topo::AsId id = data.graph.add_as(asn);
    data.asns.push_back(asn);
    ids.emplace(asn, id);
    return id;
  };

  Tally tally("relationships", options, report);
  scan_lines(in, tally, [&](std::string_view text, std::size_t line_no) {
    auto fields = split(text, '|');
    if (fields.size() < 3) fail("expected as1|as2|rel", line_no);
    auto a = static_cast<net::Asn>(parse_number(fields[0], line_no));
    auto b = static_cast<net::Asn>(parse_number(fields[1], line_no));
    if (a == b) fail("self link", line_no);
    // Validate the relationship before interning so a skipped line does
    // not leave orphan ASes behind.
    int rel;
    if (fields[2] == "-1") {
      rel = -1;
    } else if (fields[2] == "0") {
      rel = 0;
    } else {
      fail("unknown relationship '" + std::string(fields[2]) + "'", line_no);
    }
    topo::AsId id_a = intern(a);
    topo::AsId id_b = intern(b);
    if (rel == -1) {
      data.graph.add_customer_link(id_a, id_b);  // a provider of b
    } else {
      data.graph.add_peer_link(id_a, id_b);
    }
  });
  tally.finish();
  return data;
}

topo::Topology load_topology(std::istream& relationships,
                             std::istream& organizations,
                             const ReadOptions& options, LoadReport* report) {
  RelationshipData rel = load_as_relationships(relationships, options, report);

  std::vector<topo::AsRecord> records(rel.asns.size());
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    records[id].asn = rel.asns[id];
  }

  // Organizations file: "org_id|name" and "asn|org_id" lines. Org-id
  // tokens are non-numeric (CAIDA uses opaque ids), so the two line
  // kinds are distinguished by whether the first field parses as an ASN.
  topo::OrgDb orgs;
  std::unordered_map<std::string, topo::OrgId> org_ids;
  std::unordered_map<net::Asn, topo::AsId> asn_to_id;
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    asn_to_id.emplace(rel.asns[id], id);
  }

  struct Assignment {
    net::Asn asn;
    std::string org;
    std::size_t line;
  };
  std::vector<Assignment> assignments;
  Tally tally("organizations", options, report);
  scan_lines(organizations, tally,
             [&](std::string_view text, std::size_t line_no) {
               auto fields = split(text, '|');
               if (fields.size() < 2) fail("expected two '|' fields", line_no);
               net::Asn asn = 0;
               auto [p, ec] = std::from_chars(
                   fields[0].data(), fields[0].data() + fields[0].size(), asn);
               bool numeric = ec == std::errc{} &&
                              p == fields[0].data() + fields[0].size();
               if (numeric) {
                 assignments.push_back(
                     {asn, std::string(fields[1]), line_no});
               } else {
                 org_ids.emplace(
                     std::string(fields[0]),
                     orgs.add_org(std::string(fields[1]), topo::kNoCountry));
               }
             });
  for (const Assignment& assignment : assignments) {
    auto as_it = asn_to_id.find(assignment.asn);
    auto org_it = org_ids.find(assignment.org);
    if (as_it == asn_to_id.end()) continue;  // org data beyond the graph
    if (org_it == org_ids.end()) {
      tally.demote(assignment.line, "assignment references unknown org '" +
                                        assignment.org + "' at line " +
                                        std::to_string(assignment.line));
      continue;
    }
    orgs.assign(org_it->second, as_it->second);
    records[as_it->second].org = org_it->second;
  }
  tally.finish();

  return topo::Topology(std::move(rel.graph), std::move(records),
                        std::move(orgs));
}

bgp::Ip2AsMap load_prefix2as(std::istream& in, const ReadOptions& options,
                             LoadReport* report) {
  bgp::Ip2AsMap map;
  Tally tally("prefix2as", options, report);
  scan_lines(in, tally, [&](std::string_view text, std::size_t line_no) {
    auto fields = split(text, '\t');
    if (fields.size() != 3) fail("expected base<TAB>len<TAB>asns", line_no);
    auto base = net::IPv4::parse(fields[0]);
    if (!base) fail("malformed prefix base", line_no);
    auto length = parse_number(fields[1], line_no);
    if (length > 32) fail("prefix length out of range", line_no);
    bgp::OriginSet origins;
    for (std::string_view token : split(fields[2], '_')) {
      origins.add(static_cast<net::Asn>(parse_number(token, line_no)));
    }
    map.insert(net::Prefix(*base, static_cast<std::uint8_t>(length)),
               origins);
  });
  tally.finish();
  return map;
}

namespace {

void load_certificates(std::istream& in, tls::CertificateStore& store,
                       tls::RootStore& roots,
                       std::unordered_map<std::string, tls::CertId>& by_id,
                       const ReadOptions& options, LoadReport* report) {
  // One shared trusted root / untrusted root pair models the flattened
  // chain-verification verdict in the input.
  tls::CaService ca(store, roots);
  tls::CertId trusted_root = ca.create_root("Imported WebPKI");

  Tally tally("certificates", options, report);
  // The trailing SAN field is legitimately empty, so only line
  // terminators are stripped — a trailing tab is part of the record.
  scan_lines(
      in, tally,
      [&](std::string_view text, std::size_t line_no) {
        auto fields = split(text, '\t');
        if (fields.size() != 6) {
          fail("expected 6 tab-separated certificate fields", line_no);
        }
        if (by_id.contains(std::string(fields[0]))) {
          fail("duplicate certificate id", line_no);
        }
        tls::DistinguishedName subject;
        subject.organization = std::string(fields[1]);
        std::vector<std::string> sans;
        if (!fields[5].empty()) {
          for (std::string_view san : split(fields[5], ',')) {
            sans.emplace_back(san);
          }
        }
        net::DayTime not_before = parse_date(fields[2], line_no);
        net::DayTime not_after = parse_date(fields[3], line_no);
        if (not_after < not_before) {
          fail("not_after precedes not_before", line_no);
        }
        auto days = static_cast<int>(not_after.days() - not_before.days());

        tls::CertId id = tls::kNoCert;
        if (fields[4] == "trusted") {
          id = ca.issue(trusted_root, std::move(subject), std::move(sans),
                        not_before, days);
        } else if (fields[4] == "self-signed") {
          id = ca.issue_self_signed(std::move(subject), std::move(sans),
                                    not_before, days);
        } else if (fields[4] == "untrusted") {
          id = ca.issue_untrusted(std::move(subject), std::move(sans),
                                  not_before, days);
        } else {
          fail("unknown trust '" + std::string(fields[4]) + "'", line_no);
        }
        by_id.emplace(std::string(fields[0]), id);
      },
      "\r");
  tally.finish();
}

}  // namespace

void Dataset::add_headers(std::istream& in, const ReadOptions& options,
                          LoadReport* report) {
  LoadReport& out = report != nullptr ? *report : report_;
  std::size_t base = out.files.size();
  Tally tally("headers", options, &out);
  // Header values may contain significant interior whitespace, so only
  // line terminators are stripped here.
  scan_lines(
      in, tally,
      [&](std::string_view text, std::size_t line_no) {
        auto fields = split(text, '\t');
        if (fields.size() != 3) {
          fail("expected ip<TAB>port<TAB>headers", line_no);
        }
        auto ip = net::IPv4::parse(fields[0]);
        if (!ip) fail("malformed IP", line_no);
        http::HeaderMap headers;
        for (std::string_view pair : split(fields[2], '|')) {
          auto colon = pair.find(':');
          if (colon == std::string_view::npos) {
            fail("malformed header", line_no);
          }
          std::string_view value = pair.substr(colon + 1);
          while (!value.empty() && value.front() == ' ') {
            value.remove_prefix(1);
          }
          headers.add(std::string(pair.substr(0, colon)), std::string(value));
        }
        http::HeaderSetId set = catalog_->add(std::move(headers));
        if (fields[1] == "443") {
          snapshot_->add_https_headers(*ip, set);
          snapshot_->set_header_availability(true,
                                             snapshot_->has_http_headers());
        } else if (fields[1] == "80") {
          snapshot_->add_http_headers(*ip, set);
          snapshot_->set_header_availability(snapshot_->has_https_headers(),
                                             true);
        } else {
          fail("unknown port", line_no);
        }
      },
      "\r");
  tally.finish();
  if (report != nullptr) {
    report_.files.insert(report_.files.end(), out.files.begin() + base,
                         out.files.end());
  }
}

Dataset load_dataset(std::istream& relationships, std::istream& organizations,
                     std::istream& prefix2as, std::istream& certificates,
                     std::istream& hosts, net::YearMonth scan_month,
                     const ReadOptions& options, LoadReport* report) {
  Dataset dataset;
  // Fill the caller's report directly so it still holds the per-file
  // accounting when a load aborts mid-way.
  LoadReport& out = report != nullptr ? *report : dataset.report_;
  std::size_t base = out.files.size();

  dataset.topology_ = std::make_unique<topo::Topology>(
      load_topology(relationships, organizations, options, &out));
  dataset.ip2as_ = std::make_unique<bgp::FixedIp2As>(
      load_prefix2as(prefix2as, options, &out));

  std::unordered_map<std::string, tls::CertId> cert_ids;
  load_certificates(certificates, dataset.certs_, dataset.roots_, cert_ids,
                    options, &out);

  dataset.catalog_ = std::make_unique<http::HeaderCatalog>();
  auto snapshot_idx = net::snapshot_index(scan_month);
  dataset.snapshot_ = std::make_unique<scan::ScanSnapshot>(
      scan::ScannerKind::kRapid7, snapshot_idx.value_or(0),
      net::DayTime::from(scan_month, 15), *dataset.catalog_);

  Tally tally("hosts", options, &out);
  scan_lines(hosts, tally, [&](std::string_view text, std::size_t line_no) {
    auto fields = split(text, '\t');
    if (fields.size() != 2) fail("expected ip<TAB>cert_id", line_no);
    auto ip = net::IPv4::parse(fields[0]);
    if (!ip) fail("malformed IP", line_no);
    auto it = cert_ids.find(std::string(fields[1]));
    if (it == cert_ids.end()) {
      fail("host references unknown certificate '" + std::string(fields[1]) +
               "'",
           line_no);
    }
    dataset.snapshot_->certs().push_back(
        scan::CertScanRecord{*ip, it->second});
  });
  tally.finish();

  if (report != nullptr) {
    dataset.report_.files.assign(out.files.begin() + base, out.files.end());
  }
  return dataset;
}

}  // namespace offnet::io
