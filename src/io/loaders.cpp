#include "io/loaders.h"

#include <charconv>
#include <unordered_map>

#include "tls/ca.h"

namespace offnet::io {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t line) {
  throw LoadError(std::string(what) + " at line " + std::to_string(line));
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_number(std::string_view text, std::size_t line) {
  std::uint64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    fail("malformed number '" + std::string(text) + "'", line);
  }
  return value;
}

/// "YYYY-MM-DD" -> DayTime.
net::DayTime parse_date(std::string_view text, std::size_t line) {
  auto parts = split(text, '-');
  if (parts.size() != 3) fail("malformed date", line);
  int year = static_cast<int>(parse_number(parts[0], line));
  int month = static_cast<int>(parse_number(parts[1], line));
  int day = static_cast<int>(parse_number(parts[2], line));
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    fail("date out of range", line);
  }
  return net::DayTime::from(net::YearMonth(year, month), day);
}

bool is_comment_or_blank(std::string_view line) {
  return line.empty() || line[0] == '#';
}

}  // namespace

RelationshipData load_as_relationships(std::istream& in) {
  RelationshipData data;
  std::unordered_map<net::Asn, topo::AsId> ids;
  auto intern = [&](net::Asn asn) {
    auto it = ids.find(asn);
    if (it != ids.end()) return it->second;
    topo::AsId id = data.graph.add_as(asn);
    data.asns.push_back(asn);
    ids.emplace(asn, id);
    return id;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '|');
    if (fields.size() < 3) fail("expected as1|as2|rel", line_no);
    auto a = static_cast<net::Asn>(parse_number(fields[0], line_no));
    auto b = static_cast<net::Asn>(parse_number(fields[1], line_no));
    if (a == b) fail("self link", line_no);
    topo::AsId id_a = intern(a);
    topo::AsId id_b = intern(b);
    if (fields[2] == "-1") {
      data.graph.add_customer_link(id_a, id_b);  // a provider of b
    } else if (fields[2] == "0") {
      data.graph.add_peer_link(id_a, id_b);
    } else {
      fail("unknown relationship '" + std::string(fields[2]) + "'", line_no);
    }
  }
  return data;
}

topo::Topology load_topology(std::istream& relationships,
                             std::istream& organizations) {
  RelationshipData rel = load_as_relationships(relationships);

  std::vector<topo::AsRecord> records(rel.asns.size());
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    records[id].asn = rel.asns[id];
  }

  // Organizations file: "org_id|name" and "asn|org_id" lines. Org-id
  // tokens are non-numeric (CAIDA uses opaque ids), so the two line
  // kinds are distinguished by whether the first field parses as an ASN.
  topo::OrgDb orgs;
  std::unordered_map<std::string, topo::OrgId> org_ids;
  std::unordered_map<net::Asn, topo::AsId> asn_to_id;
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    asn_to_id.emplace(rel.asns[id], id);
  }

  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<net::Asn, std::string>> assignments;
  while (std::getline(organizations, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '|');
    if (fields.size() < 2) fail("expected two '|' fields", line_no);
    net::Asn asn = 0;
    auto [p, ec] = std::from_chars(
        fields[0].data(), fields[0].data() + fields[0].size(), asn);
    bool numeric = ec == std::errc{} &&
                   p == fields[0].data() + fields[0].size();
    if (numeric) {
      assignments.emplace_back(asn, std::string(fields[1]));
    } else {
      org_ids.emplace(std::string(fields[0]),
                      orgs.add_org(std::string(fields[1]), topo::kNoCountry));
    }
  }
  for (const auto& [asn, org_token] : assignments) {
    auto as_it = asn_to_id.find(asn);
    auto org_it = org_ids.find(org_token);
    if (as_it == asn_to_id.end()) continue;  // org data beyond the graph
    if (org_it == org_ids.end()) {
      throw LoadError("assignment references unknown org '" + org_token +
                      "'");
    }
    orgs.assign(org_it->second, as_it->second);
    records[as_it->second].org = org_it->second;
  }

  return topo::Topology(std::move(rel.graph), std::move(records),
                        std::move(orgs));
}

bgp::Ip2AsMap load_prefix2as(std::istream& in) {
  bgp::Ip2AsMap map;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '\t');
    if (fields.size() != 3) fail("expected base<TAB>len<TAB>asns", line_no);
    auto base = net::IPv4::parse(fields[0]);
    if (!base) fail("malformed prefix base", line_no);
    auto length = parse_number(fields[1], line_no);
    if (length > 32) fail("prefix length out of range", line_no);
    bgp::OriginSet origins;
    for (std::string_view token : split(fields[2], '_')) {
      origins.add(static_cast<net::Asn>(parse_number(token, line_no)));
    }
    map.insert(net::Prefix(*base, static_cast<std::uint8_t>(length)),
               origins);
  }
  return map;
}

namespace {

void load_certificates(std::istream& in, tls::CertificateStore& store,
                       tls::RootStore& roots,
                       std::unordered_map<std::string, tls::CertId>& by_id) {
  // One shared trusted root / untrusted root pair models the flattened
  // chain-verification verdict in the input.
  tls::CaService ca(store, roots);
  tls::CertId trusted_root = ca.create_root("Imported WebPKI");

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '\t');
    if (fields.size() != 6) {
      fail("expected 6 tab-separated certificate fields", line_no);
    }
    tls::DistinguishedName subject;
    subject.organization = std::string(fields[1]);
    std::vector<std::string> sans;
    if (!fields[5].empty()) {
      for (std::string_view san : split(fields[5], ',')) {
        sans.emplace_back(san);
      }
    }
    net::DayTime not_before = parse_date(fields[2], line_no);
    net::DayTime not_after = parse_date(fields[3], line_no);
    if (not_after < not_before) fail("not_after precedes not_before", line_no);
    auto days = static_cast<int>(not_after.days() - not_before.days());

    tls::CertId id = tls::kNoCert;
    if (fields[4] == "trusted") {
      id = ca.issue(trusted_root, std::move(subject), std::move(sans),
                    not_before, days);
    } else if (fields[4] == "self-signed") {
      id = ca.issue_self_signed(std::move(subject), std::move(sans),
                                not_before, days);
    } else if (fields[4] == "untrusted") {
      id = ca.issue_untrusted(std::move(subject), std::move(sans),
                              not_before, days);
    } else {
      fail("unknown trust '" + std::string(fields[4]) + "'", line_no);
    }
    if (!by_id.emplace(std::string(fields[0]), id).second) {
      fail("duplicate certificate id", line_no);
    }
  }
}

}  // namespace

void Dataset::add_headers(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '\t');
    if (fields.size() != 3) fail("expected ip<TAB>port<TAB>headers", line_no);
    auto ip = net::IPv4::parse(fields[0]);
    if (!ip) fail("malformed IP", line_no);
    http::HeaderMap headers;
    for (std::string_view pair : split(fields[2], '|')) {
      auto colon = pair.find(':');
      if (colon == std::string_view::npos) fail("malformed header", line_no);
      std::string_view value = pair.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      headers.add(std::string(pair.substr(0, colon)), std::string(value));
    }
    http::HeaderSetId set = catalog_->add(std::move(headers));
    if (fields[1] == "443") {
      snapshot_->add_https_headers(*ip, set);
      snapshot_->set_header_availability(true, snapshot_->has_http_headers());
    } else if (fields[1] == "80") {
      snapshot_->add_http_headers(*ip, set);
      snapshot_->set_header_availability(snapshot_->has_https_headers(), true);
    } else {
      fail("unknown port", line_no);
    }
  }
}

Dataset load_dataset(std::istream& relationships, std::istream& organizations,
                     std::istream& prefix2as, std::istream& certificates,
                     std::istream& hosts, net::YearMonth scan_month) {
  Dataset dataset;
  dataset.topology_ = std::make_unique<topo::Topology>(
      load_topology(relationships, organizations));
  dataset.ip2as_ =
      std::make_unique<bgp::FixedIp2As>(load_prefix2as(prefix2as));

  std::unordered_map<std::string, tls::CertId> cert_ids;
  load_certificates(certificates, dataset.certs_, dataset.roots_, cert_ids);

  dataset.catalog_ = std::make_unique<http::HeaderCatalog>();
  auto snapshot_idx = net::snapshot_index(scan_month);
  dataset.snapshot_ = std::make_unique<scan::ScanSnapshot>(
      scan::ScannerKind::kRapid7, snapshot_idx.value_or(0),
      net::DayTime::from(scan_month, 15), *dataset.catalog_);

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(hosts, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    auto fields = split(line, '\t');
    if (fields.size() != 2) fail("expected ip<TAB>cert_id", line_no);
    auto ip = net::IPv4::parse(fields[0]);
    if (!ip) fail("malformed IP", line_no);
    auto it = cert_ids.find(std::string(fields[1]));
    if (it == cert_ids.end()) {
      fail("host references unknown certificate '" + std::string(fields[1]) +
               "'",
           line_no);
    }
    dataset.snapshot_->certs().push_back(
        scan::CertScanRecord{*ip, it->second});
  }
  return dataset;
}

}  // namespace offnet::io
