#include "io/loaders.h"

#include <charconv>
#include <optional>
#include <unordered_map>
#include <utility>

#include "io/stream/arena.h"
#include "tls/ca.h"

namespace offnet::io {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t line) {
  throw LoadError(std::string(what) + " at line " + std::to_string(line));
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_number(std::string_view text, std::size_t line) {
  std::uint64_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    fail("malformed number '" + std::string(text) + "'", line);
  }
  return value;
}

/// "YYYY-MM-DD" -> DayTime.
net::DayTime parse_date(std::string_view text, std::size_t line) {
  auto parts = split(text, '-');
  if (parts.size() != 3) fail("malformed date", line);
  int year = static_cast<int>(parse_number(parts[0], line));
  int month = static_cast<int>(parse_number(parts[1], line));
  int day = static_cast<int>(parse_number(parts[2], line));
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    fail("date out of range", line);
  }
  return net::DayTime::from(net::YearMonth(year, month), day);
}

/// How many bytes are left in `in`, when the stream is seekable. Used to
/// prove an error budget unmeetable mid-read; non-seekable streams just
/// lose early abort (except for a zero budget, which needs no bound).
std::optional<std::uint64_t> bytes_remaining(std::istream& in) {
  if (!in.good()) return std::nullopt;
  std::streampos cur = in.tellg();
  if (cur < 0) {
    in.clear();
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  in.clear();
  in.seekg(cur);
  if (end < cur) return std::nullopt;
  return static_cast<std::uint64_t>(end - cur);
}

/// Per-file error accounting under the configured policy — the Sink the
/// streaming driver commits through (io/stream/driver.h). All calls
/// happen on the committing thread in input order, so every decision —
/// including the early budget abort — is deterministic and identical at
/// any thread count or batch size.
class Tally {
 public:
  Tally(std::string kind, const ReadOptions& options, LoadReport* report)
      : options_(options), report_(report) {
    file_.kind = std::move(kind);
  }

  /// Arms the early budget abort: with the input size known, the budget
  /// trips at the first skipped line where even an all-clean remainder
  /// could not bring the error fraction back under the bound.
  void set_input_bytes(std::uint64_t bytes) {
    remaining_ = bytes;
    bounded_ = true;
  }

  // ---- Sink contract (driver calls, in input order) ----

  void consume(std::size_t raw_bytes) {
    if (bounded_) {
      remaining_ -= std::min<std::uint64_t>(remaining_, raw_bytes);
    }
  }

  bool on_truncated_final_line(std::size_t line, bool is_data) {
    file_.missing_final_newline = true;
    if (options_.final_newline == FinalNewlinePolicy::kAcceptData) {
      return true;
    }
    if (is_data) {
      skip(line, "truncated final line (missing newline) at line " +
                     std::to_string(line));
    }
    return false;
  }

  void ok() { ++file_.lines_ok; }

  /// A malformed line: throws in strict mode, tallies in permissive mode
  /// and aborts early once the budget provably cannot be met.
  void skip(std::size_t line, const std::string& what) {
    if (!options_.permissive()) throw LoadError(what);
    record(line, what.c_str());
    check_budget();
  }

  // ---- Loader-side accounting ----

  /// Retracts a previously ok() line whose cross-reference turned out to
  /// be broken (e.g. an asn->org assignment naming an unknown org).
  /// Throws in strict mode. Budget enforcement for demotions stays in
  /// finish(): they are discovered after the scan, so there is no
  /// "remaining input" to reason about.
  void demote(std::size_t line, const std::string& what) {
    if (!options_.permissive()) throw LoadError(what);
    if (file_.lines_ok > 0) --file_.lines_ok;
    record(line, what.c_str());
  }

  void finish() {
    double fraction = file_.error_fraction();
    std::string error = budget_error();
    if (report_ != nullptr) report_->files.push_back(std::move(file_));
    if (options_.permissive() && fraction > options_.max_error_fraction) {
      throw LoadError(std::move(error));
    }
  }

 private:
  void record(std::size_t line, const char* what) {
    ++file_.lines_skipped;
    if (file_.samples.size() < options_.max_error_samples) {
      file_.samples.push_back({line, what});
    }
  }

  /// Early abort: even if every remaining byte parses clean, could the
  /// final error fraction still meet the budget? Each future data line
  /// costs at least two bytes (one content byte + '\n'), except a final
  /// unterminated one — hence the (remaining + 1) / 2 bound. At end of
  /// input this reduces to exactly the finish() check, so the abort
  /// point (and message) depends only on the committed line sequence:
  /// deterministic, thread-count- and batch-size-independent.
  void check_budget() {
    std::size_t skipped = file_.lines_skipped;
    if (bounded_) {
      std::uint64_t max_more = (remaining_ + 1) / 2;
      double max_total =
          static_cast<double>(file_.lines_ok + skipped) +
          static_cast<double>(max_more);
      double fraction =
          max_total == 0.0 ? 0.0 : static_cast<double>(skipped) / max_total;
      if (fraction > options_.max_error_fraction) blow();
    } else if (options_.max_error_fraction <= 0.0 && skipped > 0) {
      blow();
    }
  }

  [[noreturn]] void blow() {
    std::string error = budget_error();
    // Publish the partial accounting so the caller's report still says
    // what was read before the abort, exactly like finish().
    if (report_ != nullptr) report_->files.push_back(std::move(file_));
    throw LoadError(std::move(error));
  }

  std::string budget_error() const {
    std::size_t skipped = file_.lines_skipped;
    std::size_t total = file_.lines_ok + skipped;
    std::string first_error =
        file_.samples.empty() ? std::string("n/a") : file_.samples[0].what;
    return "error budget exceeded in " + file_.kind + ": skipped " +
           std::to_string(skipped) + " of " + std::to_string(total) +
           " lines (budget " + std::to_string(options_.max_error_fraction) +
           "); first error: " + first_error;
  }

  FileReport file_;
  const ReadOptions& options_;
  LoadReport* report_;
  std::uint64_t remaining_ = 0;  // input bytes not yet consumed
  bool bounded_ = false;         // remaining_ is meaningful
};

/// Probes the input size (for the early budget abort) and runs the
/// streaming scan driver over `format` with `tally` as the sink.
template <class Format>
void run_scan(std::istream& in, Tally& tally, Format& format,
              std::string_view strip, const stream::StreamOptions& opts) {
  if (auto bytes = bytes_remaining(in)) tally.set_input_bytes(*bytes);
  stream::scan_stream(in, format, tally, strip, opts);
}

// ---------------------------------------------------------------------
// Formats: one struct per on-disk file kind, split into a pure,
// thread-safe parse() and a serial, stateful commit() (the contract in
// io/stream/driver.h). Every loader — serial or fanned out — goes
// through these, so both paths share one grammar and one set of error
// messages.
// ---------------------------------------------------------------------

struct RelationshipsFormat {
  RelationshipData& data;
  std::unordered_map<net::Asn, topo::AsId>& ids;

  struct Parsed {
    net::Asn a = 0;
    net::Asn b = 0;
    int rel = 0;
  };

  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '|');
    if (fields.size() < 3) fail("expected as1|as2|rel", line_no);
    auto a = static_cast<net::Asn>(parse_number(fields[0], line_no));
    auto b = static_cast<net::Asn>(parse_number(fields[1], line_no));
    if (a == b) fail("self link", line_no);
    int rel;
    if (fields[2] == "-1") {
      rel = -1;
    } else if (fields[2] == "0") {
      rel = 0;
    } else {
      fail("unknown relationship '" + std::string(fields[2]) + "'", line_no);
    }
    return {a, b, rel};
  }

  // Interning happens at commit, after full validation, so a skipped
  // line does not leave orphan ASes behind.
  void commit(Parsed&& p, std::size_t) {
    topo::AsId id_a = intern(p.a);
    topo::AsId id_b = intern(p.b);
    if (p.rel == -1) {
      data.graph.add_customer_link(id_a, id_b);  // a provider of b
    } else {
      data.graph.add_peer_link(id_a, id_b);
    }
  }

  topo::AsId intern(net::Asn asn) {
    auto it = ids.find(asn);
    if (it != ids.end()) return it->second;
    topo::AsId id = data.graph.add_as(asn);
    data.asns.push_back(asn);
    ids.emplace(asn, id);
    return id;
  }
};

/// An "asn|org_id" line, resolved after the whole file is read (the org
/// definition may come later in the file).
struct Assignment {
  net::Asn asn;
  std::string org;
  std::size_t line;
};

struct OrganizationsFormat {
  topo::OrgDb& orgs;
  std::unordered_map<std::string, topo::OrgId>& org_ids;
  std::vector<Assignment>& assignments;

  struct Parsed {
    bool is_assignment = false;
    net::Asn asn = 0;
    std::string first;   // org id (definition) — empty for assignments
    std::string second;  // org name (definition) / org id (assignment)
  };

  // Org-id tokens are non-numeric (CAIDA uses opaque ids), so the two
  // line kinds are distinguished by whether the first field parses as
  // an ASN.
  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '|');
    if (fields.size() < 2) fail("expected two '|' fields", line_no);
    net::Asn asn = 0;
    auto [p, ec] = std::from_chars(
        fields[0].data(), fields[0].data() + fields[0].size(), asn);
    bool numeric =
        ec == std::errc{} && p == fields[0].data() + fields[0].size();
    if (numeric) return {true, asn, {}, std::string(fields[1])};
    return {false, 0, std::string(fields[0]), std::string(fields[1])};
  }

  void commit(Parsed&& p, std::size_t line_no) {
    if (p.is_assignment) {
      assignments.push_back({p.asn, std::move(p.second), line_no});
    } else {
      org_ids.emplace(std::move(p.first),
                      orgs.add_org(std::move(p.second), topo::kNoCountry));
    }
  }
};

struct Prefix2AsFormat {
  bgp::Ip2AsMap& map;

  struct Parsed {
    net::IPv4 base;
    std::uint8_t length = 0;
    bgp::OriginSet origins;
  };

  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '\t');
    if (fields.size() != 3) fail("expected base<TAB>len<TAB>asns", line_no);
    auto base = net::IPv4::parse(fields[0]);
    if (!base) fail("malformed prefix base", line_no);
    auto length = parse_number(fields[1], line_no);
    if (length > 32) fail("prefix length out of range", line_no);
    bgp::OriginSet origins;
    for (std::string_view token : split(fields[2], '_')) {
      origins.add(static_cast<net::Asn>(parse_number(token, line_no)));
    }
    return {*base, static_cast<std::uint8_t>(length), origins};
  }

  void commit(Parsed&& p, std::size_t) {
    map.insert(net::Prefix(p.base, p.length), p.origins);
  }
};

struct CertificatesFormat {
  tls::CaService& ca;
  tls::CertId trusted_root;
  stream::StringInterner& ids;       // cert-id symbol table (first-seen)
  std::vector<tls::CertId>& by_sym;  // interned symbol -> issued CertId

  enum class Trust { kTrusted, kSelfSigned, kUntrusted };

  struct Parsed {
    std::string id;
    tls::DistinguishedName subject;
    std::vector<std::string> sans;
    net::DayTime not_before;
    int days = 0;
    Trust trust = Trust::kTrusted;
  };

  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '\t');
    if (fields.size() != 6) {
      fail("expected 6 tab-separated certificate fields", line_no);
    }
    Parsed out;
    out.id = std::string(fields[0]);
    out.subject.organization = std::string(fields[1]);
    if (!fields[5].empty()) {
      for (std::string_view san : split(fields[5], ',')) {
        out.sans.emplace_back(san);
      }
    }
    net::DayTime not_before = parse_date(fields[2], line_no);
    net::DayTime not_after = parse_date(fields[3], line_no);
    if (not_after < not_before) {
      fail("not_after precedes not_before", line_no);
    }
    out.not_before = not_before;
    out.days = static_cast<int>(not_after.days() - not_before.days());
    if (fields[4] == "trusted") {
      out.trust = Trust::kTrusted;
    } else if (fields[4] == "self-signed") {
      out.trust = Trust::kSelfSigned;
    } else if (fields[4] == "untrusted") {
      out.trust = Trust::kUntrusted;
    } else {
      fail("unknown trust '" + std::string(fields[4]) + "'", line_no);
    }
    return out;
  }

  // The duplicate-id check is a cross-record property, so it lives in
  // commit, where records arrive strictly in input order.
  void commit(Parsed&& p, std::size_t line_no) {
    if (ids.find(p.id).has_value()) fail("duplicate certificate id", line_no);
    tls::CertId cert = tls::kNoCert;
    switch (p.trust) {
      case Trust::kTrusted:
        cert = ca.issue(trusted_root, std::move(p.subject), std::move(p.sans),
                        p.not_before, p.days);
        break;
      case Trust::kSelfSigned:
        cert = ca.issue_self_signed(std::move(p.subject), std::move(p.sans),
                                    p.not_before, p.days);
        break;
      case Trust::kUntrusted:
        cert = ca.issue_untrusted(std::move(p.subject), std::move(p.sans),
                                  p.not_before, p.days);
        break;
    }
    stream::StringInterner::Id sym = ids.intern(p.id);
    if (sym >= by_sym.size()) by_sym.resize(sym + 1, tls::kNoCert);
    by_sym[sym] = cert;
  }
};

struct HostsFormat {
  const stream::StringInterner& cert_ids;
  const std::vector<tls::CertId>& by_sym;
  scan::ScanSnapshot& snapshot;

  struct Parsed {
    net::IPv4 ip;
    std::string cert_key;
  };

  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '\t');
    if (fields.size() != 2) fail("expected ip<TAB>cert_id", line_no);
    auto ip = net::IPv4::parse(fields[0]);
    if (!ip) fail("malformed IP", line_no);
    return {*ip, std::string(fields[1])};
  }

  // The unknown-certificate check reads the cert symbol table, which the
  // certificates loader finished building — cross-file state, so commit.
  void commit(Parsed&& p, std::size_t line_no) {
    auto sym = cert_ids.find(p.cert_key);
    if (!sym.has_value()) {
      fail("host references unknown certificate '" + p.cert_key + "'",
           line_no);
    }
    snapshot.certs().push_back(scan::CertScanRecord{p.ip, by_sym[*sym]});
  }
};

struct HeadersFormat {
  http::HeaderCatalog& catalog;
  scan::ScanSnapshot& snapshot;

  struct Parsed {
    net::IPv4 ip;
    http::HeaderMap headers;
    bool https = false;
  };

  Parsed parse(std::string_view text, std::size_t line_no) const {
    auto fields = split(text, '\t');
    if (fields.size() != 3) {
      fail("expected ip<TAB>port<TAB>headers", line_no);
    }
    auto ip = net::IPv4::parse(fields[0]);
    if (!ip) fail("malformed IP", line_no);
    Parsed out;
    out.ip = *ip;
    for (std::string_view pair : split(fields[2], '|')) {
      auto colon = pair.find(':');
      if (colon == std::string_view::npos) {
        fail("malformed header", line_no);
      }
      std::string_view value = pair.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') {
        value.remove_prefix(1);
      }
      out.headers.add(std::string(pair.substr(0, colon)), std::string(value));
    }
    // Port validation is part of parse, so a rejected line never reaches
    // the catalog (the materializing loader used to intern the header
    // set before noticing the bad port).
    if (fields[1] == "443") {
      out.https = true;
    } else if (fields[1] == "80") {
      out.https = false;
    } else {
      fail("unknown port", line_no);
    }
    return out;
  }

  void commit(Parsed&& p, std::size_t) {
    http::HeaderSetId set = catalog.add(std::move(p.headers));
    if (p.https) {
      snapshot.add_https_headers(p.ip, set);
      snapshot.set_header_availability(true, snapshot.has_http_headers());
    } else {
      snapshot.add_http_headers(p.ip, set);
      snapshot.set_header_availability(snapshot.has_https_headers(), true);
    }
  }
};

// ---------------------------------------------------------------------
// Loader bodies, parameterized on StreamOptions. The public serial entry
// points pass the defaults (n_threads = 1).
// ---------------------------------------------------------------------

RelationshipData load_as_relationships_impl(
    std::istream& in, const ReadOptions& options, LoadReport* report,
    const stream::StreamOptions& sopts) {
  RelationshipData data;
  std::unordered_map<net::Asn, topo::AsId> ids;
  RelationshipsFormat format{data, ids};
  Tally tally("relationships", options, report);
  run_scan(in, tally, format, " \t\r", sopts);
  tally.finish();
  return data;
}

topo::Topology load_topology_impl(std::istream& relationships,
                                  std::istream& organizations,
                                  const ReadOptions& options,
                                  LoadReport* report,
                                  const stream::StreamOptions& sopts) {
  RelationshipData rel =
      load_as_relationships_impl(relationships, options, report, sopts);

  std::vector<topo::AsRecord> records(rel.asns.size());
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    records[id].asn = rel.asns[id];
  }

  topo::OrgDb orgs;
  std::unordered_map<std::string, topo::OrgId> org_ids;
  std::unordered_map<net::Asn, topo::AsId> asn_to_id;
  for (topo::AsId id = 0; id < rel.asns.size(); ++id) {
    asn_to_id.emplace(rel.asns[id], id);
  }

  std::vector<Assignment> assignments;
  OrganizationsFormat format{orgs, org_ids, assignments};
  Tally tally("organizations", options, report);
  run_scan(organizations, tally, format, " \t\r", sopts);
  for (const Assignment& assignment : assignments) {
    auto as_it = asn_to_id.find(assignment.asn);
    auto org_it = org_ids.find(assignment.org);
    if (as_it == asn_to_id.end()) continue;  // org data beyond the graph
    if (org_it == org_ids.end()) {
      tally.demote(assignment.line, "assignment references unknown org '" +
                                        assignment.org + "' at line " +
                                        std::to_string(assignment.line));
      continue;
    }
    orgs.assign(org_it->second, as_it->second);
    records[as_it->second].org = org_it->second;
  }
  tally.finish();

  return topo::Topology(std::move(rel.graph), std::move(records),
                        std::move(orgs));
}

bgp::Ip2AsMap load_prefix2as_impl(std::istream& in,
                                  const ReadOptions& options,
                                  LoadReport* report,
                                  const stream::StreamOptions& sopts) {
  bgp::Ip2AsMap map;
  Prefix2AsFormat format{map};
  Tally tally("prefix2as", options, report);
  run_scan(in, tally, format, " \t\r", sopts);
  tally.finish();
  return map;
}

void load_certificates(std::istream& in, tls::CertificateStore& store,
                       tls::RootStore& roots, stream::StringInterner& ids,
                       std::vector<tls::CertId>& by_sym,
                       const ReadOptions& options, LoadReport* report,
                       const stream::StreamOptions& sopts) {
  // One shared trusted root / untrusted root pair models the flattened
  // chain-verification verdict in the input.
  tls::CaService ca(store, roots);
  tls::CertId trusted_root = ca.create_root("Imported WebPKI");

  CertificatesFormat format{ca, trusted_root, ids, by_sym};
  Tally tally("certificates", options, report);
  // The trailing SAN field is legitimately empty, so nothing beyond the
  // line terminator (handled by the reader) is stripped — a trailing tab
  // is part of the record.
  run_scan(in, tally, format, "", sopts);
  tally.finish();
}

}  // namespace

RelationshipData load_as_relationships(std::istream& in,
                                       const ReadOptions& options,
                                       LoadReport* report) {
  return load_as_relationships_impl(in, options, report, {});
}

topo::Topology load_topology(std::istream& relationships,
                             std::istream& organizations,
                             const ReadOptions& options, LoadReport* report) {
  return load_topology_impl(relationships, organizations, options, report,
                            {});
}

bgp::Ip2AsMap load_prefix2as(std::istream& in, const ReadOptions& options,
                             LoadReport* report) {
  return load_prefix2as_impl(in, options, report, {});
}

void Dataset::add_headers(std::istream& in, const ReadOptions& options,
                          LoadReport* report) {
  add_headers(in, stream::StreamOptions{}, options, report);
}

void Dataset::add_headers(std::istream& in,
                          const stream::StreamOptions& stream,
                          const ReadOptions& options, LoadReport* report) {
  LoadReport& out = report != nullptr ? *report : report_;
  std::size_t base = out.files.size();
  HeadersFormat format{*catalog_, *snapshot_};
  Tally tally("headers", options, &out);
  // Header values may contain significant interior whitespace, so
  // nothing beyond the line terminator is stripped here.
  run_scan(in, tally, format, "", stream);
  tally.finish();
  if (report != nullptr) {
    report_.files.insert(report_.files.end(), out.files.begin() + base,
                         out.files.end());
  }
}

Dataset load_dataset(std::istream& relationships, std::istream& organizations,
                     std::istream& prefix2as, std::istream& certificates,
                     std::istream& hosts, net::YearMonth scan_month,
                     const ReadOptions& options, LoadReport* report) {
  return load_dataset_stream(relationships, organizations, prefix2as,
                             certificates, hosts, scan_month,
                             stream::StreamOptions{}, options, report);
}

Dataset load_dataset_stream(std::istream& relationships,
                            std::istream& organizations,
                            std::istream& prefix2as,
                            std::istream& certificates, std::istream& hosts,
                            net::YearMonth scan_month,
                            const stream::StreamOptions& stream,
                            const ReadOptions& options, LoadReport* report) {
  Dataset dataset;
  // Fill the caller's report directly so it still holds the per-file
  // accounting when a load aborts mid-way.
  LoadReport& out = report != nullptr ? *report : dataset.report_;
  std::size_t base = out.files.size();

  dataset.topology_ = std::make_unique<topo::Topology>(load_topology_impl(
      relationships, organizations, options, &out, stream));
  dataset.ip2as_ = std::make_unique<bgp::FixedIp2As>(
      load_prefix2as_impl(prefix2as, options, &out, stream));

  // Certificate ids are interned once into an arena-backed symbol table;
  // host lines reference them by symbol instead of re-keying a string
  // map per occurrence.
  stream::StringInterner cert_ids;
  std::vector<tls::CertId> cert_by_sym;
  load_certificates(certificates, dataset.certs_, dataset.roots_, cert_ids,
                    cert_by_sym, options, &out, stream);

  dataset.catalog_ = std::make_unique<http::HeaderCatalog>();
  auto snapshot_idx = net::snapshot_index(scan_month);
  dataset.snapshot_ = std::make_unique<scan::ScanSnapshot>(
      scan::ScannerKind::kRapid7, snapshot_idx.value_or(0),
      net::DayTime::from(scan_month, 15), *dataset.catalog_);

  HostsFormat format{cert_ids, cert_by_sym, *dataset.snapshot_};
  Tally tally("hosts", options, &out);
  run_scan(hosts, tally, format, " \t\r", stream);
  tally.finish();

  if (report != nullptr) {
    dataset.report_.files.assign(out.files.begin() + base, out.files.end());
  }
  return dataset;
}

}  // namespace offnet::io
