#pragma once

#include <istream>
#include <memory>
#include <stdexcept>
#include <string>

#include "bgp/ip2as.h"
#include "http/catalog.h"
#include "io/report.h"
#include "io/stream/driver.h"
#include "scan/record.h"
#include "tls/validator.h"
#include "topology/topology.h"

/// Loaders for on-disk dataset formats, so the pipeline can run against
/// real exports instead of the simulator. Formats mirror the public
/// datasets the paper uses:
///
///  - AS relationships: CAIDA serial-1 ("as1|as2|rel", rel -1 =
///    provider-customer, 0 = peer; '#' comments).
///  - AS organizations: CAIDA as-org2info subset. Two kinds of lines:
///    "org_id|name" and "asn|org_id".
///  - prefix2as: CAIDA Routeviews pfx2as ("base<TAB>len<TAB>asn" with
///    MOAS origins separated by '_').
///  - certificates: TSV "id<TAB>organization<TAB>not_before<TAB>
///    not_after<TAB>trust<TAB>san1,san2" where dates are YYYY-MM-DD and
///    trust is one of trusted / self-signed / untrusted (the flattened
///    result of chain verification, as in processed Rapid7 exports).
///  - hosts: TSV "ip<TAB>cert_id" (the default certificate served).
///  - headers: TSV "ip<TAB>port<TAB>Name: value|Name: value" with port
///    443 or 80.
///
/// Real corpuses are noisy (opt-out truncations, rate-limit losses,
/// encoding damage), so every loader takes a ReadOptions: in strict mode
/// the first malformed line throws LoadError with an exact line number;
/// in permissive mode malformed lines are skipped and tallied into a
/// LoadReport, and only blowing the per-file error budget aborts.
///
/// All loaders stream: input is read in fixed-size chunks through
/// io::stream::LineReader (DESIGN.md §14), so peak memory is bounded by
/// batch sizes and the loaded result, never by corpus size. CRLF line
/// endings are normalized in the reader, and an unterminated final line
/// is handled per ReadOptions::final_newline. load_dataset parses on the
/// calling thread; load_dataset_stream fans parsing out to worker
/// threads with a strict in-order commit, so both produce bit-identical
/// datasets, reports, and error messages at any thread count.
namespace offnet::io {

// LoadError lives in io/report.h (shared with the streaming driver).

/// AS graph + per-id ASNs parsed from CAIDA serial-1 relationships.
struct RelationshipData {
  topo::AsGraph graph;
  std::vector<net::Asn> asns;
};
RelationshipData load_as_relationships(std::istream& in,
                                       const ReadOptions& options = {},
                                       LoadReport* report = nullptr);

/// A Topology assembled from relationships + organizations. Country,
/// prefix, and population fields stay empty — the pipeline itself only
/// needs the graph, the ASN index, and the org database.
topo::Topology load_topology(std::istream& relationships,
                             std::istream& organizations,
                             const ReadOptions& options = {},
                             LoadReport* report = nullptr);

/// Longest-prefix-match map from a pfx2as file.
bgp::Ip2AsMap load_prefix2as(std::istream& in, const ReadOptions& options = {},
                             LoadReport* report = nullptr);

/// Everything needed to run OffnetPipeline on loaded data. Members are
/// held by pointer so the snapshot's internal references stay valid.
class Dataset {
 public:
  const topo::Topology& topology() const { return *topology_; }
  const bgp::Ip2AsOracle& ip2as() const { return *ip2as_; }
  const tls::CertificateStore& certs() const { return certs_; }
  const tls::RootStore& roots() const { return roots_; }
  const scan::ScanSnapshot& snapshot() const { return *snapshot_; }

  /// How ingesting this dataset went (one FileReport per input read).
  const LoadReport& report() const { return report_; }

  /// Adds a header corpus (port 443/80) to the snapshot.
  void add_headers(std::istream& in, const ReadOptions& options = {},
                   LoadReport* report = nullptr);

  /// add_headers with explicit streaming knobs (worker threads, batch
  /// sizes). Bit-identical to the serial overload at any n_threads.
  void add_headers(std::istream& in, const stream::StreamOptions& stream,
                   const ReadOptions& options = {},
                   LoadReport* report = nullptr);

 private:
  friend Dataset load_dataset_stream(std::istream&, std::istream&,
                                     std::istream&, std::istream&,
                                     std::istream&, net::YearMonth,
                                     const stream::StreamOptions&,
                                     const ReadOptions&, LoadReport*);

  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<bgp::FixedIp2As> ip2as_;
  tls::CertificateStore certs_;
  tls::RootStore roots_;
  std::unique_ptr<http::HeaderCatalog> catalog_;
  std::unique_ptr<scan::ScanSnapshot> snapshot_;
  LoadReport report_;
};

/// Loads a complete dataset. `scan_month` anchors certificate-validity
/// checks (must be a study snapshot month for longitudinal analyses).
/// When `report` is given it receives per-file accounting even if the
/// load aborts part-way (budget blown / strict failure).
Dataset load_dataset(std::istream& relationships, std::istream& organizations,
                     std::istream& prefix2as, std::istream& certificates,
                     std::istream& hosts, net::YearMonth scan_month,
                     const ReadOptions& options = {},
                     LoadReport* report = nullptr);

/// load_dataset with explicit streaming knobs: chunk/batch sizes and the
/// number of parser workers (stream.n_threads). Reading and committing
/// stay on the calling thread; parsing fans out to workers with a strict
/// in-order commit, so the result — dataset, LoadReport, metrics, and
/// every error message — is bit-identical to load_dataset at any thread
/// count. Peak memory is O(batch × workers + loaded result).
Dataset load_dataset_stream(std::istream& relationships,
                            std::istream& organizations,
                            std::istream& prefix2as,
                            std::istream& certificates, std::istream& hosts,
                            net::YearMonth scan_month,
                            const stream::StreamOptions& stream,
                            const ReadOptions& options = {},
                            LoadReport* report = nullptr);

}  // namespace offnet::io
