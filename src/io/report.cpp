#include "io/report.h"

#include "obs/metrics.h"

namespace offnet::io {

std::size_t LoadReport::lines_ok() const {
  std::size_t total = 0;
  for (const FileReport& file : files) total += file.lines_ok;
  return total;
}

std::size_t LoadReport::lines_skipped() const {
  std::size_t total = 0;
  for (const FileReport& file : files) total += file.lines_skipped;
  return total;
}

std::size_t LoadReport::files_missing_final_newline() const {
  std::size_t total = 0;
  for (const FileReport& file : files) {
    if (file.missing_final_newline) ++total;
  }
  return total;
}

const FileReport* LoadReport::find(std::string_view kind) const {
  for (const FileReport& file : files) {
    if (file.kind == kind) return &file;
  }
  return nullptr;
}

void LoadReport::merge(const LoadReport& other) {
  files.insert(files.end(), other.files.begin(), other.files.end());
}

std::string LoadReport::summary() const {
  std::size_t skipped = lines_skipped();
  std::size_t total = lines_ok() + skipped;
  std::string out;
  if (skipped == 0) {
    out = "read " + std::to_string(total) + " lines, none skipped";
  } else {
    out = "skipped " + std::to_string(skipped) + " of " +
          std::to_string(total) + " lines (";
    bool first = true;
    for (const FileReport& file : files) {
      if (file.lines_skipped == 0) continue;
      if (!first) out += ", ";
      out += file.kind + ": " + std::to_string(file.lines_skipped);
      first = false;
    }
    out += ')';
  }
  // Only mentioned when present, so clean corpora keep their summaries
  // byte-identical to earlier releases.
  std::size_t truncated = files_missing_final_newline();
  if (truncated > 0) {
    out += "; " + std::to_string(truncated) + " file" +
           (truncated == 1 ? "" : "s") + " missing final newline";
  }
  return out;
}

void LoadReport::export_metrics(obs::Registry& registry) const {
  registry.counter(metric_names::kLinesOk).add(lines_ok());
  registry.counter(metric_names::kLinesSkipped).add(lines_skipped());
  // Created only when nonzero: a clean corpus must export byte-identical
  // metrics to releases that predate the counter.
  if (std::size_t truncated = files_missing_final_newline(); truncated > 0) {
    registry.counter(metric_names::kFilesMissingNewline).add(truncated);
  }
  for (const FileReport& file : files) {
    registry.counter(metric_names::kPerKindPrefix + file.kind + "/lines_ok")
        .add(file.lines_ok);
    registry
        .counter(metric_names::kPerKindPrefix + file.kind + "/lines_skipped")
        .add(file.lines_skipped);
  }
}

}  // namespace offnet::io
