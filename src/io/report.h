#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Ingestion accounting shared by every loader: how a read should treat
/// malformed input (ReadOptions) and what it actually read and dropped
/// (FileReport / LoadReport). Kept separate from loaders.h so the core
/// pipeline and the streaming scan driver can use the accounting types
/// without pulling in the loaders.
namespace offnet::obs {
class Registry;
}  // namespace offnet::obs

namespace offnet::io {

/// What every loader throws on malformed input (strict mode) or a blown
/// error budget. Lives here rather than loaders.h so the streaming
/// driver, which sits below the loaders, can recognize it.
class LoadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What AtomicFile (and artifact-publishing code built on it) throws on
/// any write-side failure — and what LineReader raises on a stream-level
/// read error: unopenable temp file, full disk, failed flush/fsync/
/// rename, a read that died mid-file. A distinct type so CLIs can map
/// I/O failures to their documented exit code (74, EX_IOERR) instead of
/// a blanket 1. Lives here rather than atomic_file.h so the streaming
/// reader, which sits below the artifact writer, can throw it too.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// io:: metric names (LoadReport::export_metrics), mirroring
/// core::metric_names so ingestion accounting is spelled once.
namespace metric_names {
inline constexpr const char* kLinesOk = "load/lines_ok";
inline constexpr const char* kLinesSkipped = "load/lines_skipped";
inline constexpr const char* kPerKindPrefix =
    "load/";  // + file kind + "/lines_ok" | "/lines_skipped"
/// Files whose final line had no '\n'. Only exported when nonzero, so
/// clean corpora keep their metric exports byte-identical.
inline constexpr const char* kFilesMissingNewline =
    "load/files_missing_final_newline";
}  // namespace metric_names

/// How loaders treat malformed input.
enum class ReadMode {
  kStrict,      // first malformed line throws LoadError
  kPermissive,  // malformed lines are skipped and tallied, within a budget
};

/// What to do with a final line that has no terminating '\n' — usually a
/// truncated download or an interrupted writer, but some tools simply
/// omit the last newline.
enum class FinalNewlinePolicy {
  kAcceptData,  // parse the record normally; flag the FileReport
  kDropData,    // treat it as malformed: skip + tally (throw in strict)
};

/// Error policy threaded through every loader.
struct ReadOptions {
  ReadMode mode = ReadMode::kStrict;

  /// Permissive mode only: abort the load (LoadError) when a file's
  /// skipped / (ok + skipped) fraction exceeds this budget, so a mostly
  /// garbage corpus fails loudly instead of yielding a near-empty
  /// "successful" dataset. The budget trips *early* — at the first line
  /// where the bound provably cannot be met even if every remaining byte
  /// parses clean — so a multi-GB garbage corpus fails in the first
  /// megabytes, not after a full read.
  double max_error_fraction = 0.05;

  /// How many parse failures to keep per file for diagnostics.
  std::size_t max_error_samples = 4;

  /// Unterminated-final-line handling (see FinalNewlinePolicy).
  FinalNewlinePolicy final_newline = FinalNewlinePolicy::kAcceptData;

  bool permissive() const { return mode == ReadMode::kPermissive; }

  static ReadOptions strict() { return {}; }
  static ReadOptions lenient(double budget = 0.05) {
    ReadOptions options;
    options.mode = ReadMode::kPermissive;
    options.max_error_fraction = budget;
    return options;
  }
};

/// One recorded parse failure.
struct LineError {
  std::size_t line = 0;
  std::string what;
};

/// Accounting for one input file.
struct FileReport {
  std::string kind;                // "relationships", "prefix2as", ...
  std::size_t lines_ok = 0;        // data lines parsed successfully
  std::size_t lines_skipped = 0;   // malformed data lines dropped
  std::vector<LineError> samples;  // first max_error_samples failures
  /// The file's last line had no terminating '\n' (see
  /// ReadOptions::final_newline for how the record itself was treated).
  bool missing_final_newline = false;

  double error_fraction() const {
    std::size_t total = lines_ok + lines_skipped;
    return total == 0 ? 0.0 : static_cast<double>(lines_skipped) /
                                  static_cast<double>(total);
  }
};

/// Accounting for a whole dataset load, one FileReport per input kind.
/// Degraded-mode longitudinal runs attach this to each snapshot's result
/// so a study can say exactly what every snapshot is missing.
struct LoadReport {
  std::vector<FileReport> files;

  std::size_t lines_ok() const;
  std::size_t lines_skipped() const;
  std::size_t files_missing_final_newline() const;
  bool clean() const { return lines_skipped() == 0; }

  const FileReport* find(std::string_view kind) const;

  /// Appends another report's per-file entries.
  void merge(const LoadReport& other);

  /// One line: "skipped 3 of 1200 lines (certificates: 2, hosts: 1)".
  std::string summary() const;

  /// Adds this report's tallies to `registry`: the totals as
  /// load/lines_ok and load/lines_skipped, plus per-kind
  /// load/<kind>/lines_{ok,skipped} counters. Counters accumulate, so a
  /// longitudinal series sums its snapshots' reports.
  void export_metrics(obs::Registry& registry) const;
};

}  // namespace offnet::io
