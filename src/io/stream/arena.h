#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

/// Arena (bump) storage and string interning for the streaming ingestion
/// layer (DESIGN.md §14). Record batches are transient — their text is
/// recycled as soon as a batch commits — so any byte that must outlive
/// its batch (certificate ids, interned symbols) is copied into an Arena,
/// whose chunks live until the owning loader finishes. Peak RSS is then
/// O(batch × workers + interned symbols), never O(corpus).
namespace offnet::io::stream {

/// Append-only chunked byte storage. store() returns a view that stays
/// valid for the Arena's lifetime; chunks are never reallocated or
/// freed individually, so views are stable.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Copies `text` into the arena; the returned view is stable until the
  /// Arena is destroyed. Oversize strings get a dedicated chunk.
  std::string_view store(std::string_view text) {
    if (text.empty()) return {};
    if (text.size() > chunk_bytes_ - used_ || chunks_.empty()) {
      std::size_t size = text.size() > chunk_bytes_ ? text.size()
                                                    : chunk_bytes_;
      chunks_.push_back(std::make_unique<char[]>(size));
      allocated_ += size;
      used_ = text.size() > chunk_bytes_ ? chunk_bytes_ : 0;
      if (text.size() > chunk_bytes_) {
        // Dedicated chunk, already exactly full; keep the previous
        // partially-filled chunk unusable rather than tracking two.
        std::memcpy(chunks_.back().get(), text.data(), text.size());
        stored_ += text.size();
        return {chunks_.back().get(), text.size()};
      }
    }
    char* dst = chunks_.back().get() + used_;
    std::memcpy(dst, text.data(), text.size());
    used_ += text.size();
    stored_ += text.size();
    return {dst, text.size()};
  }

  /// Total bytes handed out via store().
  std::size_t bytes_stored() const { return stored_; }
  /// Total bytes reserved from the allocator (≥ bytes_stored()).
  std::size_t bytes_allocated() const { return allocated_; }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t used_ = 0;       // bytes used in chunks_.back()
  std::size_t stored_ = 0;
  std::size_t allocated_ = 0;
};

/// Dense string → id table backed by an Arena: each distinct string is
/// stored once, ids are assigned in first-seen order (deterministic for
/// a deterministic input order), and lookups never copy. Loaders use it
/// for certificate-id cross references and dNSName symbols so symbol
/// storage scales with distinct values, not occurrences.
class StringInterner {
 public:
  using Id = std::uint32_t;

  /// Returns the existing id, or assigns the next dense id.
  Id intern(std::string_view text) {
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
    std::string_view stored = arena_.store(text);
    Id id = static_cast<Id>(by_id_.size());
    by_id_.push_back(stored);
    ids_.emplace(stored, id);
    return id;
  }

  /// Lookup without inserting.
  std::optional<Id> find(std::string_view text) const {
    auto it = ids_.find(text);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  std::string_view text(Id id) const { return by_id_[id]; }
  std::size_t size() const { return by_id_.size(); }
  std::size_t bytes_stored() const { return arena_.bytes_stored(); }

 private:
  Arena arena_;
  // Keys view into arena_ storage, which outlives the map.
  std::unordered_map<std::string_view, Id> ids_;
  std::vector<std::string_view> by_id_;  // id → stored text
};

}  // namespace offnet::io::stream
