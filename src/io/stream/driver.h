#pragma once

#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "io/report.h"
#include "io/stream/reader.h"
#include "io/stream/ring.h"

/// The streaming scan driver (DESIGN.md §14): carves an input stream
/// into fixed-capacity line batches, parses them on worker threads, and
/// commits results strictly in input order, so the loaded result — and
/// every error message, tally, and budget decision — is bit-identical to
/// a serial read at any thread count.
///
/// A loader supplies a *Format* with a pure parse and a stateful commit:
///
///   struct Format {
///     using Parsed = ...;            // self-contained parse result
///     // Thread-safe: reads only `text` (views into the batch are valid
///     // until the batch commits). Throws LoadError on malformed input.
///     Parsed parse(std::string_view text, std::size_t line_no) const;
///     // Serial, in input order. May throw LoadError (e.g. a duplicate
///     // key), which is tallied exactly like a parse failure.
///     void commit(Parsed&& parsed, std::size_t line_no);
///   };
///
/// and a *Sink* that owns error policy (io::Tally in the loaders):
///
///   struct Sink {
///     void consume(std::size_t raw_bytes);  // every physical line, in order
///     // Unterminated final line: returns true when the record should
///     // still be parsed (after tallying per policy).
///     bool on_truncated_final_line(std::size_t line_no, bool is_data);
///     void ok();                            // line committed
///     void skip(std::size_t line_no, const std::string& what);
///   };
///
/// Memory is bounded by construction: (n_threads + 2) batches exist in
/// total, recycled through a free ring; the reader cannot run ahead of
/// commit by more than the pool, which is also the backpressure point.
namespace offnet::io::stream {

/// What scans did, for tests that assert boundedness. Written by the
/// driver thread only; accumulates across scans sharing the options.
struct DriverStats {
  std::size_t batches = 0;        // batches filled
  std::size_t max_in_flight = 0;  // peak batches outside the free pool
  std::size_t peak_batch_bytes = 0;
  std::size_t lines = 0;          // physical lines read
};

/// Tuning knobs for one streaming scan. Defaults suit multi-GB inputs;
/// tests shrink them to force many tiny batches.
struct StreamOptions {
  std::size_t chunk_bytes = kDefaultChunkBytes;  // reader chunk size
  std::size_t batch_lines = 2048;    // max lines per batch
  std::size_t batch_bytes = 256 * 1024;  // max data bytes per batch
  int n_threads = 1;                 // parser workers; <= 1 parses inline
  DriverStats* stats = nullptr;      // test seam, may be null
};

namespace detail {

/// One fixed-capacity run of physical lines. `text` packs the
/// terminator-stripped bytes of data lines; blank/comment lines carry
/// accounting only. `out` holds each data line's parse outcome.
template <class Parsed>
struct Batch {
  struct Row {
    std::size_t offset = 0;    // into text (data lines only)
    std::size_t length = 0;
    std::size_t number = 0;    // 1-based line number in the input
    std::size_t raw_bytes = 0;
    bool is_data = false;
    bool truncated = false;    // final line without '\n'
  };

  std::size_t seq = 0;
  std::string text;
  std::vector<Row> rows;
  std::vector<std::variant<std::monostate, Parsed, std::string>> out;
  std::exception_ptr fatal;  // non-LoadError escape from parse

  std::string_view view(const Row& row) const {
    return std::string_view(text).substr(row.offset, row.length);
  }

  void reset(std::size_t reserve_bytes) {
    seq = 0;
    text.clear();
    if (text.capacity() > reserve_bytes * 4) text.shrink_to_fit();
    rows.clear();
    out.clear();
    fatal = nullptr;
  }
};

/// Completed batches keyed by sequence number, so the committer can take
/// them strictly in order regardless of which worker finished first.
/// Capacity is implicitly bounded by the batch pool.
template <class B>
class ReorderSlots {
 public:
  void put(B* batch) OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    done_.emplace(batch->seq, batch);
    ready_.notify_all();
  }

  /// Blocks until batch `seq` arrives. Bounded waits, as everywhere.
  B* take(std::size_t seq) OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    while (done_.find(seq) == done_.end()) {
      (void)ready_.wait_for_ms(lock, 100);
    }
    auto it = done_.find(seq);
    B* out = it->second;
    done_.erase(it);
    return out;
  }

 private:
  mutable core::Mutex mutex_;
  core::CondVar ready_;
  std::map<std::size_t, B*> done_ OFFNET_GUARDED_BY(mutex_);
};

inline bool comment_or_blank(std::string_view text) {
  return text.empty() || text[0] == '#' ||
         text.find_first_not_of(" \t") == std::string_view::npos;
}

inline std::string_view rstrip(std::string_view text, std::string_view chars) {
  std::size_t end = text.find_last_not_of(chars);
  return end == std::string_view::npos ? std::string_view{}
                                       : text.substr(0, end + 1);
}

/// Fills `batch` from the reader. Returns false when the stream is
/// drained and the batch is empty.
template <class Parsed>
bool fill_batch(LineReader& reader, Batch<Parsed>& batch,
                std::string_view strip, const StreamOptions& opts) {
  batch.reset(opts.batch_bytes);
  Line line;
  while (batch.rows.size() < (opts.batch_lines == 0 ? 1 : opts.batch_lines) &&
         batch.text.size() < (opts.batch_bytes == 0 ? 1 : opts.batch_bytes)) {
    if (!reader.next(line)) break;
    typename Batch<Parsed>::Row row;
    row.number = line.number;
    row.raw_bytes = line.raw_bytes;
    row.truncated = !line.had_newline;
    std::string_view text = rstrip(line.text, strip);
    if (!comment_or_blank(text)) {
      row.is_data = true;
      row.offset = batch.text.size();
      row.length = text.size();
      batch.text.append(text);
    }
    batch.rows.push_back(row);
  }
  batch.out.resize(batch.rows.size());
  return !batch.rows.empty();
}

/// Parses every data line of `batch` (worker side). LoadError becomes a
/// stored message; anything else is captured for the committer to
/// rethrow.
template <class Format>
void parse_batch(Batch<typename Format::Parsed>& batch, const Format& format) {
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    const auto& row = batch.rows[i];
    if (!row.is_data) continue;
    try {
      batch.out[i] = format.parse(batch.view(row), row.number);
    } catch (const LoadError& e) {
      batch.out[i] = std::string(e.what());
    } catch (...) {
      batch.fatal = std::current_exception();
      return;
    }
  }
}

/// Commits `batch` in line order (committer side) — the only place
/// loader state and the sink are touched, so the observable sequence is
/// identical at any thread count.
template <class Format, class Sink>
void commit_batch(Batch<typename Format::Parsed>& batch, Format& format,
                  Sink& sink) {
  if (batch.fatal) std::rethrow_exception(batch.fatal);
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    const auto& row = batch.rows[i];
    sink.consume(row.raw_bytes);
    if (row.truncated && !sink.on_truncated_final_line(row.number, row.is_data)) {
      continue;
    }
    if (!row.is_data) continue;
    if (auto* what = std::get_if<std::string>(&batch.out[i])) {
      sink.skip(row.number, *what);
      continue;
    }
    try {
      format.commit(std::get<typename Format::Parsed>(std::move(batch.out[i])),
                    row.number);
      sink.ok();
    } catch (const LoadError& e) {
      sink.skip(row.number, e.what());
    }
  }
}

/// Joins worker threads on every exit path, normal or exceptional, after
/// closing the rings they block on.
template <class B>
struct WorkerGuard {
  BoundedRing<B*>& work;
  BoundedRing<B*>& free_pool;
  std::vector<std::thread>& threads;
  ~WorkerGuard() {
    work.close();
    free_pool.close();
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

}  // namespace detail

/// Streams `in` through `format` under `sink`'s error policy. With
/// n_threads <= 1 everything runs on the calling thread; otherwise
/// parse fans out to workers while reading and committing stay on the
/// calling thread, interleaved so neither starves.
template <class Format, class Sink>
void scan_stream(std::istream& in, Format& format, Sink& sink,
                 std::string_view strip, const StreamOptions& opts) {
  using Parsed = typename Format::Parsed;
  using B = detail::Batch<Parsed>;

  LineReader reader(in, opts.chunk_bytes);
  DriverStats local_stats;
  DriverStats& stats = opts.stats != nullptr ? *opts.stats : local_stats;

  if (opts.n_threads <= 1) {
    B batch;
    while (detail::fill_batch(reader, batch, strip, opts)) {
      ++stats.batches;
      stats.lines += batch.rows.size();
      if (stats.max_in_flight < 1) stats.max_in_flight = 1;
      if (batch.text.size() > stats.peak_batch_bytes) {
        stats.peak_batch_bytes = batch.text.size();
      }
      detail::parse_batch(batch, format);
      detail::commit_batch(batch, format, sink);
    }
    return;
  }

  const std::size_t workers = static_cast<std::size_t>(opts.n_threads);
  const std::size_t pool = workers + 2;
  std::vector<std::unique_ptr<B>> storage;
  storage.reserve(pool);
  BoundedRing<B*> free_ring(pool);
  BoundedRing<B*> work_ring(pool);
  detail::ReorderSlots<B> done;
  for (std::size_t i = 0; i < pool; ++i) {
    storage.push_back(std::make_unique<B>());
    B* raw = storage.back().get();
    free_ring.push(raw);
  }

  std::vector<std::thread> threads;
  detail::WorkerGuard<B> guard{work_ring, free_ring, threads};
  threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads.emplace_back([&work_ring, &done, &format] {
      while (std::optional<B*> batch = work_ring.pop()) {
        detail::parse_batch(**batch, format);
        done.put(*batch);
      }
    });
  }

  std::size_t next_seq = 0;    // next batch to hand to workers
  std::size_t committed = 0;   // next batch to commit
  bool drained = false;
  while (!drained || committed < next_seq) {
    B* batch = nullptr;
    if (!drained) {
      // Prefer a free batch; while the pool is empty, commit completed
      // batches (in order) to recycle one. The pool bounds read-ahead:
      // at most n_threads + 2 batches exist at any moment.
      while ((batch = free_ring.try_pop().value_or(nullptr)) == nullptr) {
        B* ready = done.take(committed);
        detail::commit_batch(*ready, format, sink);
        ++committed;
        free_ring.try_push(ready);
      }
      if (!detail::fill_batch(reader, *batch, strip, opts)) {
        drained = true;
        free_ring.try_push(batch);
        continue;
      }
      batch->seq = next_seq++;
      ++stats.batches;
      stats.lines += batch->rows.size();
      if (batch->text.size() > stats.peak_batch_bytes) {
        stats.peak_batch_bytes = batch->text.size();
      }
      std::size_t in_flight = next_seq - committed;
      if (in_flight > stats.max_in_flight) stats.max_in_flight = in_flight;
      work_ring.push(batch);
    } else {
      B* ready = done.take(committed);
      detail::commit_batch(*ready, format, sink);
      ++committed;
      free_ring.try_push(ready);
    }
  }
}

}  // namespace offnet::io::stream
