#include "io/stream/reader.h"

#include <cerrno>

#include "core/fault.h"
#include "io/report.h"

namespace offnet::io::stream {

LineReader::LineReader(std::istream& in, std::size_t chunk_bytes)
    : in_(in), chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

bool LineReader::fill() {
  if (eof_) return false;
  // Compact: drop the consumed prefix so the buffer holds only the
  // current partial line plus whatever the next read appends. This keeps
  // memory at O(chunk + longest line) instead of O(file).
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  // Syscall fault seam, crossed once per chunk. Injected EINTR retries
  // like a real interrupted read; any other errno is a mid-file read
  // failure and surfaces as IoError, never as silent EOF.
  for (;;) {
    const core::SysResult fault =
        core::sys_fault(core::fault_stage::kStreamRead);
    if (fault.ok()) break;
    if (fault.error == EINTR) continue;
    throw IoError("read failed after " + std::to_string(consumed_) +
                  " bytes: " + core::errno_name(fault.error));
  }
  std::size_t old = buffer_.size();
  buffer_.resize(old + chunk_bytes_);
  in_.read(buffer_.data() + old, static_cast<std::streamsize>(chunk_bytes_));
  std::size_t got = static_cast<std::size_t>(in_.gcount());
  buffer_.resize(old + got);
  if (in_.bad()) {
    // badbit after read(): the stream died mid-file (disk error, NFS
    // hiccup). Before this check a short read was treated as EOF, so a
    // real I/O error truncated the dataset silently — exactly the torn
    // ingestion the health taxonomy is meant to catch.
    throw IoError("stream read failed after " +
                  std::to_string(consumed_ + got) + " bytes");
  }
  if (got < chunk_bytes_) eof_ = true;
  return got > 0;
}

bool LineReader::next(Line& out) {
  std::size_t nl;
  while ((nl = buffer_.find('\n', pos_)) == std::string::npos) {
    if (!fill()) break;
  }

  if (nl == std::string::npos) {
    // No terminator left in the stream. Either we are fully drained, or
    // the final line lacks its newline — hand it out flagged so the
    // caller's ReadOptions policy can decide what to do with it.
    if (pos_ >= buffer_.size()) return false;
    std::string_view text(buffer_.data() + pos_, buffer_.size() - pos_);
    out.raw_bytes = text.size();
    if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
    out.text = text;
    out.number = ++line_no_;
    out.had_newline = false;
    consumed_ += out.raw_bytes;
    pos_ = buffer_.size();
    return true;
  }

  std::string_view text(buffer_.data() + pos_, nl - pos_);
  out.raw_bytes = text.size() + 1;  // + '\n'
  // The one place CRLF is handled: strip at most one '\r' directly
  // before the terminator. Interior '\r' bytes are field data.
  if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
  out.text = text;
  out.number = ++line_no_;
  out.had_newline = true;
  consumed_ += out.raw_bytes;
  pos_ = nl + 1;
  return true;
}

}  // namespace offnet::io::stream
