#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <string_view>

/// Chunked line reading for the streaming ingestion layer (DESIGN.md
/// §14). The reader pulls fixed-size chunks from the stream and carves
/// them into lines in place, so memory is O(chunk + longest line), never
/// O(file). It is also the single place line terminators are decided:
/// every loader sees `\n`- and `\r\n`-terminated files identically, and
/// an unterminated final line is surfaced explicitly instead of being
/// silently parsed or dropped.
namespace offnet::io::stream {

inline constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

/// One physical line as handed to loaders.
struct Line {
  /// Line content with the terminator removed: the trailing '\n' and at
  /// most one '\r' immediately before it (CRLF). Interior '\r' bytes are
  /// data and pass through. Valid until the next next() call.
  std::string_view text;
  std::size_t number = 0;     // 1-based physical line number
  std::size_t raw_bytes = 0;  // bytes consumed, terminator included
  /// False only for the last line of a stream that does not end in '\n'
  /// (a truncated upload / interrupted write). ReadOptions decides
  /// whether such a record is accepted or dropped.
  bool had_newline = true;
};

/// Incremental line iterator over an istream. Reads `chunk_bytes` at a
/// time into a rolling buffer; the buffer grows only when a single line
/// exceeds the chunk size, and shrinks back afterwards.
class LineReader {
 public:
  explicit LineReader(std::istream& in,
                      std::size_t chunk_bytes = kDefaultChunkBytes);
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// Advances to the next line. Returns false at end of stream; `out` is
  /// untouched in that case.
  bool next(Line& out);

  /// Total bytes consumed from the stream so far.
  std::size_t bytes_consumed() const { return consumed_; }

 private:
  /// Pulls one more chunk into the buffer. Returns false at EOF.
  bool fill();

  std::istream& in_;
  std::size_t chunk_bytes_;
  std::string buffer_;
  std::size_t pos_ = 0;       // start of the unconsumed region
  std::size_t line_no_ = 0;
  std::size_t consumed_ = 0;
  bool eof_ = false;
};

}  // namespace offnet::io::stream
