#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

/// Bounded MPMC ring buffer — the backpressure point of the streaming
/// ingestion pipeline (DESIGN.md §14), generalizing the queue semantics
/// proven in svc::AdmissionQueue: a fixed capacity, push that either
/// blocks (ingestion) or refuses (admission), and a pop that drains
/// queued items after close() so accepted work is finished, not dropped.
namespace offnet::io::stream {

/// Fixed-capacity FIFO between producer and consumer threads. All
/// blocking waits are bounded (100ms re-check), so a lost wakeup can
/// delay progress but never hang it — the same discipline as the
/// service-layer admission queue and checkpoint supervisor.
template <class T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Blocks while the ring is full. Returns false only when the ring is
  /// closed — `item` is untouched, so the caller still owns it.
  bool push(T& item) OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    while (!closed_ && items_.size() - head_ >= capacity_) {
      (void)space_.wait_for_ms(lock, 100);
    }
    if (closed_) return false;
    push_locked(item);
    return true;
  }

  /// Never blocks: false when the ring is full or closed, with `item`
  /// untouched (the caller sheds or retries).
  bool try_push(T& item) OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    if (closed_ || items_.size() - head_ >= capacity_) return false;
    push_locked(item);
    return true;
  }

  /// Blocks until an item is available or the ring is closed and empty.
  /// Items queued before close() still drain.
  std::optional<T> pop() OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    while (head_ == items_.size() && !closed_) {
      (void)ready_.wait_for_ms(lock, 100);
    }
    if (head_ == items_.size()) return std::nullopt;  // closed and empty
    return pop_locked();
  }

  /// Never blocks: nullopt when nothing is queued right now.
  std::optional<T> try_pop() OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    if (head_ == items_.size()) return std::nullopt;
    return pop_locked();
  }

  /// Stops admission and wakes all waiters. Idempotent. Items already
  /// queued remain poppable.
  void close() OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    closed_ = true;
    ready_.notify_all();
    space_.notify_all();
  }

  std::size_t size() const OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return items_.size() - head_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  void push_locked(T& item) OFFNET_REQUIRES(mutex_) {
    // Compact lazily so the vector never grows past capacity + drained
    // prefix; erase-from-front on every pop would be O(n) per item.
    if (head_ > 0 && head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
    items_.push_back(std::move(item));
    ready_.notify_one();
  }

  T pop_locked() OFFNET_REQUIRES(mutex_) {
    T out = std::move(items_[head_]);
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
    space_.notify_one();
    return out;
  }

  const std::size_t capacity_;
  mutable core::Mutex mutex_;
  core::CondVar ready_;  // an item is available
  core::CondVar space_;  // a slot is available
  std::vector<T> items_ OFFNET_GUARDED_BY(mutex_);  // FIFO, front = head_
  std::size_t head_ OFFNET_GUARDED_BY(mutex_) = 0;
  bool closed_ OFFNET_GUARDED_BY(mutex_) = false;
};

}  // namespace offnet::io::stream
