#pragma once

#include <cstdint>

namespace offnet::net {

/// An Autonomous System number. Plain integer alias: ASNs are used as keys
/// everywhere and a strong type buys little here.
using Asn = std::uint32_t;

/// Sentinel for "no AS" (AS0 is reserved and never assigned).
constexpr Asn kNoAsn = 0;

}  // namespace offnet::net
