#include "net/date.h"

#include <charconv>

namespace offnet::net {

std::optional<YearMonth> YearMonth::parse(std::string_view text) {
  auto dash = text.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  int year = 0;
  int month = 0;
  auto ytext = text.substr(0, dash);
  auto mtext = text.substr(dash + 1);
  auto [yp, yec] = std::from_chars(ytext.data(), ytext.data() + ytext.size(),
                                   year);
  auto [mp, mec] = std::from_chars(mtext.data(), mtext.data() + mtext.size(),
                                   month);
  if (yec != std::errc{} || mec != std::errc{} ||
      yp != ytext.data() + ytext.size() ||
      mp != mtext.data() + mtext.size() || month < 1 || month > 12 ||
      year < kMinParseYear || year > kMaxParseYear) {
    return std::nullopt;
  }
  return YearMonth(year, month);
}

std::string YearMonth::to_string() const {
  std::string out = std::to_string(year());
  out.push_back('-');
  if (month() < 10) out.push_back('0');
  out += std::to_string(month());
  return out;
}

std::string DayTime::date_string() const {
  auto pad2 = [](int v) {
    std::string out = std::to_string(v);
    return v < 10 ? "0" + out : out;
  };
  return std::to_string(year()) + "-" + pad2(month()) + "-" +
         pad2(day_of_month());
}

std::vector<YearMonth> study_snapshots() {
  std::vector<YearMonth> out;
  for (YearMonth ym = kStudyStart; ym <= kStudyEnd; ym = ym.plus_months(3)) {
    out.push_back(ym);
  }
  return out;
}

std::optional<std::size_t> snapshot_index(YearMonth when) {
  int months = kStudyStart.months_until(when);
  if (months < 0 || months % 3 != 0 || when > kStudyEnd) return std::nullopt;
  return static_cast<std::size_t>(months / 3);
}

std::size_t snapshot_count() {
  return static_cast<std::size_t>(kStudyStart.months_until(kStudyEnd) / 3) + 1;
}

}  // namespace offnet::net
