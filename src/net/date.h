#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace offnet::net {

/// A calendar month (year, month). This is the time resolution of the
/// study: Rapid7/Censys snapshots are quarterly, BGP/population data are
/// aggregated monthly.
class YearMonth {
 public:
  constexpr YearMonth() = default;
  constexpr YearMonth(int year, int month) : index_(year * 12 + (month - 1)) {}

  /// Parses "YYYY-MM". Returns nullopt on malformed input or a year
  /// outside [kMinParseYear, kMaxParseYear] — dataset dates far from the
  /// study era are typos or corruption, not data, and unbounded years
  /// would overflow the month index.
  static std::optional<YearMonth> parse(std::string_view text);

  /// Accepted year range for parse(). Generous around the 2013–2021
  /// study period so certificate validity windows still parse.
  static constexpr int kMinParseYear = 1990;
  static constexpr int kMaxParseYear = 2100;

  constexpr int year() const { return index_ / 12; }
  constexpr int month() const { return index_ % 12 + 1; }

  /// Month-granularity arithmetic.
  constexpr YearMonth plus_months(int n) const {
    YearMonth out;
    out.index_ = index_ + n;
    return out;
  }
  constexpr int months_until(YearMonth later) const {
    return later.index_ - index_;
  }

  /// "YYYY-MM", the label format used on the paper's time axes.
  std::string to_string() const;

  friend constexpr auto operator<=>(YearMonth, YearMonth) = default;

 private:
  int index_ = 0;  // months since year 0
};

/// Start of the study period: first Rapid7 snapshot used (Oct. 2013).
constexpr YearMonth kStudyStart{2013, 10};
/// End of the study period: last snapshot used (Apr. 2021).
constexpr YearMonth kStudyEnd{2021, 4};

/// The 31 quarterly certificate-scan snapshots from 2013-10 through
/// 2021-04 ("datasets from once every three months", §4.6).
std::vector<YearMonth> study_snapshots();

/// Index of `when` in study_snapshots(), or nullopt when it is not a
/// snapshot month.
std::optional<std::size_t> snapshot_index(YearMonth when);

/// Number of quarterly snapshots in the study (31).
std::size_t snapshot_count();

/// A simple day-resolution timestamp used for certificate validity
/// windows. Days are counted uniformly (30-day months) — fine-grained
/// calendar accuracy is irrelevant to the methodology; only ordering and
/// rough durations matter.
class DayTime {
 public:
  constexpr DayTime() = default;
  constexpr explicit DayTime(std::int64_t days) : days_(days) {}
  constexpr static DayTime from(YearMonth ym, int day_of_month = 1) {
    return DayTime(static_cast<std::int64_t>(ym.year()) * 360 +
                   (ym.month() - 1) * 30 + (day_of_month - 1));
  }

  constexpr std::int64_t days() const { return days_; }
  constexpr DayTime plus_days(std::int64_t n) const {
    return DayTime(days_ + n);
  }

  constexpr int year() const { return static_cast<int>(days_ / 360); }
  constexpr int month() const {
    return static_cast<int>(days_ % 360 / 30) + 1;
  }
  constexpr int day_of_month() const {
    return static_cast<int>(days_ % 30) + 1;
  }

  /// "YYYY-MM-DD" in the uniform 30-day calendar. Named date_string, not
  /// to_string: a DayTime is day-resolution, so there is no time-of-day
  /// to print, and a to_string that silently dropped it would lie about
  /// the precision of the value.
  std::string date_string() const;

  friend constexpr auto operator<=>(DayTime, DayTime) = default;

 private:
  std::int64_t days_ = 0;
};

}  // namespace offnet::net
