#include "net/ipv4.h"

#include <charconv>

namespace offnet::net {

std::optional<IPv4> IPv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Dotted-quad octets have no leading zeros ("01.2.3.4" is not an
    // address; some parsers would even read it as octal).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IPv4(value);
}

std::string IPv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

}  // namespace offnet::net
