#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace offnet::net {

/// An IPv4 address held in host byte order. Regular value type, totally
/// ordered by numeric address value.
class IPv4 {
 public:
  constexpr IPv4() = default;
  constexpr explicit IPv4(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  constexpr static IPv4 from_octets(std::uint8_t a, std::uint8_t b,
                                    std::uint8_t c, std::uint8_t d) {
    return IPv4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation. Returns nullopt on any syntax error
  /// (missing octets, out-of-range values, trailing junk).
  static std::optional<IPv4> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(IPv4, IPv4) = default;

 private:
  std::uint32_t value_ = 0;
};

constexpr IPv4 operator+(IPv4 ip, std::uint32_t delta) {
  return IPv4(ip.value() + delta);
}

}  // namespace offnet::net

template <>
struct std::hash<offnet::net::IPv4> {
  std::size_t operator()(offnet::net::IPv4 ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
