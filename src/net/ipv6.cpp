#include "net/ipv6.h"

#include <algorithm>
#include <charconv>

#include "net/ipv4.h"

namespace offnet::net {

namespace {

std::optional<std::uint16_t> parse_group(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                 value, 16);
  if (ec != std::errc{} || p != text.data() + text.size() || value > 0xffff) {
    return std::nullopt;
  }
  return static_cast<std::uint16_t>(value);
}

std::vector<std::string_view> split_colons(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(':', start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::optional<IPv6> IPv6::parse(std::string_view text) {
  // Split on "::" (at most once).
  std::size_t gap = text.find("::");
  if (gap != std::string_view::npos &&
      text.find("::", gap + 1) != std::string_view::npos) {
    return std::nullopt;
  }

  auto expand_side = [](std::string_view side, bool allow_v4_tail)
      -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> groups;
    if (side.empty()) return groups;
    auto parts = split_colons(side);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (allow_v4_tail && i + 1 == parts.size() &&
          parts[i].find('.') != std::string_view::npos) {
        auto v4 = IPv4::parse(parts[i]);
        if (!v4) return std::nullopt;
        groups.push_back(static_cast<std::uint16_t>(v4->value() >> 16));
        groups.push_back(static_cast<std::uint16_t>(v4->value() & 0xffff));
        continue;
      }
      auto group = parse_group(parts[i]);
      if (!group) return std::nullopt;
      groups.push_back(*group);
    }
    return groups;
  };

  std::vector<std::uint16_t> groups;
  if (gap == std::string_view::npos) {
    auto full = expand_side(text, true);
    if (!full || full->size() != 8) return std::nullopt;
    groups = std::move(*full);
  } else {
    auto left = expand_side(text.substr(0, gap), false);
    auto right = expand_side(text.substr(gap + 2), true);
    if (!left || !right || left->size() + right->size() > 7) {
      return std::nullopt;
    }
    groups = std::move(*left);
    groups.resize(8 - right->size(), 0);
    groups.insert(groups.end(), right->begin(), right->end());
  }

  std::array<std::uint16_t, 8> g{};
  std::copy(groups.begin(), groups.end(), g.begin());
  return IPv6::from_groups(g);
}

std::string IPv6::to_string() const {
  // RFC 5952: compress the longest run (>= 2) of zero groups.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  auto hex = [](std::uint16_t v) {
    char buffer[5];
    std::snprintf(buffer, sizeof(buffer), "%x", v);
    return std::string(buffer);
  };

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) break;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ":";
    out += hex(group(i));
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Prefix6::Prefix6(IPv6 base, std::uint8_t length) : length_(length) {
  std::uint64_t high_mask =
      length >= 64 ? ~std::uint64_t{0}
                   : (length == 0 ? 0 : ~std::uint64_t{0} << (64 - length));
  std::uint64_t low_mask =
      length <= 64 ? 0
                   : (length >= 128 ? ~std::uint64_t{0}
                                    : ~std::uint64_t{0} << (128 - length));
  base_ = IPv6(base.high() & high_mask, base.low() & low_mask);
}

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = IPv6::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [p, ec] = std::from_chars(len_text.data(),
                                 len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || p != len_text.data() + len_text.size() ||
      length > 128) {
    return std::nullopt;
  }
  return Prefix6(*ip, static_cast<std::uint8_t>(length));
}

bool Prefix6::contains(IPv6 ip) const {
  Prefix6 masked(ip, length_);
  return masked.base() == base_;
}

std::string Prefix6::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace offnet::net
