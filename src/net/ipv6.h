#pragma once

#include <algorithm>
#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace offnet::net {

/// An IPv6 address (128 bits, network order abstracted away). Groundwork
/// for the paper's stated future work (§7): the inference approach is IP
/// protocol-agnostic, but longitudinal IPv6 certificate corpuses do not
/// exist yet.
class IPv6 {
 public:
  constexpr IPv6() = default;
  constexpr IPv6(std::uint64_t high, std::uint64_t low)
      : high_(high), low_(low) {}

  /// Builds from eight 16-bit groups.
  constexpr static IPv6 from_groups(const std::array<std::uint16_t, 8>& g) {
    std::uint64_t high = 0;
    std::uint64_t low = 0;
    for (int i = 0; i < 4; ++i) high = (high << 16) | g[i];
    for (int i = 4; i < 8; ++i) low = (low << 16) | g[i];
    return IPv6(high, low);
  }

  /// Parses RFC 4291 text form, including "::" compression and embedded
  /// IPv4 tails ("::ffff:192.0.2.1"). Returns nullopt on syntax errors.
  static std::optional<IPv6> parse(std::string_view text);

  constexpr std::uint64_t high() const { return high_; }
  constexpr std::uint64_t low() const { return low_; }

  constexpr std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>(
        (i < 4 ? high_ >> (16 * (3 - i)) : low_ >> (16 * (7 - i))) & 0xffff);
  }

  /// Bit `i` counted from the most significant (bit 0 of group 0).
  constexpr bool bit(int i) const {
    return i < 64 ? (high_ >> (63 - i)) & 1 : (low_ >> (127 - i)) & 1;
  }

  /// RFC 5952 canonical text form (lowercase, longest zero run
  /// compressed).
  std::string to_string() const;

  friend constexpr auto operator<=>(IPv6, IPv6) = default;

 private:
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
};

/// An IPv6 CIDR prefix with the base masked to the prefix length.
class Prefix6 {
 public:
  constexpr Prefix6() = default;
  Prefix6(IPv6 base, std::uint8_t length);

  static std::optional<Prefix6> parse(std::string_view text);

  IPv6 base() const { return base_; }
  std::uint8_t length() const { return length_; }
  bool contains(IPv6 ip) const;
  bool contains(const Prefix6& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }
  std::string to_string() const;

  friend auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  IPv6 base_;
  std::uint8_t length_ = 0;
};

/// Longest-prefix-match table for IPv6 (sorted-vector based: IPv6 tables
/// are tiny compared to IPv4 scan corpuses, so a trie is unnecessary).
template <class T>
class Ipv6Table {
 public:
  void insert(const Prefix6& prefix, T value) {
    entries_.push_back(Entry{prefix, std::move(value)});
    sorted_ = false;
  }

  const T* longest_match(IPv6 ip) const {
    ensure_sorted();
    const T* best = nullptr;
    int best_len = -1;
    // Entries sorted by base; scan the candidates that could cover ip.
    for (const Entry& e : entries_) {
      if (e.prefix.base() > ip) break;
      if (e.prefix.contains(ip) && e.prefix.length() > best_len) {
        best = &e.value;
        best_len = e.prefix.length();
      }
    }
    return best;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Prefix6 prefix;
    T value;
  };
  void ensure_sorted() const {
    if (sorted_) return;
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.prefix < b.prefix;
              });
    sorted_ = true;
  }
  mutable std::vector<Entry> entries_;
  mutable bool sorted_ = true;
};

}  // namespace offnet::net
