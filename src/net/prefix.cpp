#include "net/prefix.h"

#include <array>
#include <charconv>

namespace offnet::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = IPv4::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  return Prefix(*ip, static_cast<std::uint8_t>(length));
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

namespace {

constexpr Prefix make(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d, std::uint8_t len) {
  return Prefix(IPv4::from_octets(a, b, c, d), len);
}

// IANA IPv4 Special-Purpose Address Registry, condensed.
constexpr std::array kBogons = {
    make(0, 0, 0, 0, 8),        // "this network"
    make(10, 0, 0, 0, 8),       // private use
    make(100, 64, 0, 0, 10),    // shared address space (CGN)
    make(127, 0, 0, 0, 8),      // loopback
    make(169, 254, 0, 0, 16),   // link local
    make(172, 16, 0, 0, 12),    // private use
    make(192, 0, 0, 0, 24),     // IETF protocol assignments
    make(192, 0, 2, 0, 24),     // TEST-NET-1
    make(192, 88, 99, 0, 24),   // 6to4 relay anycast (deprecated)
    make(192, 168, 0, 0, 16),   // private use
    make(198, 18, 0, 0, 15),    // benchmarking
    make(198, 51, 100, 0, 24),  // TEST-NET-2
    make(203, 0, 113, 0, 24),   // TEST-NET-3
    make(224, 0, 0, 0, 4),      // multicast
    make(240, 0, 0, 0, 4),      // reserved (includes 255.255.255.255)
};

}  // namespace

std::span<const Prefix> bogon_prefixes() { return kBogons; }

bool is_bogon(IPv4 ip) {
  for (const Prefix& p : kBogons) {
    if (p.contains(ip)) return true;
  }
  return false;
}

bool is_bogon(const Prefix& prefix) {
  for (const Prefix& p : kBogons) {
    if (p.overlaps(prefix)) return true;
  }
  return false;
}

bool is_reserved_asn(std::uint32_t asn) {
  // IANA Special-Purpose AS Numbers registry.
  if (asn == 0 || asn == 23456) return true;                 // AS0, AS_TRANS
  if (asn >= 64496 && asn <= 64511) return true;             // documentation
  if (asn >= 64512 && asn <= 65534) return true;             // private use
  if (asn == 65535) return true;                             // reserved
  if (asn >= 65536 && asn <= 65551) return true;             // documentation
  if (asn >= 4200000000u) return true;  // private use + last ASN
  return false;
}

}  // namespace offnet::net
