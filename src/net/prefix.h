#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace offnet::net {

/// A CIDR IPv4 prefix. The base address is always stored masked to the
/// prefix length, so equal prefixes compare equal regardless of how they
/// were constructed.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix, masking `base` down to `length` bits.
  /// `length` must be in [0, 32].
  constexpr Prefix(IPv4 base, std::uint8_t length)
      : base_(IPv4(base.value() & netmask_for(length))), length_(length) {}

  /// Parses "a.b.c.d/len". Returns nullopt on syntax error or len > 32.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr IPv4 base() const { return base_; }
  constexpr std::uint8_t length() const { return length_; }
  constexpr std::uint32_t netmask() const { return netmask_for(length_); }

  /// Number of addresses covered (2^(32-length)); 2^32 reported as such in
  /// a 64-bit result.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  constexpr IPv4 first_address() const { return base_; }
  constexpr IPv4 last_address() const {
    return IPv4(base_.value() | ~netmask());
  }

  constexpr bool contains(IPv4 ip) const {
    return (ip.value() & netmask()) == base_.value();
  }

  /// True if `other` is fully covered by this prefix (this is equal or
  /// less specific).
  constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  constexpr bool overlaps(const Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  constexpr static std::uint32_t netmask_for(std::uint8_t length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  IPv4 base_;
  std::uint8_t length_ = 0;
};

/// IANA special-purpose ("bogon") IPv4 blocks that must never appear in a
/// routing table or scan corpus (RFC 6890 and friends).
std::span<const Prefix> bogon_prefixes();

/// True if `ip` falls in any special-purpose block.
bool is_bogon(IPv4 ip);

/// True if `prefix` overlaps any special-purpose block.
bool is_bogon(const Prefix& prefix);

/// True for IANA special-purpose / reserved AS numbers (AS0, AS23456,
/// documentation and private-use ranges, AS_TRANS, last ASNs).
bool is_reserved_asn(std::uint32_t asn);

}  // namespace offnet::net

template <>
struct std::hash<offnet::net::Prefix> {
  std::size_t operator()(const offnet::net::Prefix& p) const noexcept {
    std::uint64_t key =
        (std::uint64_t{p.base().value()} << 8) | p.length();
    return std::hash<std::uint64_t>{}(key);
  }
};
