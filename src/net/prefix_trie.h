#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace offnet::net {

/// A binary trie mapping CIDR prefixes to values, supporting exact lookup
/// and longest-prefix match — the standard structure behind IP-to-AS
/// mapping. Nodes live in a contiguous pool; the trie owns its values.
///
/// Inserting the same prefix twice overwrites the previous value.
template <class T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts or overwrites the value at `prefix`.
  void insert(const Prefix& prefix, T value) {
    std::int32_t node = descend_or_create(prefix);
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// Exact-match lookup: the value stored at precisely this prefix.
  const T* find(const Prefix& prefix) const {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = child(node, bit(prefix.base(), depth));
      if (node < 0) return nullptr;
    }
    return value_ptr(node);
  }

  T* find(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for a single address, or nullptr when no stored
  /// prefix covers it.
  const T* longest_match(IPv4 ip) const {
    const T* best = nullptr;
    std::int32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (const T* v = value_ptr(node)) best = v;
      if (depth == 32) break;
      node = child(node, bit(ip, depth));
      if (node < 0) break;
    }
    return best;
  }

  /// Longest-prefix match that also reports the matching prefix.
  struct Match {
    Prefix prefix;
    const T* value = nullptr;
  };
  std::optional<Match> longest_match_entry(IPv4 ip) const {
    std::optional<Match> best;
    std::int32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (const T* v = value_ptr(node)) {
        best = Match{Prefix(ip, static_cast<std::uint8_t>(depth)), v};
      }
      if (depth == 32) break;
      node = child(node, bit(ip, depth));
      if (node < 0) break;
    }
    return best;
  }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    walk(0, Prefix(IPv4(0), 0), fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    nodes_.clear();
    nodes_.push_back(Node{});
    size_ = 0;
  }

 private:
  struct Node {
    std::int32_t children[2] = {-1, -1};
    std::optional<T> value;
  };

  static bool bit(IPv4 ip, int depth) {
    return (ip.value() >> (31 - depth)) & 1u;
  }

  std::int32_t child(std::int32_t node, bool b) const {
    return nodes_[node].children[b];
  }

  const T* value_ptr(std::int32_t node) const {
    const auto& v = nodes_[node].value;
    return v.has_value() ? &*v : nullptr;
  }

  std::int32_t descend_or_create(const Prefix& prefix) {
    std::int32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      bool b = bit(prefix.base(), depth);
      std::int32_t next = nodes_[node].children[b];
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_[node].children[b] = next;
        nodes_.push_back(Node{});
      }
      node = next;
    }
    return node;
  }

  template <class Fn>
  void walk(std::int32_t node, Prefix here, Fn& fn) const {
    if (const T* v = value_ptr(node)) fn(here, *v);
    if (here.length() == 32) return;
    auto next_len = static_cast<std::uint8_t>(here.length() + 1);
    if (std::int32_t left = nodes_[node].children[0]; left >= 0) {
      walk(left, Prefix(here.base(), next_len), fn);
    }
    if (std::int32_t right = nodes_[node].children[1]; right >= 0) {
      IPv4 base(here.base().value() | (1u << (31 - here.length())));
      walk(right, Prefix(base, next_len), fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace offnet::net
