#include "net/rng.h"

#include <numeric>
#include <unordered_set>

namespace offnet::net {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  if (k == 0) return {};
  // For dense samples, a partial Fisher-Yates over an index vector; for
  // sparse ones, rejection sampling.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    std::size_t candidate = index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform_real(0.0, total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

}  // namespace offnet::net
