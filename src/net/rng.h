#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace offnet::net {

/// Deterministic random source. Every simulation component receives an Rng
/// forked from the single SimConfig seed, so runs are reproducible and
/// components' streams are independent of each other's consumption order.
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : engine_(mix(seed)), seed_material_(seed) {}

  /// Derives an independent child stream. `stream` should be a stable
  /// per-component tag (e.g. hash of the module name + snapshot index).
  Rng fork(std::uint64_t stream) const {
    return Rng(mix(seed_material_ + 0x632be59bd9b4e019ull) ^ mix(stream));
  }
  Rng fork(std::string_view tag) const { return fork(hash(tag)); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(size) - 1));
  }

  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson draw, used for per-AS server counts.
  int poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Heavy-tailed integer >= 1 with roughly the given mean (Pareto with
  /// alpha = 2, tail clamped so one draw cannot dominate a corpus).
  int heavy_tail(double mean) {
    assert(mean >= 1.0);
    double u = uniform_real(1e-12, 1.0);
    double x = 1.0 / std::sqrt(u);  // mean 2 for alpha = 2
    double scaled = x * mean / 2.0;
    return static_cast<int>(std::min(scaled, mean * 50.0)) + 1;
  }

  template <class T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <class T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  template <class T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Samples `k` distinct indices out of [0, n) (k clamped to n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Picks an index according to non-negative weights. Weights need not be
  /// normalized; at least one must be positive.
  std::size_t weighted_index(std::span<const double> weights);

  std::mt19937_64& engine() { return engine_; }

  /// FNV-1a string hash; stable across runs and platforms.
  static std::uint64_t hash(std::string_view text) {
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  // splitmix64 finalizer: decorrelates nearby seeds.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_material_ = 0;
};

}  // namespace offnet::net
