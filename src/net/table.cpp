#include "net/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace offnet::net {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) grow(header_);
  for (const auto& row : rows_) grow(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "  ";
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size(), ' ');
      }
    }
    out.push_back('\n');
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(total, '-');
    out.push_back('\n');
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string percent(double fraction) {
  return TextTable::format_double(fraction * 100.0, 1) + "%";
}

std::string with_commas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace offnet::net
