#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace offnet::net {

/// Plain-text table renderer used by the benchmark harnesses to print the
/// paper's tables and figure series in aligned columns.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header);

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_cell().
  template <class... Cells>
  void add(const Cells&... cells) {
    add_row({to_cell(cells)...});
  }

  std::string to_string() const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  template <class T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(value), 1);
    } else {
      return std::to_string(value);
    }
  }

  static std::string format_double(double value, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" with one decimal.
std::string percent(double fraction);

/// Thousands-separated integer ("1,234,567") as used in the paper's tables.
std::string with_commas(long long value);

/// Case-insensitive substring search (the paper's Organization matching is
/// case-insensitive, §4.2).
bool icontains(std::string_view haystack, std::string_view needle);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

}  // namespace offnet::net
