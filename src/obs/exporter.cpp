#include "obs/exporter.h"

#include <cstdio>
#include <cstdlib>

namespace offnet::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Shortest %g rendering that round-trips the value — deterministic for
/// a given double, and readable for the round bucket bounds metrics use.
void append_double(std::string& out, double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

template <typename Map, typename AppendValue>
void append_object(std::string& out, std::string_view key, const Map& map,
                   bool& first_section, const AppendValue& append_value) {
  if (!first_section) out += ",\n";
  first_section = false;
  out += "  ";
  append_escaped(out, key);
  out += ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n    ";
    append_escaped(out, name);
    out += ": ";
    append_value(out, value);
  }
  if (!first) out += "\n  ";
  out.push_back('}');
}

std::string render(const RegistrySnapshot& snapshot, bool include_timing) {
  std::string out = "{\n";
  bool first_section = true;

  append_object(out, "counters", snapshot.counters, first_section,
                [](std::string& o, std::uint64_t v) {
                  o += std::to_string(v);
                });
  append_object(out, "gauges", snapshot.gauges, first_section,
                [](std::string& o, std::int64_t v) {
                  o += std::to_string(v);
                });
  append_object(
      out, "histograms", snapshot.histograms, first_section,
      [](std::string& o, const RegistrySnapshot::HistogramData& h) {
        o += "{\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) o += ", ";
          append_double(o, h.bounds[i]);
        }
        o += "], \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (i > 0) o += ", ";
          o += std::to_string(h.buckets[i]);
        }
        o += "], \"count\": " + std::to_string(h.count) + "}";
      });
  if (include_timing) {
    append_object(out, "timing", snapshot.timings, first_section,
                  [](std::string& o, const TimingStat& t) {
                    o += "{\"calls\": " + std::to_string(t.calls) +
                         ", \"total_seconds\": ";
                    append_double(o, t.total_seconds);
                    o += ", \"min_seconds\": ";
                    append_double(o, t.min_seconds);
                    o += ", \"max_seconds\": ";
                    append_double(o, t.max_seconds);
                    o.push_back('}');
                  });
  }
  out += "\n}\n";
  return out;
}

}  // namespace

std::string MetricsExporter::to_json(const Registry& registry) {
  return render(registry.snapshot(), true);
}

std::string MetricsExporter::to_json(const RegistrySnapshot& snapshot) {
  return render(snapshot, true);
}

std::string MetricsExporter::deterministic_json(const Registry& registry) {
  return render(registry.snapshot(), false);
}

std::string MetricsExporter::deterministic_json(
    const RegistrySnapshot& snapshot) {
  return render(snapshot, false);
}

}  // namespace offnet::obs
