#pragma once

#include <string>

#include "obs/metrics.h"

namespace offnet::obs {

/// Serialises a Registry as deterministic JSON: two-space indented,
/// every object's keys in sorted (std::map) order, integers only outside
/// the timing section. The wall-clock timing section is segregated under
/// the top-level "timing" key so consumers can compare everything else
/// byte for byte across runs and thread counts (DESIGN.md §9).
class MetricsExporter {
 public:
  /// The full report, timing included.
  static std::string to_json(const Registry& registry);
  static std::string to_json(const RegistrySnapshot& snapshot);

  /// The comparable part: identical to to_json with the "timing" subtree
  /// omitted. Same corpus in, byte-identical string out, at any thread
  /// count.
  ///
  /// There is deliberately no file-writing entry point here: metrics
  /// files are final artifacts, and final artifacts go through
  /// io::AtomicFile (DESIGN.md §10) — e.g.
  /// io::AtomicFile::write(path, MetricsExporter::to_json(registry)).
  static std::string deterministic_json(const Registry& registry);
  static std::string deterministic_json(const RegistrySnapshot& snapshot);
};

}  // namespace offnet::obs
