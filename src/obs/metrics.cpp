#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace offnet::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram bounds must be strictly ascending");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void Histogram::add_bucket(std::size_t index, std::uint64_t n) {
  if (index > bounds_.size()) {
    throw std::out_of_range("Histogram::add_bucket: no such bucket");
  }
  buckets_[index].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  core::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  core::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  core::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::record_timing(std::string_view stage, double seconds) {
  core::MutexLock lock(mutex_);
  auto it = timings_.find(stage);
  if (it == timings_.end()) {
    timings_.emplace(std::string(stage),
                     TimingStat{1, seconds, seconds, seconds});
    return;
  }
  TimingStat& stat = it->second;
  ++stat.calls;
  stat.total_seconds += seconds;
  stat.min_seconds = std::min(stat.min_seconds, seconds);
  stat.max_seconds = std::max(stat.max_seconds, seconds);
}

void Registry::absorb(const RegistrySnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    counter(name).add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauge(name).set(value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    Histogram& hist = histogram(name, data.bounds);
    if (hist.bounds() != data.bounds) {
      throw std::invalid_argument("Registry::absorb: histogram '" +
                                  name + "' bounds mismatch");
    }
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (data.buckets[i] != 0) hist.add_bucket(i, data.buckets[i]);
    }
  }
  for (const auto& [name, stat] : snapshot.timings) {
    if (stat.calls == 0) continue;
    core::MutexLock lock(mutex_);
    auto it = timings_.find(name);
    if (it == timings_.end()) {
      timings_.emplace(name, stat);
      continue;
    }
    TimingStat& mine = it->second;
    mine.calls += stat.calls;
    mine.total_seconds += stat.total_seconds;
    mine.min_seconds = std::min(mine.min_seconds, stat.min_seconds);
    mine.max_seconds = std::max(mine.max_seconds, stat.max_seconds);
  }
}

RegistrySnapshot Registry::snapshot() const {
  core::MutexLock lock(mutex_);
  RegistrySnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace(
        name, RegistrySnapshot::HistogramData{histogram->bounds(),
                                              histogram->bucket_counts(),
                                              histogram->count()});
  }
  for (const auto& [name, stat] : timings_) {
    out.timings.emplace(name, stat);
  }
  return out;
}

}  // namespace offnet::obs
