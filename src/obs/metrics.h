#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

/// Pipeline observability: named counters, gauges, and fixed-bucket
/// histograms collected into a Registry, plus the wall-clock stage
/// timings recorded by obs::StageTimer. The subsystem depends on nothing
/// but the standard library (and the header-only core lock/annotation
/// machinery), so every layer — io, core, tools, bench — can emit
/// metrics without new link cycles.
///
/// Determinism contract (DESIGN.md §9): every counter, gauge, and
/// histogram value must be identical for the same corpus at any thread
/// count. Instrumented code guarantees this by only recording values
/// that are themselves deterministic (atomic integer sums commute, so
/// concurrent adds of deterministic increments stay deterministic).
/// Wall-clock durations are inherently nondeterministic and live in a
/// separate timing section that the exporter segregates under the
/// "timing" key, so consumers can compare everything else byte for byte.
namespace offnet::obs {

/// A monotonically increasing integer, safe for concurrent adds.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-write-wins integer level. Concurrent set() races are
/// last-write-wins; deterministic instrumentation only sets gauges from
/// one thread (or sets them to values that are equal on every thread).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A histogram over fixed, ascending bucket upper bounds chosen at
/// creation. observe(v) increments the first bucket with v <= bound, or
/// the implicit overflow bucket; bucket counts are concurrent-add safe.
/// There is deliberately no floating-point sum: a parallel sum of
/// doubles is order-dependent, which would break the determinism
/// contract.
class Histogram {
 public:
  /// Throws std::invalid_argument unless `bounds` is non-empty and
  /// strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Folds persisted observations back in (checkpoint resume): adds `n`
  /// to bucket `index` and to the total count. Throws std::out_of_range
  /// when `index` exceeds the overflow bucket.
  void add_bucket(std::size_t index, std::uint64_t n);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
};

/// Aggregate of every duration recorded for one stage name.
struct TimingStat {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// A plain-data copy of a registry, with every map sorted by name (the
/// exporter's iteration order, and a convenient read-only view for
/// tests).
struct RegistrySnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, TimingStat> timings;
};

/// Named metric instruments, created on first use and stable for the
/// registry's lifetime (references returned by counter()/gauge()/
/// histogram() never dangle or move). Lookup takes the registry mutex;
/// recording on an instrument is lock-free, so hot loops should hoist
/// the lookup or accumulate locally and add once.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name) OFFNET_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) OFFNET_EXCLUDES(mutex_);

  /// Finds or creates. The bounds of an existing histogram win; they are
  /// fixed at creation.
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      OFFNET_EXCLUDES(mutex_);

  /// Folds one wall-clock duration into the stage's TimingStat. Called
  /// by StageTimer; callable directly for externally measured spans.
  void record_timing(std::string_view stage, double seconds)
      OFFNET_EXCLUDES(mutex_);

  RegistrySnapshot snapshot() const OFFNET_EXCLUDES(mutex_);

  /// Folds a persisted snapshot back into live instruments — the restore
  /// half of the checkpoint/resume contract (DESIGN.md §10). Counters
  /// and histogram buckets add (so a registry that already accumulated
  /// new work keeps it), gauges are levels and adopt the snapshot's
  /// value, timings merge calls/total/min/max. Throws
  /// std::invalid_argument when an existing histogram's bounds disagree
  /// with the snapshot's.
  void absorb(const RegistrySnapshot& snapshot) OFFNET_EXCLUDES(mutex_);

 private:
  mutable core::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OFFNET_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      OFFNET_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      OFFNET_GUARDED_BY(mutex_);
  std::map<std::string, TimingStat, std::less<>> timings_
      OFFNET_GUARDED_BY(mutex_);
};

}  // namespace offnet::obs
