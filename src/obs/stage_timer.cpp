#include "obs/stage_timer.h"

#include <chrono>

namespace offnet::obs {

std::int64_t monotonic_nanoseconds() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace offnet::obs
