#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace offnet::obs {

/// The project's only sanctioned monotonic-clock read (the nondet-clock
/// lint rule bans chrono clocks everywhere in src/ except
/// obs/stage_timer.*; see DESIGN.md §9). Monotonic nanoseconds from an
/// arbitrary epoch — good for durations, meaningless as a timestamp.
std::int64_t monotonic_nanoseconds();

/// A started stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_nanoseconds()) {}

  double seconds() const {
    return static_cast<double>(monotonic_nanoseconds() - start_ns_) * 1e-9;
  }
  void restart() { start_ns_ = monotonic_nanoseconds(); }

 private:
  std::int64_t start_ns_;
};

/// RAII stage scope: measures from construction to stop() (or
/// destruction) and folds the duration into the registry's timing
/// section under `stage`. A null registry makes the timer a no-op, so
/// instrumented code reads naturally when metrics are optional:
///
///   obs::StageTimer timer(options.metrics, "pipeline/pass1");
///
/// Durations land only in the "timing" subtree of the exported JSON —
/// never in counters — preserving the determinism contract.
class StageTimer {
 public:
  StageTimer(Registry* registry, std::string_view stage)
      : registry_(registry), stage_(stage) {}
  StageTimer(Registry& registry, std::string_view stage)
      : StageTimer(&registry, stage) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Records now instead of at scope exit. Idempotent.
  void stop() {
    if (registry_ == nullptr) return;
    registry_->record_timing(stage_, watch_.seconds());
    registry_ = nullptr;
  }

 private:
  Registry* registry_;
  std::string stage_;
  Stopwatch watch_;
};

}  // namespace offnet::obs
