#include "scan/background.h"

#include <cmath>

#include "net/date.h"
#include "net/rng.h"

namespace offnet::scan {

namespace {

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x632be59bd9b4e019ull + (h << 6) + (h >> 2);
  h ^= c + 0xd6e8feb86659fd93ull + (h << 6) + (h >> 2);
  return h;
}

double unit(std::uint64_t h) {
  return static_cast<double>(h % 0xffffffu) / double(0xffffffu);
}

net::IPv4 stable_ip(const topo::AsRecord& rec, std::uint64_t tag) {
  const net::Prefix& prefix = rec.prefixes[tag % rec.prefixes.size()];
  std::uint64_t span = prefix.size() > 2 ? prefix.size() - 2 : 1;
  auto offset = static_cast<std::uint32_t>(
      1 + (mix3(tag, prefix.base().value(), 0xB6) % span));
  return prefix.base() + offset;
}

constexpr net::DayTime kLongBefore = net::DayTime::from(net::YearMonth(2010, 1));

}  // namespace

BackgroundGenerator::BackgroundGenerator(
    const topo::Topology& topology, std::span<const hg::HgProfile> profiles,
    tls::CertificateStore& certs, tls::RootStore& roots,
    BackgroundConfig config)
    : topology_(topology),
      config_(std::move(config)),
      certs_(certs),
      ca_(certs, roots) {
  mint_pools(profiles, roots);

  as_weight_.resize(topology_.as_count(), 0.0);
  as_has_web_.resize(topology_.as_count(), 0);
  for (topo::AsId id = 0; id < topology_.as_count(); ++id) {
    const auto& rec = topology_.as(id);
    if (rec.prefixes.empty() || rec.ipv6_only) continue;
    std::uint64_t h = mix3(rec.asn, 0xAA, 1);
    if (unit(h) < config_.no_web_as_fraction) continue;
    as_has_web_[id] = 1;
    double addresses = 0;
    for (const auto& p : rec.prefixes) {
      addresses += static_cast<double>(p.size());
    }
    double lognormal = std::exp(2.0 * (unit(mix3(rec.asn, 0xAB, 2)) - 0.5));
    as_weight_[id] = std::sqrt(addresses) * lognormal;
  }
}

void BackgroundGenerator::mint_pools(std::span<const hg::HgProfile> profiles,
                                     tls::RootStore& roots) {
  (void)roots;
  tls::CertId bg_root = ca_.create_root("Community Trust CA");
  tls::CertId bg_inter = ca_.create_intermediate(bg_root, "Community DV CA");
  constexpr int kLongValidity = 360 * 20;

  auto site = [](std::string_view prefix, int k) {
    return std::string(prefix) + "-" + std::to_string(k) + ".example";
  };

  for (int k = 0; k < config_.valid_pool; ++k) {
    tls::DistinguishedName dn;
    dn.organization = "Org " + std::to_string(k) + " Web Services";
    dn.common_name = site("www.site", k);
    valid_pool_.push_back(ca_.issue(bg_inter, std::move(dn),
                                    {site("www.site", k), site("site", k)},
                                    kLongBefore, kLongValidity));
  }
  for (int k = 0; k < config_.self_signed_pool; ++k) {
    tls::DistinguishedName dn;
    dn.organization = "Self Hosted " + std::to_string(k);
    dn.common_name = site("self", k);
    self_signed_pool_.push_back(ca_.issue_self_signed(
        std::move(dn), {site("self", k)}, kLongBefore, kLongValidity));
  }
  for (int k = 0; k < config_.expired_pool; ++k) {
    tls::DistinguishedName dn;
    dn.organization = "Lapsed Org " + std::to_string(k);
    dn.common_name = site("old", k);
    // Issued 2010, two-year validity: expired before the study starts.
    expired_pool_.push_back(ca_.issue(bg_inter, std::move(dn),
                                      {site("old", k)}, kLongBefore,
                                      360 * 2));
  }
  for (int k = 0; k < config_.untrusted_pool; ++k) {
    tls::DistinguishedName dn;
    dn.organization = "Enterprise " + std::to_string(k);
    dn.common_name = site("intranet", k);
    untrusted_pool_.push_back(ca_.issue_untrusted(
        std::move(dn), {site("intranet", k)}, kLongBefore, kLongValidity));
  }
  {
    // Missing critical information: fails X.509 translation (§4.6).
    tls::Certificate broken;
    broken.not_before = kLongBefore;
    broken.not_after = kLongBefore.plus_days(kLongValidity);
    malformed_pool_.push_back(certs_.add(std::move(broken)));
  }

  // Mimics: valid DV certs whose unvalidated Organization field names a
  // Hypergiant, but certifying unrelated domains.
  for (const auto& p : profiles) {
    for (int k = 0; k < config_.mimic_pool_per_hg; ++k) {
      tls::DistinguishedName dn;
      dn.organization = p.org_name;
      dn.common_name = site("definitely-" + p.keyword, k);
      mimic_pool_.push_back(ca_.issue(
          bg_inter, std::move(dn),
          {site("definitely-" + p.keyword, k)}, kLongBefore, kLongValidity));
    }
    // Shared certificates: a HG domain plus a partner's domain on one
    // cert — the containment rule must reject them.
    for (int k = 0; k < config_.shared_pool_per_hg && !p.domains.empty();
         ++k) {
      tls::DistinguishedName dn;
      dn.organization = p.org_name;
      dn.common_name = "*." + p.domains.front();
      shared_pool_.push_back(ca_.issue(
          bg_inter, std::move(dn),
          {"*." + p.domains.front(), site("partner", k)}, kLongBefore,
          kLongValidity));
    }
  }

  // Customer origins of CDN-hosted sites: their own certificate, but they
  // answer for domains that CDN HGs also serve.
  for (std::size_t h = 0; h < profiles.size(); ++h) {
    if (!profiles[h].serves_other_hgs && !profiles[h].is_cert_issuer) {
      continue;
    }
    for (int k = 0; k < 20; ++k) {
      tls::DistinguishedName dn;
      dn.organization = "Origin Customer " + std::to_string(k);
      dn.common_name = site("origin", k);
      tls::CertId id = ca_.issue(bg_inter, std::move(dn), {site("origin", k)},
                                 kLongBefore, kLongValidity);
      origin_pool_.emplace_back(id, std::uint64_t{1} << h);
    }
  }
}

tls::CertId BackgroundGenerator::cert_for_slot(std::uint64_t tag,
                                               std::uint64_t* serves) const {
  *serves = 0;
  double r = unit(mix3(tag, 0xC0, 1));
  double edge = config_.self_signed_rate;
  if (r < edge) {
    return self_signed_pool_[tag % self_signed_pool_.size()];
  }
  edge += config_.expired_rate;
  if (r < edge) return expired_pool_[tag % expired_pool_.size()];
  edge += config_.untrusted_rate;
  if (r < edge) return untrusted_pool_[tag % untrusted_pool_.size()];
  edge += config_.malformed_rate;
  if (r < edge) return malformed_pool_[tag % malformed_pool_.size()];
  edge += config_.mimic_rate;
  if (r < edge && !mimic_pool_.empty()) {
    return mimic_pool_[tag % mimic_pool_.size()];
  }
  edge += config_.shared_cert_rate;
  if (r < edge && !shared_pool_.empty()) {
    return shared_pool_[tag % shared_pool_.size()];
  }
  edge += config_.origin_rate;
  if (r < edge && !origin_pool_.empty()) {
    const auto& [cert, bits] = origin_pool_[tag % origin_pool_.size()];
    *serves = bits;
    return cert;
  }
  return valid_pool_[tag % valid_pool_.size()];
}

std::size_t BackgroundGenerator::expected_count(std::size_t snapshot) const {
  net::YearMonth month = net::study_snapshots()[snapshot];
  return static_cast<std::size_t>(
      hg::anchor_value(config_.total_ips, month) * config_.scale);
}

void BackgroundGenerator::for_each(
    std::size_t snapshot,
    const std::function<void(const BgServer&)>& fn) const {
  const auto& alive = topology_.alive_mask(snapshot);
  double total_weight = 0.0;
  for (topo::AsId id = 0; id < topology_.as_count(); ++id) {
    if (alive[id] && as_has_web_[id]) total_weight += as_weight_[id];
  }
  if (total_weight <= 0.0) return;
  const double budget = static_cast<double>(expected_count(snapshot));

  for (topo::AsId id = 0; id < topology_.as_count(); ++id) {
    if (!alive[id] || !as_has_web_[id]) continue;
    const auto& rec = topology_.as(id);
    double exact = budget * as_weight_[id] / total_weight;
    auto count = static_cast<std::size_t>(exact);
    // Deterministic fractional rounding, stable per AS.
    if (unit(mix3(rec.asn, 0xAD, snapshot * 0 + 3)) < exact - double(count)) {
      ++count;
    }
    if (count == 0) count = 1;  // every web AS shows at least one cert IP
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t tag = mix3(rec.asn, 0xAE, i);
      BgServer server;
      server.as = id;
      server.ip = stable_ip(rec, tag);
      server.cert = cert_for_slot(tag, &server.serves_hgs);
      fn(server);
    }
  }
}

}  // namespace offnet::scan
