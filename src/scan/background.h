#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "http/catalog.h"
#include "hypergiant/profile.h"
#include "net/ipv4.h"
#include "tls/ca.h"
#include "topology/topology.h"

namespace offnet::scan {

/// Parameters for the non-Hypergiant Internet: the tens of millions of
/// IPs that answer on port 443 with certificates of every quality level.
struct BackgroundConfig {
  std::uint64_t seed = 20210823;

  /// Down-scaling of background IP counts relative to the paper's raw
  /// numbers (AS-level structure is unscaled; see DESIGN.md).
  double scale = 0.01;

  /// Raw (unscaled) IPs with certificates over time, calibrated to
  /// Fig. 2's left axis.
  hg::Anchors total_ips = {
      {net::YearMonth(2013, 10), 10.5e6}, {net::YearMonth(2015, 10), 19e6},
      {net::YearMonth(2017, 10), 27e6},   {net::YearMonth(2019, 10), 35e6},
      {net::YearMonth(2020, 10), 38.5e6}, {net::YearMonth(2021, 4), 41e6},
  };

  /// Fraction of ASes hosting no web servers at all.
  double no_web_as_fraction = 0.13;

  /// Certificate-quality mix ("more than one third of the hosts returned
  /// invalid certificates", §4.1).
  double self_signed_rate = 0.15;
  double expired_rate = 0.12;
  double untrusted_rate = 0.07;
  double malformed_rate = 0.03;

  /// Of the valid remainder: DV certificates whose Organization mimics a
  /// Hypergiant name (§4.2 — the reason Organization alone is not a
  /// fingerprint), and certificates shared between a HG and another
  /// organization (§4.3 filter).
  double mimic_rate = 0.004;
  double shared_cert_rate = 0.0015;

  /// Customer origins of CDN-hosted sites: rare background servers that
  /// validly answer for domains a CDN Hypergiant serves (the 2% residue
  /// in the §5 reverse test).
  double origin_rate = 0.0003;

  /// Pool sizes (distinct certificates minted once and reused).
  int valid_pool = 24000;
  int self_signed_pool = 6000;
  int expired_pool = 5000;
  int untrusted_pool = 3000;
  int mimic_pool_per_hg = 40;
  int shared_pool_per_hg = 12;
};

/// A background server at one snapshot (before scanner artifacts).
struct BgServer {
  net::IPv4 ip;
  topo::AsId as = topo::kNoAs;
  tls::CertId cert = tls::kNoCert;
  // 64-bit like hg::ServerRecord::serves_hgs (kMaxHypergiants = 64);
  // customer-origin validation bits.
  std::uint64_t serves_hgs = 0;
};

/// Deterministically generates the background Internet per snapshot:
/// per-AS server counts grow with the study-long total, server IPs and
/// certificates are stable across snapshots.
class BackgroundGenerator {
 public:
  BackgroundGenerator(const topo::Topology& topology,
                      std::span<const hg::HgProfile> profiles,
                      tls::CertificateStore& certs, tls::RootStore& roots,
                      BackgroundConfig config);

  /// Streams every background server alive at `snapshot`.
  void for_each(std::size_t snapshot,
                const std::function<void(const BgServer&)>& fn) const;

  std::size_t expected_count(std::size_t snapshot) const;

  double scale() const { return config_.scale; }

 private:
  void mint_pools(std::span<const hg::HgProfile> profiles,
                  tls::RootStore& roots);
  tls::CertId cert_for_slot(std::uint64_t tag, std::uint64_t* serves) const;

  const topo::Topology& topology_;
  BackgroundConfig config_;
  tls::CertificateStore& certs_;
  tls::CaService ca_;

  std::vector<tls::CertId> valid_pool_;
  std::vector<tls::CertId> self_signed_pool_;
  std::vector<tls::CertId> expired_pool_;
  std::vector<tls::CertId> untrusted_pool_;
  std::vector<tls::CertId> malformed_pool_;
  std::vector<tls::CertId> mimic_pool_;
  std::vector<tls::CertId> shared_pool_;
  std::vector<std::pair<tls::CertId, std::uint64_t>> origin_pool_;

  std::vector<double> as_weight_;   // stable per-AS server mass
  std::vector<char> as_has_web_;
};

}  // namespace offnet::scan
