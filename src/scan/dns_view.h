#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "dns/world_view.h"
#include "scan/world.h"

namespace offnet::scan {

/// Projects the full simulation onto the dns::WorldView facade: the
/// downward half of the broken dns -> scan back-edge. Header-only and
/// stateless beyond the World reference, so any World owner can hand a
/// view to HgAuthority/EcsMapper/PatternEnumerator without new link
/// dependencies. The view must not outlive the World.
class WorldDnsView final : public dns::WorldView {
 public:
  explicit WorldDnsView(const World& world) : world_(world) {}

  const topo::Topology& topology() const override {
    return world_.topology();
  }
  const bgp::Ip2AsSeries& ip2as() const override { return world_.ip2as(); }

  dns::HgView profile(int hg) const override {
    const hg::HgProfile& p = world_.profiles()[hg];
    return {p.name, p.org_name, p.domains};
  }

  void for_each_server(
      std::size_t snapshot, int hg,
      const std::function<void(const dns::ServerView&)>& fn) const override {
    for (const hg::ServerRecord& rec :
         world_.fleet().snapshot_fleet(snapshot)) {
      if (rec.hg != hg) continue;
      if (rec.role == hg::ServerRole::kOnNet) {
        fn({rec.as, rec.ip, /*offnet=*/false});
      } else if (rec.role == hg::ServerRole::kOffNet) {
        fn({rec.as, rec.ip, /*offnet=*/true});
      }
    }
  }

  std::span<const topo::AsId> confirmed_hosts(std::size_t snapshot,
                                              int hg) const override {
    return world_.plan().at(snapshot, hg).confirmed;
  }

 private:
  const World& world_;
};

}  // namespace offnet::scan
