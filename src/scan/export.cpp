#include "scan/export.h"

#include "io/atomic_file.h"

namespace offnet::scan {

void export_dataset(const World& world, const ScanSnapshot& snapshot,
                    io::ExportStreams out) {
  io::export_dataset(
      io::DatasetSources{world.topology(),
                         world.ip2as().at(snapshot.snapshot_index()),
                         world.certs(), world.roots()},
      snapshot, out);
}

void export_dataset_to_dir(const World& world, const ScanSnapshot& snapshot,
                           const std::string& dir) {
  io::AtomicFile rel(dir + "/relationships.txt");
  io::AtomicFile org(dir + "/organizations.txt");
  io::AtomicFile pfx(dir + "/prefix2as.txt");
  io::AtomicFile certs(dir + "/certificates.tsv");
  io::AtomicFile hosts(dir + "/hosts.tsv");
  io::AtomicFile headers(dir + "/headers.tsv");
  export_dataset(world, snapshot,
                 io::ExportStreams{rel.stream(), org.stream(), pfx.stream(),
                                   certs.stream(), hosts.stream(),
                                   headers.stream()});
  // Commit only after every stream succeeded, so a failure mid-export
  // publishes none of the six files (their temps are cleaned up).
  for (io::AtomicFile* file : {&rel, &org, &pfx, &certs, &hosts, &headers}) {
    file->commit();
  }
}

}  // namespace offnet::scan
