#pragma once

#include <string>

#include "io/exporter.h"
#include "scan/world.h"

namespace offnet::scan {

/// Exports `snapshot` in the on-disk formats `io/loaders.h` reads,
/// assembling the io::DatasetSources DTO from `world` so the exporter
/// itself never sees a scan::World (layering: io sits below scan).
void export_dataset(const World& world, const ScanSnapshot& snapshot,
                    io::ExportStreams out);

/// Writes the six dataset files (relationships.txt, organizations.txt,
/// prefix2as.txt, certificates.tsv, hosts.tsv, headers.tsv) into `dir`
/// through io::AtomicFile: every file is staged to a temp name and
/// published only after its bytes are flushed and verified, so a crash
/// or full disk can never leave a torn file under a final name. Throws
/// io::IoError (naming the file) on any write failure.
void export_dataset_to_dir(const World& world, const ScanSnapshot& snapshot,
                           const std::string& dir);

}  // namespace offnet::scan
