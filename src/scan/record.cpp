#include "scan/record.h"

namespace offnet::scan {

const http::HeaderMap* ScanSnapshot::https_headers(net::IPv4 ip) const {
  if (!has_https_headers_) return nullptr;
  auto it = https_headers_.find(ip.value());
  return it == https_headers_.end() ? nullptr : &catalog_->get(it->second);
}

const http::HeaderMap* ScanSnapshot::http_headers(net::IPv4 ip) const {
  if (!has_http_headers_) return nullptr;
  auto it = http_headers_.find(ip.value());
  return it == http_headers_.end() ? nullptr : &catalog_->get(it->second);
}

std::size_t ScanSnapshot::http_only_count() const {
  std::size_t count = 0;
  // offnet-lint: allow(unordered-iter): pure count, no order-dependent accumulation
  for (const auto& [ip, id] : http_headers_) {
    if (!https_headers_.contains(ip)) ++count;
  }
  return count;
}

}  // namespace offnet::scan
