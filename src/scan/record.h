#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "http/catalog.h"
#include "net/date.h"
#include "net/ipv4.h"
#include "tls/certificate.h"

namespace offnet::scan {

/// The three certificate-scan sources compared in Table 2.
enum class ScannerKind : std::uint8_t {
  kRapid7,   // Project Sonar; the longitudinal backbone (2013-10 ..)
  kCensys,   // available 2019-10 ..
  kCertigo,  // the authors' own active scan, Nov 2019 only
};

constexpr std::string_view scanner_name(ScannerKind kind) {
  switch (kind) {
    case ScannerKind::kRapid7: return "Rapid7";
    case ScannerKind::kCensys: return "Censys";
    case ScannerKind::kCertigo: return "Certigo";
  }
  return "?";
}

constexpr std::string_view scanner_abbrev(ScannerKind kind) {
  switch (kind) {
    case ScannerKind::kRapid7: return "R7";
    case ScannerKind::kCensys: return "CS";
    case ScannerKind::kCertigo: return "AC";
  }
  return "?";
}

/// One port-443 banner observation: the default certificate presented by
/// an IP address when no SNI is sent (the Rapid7 data shape, §7).
struct CertScanRecord {
  net::IPv4 ip;
  tls::CertId cert = tls::kNoCert;
};

/// One scanner's view of the Internet at one study snapshot: the
/// certificate corpus plus the HTTP(S) header corpuses (header corpuses
/// appear later in the study than certificates — HTTPS headers exist from
/// mid-2016 for Rapid7, and Censys data starts in late 2019).
class ScanSnapshot {
 public:
  ScanSnapshot(ScannerKind scanner, std::size_t snapshot, net::DayTime time,
               const http::HeaderCatalog& catalog)
      : scanner_(scanner), snapshot_(snapshot), time_(time),
        catalog_(&catalog) {}

  ScannerKind scanner() const { return scanner_; }
  std::size_t snapshot_index() const { return snapshot_; }
  net::DayTime time() const { return time_; }

  std::vector<CertScanRecord>& certs() { return certs_; }
  const std::vector<CertScanRecord>& certs() const { return certs_; }

  void set_header_availability(bool https, bool http) {
    has_https_headers_ = https;
    has_http_headers_ = http;
  }
  bool has_https_headers() const { return has_https_headers_; }
  bool has_http_headers() const { return has_http_headers_; }

  void add_https_headers(net::IPv4 ip, http::HeaderSetId id) {
    https_headers_.emplace(ip.value(), id);
  }
  void add_http_headers(net::IPv4 ip, http::HeaderSetId id) {
    http_headers_.emplace(ip.value(), id);
  }

  /// Headers captured on port 443 / port 80 for `ip`, or nullptr.
  const http::HeaderMap* https_headers(net::IPv4 ip) const;
  const http::HeaderMap* http_headers(net::IPv4 ip) const;

  /// Visits every (ip, header set) pair of one port's corpus in
  /// ascending IP order, so exports and reports built from the visit are
  /// deterministic regardless of the map's bucket layout.
  template <class Fn>
  void for_each_headers(bool https, Fn&& fn) const {
    const auto& corpus = https ? https_headers_ : http_headers_;
    std::vector<std::pair<std::uint32_t, http::HeaderSetId>> rows(
        corpus.begin(), corpus.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [ip, set] : rows) {
      fn(net::IPv4(ip), catalog_->get(set));
    }
  }

  std::size_t http_only_count() const;

  const http::HeaderCatalog& catalog() const { return *catalog_; }

 private:
  ScannerKind scanner_;
  std::size_t snapshot_;
  net::DayTime time_;
  const http::HeaderCatalog* catalog_;
  std::vector<CertScanRecord> certs_;
  bool has_https_headers_ = false;
  bool has_http_headers_ = false;
  std::unordered_map<std::uint32_t, http::HeaderSetId> https_headers_;
  std::unordered_map<std::uint32_t, http::HeaderSetId> http_headers_;
};

}  // namespace offnet::scan
