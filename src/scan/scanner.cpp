#include "scan/scanner.h"

#include "net/date.h"
#include "net/rng.h"

namespace offnet::scan {

namespace {

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x632be59bd9b4e019ull + (h << 6) + (h >> 2);
  h ^= c + 0xd6e8feb86659fd93ull + (h << 6) + (h >> 2);
  return h;
}

double unit(std::uint64_t h) {
  return static_cast<double>(h % 0xffffffu) / double(0xffffffu);
}

std::size_t snapshot_of(net::YearMonth ym) {
  return net::snapshot_index(ym).value_or(0);
}

}  // namespace

std::size_t first_https_header_snapshot() {
  return snapshot_of(net::YearMonth(2016, 7));
}

std::size_t first_censys_snapshot() {
  return snapshot_of(net::YearMonth(2019, 10));
}

std::size_t certigo_snapshot() {
  return snapshot_of(net::YearMonth(2019, 10));
}

Scanner::Scanner(const hg::FleetBuilder& fleet,
                 const BackgroundGenerator& background,
                 const topo::Topology& topology,
                 const http::HeaderCatalog& catalog, ArtifactsConfig config)
    : fleet_(fleet),
      background_(background),
      topology_(topology),
      catalog_(catalog),
      config_(std::move(config)) {
  google_idx_ = hg::profile_index(fleet_.profiles(), "Google");
}

bool Scanner::available(std::size_t snapshot, ScannerKind kind) const {
  switch (kind) {
    case ScannerKind::kRapid7: return true;
    case ScannerKind::kCensys: return snapshot >= first_censys_snapshot();
    case ScannerKind::kCertigo: return snapshot == certigo_snapshot();
  }
  return false;
}

bool Scanner::as_visible(net::Asn asn, std::size_t snapshot,
                         ScannerKind kind) const {
  // Scanner-exclusive visibility classes.
  int bucket = static_cast<int>(mix3(asn, 0xE1, 7) % 10000);
  int r7_edge = config_.rapid7_only_buckets;
  int cs_edge = r7_edge + config_.censys_only_buckets;
  int ac_edge = cs_edge + config_.certigo_only_buckets;
  if (bucket < r7_edge) return kind == ScannerKind::kRapid7;
  if (bucket < cs_edge) return kind == ScannerKind::kCensys;
  if (bucket < ac_edge) return kind == ScannerKind::kCertigo;

  // Blocklist-style exclusions growing over the study.
  double frac = static_cast<double>(snapshot) /
                std::max<double>(1.0, double(net::snapshot_count() - 1));
  double rate = 0.0;
  std::uint64_t stream = 0;
  switch (kind) {
    case ScannerKind::kRapid7:
      rate = config_.rapid7_as_exclusion_start +
             (config_.rapid7_as_exclusion_end -
              config_.rapid7_as_exclusion_start) * frac;
      stream = 0xE2;
      break;
    case ScannerKind::kCensys:
      rate = config_.censys_as_exclusion_start +
             (config_.censys_as_exclusion_end -
              config_.censys_as_exclusion_start) * frac;
      stream = 0xE3;
      break;
    case ScannerKind::kCertigo:
      return true;
  }
  // Opt-outs accumulate: an AS excluded at rate r is the set with
  // hash-value below r, so earlier exclusions stay excluded.
  return unit(mix3(asn, stream, 11)) >= rate;
}

bool Scanner::ip_kept(net::IPv4 ip, std::size_t snapshot,
                      ScannerKind kind) const {
  double loss = 0.0;
  switch (kind) {
    case ScannerKind::kRapid7: loss = config_.rapid7_ip_loss; break;
    case ScannerKind::kCensys: loss = config_.censys_ip_loss; break;
    case ScannerKind::kCertigo: loss = config_.certigo_ip_loss; break;
  }
  return unit(mix3(ip.value(), static_cast<std::uint64_t>(kind) + 0xF0,
                   snapshot)) >= loss;
}

ScanSnapshot Scanner::scan(std::size_t snapshot, ScannerKind kind) const {
  ScanSnapshot out(kind, snapshot, hg::FleetBuilder::scan_time(snapshot),
                   catalog_);
  bool https_headers =
      (kind == ScannerKind::kRapid7 &&
       snapshot >= first_https_header_snapshot()) ||
      (kind == ScannerKind::kCensys && snapshot >= first_censys_snapshot()) ||
      kind == ScannerKind::kCertigo;
  bool http_headers = kind != ScannerKind::kCensys ||
                      snapshot >= first_censys_snapshot();
  out.set_header_availability(https_headers, http_headers);

  // ---- Hypergiant-related servers ----
  for (const hg::ServerRecord& server : fleet_.snapshot_fleet(snapshot)) {
    const net::Asn asn = topology_.as(server.as).asn;
    // IPv6-only operators have no IPv4 presence for the scan to find.
    if (topology_.as(server.as).ipv6_only) continue;
    if (!as_visible(asn, snapshot, kind)) continue;

    // Google off-nets behind null default certificates: invisible to
    // default-cert scans, uncovered only by Censys.
    if (server.hg == google_idx_ &&
        server.role == hg::ServerRole::kOffNet &&
        unit(mix3(asn, 0xE7, 13)) < config_.google_null_cert_fraction &&
        kind != ScannerKind::kCensys) {
      continue;
    }

    if (!ip_kept(server.ip, snapshot, kind)) continue;

    if (server.https_enabled && server.https_cert != tls::kNoCert) {
      out.certs().push_back(CertScanRecord{server.ip, server.https_cert});
      if (server.https_headers != http::kNoHeaders &&
          unit(mix3(server.ip.value(), 0xF8, snapshot)) >=
              config_.https_header_loss) {
        out.add_https_headers(server.ip, server.https_headers);
      }
    }
    if (server.http_enabled && server.http_headers != http::kNoHeaders &&
        unit(mix3(server.ip.value(), 0xF9, snapshot)) >=
            config_.http_header_loss) {
      out.add_http_headers(server.ip, server.http_headers);
    }
  }

  // ---- Background Internet ----
  background_.for_each(snapshot, [&](const BgServer& server) {
    const net::Asn asn = topology_.as(server.as).asn;
    if (!as_visible(asn, snapshot, kind)) return;
    if (!ip_kept(server.ip, snapshot, kind)) return;
    out.certs().push_back(CertScanRecord{server.ip, server.cert});
  });

  return out;
}

}  // namespace offnet::scan
