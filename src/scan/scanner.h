#pragma once

#include <cstdint>
#include <optional>

#include "hypergiant/fleet.h"
#include "scan/background.h"
#include "scan/record.h"

namespace offnet::scan {

/// Per-scanner measurement artifacts (§5): blocklists that remove whole
/// ASes and grow over the years, per-IP rate-limit losses, scanner-
/// exclusive visibility, and Censys' better SNI handling.
struct ArtifactsConfig {
  std::uint64_t seed = 20210823;

  /// AS-level exclusion (opt-outs/complaints), interpolated over the
  /// study: {start fraction, end fraction}.
  double rapid7_as_exclusion_start = 0.005;
  double rapid7_as_exclusion_end = 0.020;
  double censys_as_exclusion_start = 0.004;
  double censys_as_exclusion_end = 0.015;

  /// Per-IP response loss (rate limiting; the certigo scan ran slowly
  /// over four days and lost almost nothing).
  double rapid7_ip_loss = 0.13;
  double censys_ip_loss = 0.155;
  double certigo_ip_loss = 0.02;

  /// Independent loss of the port-80 header measurement for an IP (the
  /// HTTP corpus never covers exactly the HTTPS corpus, which is why the
  /// paper's "certs & (HTTP and HTTPS)" line sits below the OR line).
  double http_header_loss = 0.10;
  double https_header_loss = 0.03;

  /// Scanner-exclusive AS visibility (per-10000 hash buckets), producing
  /// Table 2's "unique ASes" column.
  int rapid7_only_buckets = 14;
  int censys_only_buckets = 36;
  int certigo_only_buckets = 90;

  /// Fraction of Google off-net ASes serving a null default certificate
  /// that only Censys' SNI-aware scanning uncovers (§6.2: "using the
  /// Censys dataset we are able to identify more ASes").
  double google_null_cert_fraction = 0.05;
};

/// First snapshot with Rapid7 HTTPS header data (Summer 2016).
std::size_t first_https_header_snapshot();
/// First snapshot with any Censys data (late 2019).
std::size_t first_censys_snapshot();
/// The snapshot of the authors' one-off certigo active scan (Nov 2019).
std::size_t certigo_snapshot();

/// Produces one scanner's corpus for one snapshot from the HG fleet and
/// the background Internet, applying the scanner's artifacts.
class Scanner {
 public:
  Scanner(const hg::FleetBuilder& fleet, const BackgroundGenerator& background,
          const topo::Topology& topology, const http::HeaderCatalog& catalog,
          ArtifactsConfig config);

  /// Whether this scanner has data at this snapshot at all.
  bool available(std::size_t snapshot, ScannerKind kind) const;

  ScanSnapshot scan(std::size_t snapshot, ScannerKind kind) const;

 private:
  bool as_visible(net::Asn asn, std::size_t snapshot, ScannerKind kind) const;
  bool ip_kept(net::IPv4 ip, std::size_t snapshot, ScannerKind kind) const;

  const hg::FleetBuilder& fleet_;
  const BackgroundGenerator& background_;
  const topo::Topology& topology_;
  const http::HeaderCatalog& catalog_;
  ArtifactsConfig config_;
  int google_idx_ = -1;
};

}  // namespace offnet::scan
