#include "scan/sni.h"

#include <unordered_set>

namespace offnet::scan {

SniScanner::SniScanner(const hg::FleetBuilder& fleet,
                       const topo::Topology& topology,
                       ArtifactsConfig artifacts)
    : fleet_(fleet), topology_(topology), artifacts_(std::move(artifacts)) {}

std::vector<CertScanRecord> SniScanner::scan_sni(
    std::size_t snapshot, std::string_view hostname) const {
  std::vector<CertScanRecord> out;
  for (const hg::ServerRecord& server : fleet_.snapshot_fleet(snapshot)) {
    // SNI scans reach servers even when they present no default
    // certificate; only servers with TLS disabled entirely stay dark.
    if (!server.https_enabled) continue;
    tls::CertId cert = fleet_.sni_response(server, hostname, snapshot);
    if (cert != tls::kNoCert) {
      out.push_back(CertScanRecord{server.ip, cert});
    }
  }
  return out;
}

std::size_t SniScanner::augment(
    ScanSnapshot& snapshot, std::span<const std::string> hostnames) const {
  std::unordered_set<std::uint32_t> present;
  present.reserve(snapshot.certs().size() * 2);
  for (const CertScanRecord& rec : snapshot.certs()) {
    present.insert(rec.ip.value());
  }
  std::size_t added = 0;
  for (const std::string& hostname : hostnames) {
    for (const CertScanRecord& rec :
         scan_sni(snapshot.snapshot_index(), hostname)) {
      if (!present.insert(rec.ip.value()).second) continue;
      snapshot.certs().push_back(rec);
      ++added;
    }
  }
  return added;
}

std::vector<std::string> sni_probe_hostnames(
    std::span<const hg::HgProfile> profiles) {
  std::vector<std::string> out;
  for (const hg::HgProfile& p : profiles) {
    for (const std::string& domain : p.domains) {
      out.push_back("www." + domain);
    }
  }
  return out;
}

}  // namespace offnet::scan
