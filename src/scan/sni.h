#pragma once

#include <string>
#include <vector>

#include "hypergiant/fleet.h"
#include "scan/record.h"
#include "scan/scanner.h"

namespace offnet::scan {

/// §8 counter-countermeasure: a global TLS scan that includes a specific
/// SNI hostname in every ClientHello instead of relying on default
/// certificates. "These changes would make existing datasets less
/// suitable to our methodology, but they are surmountable at the cost of
/// increased measurement overhead with global scans for fully qualified
/// SNI domains."
class SniScanner {
 public:
  SniScanner(const hg::FleetBuilder& fleet, const topo::Topology& topology,
             ArtifactsConfig artifacts = {});

  /// Sends SNI `hostname` to every HG-related server; returns the
  /// certificates presented by servers that cover the name.
  std::vector<CertScanRecord> scan_sni(std::size_t snapshot,
                                       std::string_view hostname) const;

  /// Runs scan_sni for every hostname and appends the responses to an
  /// existing default-cert snapshot (IPs already present keep their
  /// default-cert record). Returns the number of records added.
  std::size_t augment(ScanSnapshot& snapshot,
                      std::span<const std::string> hostnames) const;

 private:
  const hg::FleetBuilder& fleet_;
  const topo::Topology& topology_;
  ArtifactsConfig artifacts_;
};

/// One probe hostname per domain of every examined HG ("www.<domain>"),
/// the natural input list for SNI sweeps.
std::vector<std::string> sni_probe_hostnames(
    std::span<const hg::HgProfile> profiles);

}  // namespace offnet::scan
