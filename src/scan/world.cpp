#include "scan/world.h"

namespace offnet::scan {

World::World(WorldConfig config) : config_(std::move(config)) {
  profiles_ = hg::standard_profiles();

  // Propagate the world-level knobs into the component configs.
  config_.topology.seed = config_.seed;
  config_.topology.scale = config_.topology_scale;
  config_.bgp.seed = config_.seed;
  config_.deployment.seed = config_.seed;
  config_.background.seed = config_.seed;
  config_.background.scale = config_.background_scale;
  config_.artifacts.seed = config_.seed;

  // Scale the deployment targets alongside a scaled topology so small
  // test worlds remain internally consistent.
  if (config_.topology_scale < 1.0) {
    for (hg::HgProfile& p : profiles_) {
      for (auto& [when, value] : p.offnet_ases) {
        value *= config_.topology_scale;
      }
      for (auto& [when, value] : p.certonly_ases) {
        value *= config_.topology_scale;
      }
      p.onnet_servers = std::max(
          8, static_cast<int>(p.onnet_servers * config_.topology_scale * 4));
      p.cert_count_start =
          std::max(1, static_cast<int>(p.cert_count_start *
                                       config_.topology_scale * 4));
      p.cert_count_end = std::max(
          2, static_cast<int>(p.cert_count_end * config_.topology_scale * 4));
    }
    for (auto& [when, value] : config_.deployment.pool_size) {
      value *= config_.topology_scale;
    }
  }

  config_.topology.org_seeds.clear();
  for (const hg::HgProfile& p : profiles_) {
    topo::OrgSeed seed;
    seed.org_name = p.org_name;
    seed.country_code = p.country_code;
    seed.as_count = p.own_as_count;
    seed.prefixes_per_as = p.onnet_prefixes_per_as;
    seed.prefix_length = 20;
    config_.topology.org_seeds.push_back(std::move(seed));
  }

  topology_ = std::make_unique<topo::Topology>(
      topo::TopologyGenerator(config_.topology).generate());
  population_ = std::make_unique<topo::PopulationView>(*topology_);
  ip2as_ = std::make_unique<bgp::Ip2AsSeries>(*topology_, config_.bgp);

  plan_ = std::make_unique<hg::DeploymentPlan>(
      hg::DeploymentPlanner(*topology_, profiles_, config_.deployment)
          .plan());
  fleet_ = std::make_unique<hg::FleetBuilder>(*topology_, profiles_, *plan_,
                                              certs_, roots_, catalog_,
                                              config_.seed,
                                              config_.countermeasures);
  background_ = std::make_unique<BackgroundGenerator>(
      *topology_, profiles_, certs_, roots_, config_.background);
  scanner_ = std::make_unique<Scanner>(*fleet_, *background_, *topology_,
                                       catalog_, config_.artifacts);
}

}  // namespace offnet::scan
