#pragma once

#include <memory>
#include <span>

#include "bgp/feed.h"
#include "http/catalog.h"
#include "hypergiant/deployment.h"
#include "hypergiant/fleet.h"
#include "hypergiant/profile.h"
#include "scan/background.h"
#include "scan/record.h"
#include "scan/scanner.h"
#include "tls/validator.h"
#include "topology/generator.h"
#include "topology/population.h"
#include "topology/topology.h"

namespace offnet::scan {

/// Everything needed to simulate the Internet of 2013-2021 as the paper's
/// datasets saw it, derived deterministically from one seed.
struct WorldConfig {
  std::uint64_t seed = 20210823;

  /// Uniform multiplier on AS counts; 1.0 reproduces the paper's scale
  /// (45k -> 71k ASes), small values make fast test worlds.
  double topology_scale = 1.0;

  /// Background IP scale relative to the paper's raw counts (AS-level
  /// quantities stay unscaled; see DESIGN.md §2).
  double background_scale = 0.01;

  topo::GeneratorConfig topology;   // org_seeds filled from the profiles
  bgp::FeedConfig bgp;
  hg::DeploymentConfig deployment;
  BackgroundConfig background;
  ArtifactsConfig artifacts;

  /// §8 "Hide-and-Seek" countermeasures applied by the HGs' off-nets
  /// (default: none — the world of the paper's study period).
  hg::Countermeasures countermeasures;
};

/// Owns the full simulation stack: topology, BGP-derived IP-to-AS series,
/// PKI, HG deployments and fleet, background Internet, and scanners. The
/// inference pipeline consumes only what the paper had: scan corpuses,
/// BGP-derived maps, the org database, and the root store.
class World {
 public:
  explicit World(WorldConfig config = {});

  const WorldConfig& config() const { return config_; }

  const topo::Topology& topology() const { return *topology_; }
  const topo::PopulationView& population() const { return *population_; }
  const bgp::Ip2AsSeries& ip2as() const { return *ip2as_; }
  const tls::CertificateStore& certs() const { return certs_; }
  const tls::RootStore& roots() const { return roots_; }
  const http::HeaderCatalog& catalog() const { return catalog_; }

  std::span<const hg::HgProfile> profiles() const { return profiles_; }
  const hg::DeploymentPlan& plan() const { return *plan_; }
  const hg::FleetBuilder& fleet() const { return *fleet_; }
  const BackgroundGenerator& background() const { return *background_; }

  bool scanner_available(std::size_t snapshot, ScannerKind kind) const {
    return scanner_->available(snapshot, kind);
  }
  ScanSnapshot scan(std::size_t snapshot, ScannerKind kind) const {
    return scanner_->scan(snapshot, kind);
  }

  /// Multiplier to convert simulated background IP counts back to the
  /// paper's raw scale for reporting.
  double report_scale() const { return 1.0 / config_.background_scale; }

 private:
  WorldConfig config_;
  std::vector<hg::HgProfile> profiles_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<topo::PopulationView> population_;
  std::unique_ptr<bgp::Ip2AsSeries> ip2as_;
  tls::CertificateStore certs_;
  tls::RootStore roots_;
  http::HeaderCatalog catalog_;
  std::unique_ptr<hg::DeploymentPlan> plan_;
  std::unique_ptr<hg::FleetBuilder> fleet_;
  std::unique_ptr<BackgroundGenerator> background_;
  std::unique_ptr<Scanner> scanner_;
};

}  // namespace offnet::scan
