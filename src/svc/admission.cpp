#include "svc/admission.h"

#include <utility>

namespace offnet::svc {

bool AdmissionQueue::try_push(Admitted& item) {
  core::MutexLock lock(mutex_);
  if (closed_ || items_.size() - head_ >= capacity_) return false;
  // Compact lazily so the vector never grows past capacity + drained
  // prefix; erase-from-front on every pop would be O(n) per item.
  if (head_ > 0 && head_ == items_.size()) {
    items_.clear();
    head_ = 0;
  }
  items_.push_back(std::move(item));
  ready_.notify_one();
  return true;
}

std::optional<Admitted> AdmissionQueue::pop() {
  core::MutexLock lock(mutex_);
  while (head_ == items_.size() && !closed_) {
    // Bounded wait: close() notifies, but a 100ms re-check costs nothing
    // and removes any lost-wakeup failure mode from the drain path.
    (void)ready_.wait_for_ms(lock, 100);
  }
  if (head_ == items_.size()) return std::nullopt;  // closed and empty
  Admitted out = std::move(items_[head_]);
  ++head_;
  if (head_ == items_.size()) {
    items_.clear();
    head_ = 0;
  }
  return out;
}

void AdmissionQueue::close() {
  core::MutexLock lock(mutex_);
  closed_ = true;
  ready_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  core::MutexLock lock(mutex_);
  return items_.size() - head_;
}

}  // namespace offnet::svc
