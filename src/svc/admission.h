#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "io/stream/ring.h"
#include "svc/socket.h"

namespace offnet::svc {

/// One accepted connection waiting for a worker, stamped with its accept
/// time so the dequeuing worker can shed it if it already waited past
/// the admission deadline (serving a request whose client gave up is
/// pure waste under overload).
struct Admitted {
  Fd fd;
  std::int64_t accept_ns = 0;  // obs::monotonic_nanoseconds() at accept
};

/// Bounded MPMC queue between the accept thread and the worker pool —
/// the single backpressure point of the service (DESIGN.md §11).
/// try_push never blocks: when the queue is full the accept thread sheds
/// the connection with a BUSY line instead of queueing unbounded work.
/// close() wakes every waiting worker; pop() then drains the remaining
/// entries (drain semantics: admitted work is finished, not dropped)
/// and returns nullopt once the queue is closed and empty.
///
/// A thin facade over io::stream::BoundedRing — the same ring the
/// streaming ingestion pipeline uses for batch hand-off (DESIGN.md §14),
/// so queue semantics are specified and tested once.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : ring_(capacity) {}
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// False when the queue is full or closed — `item` is untouched, so
  /// the caller still owns the fd and sheds it (writes BUSY, closes).
  bool try_push(Admitted& item) { return ring_.try_push(item); }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Each internal wait is bounded (no lost-wakeup hangs even under
  /// fault injection).
  std::optional<Admitted> pop() { return ring_.pop(); }

  /// Stops admission and wakes all waiters. Idempotent. Items already
  /// queued remain poppable.
  void close() { ring_.close(); }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }

 private:
  io::stream::BoundedRing<Admitted> ring_;
};

}  // namespace offnet::svc
