#include "svc/client.h"

#include "svc/protocol.h"

namespace offnet::svc {

Client::Client(const Endpoint& endpoint, int timeout_ms)
    : stream_(connect_endpoint(endpoint, timeout_ms)),
      timeout_ms_(timeout_ms) {}

std::optional<std::string> Client::request(std::string_view line) {
  std::string framed(line);
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  if (!send_raw(framed)) return std::nullopt;
  return read_line();
}

bool Client::send_raw(std::string_view bytes) {
  return stream_.write_all(bytes, timeout_ms_);
}

std::optional<std::string> Client::read_line() {
  std::string line;
  // Responses are single lines well under the request bound; reuse it.
  const Stream::ReadStatus status =
      stream_.read_line(line, timeout_ms_, kMaxRequestBytes);
  if (status != Stream::ReadStatus::kLine) return std::nullopt;
  return line;
}

}  // namespace offnet::svc
