#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "svc/socket.h"

namespace offnet::svc {

/// Line-protocol client for offnetd, used by `offnet_cli query`,
/// bench_offnetd, and the service tests. Keeping it here (with the rest
/// of the socket code) is what lets the raw-socket lint rule fence
/// sockets out of tools/ and bench/ entirely.
class Client {
 public:
  /// Connects; throws SocketError on failure.
  Client(const Endpoint& endpoint, int timeout_ms);

  /// Sends one request line (newline appended if missing) and reads one
  /// response line. nullopt when the server closed the connection or the
  /// exchange timed out.
  std::optional<std::string> request(std::string_view line);

  /// Sends raw bytes verbatim — for malformed-input tests that must not
  /// be sanitized by the client.
  bool send_raw(std::string_view bytes);

  /// Reads one response line on its own (paired with send_raw).
  std::optional<std::string> read_line();

  void close() { stream_.close(); }

 private:
  Stream stream_;
  int timeout_ms_;
};

}  // namespace offnet::svc
