#include "svc/protocol.h"

#include <cctype>
#include <cstdlib>

namespace offnet::svc {

namespace {

ParseResult reject(std::string reason) {
  ParseResult out;
  out.error = std::move(reason);
  return out;
}

/// Printable ASCII plus tab; everything else in a request is hostile or
/// damaged input and is rejected (not sanitized — the client should see
/// exactly why its bytes bounced).
bool acceptable_byte(unsigned char c) {
  return c == '\t' || (c >= 0x20 && c < 0x7f);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

ParseResult parse_request(std::string_view line) {
  // Tolerate CRLF clients.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > kMaxRequestBytes) {
    return reject("request exceeds " + std::to_string(kMaxRequestBytes) +
                  " bytes");
  }
  for (unsigned char c : line) {
    if (!acceptable_byte(c)) {
      return reject("request contains non-printable byte 0x" +
                    [](unsigned char b) {
                      const char* hex = "0123456789abcdef";
                      return std::string{hex[b >> 4], hex[b & 0xf]};
                    }(c));
    }
  }
  std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return reject("empty request");

  Request request;
  std::size_t first = 0;
  if (tokens[0].size() > 2 && tokens[0][0] == 'T' && tokens[0][1] == '=') {
    const std::string& digits = tokens[0];
    char* end = nullptr;
    const long long ms = std::strtoll(digits.c_str() + 2, &end, 10);
    if (end != digits.c_str() + digits.size() || ms <= 0 ||
        ms > kMaxDeadlineMs) {
      return reject("bad deadline token '" + digits + "' (want T=<1.." +
                    std::to_string(kMaxDeadlineMs) + "> ms)");
    }
    request.deadline_ms = ms;
    first = 1;
  }
  if (first >= tokens.size()) return reject("deadline token without a verb");

  request.verb = tokens[first];
  for (char& c : request.verb) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  request.args.assign(tokens.begin() + static_cast<long>(first) + 1,
                      tokens.end());
  ParseResult out;
  out.request = std::move(request);
  return out;
}

std::string ok_response(std::string_view body) {
  std::string out = "OK";
  if (!body.empty()) {
    out += ' ';
    out += body;
  }
  out += '\n';
  return out;
}

std::string err_response(std::string_view reason) {
  std::string out = "ERR ";
  out += reason.empty() ? std::string_view("unspecified") : reason;
  out += '\n';
  return out;
}

std::string busy_response(std::string_view reason) {
  std::string out = "BUSY ";
  out += reason.empty() ? std::string_view("overloaded") : reason;
  out += '\n';
  return out;
}

}  // namespace offnet::svc
