#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// The offnetd wire protocol (DESIGN.md §11): one request per line, one
/// response line per request, over a stream socket.
///
///   request  := [ "T=" <deadline-ms> " " ] <verb> { " " <arg> } "\n"
///   response := ( "OK" | "ERR" | "BUSY" ) [ " " <detail> ] "\n"
///
/// "OK" carries the answer, "ERR" a per-request failure (malformed
/// request, unknown verb/month/hypergiant, rejected reload — the
/// connection always survives an ERR), and "BUSY" an overload shed
/// (admission queue full, or the request's deadline expired before a
/// response could be produced — retry later, possibly elsewhere).
///
/// The parser is tolerant by contract: any byte sequence yields either a
/// Request or a reject reason; it never throws and never kills the
/// connection. Oversized lines are bounded by kMaxRequestBytes before
/// parsing (svc::Stream discards the excess).
namespace offnet::svc {

/// Longest accepted request line (bytes, excluding the newline). Bounds
/// per-connection buffering no matter what a client sends.
inline constexpr std::size_t kMaxRequestBytes = 4096;

/// Upper bound for the T= deadline token (one hour, in ms).
inline constexpr std::int64_t kMaxDeadlineMs = 3'600'000;

struct Request {
  std::string verb;               // upper-cased
  std::vector<std::string> args;  // verbatim tokens after the verb
  std::int64_t deadline_ms = -1;  // -1: use the server default
};

/// A parsed request or the reason it was rejected (exactly one is set).
struct ParseResult {
  std::optional<Request> request;
  std::string error;
};

ParseResult parse_request(std::string_view line);

// Response constructors — the only place response framing lives.
std::string ok_response(std::string_view body);
std::string err_response(std::string_view reason);
std::string busy_response(std::string_view reason);

}  // namespace offnet::svc
