#include "svc/server.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>

#include "core/fault.h"
#include "obs/stage_timer.h"

namespace offnet::svc {

namespace {

/// Accept/serve poll granularity: the upper bound on how stale the
/// draining_/hard_stop_ flags can look to any loop.
constexpr int kPollSliceMs = 50;

/// Latency histogram bounds, microseconds (sub-ms service times up to
/// second-scale reloads; the overflow bucket catches the rest).
std::vector<double> latency_bounds_us() {
  return {50,     100,    250,     500,     1'000,   2'500,  5'000,
          10'000, 25'000, 50'000,  100'000, 250'000, 1'000'000};
}

std::int64_t elapsed_ms_since(std::int64_t start_ns) {
  return (obs::monotonic_nanoseconds() - start_ns) / 1'000'000;
}

void sleep_ms(std::int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Server::Server(ServerOptions options,
               std::shared_ptr<const ServiceSnapshot> initial)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &own_metrics_) {
  if (initial == nullptr) {
    throw SnapshotValidationError("initial snapshot is null");
  }
  const std::string why = initial->validate();
  if (!why.empty()) {
    throw SnapshotValidationError("initial snapshot invalid: " + why);
  }
  store_.publish(std::move(initial));
}

Server::~Server() {
  request_drain();
  hard_stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::start() {
  // A peer that closes mid-reply must surface as a send error, never a
  // process-killing SIGPIPE. send() already passes MSG_NOSIGNAL where it
  // exists; ignoring the signal covers every other descriptor write.
  std::signal(SIGPIPE, SIG_IGN);
  listener_ = std::make_unique<Listener>(options_.endpoint);
  bound_ = listener_->endpoint();
  queue_ = std::make_unique<AdmissionQueue>(
      std::max<std::size_t>(1, options_.queue_capacity));
  const std::size_t n = std::max<std::size_t>(1, options_.n_workers);
  active_workers_.store(static_cast<int>(n), std::memory_order_relaxed);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

const Endpoint& Server::bound_endpoint() const {
  if (workers_.empty()) {
    throw SocketError("server not started");
  }
  return bound_;
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_relaxed);
}

bool Server::join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  obs::Stopwatch watch;
  while (active_workers_.load(std::memory_order_relaxed) > 0 &&
         static_cast<std::int64_t>(watch.seconds() * 1000.0) <
             options_.drain_deadline_ms) {
    sleep_ms(10);
  }
  const bool clean = active_workers_.load(std::memory_order_relaxed) == 0;
  if (!clean) hard_stop_.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  return clean;
}

void Server::accept_loop() {
  obs::Counter& accepted = metrics_->counter(metric_names::kConnections);
  obs::Counter& shed_busy = metrics_->counter(metric_names::kShedBusy);
  while (!draining_.load(std::memory_order_relaxed)) {
    // Exception-isolated per iteration: one failed accept (EMFILE, an
    // injected fault) is one lost connection, never a dead accept
    // thread — the server must keep admitting whatever still succeeds.
    try {
      int accept_error = 0;
      Fd conn = listener_->accept_with_timeout(kPollSliceMs, &accept_error);
      if (!conn.valid()) {
        if (accept_error != 0) {
          metrics_->counter(metric_names::kAcceptErrors).add();
        }
        continue;
      }
      accepted.add();
      Admitted admitted;
      admitted.fd = std::move(conn);
      admitted.accept_ns = obs::monotonic_nanoseconds();
      if (!queue_->try_push(admitted)) {
        // Overload shed: tell the client explicitly instead of letting
        // it time out against an unbounded backlog.
        shed_busy.add();
        Stream stream(std::move(admitted.fd));
        (void)stream.write_all(busy_response("queue-full"), kPollSliceMs);
      }
    } catch (const std::exception&) {
      metrics_->counter(metric_names::kAcceptErrors).add();
    }
  }
  // Stop admitting: workers drain what was already accepted.
  queue_->close();
  listener_.reset();
}

void Server::worker_loop() {
  while (auto admitted = queue_->pop()) {
    // Same isolation as the accept loop: an exception (injected fault,
    // handler bug) aborts one connection, not the worker — otherwise a
    // single bad request would shrink the pool until drain hangs.
    try {
      serve_connection(std::move(*admitted));
    } catch (const std::exception&) {
      metrics_->counter(metric_names::kConnectionsAborted).add();
    }
  }
  active_workers_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::serve_connection(Admitted admitted) {
  Stream stream(std::move(admitted.fd));
  obs::Counter& requests = metrics_->counter(metric_names::kRequests);
  obs::Counter& ok = metrics_->counter(metric_names::kResponsesOk);
  obs::Counter& err = metrics_->counter(metric_names::kResponsesErr);
  obs::Counter& malformed = metrics_->counter(metric_names::kMalformed);
  obs::Counter& shed_deadline =
      metrics_->counter(metric_names::kShedDeadline);
  obs::Histogram& latency =
      metrics_->histogram(metric_names::kLatencyUs, latency_bounds_us());
  const int write_timeout = static_cast<int>(options_.write_timeout_ms);

  // Admission deadline: a connection that already waited out the default
  // deadline in the queue is answered BUSY, not served late.
  if (elapsed_ms_since(admitted.accept_ns) > options_.default_deadline_ms) {
    shed_deadline.add();
    (void)stream.write_all(busy_response("admission-deadline"),
                           write_timeout);
    return;
  }

  std::int64_t idle_ms = 0;
  for (;;) {
    if (hard_stop_.load(std::memory_order_relaxed)) return;
    std::string line;
    const Stream::ReadStatus status =
        stream.read_line(line, kPollSliceMs, kMaxRequestBytes);
    if (status == Stream::ReadStatus::kTimeout) {
      if (draining_.load(std::memory_order_relaxed) &&
          !stream.has_buffered_line()) {
        // Drain: everything already received was served; close.
        return;
      }
      idle_ms += kPollSliceMs;
      if (idle_ms >= options_.idle_timeout_ms) return;
      continue;
    }
    if (status == Stream::ReadStatus::kEof ||
        status == Stream::ReadStatus::kError) {
      return;
    }
    idle_ms = 0;
    if (status == Stream::ReadStatus::kOverlong) {
      requests.add();
      malformed.add();
      err.add();
      if (!stream.write_all(
              err_response("request exceeds " +
                           std::to_string(kMaxRequestBytes) + " bytes"),
              write_timeout)) {
        return;
      }
      continue;
    }

    const std::int64_t start_ns = obs::monotonic_nanoseconds();
    requests.add();
    ParseResult parsed = parse_request(line);
    std::string response;
    bool close_connection = false;
    if (!parsed.request) {
      malformed.add();
      err.add();
      response = err_response(parsed.error);
    } else {
      response = handle(*parsed.request, close_connection);
      const std::int64_t deadline_ms = parsed.request->deadline_ms > 0
                                           ? parsed.request->deadline_ms
                                           : options_.default_deadline_ms;
      if (elapsed_ms_since(start_ns) > deadline_ms) {
        // The work missed its deadline; a late answer is worse than an
        // honest shed (the client has moved on).
        shed_deadline.add();
        response = busy_response("deadline " + std::to_string(deadline_ms) +
                                 "ms exceeded");
      } else if (response.rfind("OK", 0) == 0) {
        ok.add();
      } else {
        err.add();
      }
    }
    latency.observe(
        static_cast<double>(obs::monotonic_nanoseconds() - start_ns) / 1e3);
    if (!stream.write_all(response, write_timeout)) return;
    if (close_connection) return;
  }
}

std::string Server::handle(const Request& request, bool& close_connection) {
  const std::string& verb = request.verb;
  if (verb == "PING") return ok_response("pong");
  if (verb == "INFO") return do_info();
  if (verb == "MONTHS") return do_months();
  if (verb == "HGS") return do_hgs();
  if (verb == "FOOTPRINT") return do_footprint(request.args);
  if (verb == "COVERAGE") return do_coverage(request.args);
  if (verb == "COHOST") return do_cohost(request.args);
  if (verb == "STATS") return do_stats();
  if (verb == "RELOAD") return do_reload(request.args);
  if (verb == "SLEEP" && options_.enable_sleep) {
    return do_sleep(request.args);
  }
  if (verb == "QUIT") {
    close_connection = true;
    return ok_response("bye");
  }
  return err_response("unknown verb '" + verb + "'");
}

std::string Server::do_info() const {
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  return ok_response(
      "version=" + std::to_string(snapshot.version()) +
      " source=" + snapshot->source() +
      " months=" + std::to_string(snapshot->months().size()) +
      " usable=" + std::to_string(snapshot->usable_months()) +
      " hgs=" + std::to_string(snapshot->hypergiants().size()));
}

std::string Server::do_months() const {
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  std::string body;
  for (const ServiceSnapshot::Month& month : snapshot->months()) {
    if (!body.empty()) body += ' ';
    body += month.month.to_string() + ":" + month.health;
  }
  return ok_response(body);
}

std::string Server::do_hgs() const {
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  std::string body;
  for (const std::string& name : snapshot->hypergiants()) {
    if (!body.empty()) body += ' ';
    body += name;
  }
  return ok_response(body);
}

namespace {

/// Resolves a "YYYY-MM" arg to a month index, or reports why not.
bool resolve_month(const ServiceSnapshot& snapshot, const std::string& arg,
                   std::size_t& index, std::string& error) {
  std::optional<net::YearMonth> month = net::YearMonth::parse(arg);
  if (!month) {
    error = "malformed month '" + arg + "' (want YYYY-MM)";
    return false;
  }
  index = snapshot.month_index(*month);
  if (index == ServiceSnapshot::npos) {
    error = "month " + arg + " not in this snapshot";
    return false;
  }
  return true;
}

}  // namespace

std::string Server::do_footprint(
    const std::vector<std::string>& args) const {
  if (args.size() != 2) return err_response("usage: FOOTPRINT YYYY-MM HG");
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  std::size_t month = 0;
  std::string error;
  if (!resolve_month(*snapshot, args[0], month, error)) {
    return err_response(error);
  }
  const std::size_t hg = snapshot->hypergiant_index(args[1]);
  if (hg == ServiceSnapshot::npos) {
    return err_response("unknown hypergiant '" + args[1] + "'");
  }
  const ServiceSnapshot::Cell* cell = snapshot->cell(month, hg);
  if (cell == nullptr) {
    return err_response("month " + args[0] + " is " +
                        snapshot->months()[month].health + ", not usable");
  }
  return ok_response(
      "month=" + args[0] + " hg=" + args[1] +
      " onnet_ips=" + std::to_string(cell->onnet_ips) +
      " candidate_ips=" + std::to_string(cell->candidate_ips) +
      " confirmed_ips=" + std::to_string(cell->confirmed_ips) +
      " candidate_ases=" + std::to_string(cell->candidate_ases.size()) +
      " confirmed_ases=" + std::to_string(cell->confirmed_ases.size()));
}

std::string Server::do_coverage(
    const std::vector<std::string>& args) const {
  if (args.size() != 1) return err_response("usage: COVERAGE YYYY-MM");
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  std::size_t month = 0;
  std::string error;
  if (!resolve_month(*snapshot, args[0], month, error)) {
    return err_response(error);
  }
  const ServiceSnapshot::Month& data = snapshot->months()[month];
  if (!data.usable) {
    return err_response("month " + args[0] + " is " + data.health +
                        ", not usable");
  }
  std::set<std::uint32_t> union_ases;
  std::uint64_t confirmed_ips = 0;
  std::size_t hgs_with_footprint = 0;
  for (const ServiceSnapshot::Cell& cell : data.per_hg) {
    union_ases.insert(cell.confirmed_ases.begin(),
                      cell.confirmed_ases.end());
    confirmed_ips += cell.confirmed_ips;
    if (!cell.confirmed_ases.empty()) ++hgs_with_footprint;
  }
  return ok_response(
      "month=" + args[0] + " health=" + data.health +
      " hgs_with_footprint=" + std::to_string(hgs_with_footprint) +
      " confirmed_ases=" + std::to_string(union_ases.size()) +
      " confirmed_ips=" + std::to_string(confirmed_ips));
}

std::string Server::do_cohost(const std::vector<std::string>& args) const {
  if (args.size() != 2) return err_response("usage: COHOST YYYY-MM AS-ID");
  core::Pinned<ServiceSnapshot> snapshot = store_.pin();
  std::size_t month = 0;
  std::string error;
  if (!resolve_month(*snapshot, args[0], month, error)) {
    return err_response(error);
  }
  if (!snapshot->months()[month].usable) {
    return err_response("month " + args[0] + " is " +
                        snapshot->months()[month].health + ", not usable");
  }
  char* end = nullptr;
  const unsigned long as_id = std::strtoul(args[1].c_str(), &end, 10);
  if (end == args[1].c_str() || *end != '\0' || as_id > 0xffffffffUL) {
    return err_response("malformed AS id '" + args[1] + "'");
  }
  std::vector<std::string> hgs = snapshot->hypergiants_in_as(
      month, static_cast<std::uint32_t>(as_id));
  std::string body = "month=" + args[0] + " as=" + args[1] +
                     " count=" + std::to_string(hgs.size()) + " hgs=";
  if (hgs.empty()) {
    body += "-";
  } else {
    for (std::size_t i = 0; i < hgs.size(); ++i) {
      if (i > 0) body += ',';
      body += hgs[i];
    }
  }
  return ok_response(body);
}

std::string Server::do_stats() const {
  const obs::RegistrySnapshot stats = metrics_->snapshot();
  auto count = [&stats](const char* name) {
    auto it = stats.counters.find(name);
    return it == stats.counters.end() ? std::uint64_t{0} : it->second;
  };
  return ok_response(
      "version=" + std::to_string(store_.version()) +
      " requests=" + std::to_string(count(metric_names::kRequests)) +
      " ok=" + std::to_string(count(metric_names::kResponsesOk)) +
      " err=" + std::to_string(count(metric_names::kResponsesErr)) +
      " shed_busy=" + std::to_string(count(metric_names::kShedBusy)) +
      " shed_deadline=" +
      std::to_string(count(metric_names::kShedDeadline)) +
      " malformed=" + std::to_string(count(metric_names::kMalformed)) +
      " reloads=" + std::to_string(count(metric_names::kReloadAccepted)));
}

std::string Server::do_reload(const std::vector<std::string>& args) {
  if (args.size() != 1) return err_response("usage: RELOAD PATH");
  core::MutexLock lock(reload_mutex_);
  obs::Counter& accepted = metrics_->counter(metric_names::kReloadAccepted);
  obs::Counter& rejected = metrics_->counter(metric_names::kReloadRejected);
  try {
    obs::StageTimer timer(metrics_, metric_names::kTimerReload);
    // Fault boundary before anything is published: an injected fault
    // must leave the previous version serving untouched.
    if (options_.faults != nullptr) {
      options_.faults->on(core::fault_stage::kSvcReload);
    }
    std::shared_ptr<const ServiceSnapshot> next =
        load_snapshot(args[0], options_.n_threads);
    const std::string why = next->validate();
    if (!why.empty()) {
      rejected.add();
      return err_response("reload rejected: " + why);
    }
    const std::uint64_t version = store_.publish(std::move(next));
    accepted.add();
    return ok_response("version=" + std::to_string(version) +
                       " source=" + args[0]);
  } catch (const std::exception& e) {
    rejected.add();
    return err_response(std::string("reload rejected: ") + e.what());
  }
}

std::string Server::do_sleep(const std::vector<std::string>& args) {
  if (args.size() != 1) return err_response("usage: SLEEP MS");
  char* end = nullptr;
  const long long ms = std::strtoll(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0' || ms < 0 || ms > 60'000) {
    return err_response("malformed sleep duration '" + args[0] + "'");
  }
  // Sliced so hard_stop_ still bounds a worker stuck in test sleeps.
  const std::int64_t start_ns = obs::monotonic_nanoseconds();
  while (elapsed_ms_since(start_ns) < ms) {
    if (hard_stop_.load(std::memory_order_relaxed)) break;
    sleep_ms(std::min<std::int64_t>(5, ms));
  }
  return ok_response("slept=" + args[0]);
}

}  // namespace offnet::svc
