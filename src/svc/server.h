#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "svc/admission.h"
#include "svc/protocol.h"
#include "svc/service_snapshot.h"
#include "svc/snapshot_store.h"
#include "svc/socket.h"

namespace offnet::core {
class FaultInjector;
}  // namespace offnet::core

namespace offnet::svc {

/// svc:: metric names, mirroring core::metric_names so instrumentation,
/// tests, and bench_offnetd agree on spelling.
namespace metric_names {
inline constexpr const char* kRequests = "svc/requests";
inline constexpr const char* kResponsesOk = "svc/responses/ok";
inline constexpr const char* kResponsesErr = "svc/responses/err";
inline constexpr const char* kShedBusy = "svc/shed/busy";
inline constexpr const char* kShedDeadline = "svc/shed/deadline";
inline constexpr const char* kMalformed = "svc/requests/malformed";
inline constexpr const char* kConnections = "svc/connections/accepted";
/// Hard accept failures (EMFILE and friends, real or injected): the
/// accept thread counts them and keeps accepting.
inline constexpr const char* kAcceptErrors = "svc/accept/errors";
/// Connections whose worker died on an exception (injected faults,
/// unexpected handler errors): the worker counts them and keeps serving.
inline constexpr const char* kConnectionsAborted = "svc/connections/aborted";
inline constexpr const char* kReloadAccepted = "svc/reload/accepted";
inline constexpr const char* kReloadRejected = "svc/reload/rejected";
inline constexpr const char* kLatencyUs = "svc/latency_us";
inline constexpr const char* kTimerReload = "svc/reload";  // StageTimer
}  // namespace metric_names

struct ServerOptions {
  Endpoint endpoint;  // TCP port 0 binds ephemeral; see bound_endpoint()

  std::size_t n_workers = 4;
  std::size_t queue_capacity = 64;

  /// Server-side deadline applied to requests without a T= token, and to
  /// the time a connection may wait in the admission queue. Expired work
  /// is shed with BUSY, never silently dropped.
  std::int64_t default_deadline_ms = 1000;

  /// How long join() waits for workers to finish in-flight work after
  /// request_drain() before forcing them to stop.
  std::int64_t drain_deadline_ms = 5000;

  /// Per-connection idle limit: a connection with no complete request
  /// for this long is closed (a stalled peer must not pin a worker).
  std::int64_t idle_timeout_ms = 30'000;

  /// Bound on writing one response to a non-reading peer.
  std::int64_t write_timeout_ms = 5'000;

  /// Admit the SLEEP test verb (deterministic overload/deadline tests
  /// only — never in production service).
  bool enable_sleep = false;

  /// Worker threads for RELOAD's pipeline run over an export root.
  std::size_t n_threads = 1;

  /// Optional fault plan; crossed at the svc-reload stage boundary.
  core::FaultInjector* faults = nullptr;

  /// Metrics sink. When null the server keeps a private registry (STATS
  /// still answers).
  obs::Registry* metrics = nullptr;
};

/// The offnetd request service (DESIGN.md §11): one accept thread feeding
/// a bounded AdmissionQueue drained by a worker pool, all queries served
/// from a pinned SnapshotStore version.
///
/// Fault-containment properties, each covered by svc_test:
///  - overload: a full admission queue sheds new connections with
///    `BUSY queue-full` in the accept thread; nothing blocks, nothing
///    queues unbounded.
///  - deadlines: every request has one (T= token or the server default);
///    work that misses it answers `BUSY deadline ...` instead of
///    delivering a late response.
///  - malformed input: any byte sequence gets a single-line ERR and the
///    connection keeps serving.
///  - reload: validate-before-swap; a rejected reload leaves the prior
///    version serving and is reported in the ERR line.
///  - drain: request_drain() stops admission; join() lets in-flight and
///    already-buffered requests finish within drain_deadline_ms, then
///    forces the rest. Clean drains return true and lose no admitted
///    response.
class Server {
 public:
  /// Validates and adopts the initial snapshot (version 1). Throws
  /// SnapshotValidationError when `initial` fails validation — a server
  /// must never start over unserviceable data.
  Server(ServerOptions options,
         std::shared_ptr<const ServiceSnapshot> initial);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the endpoint and starts the accept thread and workers.
  /// Throws SocketError when the endpoint cannot be bound.
  void start();

  /// The actual listening endpoint (ephemeral TCP port resolved).
  const Endpoint& bound_endpoint() const;

  /// Begins graceful drain: stop accepting, close the admission queue.
  /// Idempotent; safe from any thread (offnetd calls it after observing
  /// SIGTERM/SIGINT from its main loop).
  void request_drain();

  /// Waits for the drain to complete. True when every worker finished
  /// within drain_deadline_ms; false when stragglers had to be forced.
  bool join();

  /// Current published snapshot version (1-based).
  std::uint64_t version() const { return store_.version(); }

  const ServerOptions& options() const { return options_; }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(Admitted admitted);

  /// Executes one parsed request; returns the full response line.
  /// `close_connection` is set for QUIT and fatal transport states.
  std::string handle(const Request& request, bool& close_connection);

  std::string do_info() const;
  std::string do_months() const;
  std::string do_hgs() const;
  std::string do_footprint(const std::vector<std::string>& args) const;
  std::string do_coverage(const std::vector<std::string>& args) const;
  std::string do_cohost(const std::vector<std::string>& args) const;
  std::string do_stats() const;
  std::string do_reload(const std::vector<std::string>& args);
  std::string do_sleep(const std::vector<std::string>& args);

  ServerOptions options_;
  SnapshotStore store_;
  obs::Registry own_metrics_;   // used when options_.metrics is null
  obs::Registry* metrics_;      // never null after construction

  std::unique_ptr<Listener> listener_;
  Endpoint bound_;  // copy of listener_->endpoint(); survives drain
  std::unique_ptr<AdmissionQueue> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> hard_stop_{false};
  std::atomic<int> active_workers_{0};

  // Serializes RELOAD: the lock orders whole load-and-swap transactions
  // (the expensive dataset load must not run twice concurrently); the
  // swapped pointer itself is published via World's own synchronization,
  // so there is no member field for OFFNET_GUARDED_BY to name.
  // offnet-analyze: allow(mutex-unguarded): orders reload transactions; the swapped state is World's, not a member
  core::Mutex reload_mutex_;
};

}  // namespace offnet::svc
