#include "svc/service_snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/checkpoint.h"
#include "core/longitudinal.h"
#include "io/loaders.h"

namespace offnet::svc {

namespace {

std::vector<std::uint32_t> as_ids(const std::vector<topo::AsId>& in) {
  return std::vector<std::uint32_t>(in.begin(), in.end());
}

}  // namespace

std::shared_ptr<const ServiceSnapshot> ServiceSnapshot::from_results(
    std::string source, const std::vector<core::SnapshotResult>& results) {
  auto snapshot = std::make_shared<ServiceSnapshot>();
  snapshot->source_ = std::move(source);
  const std::vector<net::YearMonth> calendar = net::study_snapshots();
  for (const core::SnapshotResult& result : results) {
    Month month;
    if (result.snapshot < calendar.size()) {
      month.month = calendar[result.snapshot];
    }
    month.health = core::to_string(result.health);
    month.usable = result.usable();
    if (month.usable) {
      if (snapshot->hypergiants_.empty()) {
        for (const core::HgFootprint& fp : result.per_hg) {
          snapshot->hypergiants_.push_back(fp.name);
        }
      }
      month.per_hg.reserve(result.per_hg.size());
      for (const core::HgFootprint& fp : result.per_hg) {
        Cell cell;
        cell.onnet_ips = fp.onnet_ips;
        cell.candidate_ips = fp.candidate_ips;
        cell.confirmed_ips = fp.confirmed_ips;
        cell.candidate_ases = as_ids(fp.candidate_ases);
        cell.confirmed_ases = as_ids(fp.confirmed_ases());
        month.per_hg.push_back(std::move(cell));
      }
    }
    snapshot->months_.push_back(std::move(month));
  }
  return snapshot;
}

std::string ServiceSnapshot::validate() const {
  if (months_.empty()) return "snapshot has no months";
  if (usable_months() == 0) return "snapshot has no usable months";
  if (hypergiants_.empty()) return "snapshot has no hypergiants";
  for (std::size_t h = 0; h < hypergiants_.size(); ++h) {
    const std::string& name = hypergiants_[h];
    if (name.empty()) return "hypergiant " + std::to_string(h) + " unnamed";
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      // Names are wire-protocol tokens; whitespace would break framing.
      return "hypergiant name contains whitespace: '" + name + "'";
    }
    for (std::size_t j = h + 1; j < hypergiants_.size(); ++j) {
      if (hypergiants_[j] == name) {
        return "duplicate hypergiant name: '" + name + "'";
      }
    }
  }
  for (const Month& month : months_) {
    const std::string label = month.month.to_string();
    if (!month.usable) {
      if (!month.per_hg.empty()) {
        return label + ": unusable month carries footprint cells";
      }
      continue;
    }
    if (month.per_hg.size() != hypergiants_.size()) {
      return label + ": " + std::to_string(month.per_hg.size()) +
             " cells for " + std::to_string(hypergiants_.size()) +
             " hypergiants";
    }
    for (std::size_t h = 0; h < month.per_hg.size(); ++h) {
      const Cell& cell = month.per_hg[h];
      for (const std::vector<std::uint32_t>* list :
           {&cell.candidate_ases, &cell.confirmed_ases}) {
        auto bad = std::adjacent_find(
            list->begin(), list->end(),
            [](std::uint32_t a, std::uint32_t b) { return a >= b; });
        if (bad != list->end()) {
          return label + "/" + hypergiants_[h] +
                 ": AS list not sorted-unique";
        }
      }
      if (cell.confirmed_ips > cell.candidate_ips) {
        return label + "/" + hypergiants_[h] +
               ": confirmed IPs exceed candidates";
      }
    }
  }
  return "";
}

std::size_t ServiceSnapshot::usable_months() const {
  return static_cast<std::size_t>(
      std::count_if(months_.begin(), months_.end(),
                    [](const Month& m) { return m.usable; }));
}

std::size_t ServiceSnapshot::hypergiant_index(std::string_view name) const {
  for (std::size_t h = 0; h < hypergiants_.size(); ++h) {
    if (hypergiants_[h] == name) return h;
  }
  return npos;
}

std::size_t ServiceSnapshot::month_index(net::YearMonth month) const {
  for (std::size_t t = 0; t < months_.size(); ++t) {
    if (months_[t].month == month) return t;
  }
  return npos;
}

const ServiceSnapshot::Cell* ServiceSnapshot::cell(
    std::size_t month, std::size_t hypergiant) const {
  if (month >= months_.size()) return nullptr;
  const Month& m = months_[month];
  if (!m.usable || hypergiant >= m.per_hg.size()) return nullptr;
  return &m.per_hg[hypergiant];
}

std::vector<std::string> ServiceSnapshot::hypergiants_in_as(
    std::size_t month, std::uint32_t as_id) const {
  std::vector<std::string> out;
  if (month >= months_.size() || !months_[month].usable) return out;
  const Month& m = months_[month];
  for (std::size_t h = 0; h < m.per_hg.size(); ++h) {
    const std::vector<std::uint32_t>& ases = m.per_hg[h].confirmed_ases;
    if (std::binary_search(ases.begin(), ases.end(), as_id)) {
      out.push_back(hypergiants_[h]);
    }
  }
  return out;
}

std::shared_ptr<const ServiceSnapshot> load_snapshot_from_checkpoint(
    const std::string& path) {
  // Empty digest: integrity checks only (read-only consumer contract,
  // core/checkpoint.h).
  core::RunState state = core::Checkpoint::load(path, "");
  return ServiceSnapshot::from_results(path, state.results);
}

std::shared_ptr<const ServiceSnapshot> load_snapshot_from_export_root(
    const std::string& root, std::size_t n_threads) {
  io::ReadOptions read_options;
  read_options.mode = io::ReadMode::kPermissive;
  const std::vector<net::YearMonth> months = net::study_snapshots();

  auto feed = [&](std::size_t t) {
    core::SnapshotFeed input;
    const std::string dir = root + "/" + months[t].to_string();
    std::ifstream probe(dir + "/relationships.txt");
    if (!probe) return input;  // kMissing
    auto open = [&dir](const char* name) {
      std::ifstream in(dir + "/" + name);
      if (!in) throw io::LoadError(std::string("cannot read ") + name);
      return in;
    };
    try {
      std::ifstream rel = open("relationships.txt");
      std::ifstream org = open("organizations.txt");
      std::ifstream pfx = open("prefix2as.txt");
      std::ifstream certs = open("certificates.tsv");
      std::ifstream hosts = open("hosts.tsv");
      io::Dataset dataset =
          io::load_dataset(rel, org, pfx, certs, hosts, months[t],
                           read_options, &input.report);
      std::ifstream headers(dir + "/headers.tsv");
      if (headers) dataset.add_headers(headers, read_options, &input.report);
      input.dataset.emplace(std::move(dataset));
    } catch (const std::exception&) {
      input.dataset.reset();
      input.corrupt = true;
    }
    return input;
  };

  core::PipelineOptions pipeline_options;
  pipeline_options.n_threads = n_threads;
  core::LongitudinalRunner runner{pipeline_options};
  std::vector<core::SnapshotResult> results =
      runner.run_loaded(feed, 0, months.size() - 1);
  return ServiceSnapshot::from_results(root, results);
}

std::shared_ptr<const ServiceSnapshot> load_snapshot(const std::string& path,
                                                     std::size_t n_threads) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    return load_snapshot_from_export_root(path, n_threads);
  }
  if (fs::is_regular_file(path, ec)) {
    return load_snapshot_from_checkpoint(path);
  }
  throw std::runtime_error("snapshot source is neither an export root nor a "
                           "checkpoint file: " + path);
}

}  // namespace offnet::svc
