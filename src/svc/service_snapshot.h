#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "net/date.h"

/// The immutable, query-oriented digest of a longitudinal run that
/// offnetd serves (DESIGN.md §11). Built once per (re)load from a
/// std::vector<core::SnapshotResult> — a PR-5 checkpoint or a fresh run
/// over an export root — then published whole through svc::SnapshotStore
/// and never mutated: every query answers from one internally consistent
/// version even while a reload publishes the next.
namespace offnet::svc {

/// What a (source, results) pair failed structural validation on.
class SnapshotValidationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ServiceSnapshot {
 public:
  /// One hypergiant's footprint in one study month. AS identifiers are
  /// the run's topo::AsId indices (the paper's simulated AS space); they
  /// are stable within one snapshot version and comparable across months
  /// of the same run.
  struct Cell {
    std::uint64_t onnet_ips = 0;
    std::uint64_t candidate_ips = 0;
    std::uint64_t confirmed_ips = 0;
    std::vector<std::uint32_t> candidate_ases;  // sorted, unique
    std::vector<std::uint32_t> confirmed_ases;  // sorted, unique
  };

  struct Month {
    net::YearMonth month{2013, 10};
    std::string health;   // core::to_string(SnapshotHealth)
    bool usable = false;  // per_hg holds real data
    std::vector<Cell> per_hg;  // parallel to hypergiants(); empty if !usable
  };

  /// Builds the digest from pipeline results. `source` is a label for
  /// INFO responses (a path, or "simulated"). Does not validate — call
  /// validate() before publishing.
  static std::shared_ptr<const ServiceSnapshot> from_results(
      std::string source, const std::vector<core::SnapshotResult>& results);

  /// Structural validation, run before a snapshot may be published
  /// (validate-before-swap): non-empty month list, at least one usable
  /// month, unique single-token hypergiant names, per-month cell vectors
  /// parallel to the hypergiant list, AS lists sorted and unique.
  /// Returns the empty string when valid, else the first violation.
  std::string validate() const;

  const std::string& source() const { return source_; }
  const std::vector<std::string>& hypergiants() const { return hypergiants_; }
  const std::vector<Month>& months() const { return months_; }
  std::size_t usable_months() const;

  /// Index lookups; npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t hypergiant_index(std::string_view name) const;
  std::size_t month_index(net::YearMonth month) const;

  /// The cell for (month, hypergiant), or nullptr when the month is not
  /// usable.
  const Cell* cell(std::size_t month, std::size_t hypergiant) const;

  /// Hypergiants with a confirmed off-net footprint in `as_id` during
  /// `month` (the co-hosting query).
  std::vector<std::string> hypergiants_in_as(std::size_t month,
                                             std::uint32_t as_id) const;

 private:
  std::string source_;
  std::vector<std::string> hypergiants_;
  std::vector<Month> months_;
};

/// Loads a ServiceSnapshot from a PR-5 checkpoint file. Integrity
/// (magic, length, checksum) is fully verified; the run-configuration
/// digest is not compared — serving is read-only. Throws
/// core::CheckpointError / io::IoError on damage.
std::shared_ptr<const ServiceSnapshot> load_snapshot_from_checkpoint(
    const std::string& path);

/// Loads a ServiceSnapshot by running the longitudinal pipeline over an
/// export root (DIR/<YYYY-MM>/ with the `offnet_cli analyze` file
/// layout), in permissive mode. Throws io::LoadError and friends when
/// nothing usable can be built.
std::shared_ptr<const ServiceSnapshot> load_snapshot_from_export_root(
    const std::string& root, std::size_t n_threads);

/// Dispatch: a directory is an export root, a file is a checkpoint.
/// Throws std::runtime_error when `path` is neither.
std::shared_ptr<const ServiceSnapshot> load_snapshot(const std::string& path,
                                                     std::size_t n_threads);

}  // namespace offnet::svc
