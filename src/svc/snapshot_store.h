#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "core/mutex.h"
#include "core/pinned.h"
#include "core/thread_annotations.h"

namespace offnet::svc {

/// RCU-style versioned publication cell — the generalization of the
/// bgp::PinnedIp2As pinning idiom (DESIGN.md §11). Readers pin() the
/// current object and keep using it lock-free for the whole query, even
/// while a publisher swaps in a newer version: publish() replaces the
/// current pointer under a short mutex and bumps the version, and the
/// old object stays alive until its last pin dies. There is no deferred
/// reclamation machinery — shared_ptr *is* the grace period.
///
/// Publication discipline (enforced by callers, see Server::do_reload):
/// validate the candidate object *before* publish(), so a corrupt or
/// inconsistent reload is rejected while the previous version keeps
/// serving. publish() itself never fails.
template <class T>
class VersionedStore {
 public:
  VersionedStore() = default;
  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// The current object and its version. Empty (version 0) until the
  /// first publish.
  core::Pinned<T> pin() const OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return core::Pinned<T>(current_, version_);
  }

  /// Atomically replaces the current object; returns the new version
  /// (1-based, monotonically increasing). In-flight readers keep the
  /// version they pinned.
  std::uint64_t publish(std::shared_ptr<const T> next)
      OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    current_ = std::move(next);
    return ++version_;
  }

  std::uint64_t version() const OFFNET_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return version_;
  }

 private:
  mutable core::Mutex mutex_;
  std::shared_ptr<const T> current_ OFFNET_GUARDED_BY(mutex_);
  std::uint64_t version_ OFFNET_GUARDED_BY(mutex_) = 0;
};

class ServiceSnapshot;

/// The store offnetd serves from: one immutable ServiceSnapshot at a
/// time, swapped whole on reload.
using SnapshotStore = VersionedStore<ServiceSnapshot>;

}  // namespace offnet::svc
