#include "svc/socket.h"

#include "core/fault.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace offnet::svc {

namespace {

[[noreturn]] void fail(const std::string& step, const std::string& where) {
  throw SocketError(step + " " + where + ": " + std::strerror(errno));
}

/// poll() one fd for `events`; true when ready. EINTR counts against the
/// timeout conservatively (restarts the full wait — callers' timeouts
/// are coarse bounds, not precise budgets).
bool poll_one(int fd, short events, int timeout_ms) {
  for (;;) {
    struct pollfd p {};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0 && (p.revents & (events | POLLHUP | POLLERR)) != 0;
  }
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Endpoint Endpoint::unix_socket(std::string path) {
  Endpoint out;
  out.unix_path = std::move(path);
  return out;
}

Endpoint Endpoint::tcp_loopback(std::uint16_t port) {
  Endpoint out;
  out.tcp_port = port;
  return out;
}

std::string Endpoint::to_string() const {
  if (is_unix()) return "unix:" + unix_path;
  return "tcp:127.0.0.1:" + std::to_string(tcp_port);
}

namespace {

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_address(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Listener::Listener(const Endpoint& endpoint, int backlog)
    : endpoint_(endpoint) {
  const int family = endpoint.is_unix() ? AF_UNIX : AF_INET;
  fd_ = Fd(::socket(family, SOCK_STREAM, 0));
  if (!fd_.valid()) fail("socket", endpoint.to_string());
  if (endpoint.is_unix()) {
    // Replace a leftover socket file from a dead process; a live one
    // surfaces as the bind error it deserves... except bind() succeeds
    // after unlink even with a live listener. Accepted: offnetd
    // deployments own their socket path (documented in README).
    ::unlink(endpoint.unix_path.c_str());
    sockaddr_un addr = unix_address(endpoint.unix_path);
    if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail("bind", endpoint.to_string());
    }
  } else {
    const int one = 1;
    (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr = loopback_address(endpoint.tcp_port);
    if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail("bind", endpoint.to_string());
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0) {
      fail("getsockname", endpoint.to_string());
    }
    endpoint_.tcp_port = ntohs(addr.sin_port);
  }
  if (::listen(fd_.get(), backlog) != 0) {
    fail("listen", endpoint.to_string());
  }
}

Listener::~Listener() {
  fd_.reset();
  if (endpoint_.is_unix()) ::unlink(endpoint_.unix_path.c_str());
}

Fd Listener::accept_with_timeout(int timeout_ms, int* error) {
  if (error != nullptr) *error = 0;
  if (!poll_one(fd_.get(), POLLIN, timeout_ms)) return Fd();
  for (;;) {
    // Syscall fault seam between poll and accept: the injectable window
    // where the kernel says "readable" but accept still fails (EMFILE).
    const core::SysResult fault =
        core::sys_fault(core::fault_stage::kSvcAccept);
    if (!fault.ok()) {
      if (fault.error == EINTR) continue;
      if (error != nullptr) *error = fault.error;
      return Fd();
    }
    const int conn = ::accept(fd_.get(), nullptr, nullptr);
    if (conn >= 0) return Fd(conn);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK && error != nullptr) {
      *error = errno;
    }
    return Fd();
  }
}

Fd connect_endpoint(const Endpoint& endpoint, int timeout_ms) {
  const int family = endpoint.is_unix() ? AF_UNIX : AF_INET;
  Fd fd(::socket(family, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket", endpoint.to_string());
  int rc;
  if (endpoint.is_unix()) {
    sockaddr_un addr = unix_address(endpoint.unix_path);
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    sockaddr_in addr = loopback_address(endpoint.tcp_port);
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) fail("connect", endpoint.to_string());
  (void)timeout_ms;  // blocking connect to loopback/unix resolves locally
  return fd;
}

Stream::ReadStatus Stream::read_line(std::string& line, int timeout_ms,
                                     std::size_t max_line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (discarding_) {
        // Tail of an overlong line — drop it and resume normal framing.
        buffer_.erase(0, newline + 1);
        discarding_ = false;
        continue;
      }
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (discarding_) {
      buffer_.clear();
    } else if (buffer_.size() > max_line) {
      buffer_.clear();
      discarding_ = true;
      return ReadStatus::kOverlong;
    }
    if (!poll_one(fd_.get(), POLLIN, timeout_ms)) {
      return ReadStatus::kTimeout;
    }
    // Syscall fault seam before each recv: injected EINTR retries like
    // the real signal interruption below; any other errno is a dead
    // connection, reported exactly as a genuine recv failure.
    const core::SysResult fault = core::sys_fault(core::fault_stage::kSvcRead);
    if (!fault.ok()) {
      if (fault.error == EINTR) continue;
      return ReadStatus::kError;
    }
    char chunk[1024];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ReadStatus::kError;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Stream::has_buffered_line() const {
  return !discarding_ && buffer_.find('\n') != std::string::npos;
}

bool Stream::write_all(std::string_view bytes, int timeout_ms) {
  while (!bytes.empty()) {
    if (!poll_one(fd_.get(), POLLOUT, timeout_ms)) return false;
    // Syscall fault seam before each send; mirrors the svc-read seam.
    const core::SysResult fault =
        core::sys_fault(core::fault_stage::kSvcWrite);
    if (!fault.ok()) {
      if (fault.error == EINTR) continue;
      return false;
    }
#ifdef MSG_NOSIGNAL
    const int flags = MSG_NOSIGNAL;
#else
    const int flags = 0;
#endif
    const ssize_t n = ::send(fd_.get(), bytes.data(), bytes.size(), flags);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace offnet::svc
