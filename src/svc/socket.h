#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

/// Minimal POSIX stream-socket layer for offnetd and its clients. This
/// is the one directory allowed to touch socket()/bind()/accept()/
/// send()/recv() — the raw-socket lint rule fences everything else off
/// (DESIGN.md §8) so timeout handling, partial-write loops, and EINTR
/// retries live in exactly one place.
///
/// All blocking operations are poll-guarded with millisecond timeouts:
/// nothing here can hang a worker forever on a stalled peer.
namespace offnet::svc {

/// Setup-time socket failures (bad path, bind/listen/connect errors).
/// Distinct from std::runtime_error so CLIs can map it to the I/O exit
/// code (74).
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release();

 private:
  int fd_ = -1;
};

/// Where a server listens or a client connects: a Unix-domain socket
/// path, or a loopback TCP port (never a routable address — offnetd is
/// a local service; fronting it publicly is a proxy's job).
struct Endpoint {
  std::string unix_path;        // non-empty selects AF_UNIX
  std::uint16_t tcp_port = 0;   // with empty unix_path: 127.0.0.1:port

  static Endpoint unix_socket(std::string path);
  static Endpoint tcp_loopback(std::uint16_t port);
  bool is_unix() const { return !unix_path.empty(); }
  std::string to_string() const;  // "unix:<path>" or "tcp:127.0.0.1:<port>"
};

/// A bound, listening socket. The Unix path is unlinked on destruction.
class Listener {
 public:
  /// Binds and listens; throws SocketError with the failing step and
  /// errno text. A leftover Unix socket file from a dead process is
  /// replaced. TCP port 0 binds an ephemeral port; see endpoint().
  explicit Listener(const Endpoint& endpoint, int backlog = 128);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// One accepted connection, or an invalid Fd after `timeout_ms` with
  /// nothing to accept. EINTR (real or injected) is retried; a peer that
  /// vanished between poll and accept reports as a timeout. A hard
  /// accept failure (e.g. EMFILE — the fd table is full) also returns an
  /// invalid Fd, with the errno stored in `*error` when `error` is
  /// non-null, so the accept loop can count it instead of mistaking it
  /// for an idle timeout. Crosses the svc-accept fault seam.
  Fd accept_with_timeout(int timeout_ms, int* error = nullptr);

  /// The bound endpoint, with any ephemeral TCP port resolved.
  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Fd fd_;
  Endpoint endpoint_;
};

/// Connects to `endpoint`; throws SocketError on failure (including
/// connect timeout).
Fd connect_endpoint(const Endpoint& endpoint, int timeout_ms);

/// Buffered line I/O over one connected socket.
class Stream {
 public:
  explicit Stream(Fd fd) : fd_(std::move(fd)) {}

  enum class ReadStatus {
    kLine,      // `line` holds a complete line (newline stripped)
    kTimeout,   // nothing to read within timeout_ms
    kEof,       // peer closed cleanly
    kError,     // read failed; connection is dead
    kOverlong,  // line exceeded max_line; its bytes are being discarded
  };

  /// Reads one '\n'-terminated line. Returns immediately when a complete
  /// line is already buffered; otherwise polls up to `timeout_ms` for
  /// more bytes (a slow sender can make the call span several poll
  /// rounds, but each round is bounded). A line longer than `max_line`
  /// reports kOverlong once and the stream discards bytes through the
  /// terminating newline, so one hostile line cannot wedge the parser.
  ReadStatus read_line(std::string& line, int timeout_ms,
                       std::size_t max_line);

  /// True when a complete line is already buffered (read_line would
  /// return without touching the socket).
  bool has_buffered_line() const;

  /// Writes all of `bytes`, polling for writability; false when the
  /// peer stalls past `timeout_ms` or the connection dies. SIGPIPE-safe.
  bool write_all(std::string_view bytes, int timeout_ms);

  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::string buffer_;
  bool discarding_ = false;
};

}  // namespace offnet::svc
