#include "tls/ca.h"

namespace offnet::tls {

namespace {

// The simulated PKI spans the whole study period with slack on each side.
constexpr net::DayTime kPkiBirth = net::DayTime::from(net::YearMonth(2010, 1));
constexpr int kCaValidityDays = 360 * 25;

}  // namespace

CertId CaService::create_root(std::string name) {
  Certificate root;
  root.subject.organization = std::move(name);
  root.subject.common_name = root.subject.organization + " Root CA";
  root.not_before = kPkiBirth;
  root.not_after = kPkiBirth.plus_days(kCaValidityDays);
  root.is_ca = true;
  CertId id = store_.add(std::move(root));
  roots_.trust(id);
  return id;
}

CertId CaService::create_intermediate(CertId root, std::string name) {
  Certificate inter;
  inter.subject.organization = std::move(name);
  inter.subject.common_name = inter.subject.organization + " CA";
  inter.not_before = kPkiBirth;
  inter.not_after = kPkiBirth.plus_days(kCaValidityDays);
  inter.issuer = root;
  inter.is_ca = true;
  CertId id = store_.add(std::move(inter));
  roots_.trust(id);
  return id;
}

CertId CaService::issue(CertId issuer, DistinguishedName subject,
                        std::vector<std::string> dns_names,
                        net::DayTime not_before, int validity_days) {
  Certificate cert;
  cert.subject = std::move(subject);
  cert.dns_names = std::move(dns_names);
  cert.not_before = not_before;
  cert.not_after = not_before.plus_days(validity_days);
  cert.issuer = issuer;
  return store_.add(std::move(cert));
}

CertId CaService::issue_self_signed(DistinguishedName subject,
                                    std::vector<std::string> dns_names,
                                    net::DayTime not_before,
                                    int validity_days) {
  Certificate cert;
  cert.subject = std::move(subject);
  cert.dns_names = std::move(dns_names);
  cert.not_before = not_before;
  cert.not_after = not_before.plus_days(validity_days);
  cert.issuer = kNoCert;
  return store_.add(std::move(cert));
}

CertId CaService::issue_untrusted(DistinguishedName subject,
                                  std::vector<std::string> dns_names,
                                  net::DayTime not_before,
                                  int validity_days) {
  if (untrusted_root_ == kNoCert) {
    Certificate root;
    root.subject.organization = "Private Enterprise CA";
    root.subject.common_name = "Private Enterprise Root";
    root.not_before = kPkiBirth;
    root.not_after = kPkiBirth.plus_days(kCaValidityDays);
    root.is_ca = true;
    untrusted_root_ = store_.add(std::move(root));
    // Deliberately NOT added to the root store.
  }
  return issue(untrusted_root_, std::move(subject), std::move(dns_names),
               not_before, validity_days);
}

}  // namespace offnet::tls
