#pragma once

#include <string>
#include <vector>

#include "tls/certificate.h"
#include "tls/validator.h"

namespace offnet::tls {

/// Simulation-side certificate authority service: mints the WebPKI
/// (trusted roots and intermediates) and issues end-entity certificates.
/// The inference pipeline never uses this class — it only sees the
/// resulting CertificateStore and RootStore, like the paper sees scan
/// corpuses and the CCADB.
class CaService {
 public:
  CaService(CertificateStore& store, RootStore& roots)
      : store_(store), roots_(roots) {}

  /// A trusted root CA certificate (long-lived, added to the root store).
  CertId create_root(std::string name);

  /// A trusted intermediate under `root` (also in the CCADB set).
  CertId create_intermediate(CertId root, std::string name);

  /// An end-entity certificate signed by `issuer`.
  CertId issue(CertId issuer, DistinguishedName subject,
               std::vector<std::string> dns_names, net::DayTime not_before,
               int validity_days);

  /// A self-signed end-entity certificate (anyone can mint these; the
  /// §4.1 rules discard them).
  CertId issue_self_signed(DistinguishedName subject,
                           std::vector<std::string> dns_names,
                           net::DayTime not_before, int validity_days);

  /// An end-entity certificate chaining to a root that is NOT in the
  /// trusted set (enterprise/private PKI).
  CertId issue_untrusted(DistinguishedName subject,
                         std::vector<std::string> dns_names,
                         net::DayTime not_before, int validity_days);

  CertificateStore& store() { return store_; }

 private:
  CertificateStore& store_;
  RootStore& roots_;
  CertId untrusted_root_ = kNoCert;
};

}  // namespace offnet::tls
