#include "tls/certificate.h"

#include <cassert>

#include "net/table.h"

namespace offnet::tls {

CertId CertificateStore::add(Certificate cert) {
  assert(cert.issuer == kNoCert || cert.issuer < certs_.size());
  CertId id = static_cast<CertId>(certs_.size());
  certs_.push_back(std::move(cert));
  return id;
}

std::vector<CertId> CertificateStore::chain(CertId ee) const {
  std::vector<CertId> out;
  CertId current = ee;
  while (current != kNoCert) {
    out.push_back(current);
    current = certs_[current].issuer;
  }
  return out;
}

bool dns_name_matches(std::string_view pattern, std::string_view host) {
  auto ieq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
      char cb = b[i] >= 'A' && b[i] <= 'Z' ? char(b[i] - 'A' + 'a') : b[i];
      if (ca != cb) return false;
    }
    return true;
  };
  if (pattern.substr(0, 2) == "*.") {
    std::string_view suffix = pattern.substr(1);  // ".google.com"
    if (host.size() <= suffix.size()) return false;
    if (!ieq(host.substr(host.size() - suffix.size()), suffix)) return false;
    // The wildcard must cover exactly one label.
    std::string_view label = host.substr(0, host.size() - suffix.size());
    return label.find('.') == std::string_view::npos && !label.empty();
  }
  return ieq(pattern, host);
}

bool any_dns_name_matches(std::span<const std::string> patterns,
                          std::string_view host) {
  for (const std::string& p : patterns) {
    if (dns_name_matches(p, host)) return true;
  }
  return false;
}

}  // namespace offnet::tls
