#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/date.h"

namespace offnet::tls {

using CertId = std::uint32_t;
constexpr CertId kNoCert = 0xffffffffu;

/// Subject (or issuer) identity fields of an X.509 certificate. Only the
/// fields the methodology reads are modeled (§2): the Organization entry
/// of the Subject Name is the paper's per-Hypergiant search key. It is
/// NOT authenticated — anyone can request a DV certificate with an
/// arbitrary Organization — which is exactly why the methodology also
/// requires dNSName containment.
struct DistinguishedName {
  std::string organization;
  std::string common_name;
};

/// An X.509-like certificate. dns_names models the subjectAltName
/// dNSName extension (authenticated by the CA); validity uses the
/// NotBefore/NotAfter pair.
struct Certificate {
  DistinguishedName subject;
  std::vector<std::string> dns_names;
  net::DayTime not_before;
  net::DayTime not_after;
  CertId issuer = kNoCert;  // kNoCert == self-signed
  bool is_ca = false;

  bool self_signed() const { return issuer == kNoCert; }
  bool within_validity(net::DayTime at) const {
    return not_before <= at && at <= not_after;
  }
};

/// Flat owning store of all certificates in the simulated PKI. Scan
/// records reference certificates by id; chains follow issuer links.
class CertificateStore {
 public:
  CertId add(Certificate cert);

  const Certificate& get(CertId id) const { return certs_[id]; }
  std::size_t size() const { return certs_.size(); }

  /// The chain from an end-entity certificate up to (and including) its
  /// root, EE first. Cycles are impossible: issuers must pre-exist.
  std::vector<CertId> chain(CertId ee) const;

 private:
  std::vector<Certificate> certs_;
};

/// True when a SAN pattern covers `host`. Supports a single leading
/// wildcard label ("*.google.com" covers "www.google.com" but neither
/// "google.com" nor "a.b.google.com"), per RFC 6125 matching.
bool dns_name_matches(std::string_view pattern, std::string_view host);

/// True when any of `patterns` covers `host`.
bool any_dns_name_matches(std::span<const std::string> patterns,
                          std::string_view host);

}  // namespace offnet::tls
