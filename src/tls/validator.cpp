#include "tls/validator.h"

namespace offnet::tls {

std::string_view cert_status_name(CertStatus status) {
  switch (status) {
    case CertStatus::kValid: return "valid";
    case CertStatus::kExpired: return "expired";
    case CertStatus::kNotYetValid: return "not-yet-valid";
    case CertStatus::kSelfSigned: return "self-signed";
    case CertStatus::kUntrustedChain: return "untrusted-chain";
    case CertStatus::kMalformed: return "malformed";
  }
  return "?";
}

CertStatus CertValidator::validate(CertId ee, net::DayTime at) const {
  if (ee == kNoCert) return CertStatus::kMalformed;
  const Certificate& cert = store_.get(ee);
  if (cert.subject.organization.empty() && cert.dns_names.empty()) {
    return CertStatus::kMalformed;
  }
  if (at < cert.not_before) return CertStatus::kNotYetValid;
  if (cert.not_after < at) return CertStatus::kExpired;
  if (cert.self_signed() && !cert.is_ca) return CertStatus::kSelfSigned;

  // Walk the chain: every certificate must be within validity, and the
  // chain must pass through a trusted anchor (root or intermediate, as
  // with the CCADB-derived set).
  CertId current = cert.issuer;
  while (current != kNoCert) {
    const Certificate& link = store_.get(current);
    if (at < link.not_before || link.not_after < at) {
      return CertStatus::kUntrustedChain;
    }
    if (roots_.is_trusted(current)) return CertStatus::kValid;
    current = link.issuer;
  }
  return CertStatus::kUntrustedChain;
}

}  // namespace offnet::tls
