#pragma once

#include <string_view>
#include <unordered_set>

#include "tls/certificate.h"

namespace offnet::tls {

/// The trusted WebPKI anchor set, standing in for the roots and
/// intermediates extracted from Mozilla's Common CA Database (§4.1).
class RootStore {
 public:
  void trust(CertId cert) { trusted_.insert(cert); }
  bool is_trusted(CertId cert) const { return trusted_.contains(cert); }
  std::size_t size() const { return trusted_.size(); }

 private:
  std::unordered_set<CertId> trusted_;
};

/// Why a certificate was accepted or rejected by the §4.1 validation
/// rules.
enum class CertStatus {
  kValid,
  kExpired,        // NotAfter in the past at scan time
  kNotYetValid,    // NotBefore in the future at scan time
  kSelfSigned,     // self-signed end-entity (anyone can mint these)
  kUntrustedChain, // chain does not reach a trusted root/intermediate
  kMalformed,      // missing critical information
};

std::string_view cert_status_name(CertStatus status);

/// Implements the paper's certificate validation (§4.1): discard expired
/// certificates (by scan-time NotBefore/NotAfter), self-signed end-entity
/// certificates, and chains that do not verify against the trusted
/// WebPKI set.
class CertValidator {
 public:
  CertValidator(const CertificateStore& store, const RootStore& roots)
      : store_(store), roots_(roots) {}

  CertStatus validate(CertId ee, net::DayTime at) const;

  bool is_valid(CertId ee, net::DayTime at) const {
    return validate(ee, at) == CertStatus::kValid;
  }

 private:
  const CertificateStore& store_;
  const RootStore& roots_;
};

}  // namespace offnet::tls
