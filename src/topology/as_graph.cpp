#include "topology/as_graph.h"

#include <algorithm>
#include <cassert>

namespace offnet::topo {

namespace {

/// Cones larger than this are counted by explicit BFS instead of set
/// unions. 2048 comfortably exceeds the Large/XLarge boundary (1000), so
/// every category decision below the cap is exact.
constexpr std::size_t kExactCap = 2048;

void merge_into(std::vector<AsId>& dst, std::span<const AsId> src) {
  std::vector<AsId> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  dst = std::move(merged);
}

}  // namespace

AsId AsGraph::add_as(net::Asn asn) {
  AsId id = static_cast<AsId>(asns_.size());
  asns_.push_back(asn);
  links_.emplace_back();
  return id;
}

void AsGraph::add_customer_link(AsId provider, AsId customer) {
  assert(provider < asns_.size() && customer < asns_.size());
  assert(provider != customer);
  links_[provider].customers.push_back(customer);
  links_[customer].providers.push_back(provider);
}

void AsGraph::add_peer_link(AsId a, AsId b) {
  assert(a < asns_.size() && b < asns_.size());
  assert(a != b);
  links_[a].peers.push_back(b);
  links_[b].peers.push_back(a);
}

std::vector<std::uint32_t> AsGraph::customer_cone_sizes(
    std::span<const char> alive) const {
  const std::size_t n = asns_.size();
  std::vector<std::uint32_t> sizes(n, 0);

  // Reverse-topological order over customer edges: every AS after all of
  // its (alive) customers. Kahn's algorithm on provider->customer edges.
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<AsId> order;
  order.reserve(n);
  for (AsId id = 0; id < n; ++id) {
    if (!is_alive(alive, id)) continue;
    std::uint32_t alive_customers = 0;
    for (AsId c : links_[id].customers) {
      if (is_alive(alive, c)) ++alive_customers;
    }
    pending[id] = alive_customers;
    if (alive_customers == 0) order.push_back(id);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    AsId id = order[head];
    for (AsId p : links_[id].providers) {
      if (!is_alive(alive, p)) continue;
      if (--pending[p] == 0) order.push_back(p);
    }
  }
  // Customer links form a DAG by construction, so every alive AS appears.

  std::vector<std::vector<AsId>> cones(n);
  std::vector<char> overflow(n, 0);
  for (AsId id : order) {
    std::vector<AsId>& cone = cones[id];
    cone.push_back(id);
    bool over = false;
    for (AsId c : links_[id].customers) {
      if (!is_alive(alive, c)) continue;
      if (overflow[c]) {
        over = true;
        break;
      }
      merge_into(cone, cones[c]);
      if (cone.size() > kExactCap) {
        over = true;
        break;
      }
    }
    if (over) {
      overflow[id] = 1;
      cone.clear();
      cone.shrink_to_fit();
      // Exact count by downward BFS; only the handful of huge cones take
      // this path.
      std::vector<char> seen(n, 0);
      std::vector<AsId> queue{id};
      seen[id] = 1;
      std::uint32_t count = 0;
      while (!queue.empty()) {
        AsId here = queue.back();
        queue.pop_back();
        ++count;
        for (AsId c : links_[here].customers) {
          if (!is_alive(alive, c) || seen[c]) continue;
          seen[c] = 1;
          queue.push_back(c);
        }
      }
      sizes[id] = count;
    } else {
      sizes[id] = static_cast<std::uint32_t>(cone.size());
    }
  }
  return sizes;
}

std::vector<char> AsGraph::cone_union(std::span<const AsId> roots,
                                      std::span<const char> alive) const {
  std::vector<char> in_cone(asns_.size(), 0);
  std::vector<AsId> queue;
  for (AsId root : roots) {
    if (!is_alive(alive, root) || in_cone[root]) continue;
    in_cone[root] = 1;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    AsId here = queue.back();
    queue.pop_back();
    for (AsId c : links_[here].customers) {
      if (!is_alive(alive, c) || in_cone[c]) continue;
      in_cone[c] = 1;
      queue.push_back(c);
    }
  }
  return in_cone;
}

}  // namespace offnet::topo
