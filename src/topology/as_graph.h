#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/asn.h"

namespace offnet::topo {

/// Dense AS index within an AsGraph. Separate from the (sparse) ASN.
using AsId = std::uint32_t;

constexpr AsId kNoAs = 0xffffffffu;

/// The AS-level business-relationship graph (customer-provider and
/// peer-peer links), standing in for the CAIDA AS Relationships dataset.
/// Customer links must form a DAG (providers above customers); the
/// generator guarantees this by only linking younger ASes under older
/// tiers.
class AsGraph {
 public:
  /// Adds an AS and returns its dense id.
  AsId add_as(net::Asn asn);

  /// Records `customer` as a customer of `provider`.
  void add_customer_link(AsId provider, AsId customer);

  /// Records a settlement-free peering link.
  void add_peer_link(AsId a, AsId b);

  std::size_t as_count() const { return asns_.size(); }
  net::Asn asn(AsId id) const { return asns_[id]; }

  std::span<const AsId> customers(AsId id) const { return links_[id].customers; }
  std::span<const AsId> providers(AsId id) const { return links_[id].providers; }
  std::span<const AsId> peers(AsId id) const { return links_[id].peers; }

  /// Computes provider-peer customer-cone sizes (|cone|, including the AS
  /// itself) for the subgraph induced by ASes with `alive[id] == true`.
  /// Customer links into dead ASes are ignored. `alive` may be empty to
  /// mean "all alive".
  std::vector<std::uint32_t> customer_cone_sizes(
      std::span<const char> alive = {}) const;

  /// All ASes within the customer cones of `roots` (including the roots),
  /// restricted to alive ASes. Used for the "serve the customer cone"
  /// coverage analysis (Fig. 8 / Fig. 12).
  std::vector<char> cone_union(std::span<const AsId> roots,
                               std::span<const char> alive = {}) const;

 private:
  struct Links {
    std::vector<AsId> providers;
    std::vector<AsId> customers;
    std::vector<AsId> peers;
  };

  bool is_alive(std::span<const char> alive, AsId id) const {
    return alive.empty() || alive[id];
  }

  std::vector<net::Asn> asns_;
  std::vector<Links> links_;
};

}  // namespace offnet::topo
