#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace offnet::topo {

/// AS size categories by provider-peer customer-cone size, the paper's
/// "demographics" buckets (§6.3): Stub (cone = 1), Small (<= 10),
/// Medium (<= 100), Large (<= 1000), XLarge (> 1000).
enum class SizeCategory : std::uint8_t {
  kStub,
  kSmall,
  kMedium,
  kLarge,
  kXLarge,
};

constexpr std::size_t kCategoryCount = 5;

constexpr SizeCategory categorize(std::uint32_t cone_size) {
  if (cone_size <= 1) return SizeCategory::kStub;
  if (cone_size <= 10) return SizeCategory::kSmall;
  if (cone_size <= 100) return SizeCategory::kMedium;
  if (cone_size <= 1000) return SizeCategory::kLarge;
  return SizeCategory::kXLarge;
}

constexpr std::string_view category_name(SizeCategory c) {
  switch (c) {
    case SizeCategory::kStub: return "Stub";
    case SizeCategory::kSmall: return "Small";
    case SizeCategory::kMedium: return "Medium";
    case SizeCategory::kLarge: return "Large";
    case SizeCategory::kXLarge: return "XLarge";
  }
  return "?";
}

inline std::span<const SizeCategory> all_categories() {
  static constexpr std::array kAll = {
      SizeCategory::kStub, SizeCategory::kSmall, SizeCategory::kMedium,
      SizeCategory::kLarge, SizeCategory::kXLarge,
  };
  return kAll;
}

}  // namespace offnet::topo
