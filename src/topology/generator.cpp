#include "topology/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "net/date.h"
#include "net/rng.h"

namespace offnet::topo {

namespace {

/// Sequentially carves prefixes out of the unicast IPv4 space, skipping
/// IANA special-purpose blocks. Mirrors how RIR allocations tile the
/// address space.
class AddressAllocator {
 public:
  net::Prefix allocate(std::uint8_t length) {
    for (;;) {
      // Align the cursor to the prefix size.
      std::uint64_t size = std::uint64_t{1} << (32 - length);
      cursor_ = (cursor_ + size - 1) & ~(size - 1);
      if (cursor_ + size > (std::uint64_t{1} << 32)) {
        throw std::runtime_error("IPv4 space exhausted by generator");
      }
      net::Prefix candidate(net::IPv4(static_cast<std::uint32_t>(cursor_)),
                            length);
      if (net::is_bogon(candidate)) {
        cursor_ += size;
        continue;
      }
      cursor_ += size;
      return candidate;
    }
  }

 private:
  std::uint64_t cursor_ = std::uint64_t{1} << 24;  // start at 1.0.0.0
};

struct TierPlan {
  SizeCategory tier;
  std::uint32_t cone_target = 1;   // desired cone size
  std::uint32_t cone_ceiling = 1;  // never exceed (keeps category intact)
};

std::size_t scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(n * scale));
}

CountryId find_country(std::string_view code) {
  auto table = country_table();
  for (CountryId i = 0; i < table.size(); ++i) {
    if (table[i].code == code) return i;
  }
  return kNoCountry;
}

}  // namespace

Topology TopologyGenerator::generate() const {
  const GeneratorConfig& cfg = config_;
  net::Rng rng = net::Rng(cfg.seed).fork("topology");

  const std::size_t total = scaled(cfg.ases_at_end, cfg.scale);
  const std::size_t at_start =
      std::min(total, scaled(cfg.ases_at_start, cfg.scale));
  const std::size_t n_xlarge = scaled(cfg.xlarge_count, cfg.scale);
  const std::size_t n_large = scaled(cfg.large_count, cfg.scale);
  const std::size_t n_medium = scaled(cfg.medium_count, cfg.scale);
  const std::size_t n_small = scaled(cfg.small_count, cfg.scale);
  const std::size_t n_seed_as = [&] {
    std::size_t n = 0;
    for (const auto& seed : cfg.org_seeds) n += seed.as_count;
    return n;
  }();
  const std::size_t n_providers = n_xlarge + n_large + n_medium + n_small;
  if (n_providers + n_seed_as >= total) {
    throw std::invalid_argument("tier counts exceed total AS count");
  }
  const std::size_t n_stub = total - n_providers - n_seed_as;

  // ---- ASN assignment -----------------------------------------------
  std::vector<net::Asn> asn_pool;
  asn_pool.reserve(total + 1024);
  for (net::Asn a = 1; a < 64496 && asn_pool.size() < total + 512; ++a) {
    if (!net::is_reserved_asn(a)) asn_pool.push_back(a);
  }
  for (net::Asn a = 131072; asn_pool.size() < total + 512; ++a) {
    asn_pool.push_back(a);
  }
  rng.shuffle(asn_pool);

  // ---- Country assignment weights -------------------------------------
  auto countries = country_table();
  std::vector<double> region_weight(kRegionCount, 0.0);
  region_weight[static_cast<int>(Region::kNorthAmerica)] = 0.20;
  region_weight[static_cast<int>(Region::kEurope)] = 0.30;
  region_weight[static_cast<int>(Region::kAsia)] = 0.22;
  region_weight[static_cast<int>(Region::kSouthAmerica)] = 0.15;
  region_weight[static_cast<int>(Region::kAfrica)] = 0.08;
  region_weight[static_cast<int>(Region::kOceania)] = 0.05;
  std::vector<double> country_weight(countries.size(), 0.0);
  {
    std::vector<double> region_user_sqrt(kRegionCount, 0.0);
    for (const auto& c : countries) {
      region_user_sqrt[static_cast<int>(c.region)] +=
          std::sqrt(c.internet_users_m + 1.0);
    }
    for (CountryId i = 0; i < countries.size(); ++i) {
      const auto& c = countries[i];
      country_weight[i] = region_weight[static_cast<int>(c.region)] *
                          std::sqrt(c.internet_users_m + 1.0) /
                          region_user_sqrt[static_cast<int>(c.region)];
    }
  }
  auto pick_country = [&rng, &country_weight]() -> CountryId {
    return static_cast<CountryId>(rng.weighted_index(country_weight));
  };

  // ---- Create ASes tier by tier ---------------------------------------
  AsGraph graph;
  std::vector<AsRecord> records;
  std::vector<TierPlan> plans;
  records.reserve(total);
  plans.reserve(total);
  std::size_t next_asn = 0;

  auto add_as = [&](SizeCategory tier, std::uint32_t cone_target,
                    std::uint32_t cone_ceiling,
                    CountryId country) -> AsId {
    AsId id = graph.add_as(asn_pool[next_asn++]);
    AsRecord rec;
    rec.asn = graph.asn(id);
    rec.country = country;
    rec.planned_tier = tier;
    records.push_back(std::move(rec));
    plans.push_back(TierPlan{tier, cone_target, cone_ceiling});
    return id;
  };

  std::vector<AsId> xlarge, large, medium, small, stubs, seed_ases;
  for (std::size_t i = 0; i < n_xlarge; ++i) {
    auto target = static_cast<std::uint32_t>(
        1000.0 * std::pow(20.0, rng.uniform_real(0.05, 1.0)));
    xlarge.push_back(add_as(SizeCategory::kXLarge, target, 0xffffffffu,
                            pick_country()));
  }
  for (std::size_t i = 0; i < n_large; ++i) {
    auto target = static_cast<std::uint32_t>(
        100.0 * std::pow(10.0, rng.uniform_real(0.05, 0.95)));
    large.push_back(
        add_as(SizeCategory::kLarge, target, 1000, pick_country()));
  }
  for (std::size_t i = 0; i < n_medium; ++i) {
    auto target = static_cast<std::uint32_t>(
        10.0 * std::pow(10.0, rng.uniform_real(0.08, 0.92)));
    medium.push_back(
        add_as(SizeCategory::kMedium, target, 100, pick_country()));
  }
  for (std::size_t i = 0; i < n_small; ++i) {
    auto target = static_cast<std::uint32_t>(rng.uniform(2, 9));
    small.push_back(
        add_as(SizeCategory::kSmall, target, 10, pick_country()));
  }
  // Hypergiant / reserved-organization ASes behave like Medium networks
  // with little transit.
  for (const auto& seed : cfg.org_seeds) {
    for (int i = 0; i < seed.as_count; ++i) {
      AsId id = add_as(SizeCategory::kMedium,
                       static_cast<std::uint32_t>(rng.uniform(2, 20)), 100,
                       find_country(seed.country_code));
      records[id].always_routed = true;
      seed_ases.push_back(id);
    }
  }
  for (std::size_t i = 0; i < n_stub; ++i) {
    stubs.push_back(add_as(SizeCategory::kStub, 1, 1, pick_country()));
  }

  // ---- Birth snapshots -------------------------------------------------
  // Growth from 45k to 71k active ASes is roughly linear over the study,
  // and the paper observes stable category shares throughout (§6.3), so
  // newly registered ASes are spread proportionally across every tier.
  const std::size_t snapshots = net::snapshot_count();
  {
    const double late_fraction =
        total > 0 ? static_cast<double>(total - at_start) /
                        static_cast<double>(total)
                  : 0.0;
    auto assign_births = [&](const std::vector<AsId>& tier) {
      auto born_later = static_cast<std::size_t>(
          static_cast<double>(tier.size()) * late_fraction);
      if (born_later == 0) return;
      std::size_t base = tier.size() - born_later;
      for (std::size_t i = 0; i < born_later; ++i) {
        std::size_t snap = 1 + (i * (snapshots - 1)) / born_later;
        records[tier[base + i]].birth_snapshot =
            std::min(snap, snapshots - 1);
      }
    };
    assign_births(stubs);
    assign_births(small);
    assign_births(medium);
    assign_births(large);
    assign_births(xlarge);
  }

  // ---- Customer adoption (forest stage) --------------------------------
  // Children are adopted bottom-up so each provider can meet its cone
  // target exactly; at this stage cones are disjoint, so the running sum
  // equals the true cone size.
  std::vector<std::uint32_t> cone(records.size(), 1);
  std::vector<char> adopted(records.size(), 0);

  auto adopt_children = [&](std::span<const AsId> parents,
                            std::vector<std::vector<AsId>*> child_pools) {
    // Round-robin over parents, each taking children until its target is
    // met, drawing from the pools in order (prefer bigger children first).
    std::vector<std::size_t> pool_cursor(child_pools.size(), 0);
    for (AsId parent : parents) {
      const TierPlan& plan = plans[parent];
      for (std::size_t p = 0; p < child_pools.size(); ++p) {
        auto& pool = *child_pools[p];
        auto& cursor = pool_cursor[p];
        while (cone[parent] < plan.cone_target && cursor < pool.size()) {
          AsId child = pool[cursor];
          if (adopted[child] || child == parent) {
            ++cursor;
            continue;
          }
          if (cone[parent] + cone[child] > plan.cone_ceiling) break;
          graph.add_customer_link(parent, child);
          adopted[child] = 1;
          cone[parent] += cone[child];
          ++cursor;
        }
      }
    }
  };

  // Shuffle pools so adoption does not correlate with creation order.
  rng.shuffle(stubs);
  adopt_children(small, {&stubs});
  // Seed (HG) ASes pick up a couple of stub customers.
  adopt_children(seed_ases, {&stubs});
  rng.shuffle(small);
  adopt_children(medium, {&small, &stubs});
  rng.shuffle(medium);
  adopt_children(large, {&medium, &small, &stubs});
  rng.shuffle(large);
  adopt_children(xlarge, {&large, &medium, &small, &stubs});

  // Any AS without a provider joins a random xlarge transit so the graph
  // is connected from the top. (Does not change anyone's category: the
  // xlarge ceiling is unbounded.)
  for (AsId id = 0; id < records.size(); ++id) {
    if (adopted[id] || plans[id].tier == SizeCategory::kXLarge) continue;
    AsId transit = xlarge[rng.index(xlarge.size())];
    graph.add_customer_link(transit, id);
    adopted[id] = 1;
    cone[transit] += cone[id];
  }

  // ---- Multihoming (secondary providers) -------------------------------
  // Extra providers at least one tier above the child's own tier; the
  // provider's ceiling is respected so categories stay calibrated.
  auto secondary_pool = [&](SizeCategory tier) -> const std::vector<AsId>* {
    switch (tier) {
      case SizeCategory::kStub: return &medium;
      case SizeCategory::kSmall: return &large;
      case SizeCategory::kMedium: return &xlarge;
      case SizeCategory::kLarge: return &xlarge;
      default: return nullptr;
    }
  };
  for (AsId id = 0; id < records.size(); ++id) {
    if (!rng.bernoulli(cfg.multihome_rate)) continue;
    const std::vector<AsId>* pool = secondary_pool(plans[id].tier);
    if (pool == nullptr || pool->empty()) continue;
    AsId provider = (*pool)[rng.index(pool->size())];
    if (provider == id) continue;
    if (cone[provider] + cone[id] > plans[provider].cone_ceiling) continue;
    graph.add_customer_link(provider, id);
    cone[provider] += cone[id];
  }

  // ---- Peering ----------------------------------------------------------
  // Tier-1 mesh plus regional peering; cones are unaffected.
  for (std::size_t i = 0; i < xlarge.size(); ++i) {
    for (std::size_t j = i + 1; j < xlarge.size(); ++j) {
      if (rng.bernoulli(0.8)) graph.add_peer_link(xlarge[i], xlarge[j]);
    }
  }
  auto sprinkle_peers = [&](const std::vector<AsId>& pool, double mean) {
    if (pool.size() < 2) return;
    for (AsId a : pool) {
      int n = rng.poisson(mean);
      for (int k = 0; k < n; ++k) {
        AsId b = pool[rng.index(pool.size())];
        if (b != a) graph.add_peer_link(a, b);
      }
    }
  };
  sprinkle_peers(large, 2.0);
  sprinkle_peers(medium, 1.0);

  // ---- Organizations -----------------------------------------------------
  OrgDb orgs;
  {
    std::size_t seed_cursor = 0;
    for (const auto& seed : cfg.org_seeds) {
      OrgId org = orgs.add_org(seed.org_name, find_country(seed.country_code));
      for (int i = 0; i < seed.as_count; ++i) {
        AsId id = seed_ases[seed_cursor++];
        orgs.assign(org, id);
        records[id].org = org;
      }
    }
    // Everyone else: one org per AS, with occasional multi-AS siblings.
    for (AsId id = 0; id < records.size(); ++id) {
      if (records[id].org != kNoOrg) continue;
      std::string name = "AS" + std::to_string(records[id].asn) + " " +
                         std::string(countries[records[id].country].code) +
                         " Network Services";
      OrgId org = orgs.add_org(std::move(name), records[id].country);
      orgs.assign(org, id);
      records[id].org = org;
      // ~3% of orgs operate a sibling AS (acquisitions, regional units).
      if (rng.bernoulli(0.03) && id + 1 < records.size() &&
          records[id + 1].org == kNoOrg) {
        orgs.assign(org, id + 1);
        records[id + 1].org = org;
      }
    }
  }

  // ---- Address space ------------------------------------------------------
  AddressAllocator allocator;
  {
    std::size_t seed_cursor = 0;
    for (const auto& seed : cfg.org_seeds) {
      for (int i = 0; i < seed.as_count; ++i) {
        AsId id = seed_ases[seed_cursor++];
        for (int p = 0; p < seed.prefixes_per_as; ++p) {
          records[id].prefixes.push_back(
              allocator.allocate(seed.prefix_length));
        }
      }
    }
    auto allocate_for = [&](AsId id, int min_count, int max_count,
                            int min_len, int max_len) {
      int count = static_cast<int>(rng.uniform(min_count, max_count));
      for (int p = 0; p < count; ++p) {
        auto len = static_cast<std::uint8_t>(rng.uniform(min_len, max_len));
        records[id].prefixes.push_back(allocator.allocate(len));
      }
    };
    for (AsId id = 0; id < records.size(); ++id) {
      if (!records[id].prefixes.empty()) continue;  // seed ASes done
      switch (plans[id].tier) {
        case SizeCategory::kStub: allocate_for(id, 1, 3, 22, 24); break;
        case SizeCategory::kSmall: allocate_for(id, 2, 5, 21, 24); break;
        case SizeCategory::kMedium: allocate_for(id, 4, 12, 19, 23); break;
        case SizeCategory::kLarge: allocate_for(id, 10, 40, 16, 22); break;
        case SizeCategory::kXLarge: allocate_for(id, 30, 100, 14, 20); break;
      }
    }
  }

  // ---- User population (APNIC stand-in) -----------------------------------
  {
    // Per country: eyeball ASes get Zipf-ish market shares weighted by
    // their size, normalized to `country_coverage_total`.
    std::vector<std::vector<AsId>> by_country(countries.size());
    for (AsId id = 0; id < records.size(); ++id) {
      if (records[id].country != kNoCountry) {
        by_country[records[id].country].push_back(id);
      }
    }
    for (CountryId c = 0; c < countries.size(); ++c) {
      auto& members = by_country[c];
      std::vector<AsId> eyeballs;
      std::vector<double> weights;
      for (AsId id : members) {
        double p = cfg.eyeball_fraction;
        // Bigger networks are more likely to serve end users.
        if (plans[id].tier == SizeCategory::kLarge ||
            plans[id].tier == SizeCategory::kXLarge) {
          p = std::min(1.0, p + 0.25);
        }
        if (!rng.bernoulli(p)) continue;
        records[id].eyeball = true;
        // A handful of mobile operators are IPv6-only (§7).
        if (plans[id].tier <= SizeCategory::kSmall &&
            rng.bernoulli(cfg.ipv6_only_fraction)) {
          records[id].ipv6_only = true;
        }
        eyeballs.push_back(id);
        double w = std::pow(static_cast<double>(cone[id]), 1.05) *
                   std::exp(rng.uniform_real(-0.7, 0.7));
        weights.push_back(w);
      }
      double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
      if (sum <= 0.0) continue;
      for (std::size_t i = 0; i < eyeballs.size(); ++i) {
        AsId id = eyeballs[i];
        records[id].user_share =
            cfg.country_coverage_total * weights[i] / sum;
        // Small eyeballs are likelier to flicker in and out of the APNIC
        // measurement and fail the presence filter.
        double flaky = cfg.population_flaky_rate;
        if (plans[id].tier == SizeCategory::kStub) flaky *= 1.3;
        if (plans[id].tier == SizeCategory::kLarge ||
            plans[id].tier == SizeCategory::kXLarge) {
          flaky *= 0.2;
        }
        records[id].population_flaky = rng.bernoulli(std::min(flaky, 1.0));
      }
    }
  }

  return Topology(std::move(graph), std::move(records), std::move(orgs));
}

}  // namespace offnet::topo
