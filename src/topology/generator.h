#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace offnet::topo {

/// A reserved organization (used for Hypergiants) that must exist in the
/// generated topology with its own ASes and address space.
struct OrgSeed {
  std::string org_name;        // e.g. "Google LLC"
  std::string country_code;    // e.g. "US"
  int as_count = 1;
  int prefixes_per_as = 8;
  std::uint8_t prefix_length = 20;
};

/// Knobs for the synthetic Internet. Defaults are calibrated to the
/// paper's reported demographics (§6.3): 45k active ASes in 2013 growing
/// to 71k in 2021; category shares ~85% Stub, ~12% Small, ~2.6% Medium,
/// <0.5% Large, <0.1% XLarge, stable over time.
struct GeneratorConfig {
  std::uint64_t seed = 20210823;

  std::size_t ases_at_start = 45000;
  std::size_t ases_at_end = 71000;

  // End-state provider-tier counts; stubs absorb the remainder.
  std::size_t xlarge_count = 55;
  std::size_t large_count = 320;
  std::size_t medium_count = 1850;
  std::size_t small_count = 8600;

  /// Probability that a non-provider AS acquires an extra (secondary)
  /// provider one or more tiers up.
  double multihome_rate = 0.35;

  /// Fraction of ASes that host end users at all.
  double eyeball_fraction = 0.65;

  /// Fraction of eyeball ASes that fail the APNIC >=25%-of-month presence
  /// filter (the paper's filtering drops coverage to <80% of ASes).
  double population_flaky_rate = 0.35;

  /// Total fraction of a country's users attributed to its measured ASes.
  double country_coverage_total = 0.97;

  /// Fraction of eyeball ASes that are IPv6-only mobile operators ("a
  /// very small number", §7) — unreachable by IPv4 scans.
  double ipv6_only_fraction = 0.004;

  /// Uniform multiplier on every AS count, for building small test worlds.
  double scale = 1.0;

  std::vector<OrgSeed> org_seeds;
};

/// Builds the immutable topology: tiered AS hierarchy with calibrated
/// customer-cone demographics, regional placement, organizations, address
/// space, and user-population shares.
class TopologyGenerator {
 public:
  explicit TopologyGenerator(GeneratorConfig config)
      : config_(std::move(config)) {}

  Topology generate() const;

 private:
  GeneratorConfig config_;
};

}  // namespace offnet::topo
