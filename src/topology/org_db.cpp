#include "topology/org_db.h"

#include "net/table.h"

namespace offnet::topo {

OrgId OrgDb::add_org(std::string name, CountryId country) {
  OrgId id = static_cast<OrgId>(orgs_.size());
  orgs_.push_back(OrgRecord{std::move(name), country, {}});
  return id;
}

void OrgDb::assign(OrgId org, AsId as) {
  orgs_[org].ases.push_back(as);
  if (as >= as_to_org_.size()) as_to_org_.resize(as + 1, kNoOrg);
  as_to_org_[as] = org;
}

std::vector<OrgId> OrgDb::find_by_keyword(std::string_view keyword) const {
  std::vector<OrgId> out;
  for (OrgId id = 0; id < orgs_.size(); ++id) {
    if (net::icontains(orgs_[id].name, keyword)) out.push_back(id);
  }
  return out;
}

std::optional<OrgId> OrgDb::find_exact(std::string_view name) const {
  for (OrgId id = 0; id < orgs_.size(); ++id) {
    if (orgs_[id].name == name) return id;
  }
  return std::nullopt;
}

}  // namespace offnet::topo
