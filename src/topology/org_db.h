#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "topology/as_graph.h"
#include "topology/region.h"

namespace offnet::topo {

using OrgId = std::uint32_t;
constexpr OrgId kNoOrg = 0xffffffffu;

/// Organization database: the stand-in for the CAIDA AS Organizations
/// dataset (Appendix A.2). Maps ASes to the organizational entities that
/// operate them, and supports the reverse organization-name search the
/// paper uses to find each Hypergiant's own (on-net) ASes.
class OrgDb {
 public:
  OrgId add_org(std::string name, CountryId country);

  /// Assigns an AS to an organization. An AS belongs to exactly one org.
  void assign(OrgId org, AsId as);

  std::size_t org_count() const { return orgs_.size(); }
  std::string_view name(OrgId org) const { return orgs_[org].name; }
  CountryId country(OrgId org) const { return orgs_[org].country; }
  std::span<const AsId> ases_of(OrgId org) const { return orgs_[org].ases; }

  OrgId org_of(AsId as) const {
    return as < as_to_org_.size() ? as_to_org_[as] : kNoOrg;
  }

  /// Case-insensitive substring search over organization names, as used to
  /// locate a Hypergiant's organization(s) from its keyword.
  std::vector<OrgId> find_by_keyword(std::string_view keyword) const;

  /// Exact (case-sensitive) lookup.
  std::optional<OrgId> find_exact(std::string_view name) const;

 private:
  struct OrgRecord {
    std::string name;
    CountryId country = kNoCountry;
    std::vector<AsId> ases;
  };

  std::vector<OrgRecord> orgs_;
  std::vector<OrgId> as_to_org_;
};

}  // namespace offnet::topo
