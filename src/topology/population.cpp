#include "topology/population.h"

#include "net/date.h"

namespace offnet::topo {

PopulationView::PopulationView(const Topology& topology)
    : topology_(topology) {
  for (AsId id = 0; id < topology_.as_count(); ++id) {
    const AsRecord& rec = topology_.as(id);
    if (rec.eyeball && !rec.population_flaky && rec.user_share > 0.0) {
      ++measured_count_;
    }
  }
}

std::size_t PopulationView::first_available_snapshot() {
  auto idx = net::snapshot_index(net::YearMonth(2017, 10));
  return idx.value_or(0);
}

double PopulationView::share(AsId as) const {
  const AsRecord& rec = topology_.as(as);
  if (!rec.eyeball || rec.population_flaky) return 0.0;
  return rec.user_share;
}

double PopulationView::country_users(CountryId country) const {
  return topology_.country(country).internet_users_m;
}

double PopulationView::country_coverage(CountryId country,
                                        std::span<const char> hosting,
                                        std::size_t snapshot) const {
  const auto& alive = topology_.alive_mask(snapshot);
  double covered = 0.0;
  for (AsId id = 0; id < topology_.as_count(); ++id) {
    if (!alive[id] || !hosting[id]) continue;
    if (topology_.as(id).country != country) continue;
    covered += share(id);
  }
  return std::min(covered, 1.0);
}

double PopulationView::world_coverage(std::span<const char> hosting,
                                      std::size_t snapshot) const {
  double users = 0.0;
  double covered = 0.0;
  for (CountryId c = 0; c < topology_.country_count(); ++c) {
    double u = country_users(c);
    users += u;
    covered += u * country_coverage(c, hosting, snapshot);
  }
  return users > 0.0 ? covered / users : 0.0;
}

double PopulationView::region_coverage(Region region,
                                       std::span<const char> hosting,
                                       std::size_t snapshot) const {
  double users = 0.0;
  double covered = 0.0;
  for (CountryId c = 0; c < topology_.country_count(); ++c) {
    if (topology_.country(c).region != region) continue;
    double u = country_users(c);
    users += u;
    covered += u * country_coverage(c, hosting, snapshot);
  }
  return users > 0.0 ? covered / users : 0.0;
}

}  // namespace offnet::topo
