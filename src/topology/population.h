#pragma once

#include <span>
#include <vector>

#include "topology/topology.h"

namespace offnet::topo {

/// View over the topology's user-population data, applying the paper's
/// APNIC filtering rules (§6.5): ASes that fail the >=25%-of-month
/// presence filter are treated as absent from the dataset, making all
/// coverage numbers lower bounds. Population data is only available from
/// Oct. 2017 onwards (the paper stores monthly snapshots since then).
class PopulationView {
 public:
  explicit PopulationView(const Topology& topology);

  /// First study snapshot with population data (2017-10).
  static std::size_t first_available_snapshot();

  /// Share of its country's users served by `as` (0 when filtered out).
  double share(AsId as) const;

  /// Internet users (millions) of a country.
  double country_users(CountryId country) const;

  /// Fraction of `country`'s users inside ASes with hosting_mask set,
  /// restricted to ASes alive at `snapshot`.
  double country_coverage(CountryId country, std::span<const char> hosting,
                          std::size_t snapshot) const;

  /// User-weighted worldwide coverage.
  double world_coverage(std::span<const char> hosting,
                        std::size_t snapshot) const;

  /// User-weighted coverage over one region.
  double region_coverage(Region region, std::span<const char> hosting,
                         std::size_t snapshot) const;

  /// Number of ASes that survive the presence filter.
  std::size_t measured_as_count() const { return measured_count_; }

 private:
  const Topology& topology_;
  std::size_t measured_count_ = 0;
};

}  // namespace offnet::topo
