#include "topology/region.h"

namespace offnet::topo {

std::string_view region_name(Region region) {
  switch (region) {
    case Region::kAfrica: return "Africa";
    case Region::kAsia: return "Asia";
    case Region::kEurope: return "Europe";
    case Region::kNorthAmerica: return "North America";
    case Region::kOceania: return "Oceania";
    case Region::kSouthAmerica: return "South America";
  }
  return "?";
}

std::span<const Region> all_regions() {
  static constexpr std::array kAll = {
      Region::kAfrica,        Region::kAsia,    Region::kEurope,
      Region::kNorthAmerica,  Region::kOceania, Region::kSouthAmerica,
  };
  return kAll;
}

namespace {

using R = Region;

// Internet-user estimates (millions, ca. 2021). Values are approximate;
// only relative magnitudes matter for the coverage analysis.
constexpr Country kCountries[] = {
    // Asia
    {"CN", "China", R::kAsia, 989},
    {"IN", "India", R::kAsia, 624},
    {"ID", "Indonesia", R::kAsia, 202},
    {"JP", "Japan", R::kAsia, 117},
    {"PK", "Pakistan", R::kAsia, 100},
    {"BD", "Bangladesh", R::kAsia, 66},
    {"PH", "Philippines", R::kAsia, 74},
    {"VN", "Vietnam", R::kAsia, 69},
    {"TR", "Turkey", R::kAsia, 66},
    {"IR", "Iran", R::kAsia, 67},
    {"TH", "Thailand", R::kAsia, 49},
    {"KR", "South Korea", R::kAsia, 50},
    {"MY", "Malaysia", R::kAsia, 28},
    {"SA", "Saudi Arabia", R::kAsia, 34},
    {"TW", "Taiwan", R::kAsia, 21},
    {"KZ", "Kazakhstan", R::kAsia, 15},
    {"HK", "Hong Kong", R::kAsia, 7},
    {"SG", "Singapore", R::kAsia, 5},
    {"LK", "Sri Lanka", R::kAsia, 11},
    {"NP", "Nepal", R::kAsia, 11},
    {"IQ", "Iraq", R::kAsia, 30},
    {"IL", "Israel", R::kAsia, 8},
    {"AE", "UAE", R::kAsia, 9},
    {"MM", "Myanmar", R::kAsia, 23},
    {"UZ", "Uzbekistan", R::kAsia, 19},
    // Europe
    {"RU", "Russia", R::kEurope, 124},
    {"DE", "Germany", R::kEurope, 78},
    {"GB", "United Kingdom", R::kEurope, 65},
    {"FR", "France", R::kEurope, 60},
    {"IT", "Italy", R::kEurope, 51},
    {"ES", "Spain", R::kEurope, 43},
    {"PL", "Poland", R::kEurope, 32},
    {"UA", "Ukraine", R::kEurope, 31},
    {"NL", "Netherlands", R::kEurope, 16},
    {"RO", "Romania", R::kEurope, 16},
    {"BE", "Belgium", R::kEurope, 10},
    {"CZ", "Czechia", R::kEurope, 9},
    {"SE", "Sweden", R::kEurope, 10},
    {"GR", "Greece", R::kEurope, 8},
    {"PT", "Portugal", R::kEurope, 8},
    {"HU", "Hungary", R::kEurope, 8},
    {"CH", "Switzerland", R::kEurope, 8},
    {"AT", "Austria", R::kEurope, 8},
    {"BG", "Bulgaria", R::kEurope, 5},
    {"DK", "Denmark", R::kEurope, 6},
    {"FI", "Finland", R::kEurope, 5},
    {"NO", "Norway", R::kEurope, 5},
    {"IE", "Ireland", R::kEurope, 4},
    {"RS", "Serbia", R::kEurope, 6},
    {"SK", "Slovakia", R::kEurope, 4},
    // North America (incl. Central America & Caribbean)
    {"US", "United States", R::kNorthAmerica, 298},
    {"MX", "Mexico", R::kNorthAmerica, 92},
    {"CA", "Canada", R::kNorthAmerica, 35},
    {"GT", "Guatemala", R::kNorthAmerica, 7},
    {"CU", "Cuba", R::kNorthAmerica, 7},
    {"DO", "Dominican Rep.", R::kNorthAmerica, 8},
    {"HN", "Honduras", R::kNorthAmerica, 4},
    {"CR", "Costa Rica", R::kNorthAmerica, 4},
    {"PA", "Panama", R::kNorthAmerica, 3},
    {"SV", "El Salvador", R::kNorthAmerica, 4},
    // South America
    {"BR", "Brazil", R::kSouthAmerica, 160},
    {"AR", "Argentina", R::kSouthAmerica, 36},
    {"CO", "Colombia", R::kSouthAmerica, 35},
    {"VE", "Venezuela", R::kSouthAmerica, 21},
    {"PE", "Peru", R::kSouthAmerica, 24},
    {"CL", "Chile", R::kSouthAmerica, 16},
    {"EC", "Ecuador", R::kSouthAmerica, 10},
    {"BO", "Bolivia", R::kSouthAmerica, 6},
    {"PY", "Paraguay", R::kSouthAmerica, 4},
    {"UY", "Uruguay", R::kSouthAmerica, 3},
    // Africa
    {"NG", "Nigeria", R::kAfrica, 104},
    {"EG", "Egypt", R::kAfrica, 59},
    {"ZA", "South Africa", R::kAfrica, 38},
    {"KE", "Kenya", R::kAfrica, 21},
    {"MA", "Morocco", R::kAfrica, 27},
    {"DZ", "Algeria", R::kAfrica, 26},
    {"ET", "Ethiopia", R::kAfrica, 24},
    {"GH", "Ghana", R::kAfrica, 15},
    {"TZ", "Tanzania", R::kAfrica, 15},
    {"TN", "Tunisia", R::kAfrica, 8},
    {"UG", "Uganda", R::kAfrica, 12},
    {"SN", "Senegal", R::kAfrica, 8},
    {"CI", "Ivory Coast", R::kAfrica, 12},
    {"CM", "Cameroon", R::kAfrica, 8},
    {"ZW", "Zimbabwe", R::kAfrica, 5},
    // Oceania
    {"AU", "Australia", R::kOceania, 23},
    {"NZ", "New Zealand", R::kOceania, 4},
    {"FJ", "Fiji", R::kOceania, 1},
    {"PG", "Papua New Guinea", R::kOceania, 1},
};

}  // namespace

std::span<const Country> country_table() { return kCountries; }

}  // namespace offnet::topo
