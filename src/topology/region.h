#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace offnet::topo {

/// Continents, the paper's regional-growth granularity (Fig. 6).
enum class Region : std::uint8_t {
  kAfrica,
  kAsia,
  kEurope,
  kNorthAmerica,
  kOceania,
  kSouthAmerica,
};

constexpr std::size_t kRegionCount = 6;

std::string_view region_name(Region region);
std::span<const Region> all_regions();

/// A country with its estimated Internet-user population. Countries are
/// the unit of the paper's user-population coverage analysis (§6.5); each
/// AS is assigned to exactly one country (95% of ASes operate in a single
/// country per the APNIC dataset).
struct Country {
  std::string_view code;        // ISO-3166-ish two-letter code
  std::string_view name;
  Region region;
  double internet_users_m;      // Internet users, millions (ca. 2021)
};

/// Built-in country table: the world's major Internet markets plus
/// regional aggregates, standing in for the APNIC per-economy dataset.
std::span<const Country> country_table();

using CountryId = std::uint16_t;

constexpr CountryId kNoCountry = 0xffff;

}  // namespace offnet::topo
