#include "topology/topology.h"

#include "net/date.h"

namespace offnet::topo {

Topology::Topology(AsGraph graph, std::vector<AsRecord> ases, OrgDb orgs)
    : graph_(std::move(graph)), ases_(std::move(ases)), orgs_(std::move(orgs)) {
  asn_index_.reserve(ases_.size());
  for (AsId id = 0; id < ases_.size(); ++id) {
    asn_index_.emplace(ases_[id].asn, id);
  }
  std::size_t snapshots = net::snapshot_count();
  alive_cache_.resize(snapshots);
  alive_count_cache_.assign(snapshots, 0);
  cone_cache_.resize(snapshots);
}

std::optional<AsId> Topology::find_asn(net::Asn asn) const {
  auto it = asn_index_.find(asn);
  if (it == asn_index_.end()) return std::nullopt;
  return it->second;
}

const std::vector<char>& Topology::alive_mask(std::size_t snapshot) const {
  auto& mask = alive_cache_.at(snapshot);
  if (mask.empty()) {
    mask.resize(ases_.size(), 0);
    std::size_t count = 0;
    for (AsId id = 0; id < ases_.size(); ++id) {
      if (ases_[id].birth_snapshot <= snapshot) {
        mask[id] = 1;
        ++count;
      }
    }
    alive_count_cache_[snapshot] = count;
  }
  return mask;
}

std::size_t Topology::alive_count(std::size_t snapshot) const {
  alive_mask(snapshot);
  return alive_count_cache_.at(snapshot);
}

const std::vector<std::uint32_t>& Topology::cone_sizes(
    std::size_t snapshot) const {
  auto& cones = cone_cache_.at(snapshot);
  if (cones.empty() && !ases_.empty()) {
    cones = graph_.customer_cone_sizes(alive_mask(snapshot));
  }
  return cones;
}

}  // namespace offnet::topo
