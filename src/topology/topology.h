#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/asn.h"
#include "net/prefix.h"
#include "topology/as_graph.h"
#include "topology/category.h"
#include "topology/org_db.h"
#include "topology/region.h"

namespace offnet::topo {

/// Everything the simulation knows about one AS. `planned_tier` is
/// generator intent and must never be consulted by the inference pipeline
/// (it uses measured cone sizes, like the paper).
struct AsRecord {
  net::Asn asn = net::kNoAsn;
  std::size_t birth_snapshot = 0;  // first study snapshot the AS is active
  CountryId country = kNoCountry;
  OrgId org = kNoOrg;
  std::vector<net::Prefix> prefixes;
  double user_share = 0.0;       // share of the country's Internet users
  bool population_flaky = false; // fails the APNIC >=25% presence filter
  bool eyeball = false;          // hosts end users at all
  /// Core infrastructure (Hypergiant orgs): announces all of its address
  /// space, always.
  bool always_routed = false;
  /// IPv6-only mobile operator (§7): invisible to IPv4-wide scans, so
  /// any HG deployment inside it cannot be uncovered by the methodology.
  bool ipv6_only = false;
  SizeCategory planned_tier = SizeCategory::kStub;
};

/// The synthetic Internet topology: AS graph, per-AS metadata, countries,
/// and organizations. Immutable after generation; per-snapshot views are
/// derived via alive masks (new ASes appear over the study period).
class Topology {
 public:
  Topology(AsGraph graph, std::vector<AsRecord> ases, OrgDb orgs);

  const AsGraph& graph() const { return graph_; }
  const OrgDb& orgs() const { return orgs_; }

  std::size_t as_count() const { return ases_.size(); }
  const AsRecord& as(AsId id) const { return ases_[id]; }
  std::span<const AsRecord> ases() const { return ases_; }

  std::optional<AsId> find_asn(net::Asn asn) const;

  const Country& country(CountryId id) const { return country_table()[id]; }
  std::size_t country_count() const { return country_table().size(); }

  /// true for each AS already active at study snapshot `snapshot`.
  const std::vector<char>& alive_mask(std::size_t snapshot) const;
  std::size_t alive_count(std::size_t snapshot) const;

  /// Customer-cone sizes for the snapshot's induced subgraph, lazily
  /// computed and cached (the CAIDA per-snapshot dataset equivalent).
  const std::vector<std::uint32_t>& cone_sizes(std::size_t snapshot) const;

  SizeCategory category(AsId id, std::size_t snapshot) const {
    return categorize(cone_sizes(snapshot)[id]);
  }

 private:
  AsGraph graph_;
  std::vector<AsRecord> ases_;
  OrgDb orgs_;
  std::unordered_map<net::Asn, AsId> asn_index_;

  // Lazily filled per-snapshot caches.
  mutable std::vector<std::vector<char>> alive_cache_;
  mutable std::vector<std::size_t> alive_count_cache_;
  mutable std::vector<std::vector<std::uint32_t>> cone_cache_;
};

}  // namespace offnet::topo
