#include <gtest/gtest.h>

#include <numeric>

#include "analysis/certgroups.h"
#include "analysis/cohosting.h"
#include "analysis/coverage.h"
#include "analysis/demographics.h"
#include "analysis/regional.h"
#include "analysis/validation.h"
#include "core/longitudinal.h"
#include "test_world.h"

namespace offnet::analysis {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  const scan::World& world() { return testing::small_world(); }

  static std::size_t last_snapshot() { return net::snapshot_count() - 1; }

  const core::SnapshotResult& last_result() {
    static const core::SnapshotResult result = [this] {
      core::LongitudinalRunner runner(world());
      return runner.run_one(last_snapshot());
    }();
    return result;
  }
};

TEST_F(AnalysisTest, DemographicsSharesSumToOne) {
  const auto& result = last_result();
  const auto& google = result.find("Google")->confirmed_or_ases;
  auto counts = categorize_set(world().topology(), google, last_snapshot());
  auto s = shares(counts);
  double total = std::accumulate(s.begin(), s.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  std::size_t count_total = std::accumulate(counts.begin(), counts.end(),
                                            std::size_t{0});
  EXPECT_EQ(count_total, google.size());
}

TEST_F(AnalysisTest, FootprintDemographicsSkewLargerThanInternet) {
  // §6.3: HG hosts are far less stub-heavy than the Internet baseline.
  const auto& result = last_result();
  const auto& google = result.find("Google")->confirmed_or_ases;
  auto host_shares = shares(
      categorize_set(world().topology(), google, last_snapshot()));
  auto internet_shares = shares(
      internet_demographics(world().topology(), last_snapshot()));
  EXPECT_LT(host_shares[0], 0.55);           // stubs well below 85%
  EXPECT_GT(internet_shares[0], 0.80);
  EXPECT_GT(host_shares[2], internet_shares[2] * 3);  // medium over-represented
}

TEST_F(AnalysisTest, RegionalizePartitionsSet) {
  const auto& result = last_result();
  const auto& ases = result.find("Facebook")->confirmed_or_ases;
  auto counts = regionalize_set(world().topology(), ases);
  std::size_t total = std::accumulate(counts.begin(), counts.end(),
                                      std::size_t{0});
  EXPECT_EQ(total, ases.size());
  std::size_t via_filters = 0;
  for (topo::Region r : topo::all_regions()) {
    via_filters += filter_region(world().topology(), ases, r).size();
  }
  EXPECT_EQ(via_filters, ases.size());
}

TEST_F(AnalysisTest, CoverageBounds) {
  const auto& result = last_result();
  CoverageAnalysis coverage(world().topology(), world().population());
  const auto& hosts = result.find("Google")->confirmed_or_ases;
  for (const auto& cc : coverage.per_country(hosts, last_snapshot())) {
    EXPECT_GE(cc.fraction, 0.0);
    EXPECT_LE(cc.fraction, 1.0);
  }
  double world_cov = coverage.worldwide(hosts, last_snapshot());
  EXPECT_GT(world_cov, 0.0);
  EXPECT_LE(world_cov, 1.0);
}

TEST_F(AnalysisTest, ConeCoverageDominatesDirect) {
  // Fig. 8 vs Fig. 7: serving customer cones can only increase coverage.
  const auto& result = last_result();
  CoverageAnalysis coverage(world().topology(), world().population());
  const auto& hosts = result.find("Google")->confirmed_or_ases;
  double direct = coverage.worldwide(hosts, last_snapshot(), false);
  double cones = coverage.worldwide(hosts, last_snapshot(), true);
  EXPECT_GE(cones, direct);
  auto direct_countries = coverage.per_country(hosts, last_snapshot());
  auto cone_countries = coverage.per_country_with_cones(hosts,
                                                        last_snapshot());
  for (std::size_t i = 0; i < direct_countries.size(); ++i) {
    EXPECT_GE(cone_countries[i].fraction + 1e-12,
              direct_countries[i].fraction);
  }
}

TEST_F(AnalysisTest, CoverageMonotoneInHosts) {
  const auto& result = last_result();
  CoverageAnalysis coverage(world().topology(), world().population());
  const auto& all_hosts = result.find("Google")->confirmed_or_ases;
  std::vector<topo::AsId> half(all_hosts.begin(),
                               all_hosts.begin() + all_hosts.size() / 2);
  EXPECT_LE(coverage.worldwide(half, last_snapshot()),
            coverage.worldwide(all_hosts, last_snapshot()) + 1e-12);
}

TEST_F(AnalysisTest, WhatIfAdditionsImproveCoverage) {
  const auto& result = last_result();
  CoverageAnalysis coverage(world().topology(), world().population());
  const auto& hosts = result.find("Facebook")->confirmed_or_ases;
  // Use the US (always in the table).
  topo::CountryId us = 0;
  for (topo::CountryId c = 0; c < world().topology().country_count(); ++c) {
    if (world().topology().country(c).code == std::string_view("US")) us = c;
  }
  double before = 0.0;
  {
    std::vector<char> mask(world().topology().as_count(), 0);
    for (topo::AsId id : hosts) mask[id] = 1;
    before = world().population().country_coverage(us, mask, last_snapshot());
  }
  auto picks = coverage.best_additions(hosts, us, last_snapshot(), 5);
  ASSERT_FALSE(picks.empty());
  double previous = before;
  for (const auto& pick : picks) {
    EXPECT_GE(pick.coverage_after + 1e-12, previous);
    previous = pick.coverage_after;
  }
  EXPECT_GT(previous, before);
}

TEST_F(AnalysisTest, CertGroupsShares) {
  const auto& result = last_result();
  const auto& ip_certs = result.find("Google")->candidate_ip_certs;
  auto breakdown = cert_groups(ip_certs, 10);
  EXPECT_EQ(breakdown.total_ips, ip_certs.size());
  EXPECT_GT(breakdown.distinct_certs, 1u);
  // Shares descending, bounded, cumulative <= 1.
  for (std::size_t i = 1; i < breakdown.top_shares.size(); ++i) {
    EXPECT_LE(breakdown.top_shares[i], breakdown.top_shares[i - 1]);
  }
  EXPECT_LE(breakdown.cumulative_top(10), 1.0 + 1e-9);
  EXPECT_GT(breakdown.cumulative_top(10), 0.3);
  EXPECT_EQ(cert_groups({}, 10).total_ips, 0u);
}

TEST_F(AnalysisTest, GroundTruthComparison) {
  auto acc = compare_to_ground_truth(world(), last_result(), "Google");
  EXPECT_GT(acc.measured, 0u);
  EXPECT_GT(acc.truth, 0u);
  EXPECT_LE(acc.overlap, std::min(acc.measured, acc.truth));
  // §5 validation band: precision high, recall ~89-95%.
  EXPECT_GT(acc.precision(), 0.9);
  EXPECT_GT(acc.recall(), 0.8);
  EXPECT_LE(acc.recall(), 1.0);
}

TEST_F(AnalysisTest, CrossDomainValidation) {
  auto cross = cross_domain_validation(world(), last_result());
  EXPECT_GT(cross.probes, 1000u);
  // §5: ~89.7% of probes fail (correct); of the validating ones, almost
  // all are Akamai edges serving other HGs' content.
  EXPECT_GT(cross.failing_share(), 0.75);
  EXPECT_LT(cross.failing_share(), 0.995);
  EXPECT_GT(cross.akamai_share_of_validated(), 0.85);
}

TEST_F(AnalysisTest, ReverseValidation) {
  auto snap = world().scan(last_snapshot(), scan::ScannerKind::kRapid7);
  auto reverse = reverse_validation(world(), last_result(), snap, 0.25);
  EXPECT_GT(reverse.sampled_ips, 1000u);
  EXPECT_LE(reverse.sampled_offnet_ips, reverse.sampled_ips);
  EXPECT_LE(reverse.valid_inferred_offnets, reverse.valid_ips);
  // §5: only ~0.1% of sampled IPs validate (after rescaling the
  // background to the paper's corpus size); of those, ~98% are inferred
  // off-nets.
  double upscale = 1.0 / world().config().background_scale;
  EXPECT_LT(reverse.scale_corrected_valid_share(upscale), 0.01);
  if (reverse.valid_ips > 20) {
    EXPECT_GT(reverse.inferred_share_of_valid(), 0.7);
  }
}

TEST_F(AnalysisTest, EarlierComparison) {
  auto cmp = compare_to_earlier(world(), last_result(), "ECS study",
                                "Google", 0.9);
  EXPECT_GT(cmp.earlier_ases, 0u);
  EXPECT_GT(cmp.uncovered_share(), 0.85);  // paper: 98%
  EXPECT_GT(cmp.additional, 0u);           // paper: +283 ASes
}

TEST_F(AnalysisTest, EffectiveFootprintPicksEnvelope) {
  core::HgFootprint fp;
  fp.confirmed_or_ases = {1, 2};
  EXPECT_EQ(effective_footprint(fp), fp.confirmed_or_ases);
  fp.confirmed_expired_http_ases = {1, 2, 3};
  EXPECT_EQ(effective_footprint(fp), fp.confirmed_expired_http_ases);
}

TEST_F(AnalysisTest, CohostingDistributions) {
  core::LongitudinalRunner runner(world());
  auto results = runner.run(last_snapshot() - 2, last_snapshot());
  CohostingAnalysis cohosting(world().topology(), results);
  ASSERT_EQ(cohosting.snapshots(), 3u);

  auto dist = cohosting.snapshot_distribution(2);
  std::size_t sum = dist.hosted_n[1] + dist.hosted_n[2] + dist.hosted_n[3] +
                    dist.hosted_n[4];
  EXPECT_EQ(sum, dist.total_top4);
  EXPECT_GE(dist.total_any_hg, dist.total_top4);
  // §6.6: the overwhelming majority of HG hosts host a top-4 HG.
  EXPECT_GT(dist.top4_share, 0.9);
  // By 2021, most hosts run 2+ of the top-4.
  EXPECT_GT(dist.hosted_n[2] + dist.hosted_n[3] + dist.hosted_n[4],
            dist.hosted_n[1]);

  std::size_t always = 0;
  auto always_dists = cohosting.always_host_distributions(&always);
  EXPECT_EQ(always_dists.size(), 3u);
  EXPECT_GT(always, 0u);
  for (const auto& d : always_dists) {
    EXPECT_LE(d.total_top4, always);
  }

  auto persistent = cohosting.persistent_distributions(0.5);
  EXPECT_EQ(persistent.size(), 3u);
  EXPECT_GE(persistent[2].total_any_hg, persistent[2].total_top4);

  EXPECT_GE(cohosting.average_newcomer_share(), 0.0);
  EXPECT_LT(cohosting.average_newcomer_share(), 0.5);
}

}  // namespace
}  // namespace offnet::analysis
