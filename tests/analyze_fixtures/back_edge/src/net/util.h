// Fixture: layer-back-edge — src/net (layer 1: util) must not include
// src/svc (layer 5: service).
#pragma once

#include "svc/server.h"
