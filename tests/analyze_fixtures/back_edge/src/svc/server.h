// Fixture stub: the higher-layer header the back edge points at.
#pragma once
