// Fixture: a file every pass accepts — the analyzer's exit-0 case.
#pragma once

namespace offnet::net {

int answer();

}  // namespace offnet::net
