// Fixture: guard-dangling — OFFNET_GUARDED_BY naming a mutex that is
// not a member of the class. mu_ itself guards covered_, so the only
// finding is the dangling annotation.
#pragma once

namespace offnet::net {

class Guarded {
 public:
  void poke();

 private:
  core::Mutex mu_;
  int covered_ OFFNET_GUARDED_BY(mu_) = 0;
  int dangling_ OFFNET_GUARDED_BY(gone_mu_) = 0;
};

}  // namespace offnet::net
