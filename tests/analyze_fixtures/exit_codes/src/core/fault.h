// Fixture stub: the injector's abort code, deliberately out of sync
// with the fixture's kExitCrashInjected (71).
#pragma once

namespace offnet::core {

class FaultInjector {
 public:
  static constexpr int kAbortExitCode = 70;
};

}  // namespace offnet::core
