// Fixture: exit-code registry — kExitUsage is only named by a bare 64
// at a call site (exit-code-literal + exit-code-dead), and
// kExitCrashInjected disagrees with FaultInjector::kAbortExitCode
// (exit-code-mismatch).
#pragma once

namespace offnet::tools {

inline constexpr int kExitUsage = 64;
inline constexpr int kExitData = 65;
inline constexpr int kExitCrashInjected = 71;

}  // namespace offnet::tools
