// Fixture: exit-code call sites.
#include "exit_codes.h"

int main(int argc, char**) {
  if (argc < 2) std::exit(64);  // exit-code-literal: 64 is kExitUsage
  return offnet::tools::kExitData;
}
