// Fixture: fault_stage registry — kDeadStage is never used
// (fault-stage-dead); kUsedStage is referenced by constant and, in
// user.cpp, bypassed with its literal.
#pragma once

namespace offnet::core {

namespace fault_stage {
inline constexpr const char* kUsedStage = "used-stage";
inline constexpr const char* kDeadStage = "dead-stage";
}  // namespace fault_stage

}  // namespace offnet::core
