// Fixture: FaultInjector call sites for the fault-stage rules.
#include "core/fault.h"

namespace offnet::io {

void arm(core::FaultInjector& faults) {
  faults.on(core::fault_stage::kUsedStage);  // the sanctioned form
  faults.on("used-stage");                   // fault-stage-bypass
  faults.fail_at("mystery-stage", 3);        // fault-stage-undeclared
}

}  // namespace offnet::io
