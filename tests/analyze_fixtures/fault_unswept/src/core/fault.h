// Fixture: fault_stage registry for the fault-stage-unswept rule —
// both stages are crossed (so neither is dead), but the sweep table in
// tools/offnet_chaos.cpp only names kSweptStage.
#pragma once

namespace offnet::core {

namespace fault_stage {
inline constexpr const char* kSweptStage = "swept-stage";
inline constexpr const char* kForgottenStage = "forgotten-stage";
}  // namespace fault_stage

}  // namespace offnet::core
