// Fixture: both stages are crossed through their constants, so the
// only finding left for this tree is the sweep-coverage gap.
#include "core/fault.h"

namespace offnet::io {

void cross(core::FaultInjector& faults) {
  faults.on(core::fault_stage::kSweptStage);
  faults.on_sys(core::fault_stage::kForgottenStage);
}

}  // namespace offnet::io
