// Fixture: a sweep table that forgot one registered stage.
#include "core/fault.h"

namespace {

const char* const kSweep[] = {
    offnet::core::fault_stage::kSweptStage,
};

}  // namespace

int main() { return kSweep[0] == nullptr; }
