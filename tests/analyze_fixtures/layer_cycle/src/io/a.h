// Fixture: layer-cycle — io and tls are both layer 2, so neither
// include is a back edge; the cycle check has to catch it.
#pragma once

#include "tls/b.h"
