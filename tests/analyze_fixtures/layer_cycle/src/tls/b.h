// Fixture: second half of the io <-> tls include cycle.
#pragma once

#include "io/a.h"
