// Fixture: the registry side of the metric-consistency checks. kOrphan
// is declared but never referenced (metric-dead); kUsed is referenced
// both by constant (fine) and by literal (metric-bypass in user.cpp).
#pragma once

namespace offnet::obs {

namespace metric_names {
inline constexpr const char* kUsed = "fixture/used";
inline constexpr const char* kOrphan = "fixture/orphan";
}  // namespace metric_names

}  // namespace offnet::obs
