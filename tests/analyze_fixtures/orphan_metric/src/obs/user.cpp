// Fixture: call-site side of the metric-consistency checks.
#include "obs/names.h"

namespace offnet::obs {

void emit(Registry& registry) {
  registry.counter(metric_names::kUsed).add(1);   // the sanctioned form
  registry.counter("fixture/used").add(1);        // metric-bypass
  registry.gauge("fixture/unknown").set(1);       // metric-undeclared
}

}  // namespace offnet::obs
