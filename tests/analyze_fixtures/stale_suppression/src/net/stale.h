// Fixture: stale-suppression — the grant below covers a line where
// layer-back-edge never fires, so the grant itself is the finding.
#pragma once

namespace offnet::net {

// offnet-analyze: allow(layer-back-edge): rotted -- nothing fires here
int answer();

}  // namespace offnet::net
