// Fixture: a justified inline grant silences the mutex-unguarded
// finding the class would otherwise produce.
#pragma once

namespace offnet::net {

class Quiet {
 public:
  void poke();

 private:
  // offnet-analyze: allow(mutex-unguarded): fixture proves grants silence findings
  core::Mutex mu_;
};

}  // namespace offnet::net
