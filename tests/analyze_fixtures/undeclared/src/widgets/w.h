// Fixture: layer-undeclared — src/widgets/ is in no declared layer.
#pragma once
