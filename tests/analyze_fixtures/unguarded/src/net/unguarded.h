// Fixture: mutex-unguarded and condvar-unguarded — lock members whose
// classes declare no OFFNET_GUARDED_BY state at all.
#pragma once

namespace offnet::net {

class Pool {
 public:
  void put(int v);

 private:
  core::Mutex mu_;  // mutex-unguarded: no field names it
  int unannotated_ = 0;
};

class Waiter {
 public:
  void wake();

 private:
  core::Mutex mu_;
  core::CondVar cv_;  // condvar-unguarded: no guarded predicate state
};

}  // namespace offnet::net
