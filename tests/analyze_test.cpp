// Tests for offnet_analyze (tools/analyze): every pass fires on its
// fixture tree with exact rule ids, paths, and stable keys;
// suppressions and the baseline behave; binary exit codes are stable;
// and the real tree analyzes clean against the checked-in baseline.
// Fixture trees under tests/analyze_fixtures/ are miniature repos
// (repo_relative anchors at their src/ or tools/ component); both
// lint_tree and analyze_tree skip that directory when walking the
// real repo.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace {

using offnet::analyze::analyze_tree;
using offnet::analyze::apply_baseline;
using offnet::analyze::Baseline;
using offnet::analyze::Finding;
using offnet::analyze::parse_baseline;
using offnet::analyze::render_baseline;

std::string fixture_root(const std::string& name) {
  return std::string(OFFNET_SOURCE_DIR) + "/tests/analyze_fixtures/" + name;
}

std::vector<Finding> analyze_fixture(const std::string& name) {
  return analyze_tree({fixture_root(name)});
}

std::string describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += offnet::analyze::format(finding) + "\n";
  }
  return out;
}

int run_analyzer(const std::string& args) {
  const int status =
      std::system((std::string(OFFNET_ANALYZE_BIN) + " " + args +
                   " > /dev/null 2>&1")
                      .c_str());
  EXPECT_NE(status, -1);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(AnalyzeLayering, BackEdgeFixture) {
  auto findings = analyze_fixture("back_edge");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layer-back-edge");
  EXPECT_EQ(findings[0].file, "src/net/util.h");
  EXPECT_EQ(findings[0].line, 5u);  // the #include line
  EXPECT_EQ(findings[0].key, "src/net/util.h->src/svc/server.h");
}

TEST(AnalyzeLayering, CycleFixture) {
  auto findings = analyze_fixture("layer_cycle");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layer-cycle");
  EXPECT_EQ(findings[0].file, "src/io/a.h");
  EXPECT_EQ(findings[0].key, "src/io/a.h->src/tls/b.h->src/io/a.h");
  // The message prints the whole chain for the human fixing it.
  EXPECT_NE(findings[0].message.find("src/tls/b.h"), std::string::npos);
}

TEST(AnalyzeLayering, UndeclaredFixture) {
  auto findings = analyze_fixture("undeclared");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layer-undeclared");
  EXPECT_EQ(findings[0].file, "src/widgets/w.h");
  EXPECT_EQ(findings[0].key, "src/widgets/w.h");
}

TEST(AnalyzeAnnotations, DanglingGuardFixture) {
  auto findings = analyze_fixture("dangling_guard");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "guard-dangling");
  EXPECT_EQ(findings[0].file, "src/net/guarded.h");
  EXPECT_EQ(findings[0].key, "src/net/guarded.h:Guarded::gone_mu_");
}

TEST(AnalyzeAnnotations, UnguardedFixture) {
  auto findings = analyze_fixture("unguarded");
  ASSERT_EQ(findings.size(), 3u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "mutex-unguarded");
  EXPECT_EQ(findings[0].key, "src/net/unguarded.h:Pool::mu_");
  EXPECT_EQ(findings[1].rule, "mutex-unguarded");
  EXPECT_EQ(findings[1].key, "src/net/unguarded.h:Waiter::mu_");
  EXPECT_EQ(findings[2].rule, "condvar-unguarded");
  EXPECT_EQ(findings[2].key, "src/net/unguarded.h:Waiter::cv_");
}

TEST(AnalyzeRegistries, OrphanMetricFixture) {
  auto findings = analyze_fixture("orphan_metric");
  ASSERT_EQ(findings.size(), 3u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "metric-dead");
  EXPECT_EQ(findings[0].file, "src/obs/names.h");
  EXPECT_EQ(findings[0].key, "kOrphan");
  EXPECT_EQ(findings[1].rule, "metric-bypass");
  EXPECT_EQ(findings[1].key, "src/obs/user.cpp:fixture/used");
  // The bypass message points at the constant to use instead.
  EXPECT_NE(findings[1].message.find("kUsed"), std::string::npos);
  EXPECT_EQ(findings[2].rule, "metric-undeclared");
  EXPECT_EQ(findings[2].key, "src/obs/user.cpp:fixture/unknown");
}

TEST(AnalyzeRegistries, FaultStagesFixture) {
  auto findings = analyze_fixture("fault_stages");
  ASSERT_EQ(findings.size(), 3u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "fault-stage-dead");
  EXPECT_EQ(findings[0].key, "kDeadStage");
  EXPECT_EQ(findings[1].rule, "fault-stage-bypass");
  EXPECT_EQ(findings[1].key, "src/io/user.cpp:used-stage");
  EXPECT_EQ(findings[2].rule, "fault-stage-undeclared");
  EXPECT_EQ(findings[2].key, "src/io/user.cpp:mystery-stage");
}

// A registered stage missing from the chaos harness's sweep table is a
// coverage hole: its fault cells are never visited. The rule only fires
// when offnet_chaos.cpp is part of the analyzed tree (the fault_stages
// fixture above has no harness and stays at its 3 findings).
TEST(AnalyzeRegistries, FaultUnsweptFixture) {
  auto findings = analyze_fixture("fault_unswept");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "fault-stage-unswept");
  EXPECT_EQ(findings[0].file, "src/core/fault.h");
  EXPECT_EQ(findings[0].key, "kForgottenStage");
  EXPECT_NE(findings[0].message.find("tools/offnet_chaos.cpp"),
            std::string::npos);
}

TEST(AnalyzeRegistries, ExitCodesFixture) {
  auto findings = analyze_fixture("exit_codes");
  ASSERT_EQ(findings.size(), 4u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "exit-code-dead");
  EXPECT_EQ(findings[0].key, "kExitUsage");
  EXPECT_EQ(findings[1].rule, "exit-code-dead");
  EXPECT_EQ(findings[1].key, "kExitCrashInjected");
  EXPECT_EQ(findings[2].rule, "exit-code-mismatch");
  EXPECT_EQ(findings[2].key, "kExitCrashInjected");
  EXPECT_EQ(findings[3].rule, "exit-code-literal");
  EXPECT_EQ(findings[3].file, "tools/main.cpp");
  EXPECT_EQ(findings[3].key, "tools/main.cpp:exit(64)");
  // The literal message names the constant that should be used.
  EXPECT_NE(findings[3].message.find("kExitUsage"), std::string::npos);
}

TEST(AnalyzeSuppressions, JustifiedGrantSilences) {
  auto findings = analyze_fixture("suppressed");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(AnalyzeSuppressions, RottedGrantIsAFinding) {
  auto findings = analyze_fixture("stale_suppression");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "stale-suppression");
  EXPECT_EQ(findings[0].file, "src/net/stale.h");
  EXPECT_EQ(findings[0].line, 7u);  // the rotted allow() comment
}

TEST(AnalyzeBaseline, MatchingEntryDropsTheFinding) {
  Baseline baseline = parse_baseline(
      "b.txt",
      "layer-back-edge src/net/util.h->src/svc/server.h # tracked\n");
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_TRUE(baseline.errors.empty());
  auto findings =
      apply_baseline(analyze_fixture("back_edge"), baseline, "b.txt");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(AnalyzeBaseline, StaleEntryIsAFinding) {
  Baseline baseline = parse_baseline(
      "b.txt",
      "layer-back-edge src/net/util.h->src/svc/server.h # tracked\n"
      "layer-cycle nothing->here # long gone\n");
  auto findings =
      apply_baseline(analyze_fixture("back_edge"), baseline, "b.txt");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "stale-baseline");
  EXPECT_EQ(findings[0].file, "b.txt");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(AnalyzeBaseline, JustificationIsMandatory) {
  Baseline baseline = parse_baseline(
      "b.txt", "layer-back-edge src/net/util.h->src/svc/server.h\n");
  EXPECT_TRUE(baseline.entries.empty());
  ASSERT_EQ(baseline.errors.size(), 1u);
  EXPECT_EQ(baseline.errors[0].rule, "stale-baseline");
  // The malformed line suppresses nothing.
  auto findings =
      apply_baseline(analyze_fixture("back_edge"), baseline, "b.txt");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
}

TEST(AnalyzeBaseline, RenderCarriesJustificationsAndStampsNewOnes) {
  const std::vector<Finding> findings = analyze_fixture("back_edge");
  Baseline previous = parse_baseline(
      "b.txt",
      "layer-back-edge src/net/util.h->src/svc/server.h # my reason\n");
  const std::string kept = render_baseline(findings, previous);
  EXPECT_NE(kept.find("# my reason"), std::string::npos);
  const std::string fresh = render_baseline(findings, Baseline{});
  EXPECT_NE(fresh.find("TODO(reviewer): justify"), std::string::npos);
  // Rendered output parses back with no errors and covers the finding.
  Baseline round_trip = parse_baseline("b.txt", kept);
  EXPECT_TRUE(round_trip.errors.empty());
  EXPECT_TRUE(
      apply_baseline(findings, round_trip, "b.txt").empty());
}

TEST(AnalyzeClean, CleanFixtureHasNoFindings) {
  auto findings = analyze_fixture("clean");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(AnalyzeClean, FormatIsFileLineRuleMessageKey) {
  Finding finding{"src/a.h", 3, "layer-cycle", "a->b->a", "message"};
  EXPECT_EQ(offnet::analyze::format(finding),
            "src/a.h:3: layer-cycle: message [a->b->a]");
}

TEST(AnalyzeClean, RepoRelativeAnchorsAtTheLastRepoComponent) {
  EXPECT_EQ(offnet::analyze::repo_relative(
                "/x/tests/analyze_fixtures/back_edge/src/net/util.h"),
            "src/net/util.h");
  EXPECT_EQ(offnet::analyze::repo_relative("src/core/pipeline.h"),
            "src/core/pipeline.h");
  EXPECT_EQ(offnet::analyze::repo_relative("/x/tools/exit_codes.h"),
            "tools/exit_codes.h");
}

TEST(AnalyzeClean, RealTreeAnalyzesCleanAgainstTheBaseline) {
  const std::string root(OFFNET_SOURCE_DIR);
  std::ifstream in(root + "/tools/analyze/baseline.txt",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing tools/analyze/baseline.txt";
  std::ostringstream text;
  text << in.rdbuf();
  Baseline baseline = parse_baseline("tools/analyze/baseline.txt",
                                     text.str());
  EXPECT_TRUE(baseline.errors.empty());
  auto findings = apply_baseline(
      analyze_tree({root + "/src", root + "/tools", root + "/bench",
                    root + "/tests"}),
      baseline, "tools/analyze/baseline.txt");
  for (const Finding& finding : findings) {
    ADD_FAILURE() << offnet::analyze::format(finding);
  }
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeExitCodes, BinaryContract) {
  const std::string root(OFFNET_SOURCE_DIR);
  // Clean tree -> 0.
  EXPECT_EQ(run_analyzer(root + "/tests/analyze_fixtures/clean"), 0);
  // Findings -> 1.
  EXPECT_EQ(run_analyzer(root + "/tests/analyze_fixtures/back_edge"), 1);
  // Usage errors -> 2.
  EXPECT_EQ(run_analyzer(""), 2);
  EXPECT_EQ(run_analyzer("--bogus-flag"), 2);
  EXPECT_EQ(run_analyzer("--fix-baseline " + root +
                         "/tests/analyze_fixtures/clean"),
            2);  // --fix-baseline needs --baseline
  EXPECT_EQ(run_analyzer("--baseline /nonexistent/baseline.txt " + root +
                         "/tests/analyze_fixtures/clean"),
            2);  // unreadable baseline
}

}  // namespace
