#include <gtest/gtest.h>

#include "bgp/feed.h"
#include "bgp/ip2as.h"
#include "topology/generator.h"

namespace offnet::bgp {
namespace {

net::Prefix P(const char* text) { return *net::Prefix::parse(text); }

TEST(OriginSetTest, AddAndQuery) {
  OriginSet set;
  EXPECT_TRUE(set.add(100));
  EXPECT_FALSE(set.add(100));  // duplicate
  EXPECT_TRUE(set.add(200));
  EXPECT_TRUE(set.moas());
  EXPECT_TRUE(set.contains(100));
  EXPECT_TRUE(set.contains(200));
  EXPECT_FALSE(set.contains(300));
  EXPECT_EQ(set.primary(), 100u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(OriginSetTest, CapacityBound) {
  OriginSet set;
  for (net::Asn a = 1; a <= OriginSet::kMaxOrigins; ++a) {
    EXPECT_TRUE(set.add(a));
  }
  EXPECT_FALSE(set.add(99));
  EXPECT_EQ(set.size(), OriginSet::kMaxOrigins);
}

TEST(Ip2AsBuilderTest, PersistenceFilter) {
  Ip2AsBuilder builder;
  builder.add({P("1.0.0.0/24"), 100, Collector::kRipeRis, 0.9});
  builder.add({P("1.0.1.0/24"), 200, Collector::kRipeRis, 0.2});   // dropped
  builder.add({P("1.0.2.0/24"), 300, Collector::kRipeRis, 0.25});  // boundary
  Ip2AsMap map = builder.build();
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.0.5")), 100u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.1.5")), net::kNoAsn);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.2.5")), net::kNoAsn);
  EXPECT_EQ(builder.stats().below_persistence, 2u);
  EXPECT_EQ(builder.stats().accepted, 1u);
}

TEST(Ip2AsBuilderTest, BogonAndReservedFilters) {
  Ip2AsBuilder builder;
  builder.add({P("10.0.0.0/8"), 100, Collector::kRipeRis, 0.9});
  builder.add({P("1.0.0.0/24"), 64512, Collector::kRipeRis, 0.9});
  builder.add({P("1.0.0.0/24"), 0, Collector::kRouteViews, 0.9});
  Ip2AsMap map = builder.build();
  EXPECT_EQ(map.prefix_count(), 0u);
  EXPECT_EQ(builder.stats().bogon_prefix, 1u);
  EXPECT_EQ(builder.stats().reserved_origin, 2u);
}

TEST(Ip2AsBuilderTest, CollectorMergeAndMoas) {
  Ip2AsBuilder builder;
  builder.add({P("1.0.0.0/24"), 100, Collector::kRipeRis, 0.9});
  builder.add({P("1.0.0.0/24"), 100, Collector::kRouteViews, 0.8});
  builder.add({P("1.0.0.0/24"), 200, Collector::kRouteViews, 0.6});
  Ip2AsMap map = builder.build();
  auto origins = map.lookup(*net::IPv4::parse("1.0.0.1"));
  ASSERT_EQ(origins.size(), 2u);  // merged, deduplicated, MOAS
  EXPECT_EQ(builder.stats().moas_prefixes, 1u);
}

TEST(Ip2AsMapTest, LongestPrefixWins) {
  Ip2AsBuilder builder;
  builder.add({P("1.0.0.0/16"), 100, Collector::kRipeRis, 0.9});
  builder.add({P("1.0.128.0/20"), 200, Collector::kRipeRis, 0.9});
  Ip2AsMap map = builder.build();
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.128.1")), 200u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("1.0.0.1")), 100u);
  EXPECT_EQ(map.primary(*net::IPv4::parse("2.0.0.1")), net::kNoAsn);
}

TEST(Ip2AsMapTest, Coverage) {
  Ip2AsBuilder builder;
  builder.add({P("1.0.0.0/8"), 100, Collector::kRipeRis, 0.9});
  Ip2AsMap map = builder.build();
  std::vector<net::IPv4> probes = {*net::IPv4::parse("1.2.3.4"),
                                   *net::IPv4::parse("2.2.3.4"),
                                   *net::IPv4::parse("1.9.9.9"),
                                   *net::IPv4::parse("9.9.9.9")};
  EXPECT_DOUBLE_EQ(map.coverage(probes), 0.5);
  EXPECT_DOUBLE_EQ(map.coverage({}), 0.0);
}

class FeedTest : public ::testing::Test {
 protected:
  static const topo::Topology& topology() {
    static const topo::Topology topo = [] {
      topo::GeneratorConfig config;
      config.scale = 0.05;
      config.org_seeds.push_back({"Google LLC", "US", 2, 8, 20});
      return topo::TopologyGenerator(config).generate();
    }();
    return topo;
  }
};

TEST_F(FeedTest, FeedCoversMostAliveAsPrefixes) {
  FeedSimulator sim(topology(), FeedConfig{});
  auto feed = sim.monthly_feed(0, Collector::kRipeRis);
  std::size_t total_prefixes = 0;
  const auto& alive = topology().alive_mask(0);
  for (topo::AsId id = 0; id < topology().as_count(); ++id) {
    if (alive[id]) total_prefixes += topology().as(id).prefixes.size();
  }
  EXPECT_GT(feed.size(), total_prefixes * 0.8);
  EXPECT_LT(feed.size(), total_prefixes * 1.3);
}

TEST_F(FeedTest, FeedIsDeterministic) {
  FeedSimulator sim(topology(), FeedConfig{});
  auto a = sim.monthly_feed(3, Collector::kRouteViews);
  auto b = sim.monthly_feed(3, Collector::kRouteViews);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prefix, b[i].prefix);
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_EQ(a[i].fraction_of_month, b[i].fraction_of_month);
  }
}

TEST_F(FeedTest, HypergiantSpaceAlwaysAnnounced) {
  FeedSimulator sim(topology(), FeedConfig{});
  auto google = topology().orgs().find_exact("Google LLC");
  ASSERT_TRUE(google.has_value());
  for (std::size_t t : {std::size_t{0}, std::size_t{15}}) {
    auto feed = sim.monthly_feed(t, Collector::kRipeRis);
    for (topo::AsId id : topology().orgs().ases_of(*google)) {
      for (const net::Prefix& prefix : topology().as(id).prefixes) {
        bool announced = false;
        for (const auto& obs : feed) {
          if (obs.prefix == prefix &&
              obs.origin == topology().as(id).asn) {
            announced = true;
          }
        }
        EXPECT_TRUE(announced) << prefix.to_string();
      }
    }
  }
}

TEST_F(FeedTest, HijacksMostlyFiltered) {
  // Count mappings whose origin is not the owner: the 25% persistence
  // rule must keep wrong-origin mappings rare.
  Ip2AsSeries series(topology(), FeedConfig{});
  const Ip2AsMap& map = series.at(0);
  std::size_t wrong = 0;
  std::size_t total = 0;
  for (topo::AsId id = 0; id < topology().as_count(); ++id) {
    const auto& rec = topology().as(id);
    if (rec.birth_snapshot > 0) continue;
    for (const net::Prefix& prefix : rec.prefixes) {
      auto origins = map.lookup(prefix.first_address());
      if (origins.empty()) continue;
      ++total;
      bool owner_ok = false;
      for (net::Asn origin : origins) {
        if (origin == rec.asn) owner_ok = true;
        // Sibling-org MOAS is legitimate.
        if (auto sibling = topology().find_asn(origin)) {
          if (topology().as(*sibling).org == rec.org) owner_ok = true;
        }
      }
      if (!owner_ok) ++wrong;
    }
  }
  ASSERT_GT(total, 1000u);
  EXPECT_LT(static_cast<double>(wrong) / total, 0.01);
}

TEST_F(FeedTest, SeriesCachesAndRecomputes) {
  Ip2AsSeries series(topology(), FeedConfig{}, 1);
  net::IPv4 probe = topology().as(0).prefixes[0].first_address();
  net::Asn first = series.at(0).primary(probe);
  series.at(5);  // evicts snapshot 0 (capacity 1)
  EXPECT_EQ(series.at(0).primary(probe), first);
  auto stats = series.stats_at(0);
  EXPECT_GT(stats.accepted, 0u);
}

TEST_F(FeedTest, CoverageInRealisticBand) {
  Ip2AsSeries series(topology(), FeedConfig{});
  const Ip2AsMap& map = series.at(0);
  std::vector<net::IPv4> probes;
  const auto& alive = topology().alive_mask(0);
  for (topo::AsId id = 0; id < topology().as_count(); ++id) {
    if (!alive[id]) continue;
    for (const net::Prefix& prefix : topology().as(id).prefixes) {
      probes.push_back(prefix.first_address() + 1);
    }
  }
  double coverage = map.coverage(probes);
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.99);
}

}  // namespace
}  // namespace offnet::bgp
