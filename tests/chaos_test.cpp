// End-to-end tests for the fault-space sweep harness (offnet_chaos):
// the bounded slice — every registered stage × first/last occurrence ×
// every applicable mode — must sweep clean, two identical sweeps must
// produce byte-identical summaries, and the flagship resource-
// exhaustion cell (ENOSPC mid-checkpoint, then --resume) is pinned
// directly against the CLI so its invariant survives even if the
// harness's own checks regress. The exhaustive full slice runs in
// tools/check.sh.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exit_codes.h"

namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_command(const std::string& command, const std::string& out_path,
                const std::string& err_path) {
  const std::string full =
      command + " > " + out_path + " 2> " + err_path;
  const int status = std::system(full.c_str());
  EXPECT_NE(status, -1);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int run_chaos(const std::string& args, const std::string& scratch) {
  return run_command(std::string(OFFNET_CHAOS_BIN) + " --sweep --cli " +
                         OFFNET_CLI_BIN + " --daemon " + OFFNETD_BIN + " " +
                         args,
                     scratch + "/out.txt", scratch + "/err.txt");
}

int run_cli(const std::string& args, const std::string& scratch) {
  return run_command(std::string(OFFNET_CLI_BIN) + " " + args,
                     scratch + "/out.txt", scratch + "/err.txt");
}

void export_month(const std::string& root, const std::string& month) {
  const std::string dir = root + "/" + month;
  fs::create_directories(dir);
  const std::string scratch = temp_dir("chaos_export_scratch");
  ASSERT_EQ(run_cli("export --out " + dir + " --scale 0.02 --month " + month,
                    scratch),
            0)
      << read_file(scratch + "/err.txt");
}

/// The acceptance bar for the harness itself: the bounded slice visits
/// every registered stage (first and last occurrence, every applicable
/// mode) and every cell's invariants hold.
TEST(ChaosSweepTest, BoundedSliceSweepsCleanAcrossEveryStage) {
  const std::string scratch = temp_dir("chaos_bounded");
  const int rc =
      run_chaos("--slice bounded --dir " + scratch + "/sweep", scratch);
  const std::string out = read_file(scratch + "/out.txt");
  EXPECT_EQ(rc, 0) << out << read_file(scratch + "/err.txt");
  EXPECT_NE(out.find(", 0 violations"), std::string::npos) << out;
  // Every stage contributed cells: a `stage=0` entry would mean a
  // registered stage whose fault space was silently skipped.
  EXPECT_EQ(out.find("=0"), std::string::npos) << out;
  for (const char* stage :
       {"feed=", "pipeline=", "checkpoint-write=", "artifact-rename=",
        "svc-reload=", "atomic-write=", "atomic-fsync=", "stream-read=",
        "svc-accept=", "svc-read=", "svc-write="}) {
    EXPECT_NE(out.find(stage), std::string::npos) << stage << "\n" << out;
  }
}

/// Same seed, same corpus, same cells → byte-identical summary. The
/// sweep's verdicts are evidence only if they are reproducible.
TEST(ChaosSweepTest, SweepSummaryIsDeterministic) {
  const std::string scratch = temp_dir("chaos_determinism");
  const std::string args = "--slice bounded --stages checkpoint-write";
  fs::create_directories(scratch + "/a");
  fs::create_directories(scratch + "/b");
  ASSERT_EQ(run_chaos(args + " --dir " + scratch + "/a/sweep",
                      scratch + "/a"),
            0)
      << read_file(scratch + "/a/err.txt");
  ASSERT_EQ(run_chaos(args + " --dir " + scratch + "/b/sweep",
                      scratch + "/b"),
            0)
      << read_file(scratch + "/b/err.txt");
  EXPECT_EQ(read_file(scratch + "/a/out.txt"),
            read_file(scratch + "/b/out.txt"));
}

/// A malformed fault spec is a usage error, not a crash or a sweep
/// that silently arms nothing.
TEST(ChaosSweepTest, UnknownStageIsAUsageError) {
  const std::string scratch = temp_dir("chaos_badstage");
  const int rc = run_chaos("--stages no-such-stage --dir " + scratch +
                               "/sweep",
                           scratch);
  EXPECT_EQ(rc, offnet::tools::kExitUsage);
  EXPECT_NE(read_file(scratch + "/err.txt").find("no-such-stage"),
            std::string::npos);
}

/// The flagship errno cell, pinned end-to-end: the disk fills (injected
/// ENOSPC) during the third checkpoint publish. The run must die with
/// the I/O exit code, leave the previous checkpoint intact and no torn
/// temp behind, and --resume must reproduce the uninterrupted report
/// byte for byte.
TEST(ChaosSweepTest, EnospcMidCheckpointThenResumeIsByteIdentical) {
  const std::string root = temp_dir("chaos_enospc_root");
  export_month(root, "2013-10");
  export_month(root, "2014-01");

  const std::string ref_ckpt = temp_dir("chaos_enospc_ref_ckpt");
  const std::string ref = temp_dir("chaos_enospc_ref");
  ASSERT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ref_ckpt,
                    ref),
            0)
      << read_file(ref + "/err.txt");

  const std::string ckpt = temp_dir("chaos_enospc_ckpt");
  const std::string faulted = temp_dir("chaos_enospc_run");
  EXPECT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ckpt +
                        " --fail-at atomic-write:3:ENOSPC",
                    faulted),
            offnet::tools::kExitIo)
      << read_file(faulted + "/err.txt");
  EXPECT_NE(read_file(faulted + "/err.txt").find("No space left"),
            std::string::npos);
  // The second checkpoint survived; the failed third publish must not
  // leave a torn temp (AtomicFile unlinks it on every failure path).
  EXPECT_TRUE(fs::exists(ckpt + "/checkpoint.offnet"));
  EXPECT_FALSE(fs::exists(ckpt + "/checkpoint.offnet.tmp"));

  const std::string resumed = temp_dir("chaos_enospc_resume");
  ASSERT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ckpt +
                        " --resume",
                    resumed),
            0)
      << read_file(resumed + "/err.txt");
  EXPECT_EQ(read_file(resumed + "/out.txt"), read_file(ref + "/out.txt"));
}

/// A transient read fault (EIO from the stream reader) must cost a
/// retry, not the month: the supervised series re-reads and the report
/// matches the fault-free run. Before the sweep existed this lost the
/// month as "corrupt" with the retry budget unspent.
TEST(ChaosSweepTest, TransientReadFaultIsRetriedNotCorrupt) {
  const std::string root = temp_dir("chaos_eio_root");
  export_month(root, "2013-10");

  const std::string ref = temp_dir("chaos_eio_ref");
  ASSERT_EQ(run_cli("series --root " + root + " --max-retries 2", ref), 0)
      << read_file(ref + "/err.txt");

  const std::string faulted = temp_dir("chaos_eio_run");
  ASSERT_EQ(run_cli("series --root " + root + " --max-retries 2" +
                        " --fail-at stream-read:1:EIO",
                    faulted),
            0)
      << read_file(faulted + "/err.txt");
  EXPECT_EQ(read_file(faulted + "/out.txt"), read_file(ref + "/out.txt"));
  EXPECT_NE(read_file(faulted + "/out.txt").find("1 of 31 snapshots usable"),
            std::string::npos);
}

}  // namespace
