// Crash-safety tests (DESIGN.md §10): checkpoint encode/decode and its
// rejection of torn or mismatched files, supervised retry and
// quarantine, and the headline contract — interrupting a longitudinal
// run at any point and resuming produces results, metrics, and
// checkpoint state byte-identical to an uninterrupted run, at any
// thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/fault.h"
#include "core/longitudinal.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "test_world.h"

namespace offnet::core {
namespace {

/// Window used by the behavioural tests: five snapshots inside the
/// Netflix expired-certificate era, as in degraded_run_test.
constexpr std::size_t kFirst = 16;
constexpr std::size_t kLast = 20;
constexpr std::size_t kDamaged = 18;

struct Corpus {
  std::string rel, org, pfx, certs, hosts, headers;
};

const std::map<std::size_t, Corpus>& exported_corpuses() {
  static const std::map<std::size_t, Corpus> corpuses = [] {
    const scan::World& world = testing::tiny_world();
    std::map<std::size_t, Corpus> out;
    for (std::size_t t = 0; t < net::snapshot_count(); ++t) {
      scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);
      std::ostringstream rel, org, pfx, certs, hosts, headers;
      scan::export_dataset(world, snapshot,
                         io::ExportStreams{rel, org, pfx, certs, hosts,
                                           headers});
      out[t] = Corpus{rel.str(), org.str(), pfx.str(),
                      certs.str(), hosts.str(), headers.str()};
    }
    return out;
  }();
  return corpuses;
}

SnapshotFeed load_feed(std::size_t t) {
  const Corpus& corpus = exported_corpuses().at(t);
  SnapshotFeed feed;
  std::istringstream rel(corpus.rel), org(corpus.org), pfx(corpus.pfx),
      certs(corpus.certs), hosts(corpus.hosts), headers(corpus.headers);
  feed.dataset = io::load_dataset(rel, org, pfx, certs, hosts,
                                  net::study_snapshots()[t], {},
                                  &feed.report);
  feed.dataset->add_headers(headers, {}, &feed.report);
  return feed;
}

PipelineOptions options_with(obs::Registry* metrics,
                             std::size_t threads = 1) {
  PipelineOptions options;
  options.metrics = metrics;
  options.n_threads = threads;
  return options;
}

std::string temp_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  // TempDir is shared across test runs: start from a clean slate.
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Canonical byte-string over a results vector (via the checkpoint
/// encoder): two runs agree iff every field of every result agrees.
std::string results_fingerprint(const std::vector<SnapshotResult>& results,
                                std::size_t first) {
  RunState state;
  state.first = first;
  state.results = results;
  return Checkpoint::encode(state, "results-only");
}

/// A checkpoint's raw bytes, verified loadable first. Checkpoints are
/// fully deterministic (the saved registry excludes the wall-clock
/// timing stats), so equal runs produce byte-equal files.
std::string checkpoint_fingerprint(const std::string& path,
                                   const std::string& digest) {
  Checkpoint::load(path, digest);
  return slurp(path);
}

std::vector<SnapshotResult> run_window(obs::Registry* metrics,
                                       const SupervisorOptions& supervisor,
                                       std::size_t threads = 1) {
  LongitudinalRunner runner{options_with(metrics, threads)};
  return runner.run_supervised(load_feed, supervisor, kFirst, kLast);
}

/// Clean supervised window run, no checkpointing — the reference for
/// retry and quarantine comparisons.
const std::vector<SnapshotResult>& clean_window() {
  static const std::vector<SnapshotResult> results =
      run_window(nullptr, SupervisorOptions{});
  return results;
}

TEST(RunDigestTest, IgnoresThreadCountButNotSemantics) {
  PipelineOptions base;
  const std::string digest =
      run_digest(base, scan::ScannerKind::kRapid7, 0);

  PipelineOptions threaded = base;
  threaded.n_threads = 8;
  EXPECT_EQ(run_digest(threaded, scan::ScannerKind::kRapid7, 0), digest);

  PipelineOptions filtered = base;
  filtered.apply_cloudflare_ssl_filter = true;
  EXPECT_NE(run_digest(filtered, scan::ScannerKind::kRapid7, 0), digest);

  PipelineOptions ablated = base;
  ablated.disable_nginx_rule = true;
  EXPECT_NE(run_digest(ablated, scan::ScannerKind::kRapid7, 0), digest);

  EXPECT_NE(run_digest(base, scan::ScannerKind::kCensys, 0), digest);
  EXPECT_NE(run_digest(base, scan::ScannerKind::kRapid7, 1), digest);
}

TEST(CheckpointTest, EncodeDecodeRoundTripsByteIdentically) {
  const std::string path = temp_path("roundtrip.ckpt");
  obs::Registry metrics;
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  auto results = run_window(&metrics, supervisor);
  ASSERT_EQ(results.size(), kLast - kFirst + 1);

  const std::string digest =
      run_digest(options_with(&metrics), scan::ScannerKind::kRapid7, kFirst);
  const std::string content = slurp(path);
  RunState state = Checkpoint::decode(content, digest);
  EXPECT_EQ(state.first, kFirst);
  EXPECT_EQ(state.results.size(), results.size());
  EXPECT_FALSE(state.netflix_ips.empty());
  EXPECT_FALSE(state.metrics.counters.empty());
  // Re-encoding the decoded state reproduces the file byte for byte:
  // the encoding is canonical, and nothing was lost in the round trip.
  EXPECT_EQ(Checkpoint::encode(state, digest), content);
  // The restored results are the run's results, field for field.
  EXPECT_EQ(results_fingerprint(state.results, kFirst),
            results_fingerprint(results, kFirst));
}

TEST(CheckpointTest, RejectsTornCorruptAndForeignFiles) {
  const std::string path = temp_path("reject.ckpt");
  obs::Registry metrics;
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  run_window(&metrics, supervisor);
  const std::string digest =
      run_digest(options_with(&metrics), scan::ScannerKind::kRapid7, kFirst);
  const std::string content = slurp(path);

  auto error_of = [&](const std::string& damaged,
                      const std::string& expect_digest) {
    try {
      Checkpoint::decode(damaged, expect_digest);
    } catch (const CheckpointError& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  // A torn write (crash mid-checkpoint) truncates the payload.
  EXPECT_NE(error_of(content.substr(0, content.size() - 40), digest)
                .find("truncated"),
            std::string::npos);
  // Bit rot inside the payload trips the checksum.
  std::string flipped = content;
  flipped[content.size() - 10] ^= 0x20;
  EXPECT_NE(error_of(flipped, digest).find("checksum"), std::string::npos);
  // Not a checkpoint at all.
  EXPECT_NE(error_of("something else entirely\n", digest).find("magic"),
            std::string::npos);
  EXPECT_NE(error_of("", digest).find("magic"), std::string::npos);
  // Valid file, wrong run configuration.
  EXPECT_NE(error_of(content, digest + ";no_nginx=1").find("mismatch"),
            std::string::npos);
  // The intact file still loads.
  EXPECT_NO_THROW(Checkpoint::decode(content, digest));
}

TEST(SupervisedRunTest, TransientFaultIsRetriedWithIdenticalResults) {
  obs::Registry metrics;
  FaultInjector faults;
  // Snapshots 16 and 17 cross the pipeline boundary once each; the
  // third crossing is snapshot 18's first attempt.
  faults.fail_at(fault_stage::kPipeline, 3);
  SupervisorOptions supervisor;
  supervisor.faults = &faults;
  auto results = run_window(&metrics, supervisor);

  EXPECT_EQ(results_fingerprint(results, kFirst),
            results_fingerprint(clean_window(), kFirst));
  EXPECT_EQ(metrics.counter("retry/attempts").value(), 1u);
  EXPECT_EQ(metrics.counter("retry/exhausted").value(), 0u);
  EXPECT_EQ(metrics.counter("series/health/complete").value(),
            kLast - kFirst + 1);
}

TEST(SupervisedRunTest, ExhaustedRetriesQuarantineAndSeriesContinues) {
  const std::string path = temp_path("quarantine.ckpt");
  obs::Registry metrics;
  FaultInjector faults;
  // Every attempt of snapshot kDamaged (the third in the window) fails:
  // feed crossings 3, 4, and 5 with a retry budget of 2.
  faults.fail_at(fault_stage::kFeed, 3)
      .fail_at(fault_stage::kFeed, 4)
      .fail_at(fault_stage::kFeed, 5);
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  supervisor.faults = &faults;
  auto results = run_window(&metrics, supervisor);

  ASSERT_EQ(results.size(), kLast - kFirst + 1);
  const SnapshotResult& quarantined = results[kDamaged - kFirst];
  EXPECT_EQ(quarantined.health, SnapshotHealth::kQuarantined);
  EXPECT_FALSE(quarantined.usable());
  EXPECT_TRUE(quarantined.per_hg.empty());
  EXPECT_NE(quarantined.error.find("injected fault"), std::string::npos);

  EXPECT_EQ(metrics.counter("retry/attempts").value(), 3u);
  EXPECT_EQ(metrics.counter("retry/exhausted").value(), 1u);
  EXPECT_EQ(metrics.counter("quarantine/snapshots").value(), 1u);
  EXPECT_EQ(metrics.counter("series/health/quarantined").value(), 1u);
  EXPECT_EQ(metrics.counter("series/snapshots").value(),
            kLast - kFirst + 1);

  // The series kept going: post-gap snapshots are complete and their
  // default confirmed sets match the clean run (the carried Netflix
  // recovery state only affects the §6.2 expired/HTTP variants).
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].snapshot == kDamaged) continue;
    SCOPED_TRACE(results[i].snapshot);
    EXPECT_EQ(results[i].health, SnapshotHealth::kComplete);
    ASSERT_EQ(results[i].per_hg.size(), clean_window()[i].per_hg.size());
    for (std::size_t h = 0; h < results[i].per_hg.size(); ++h) {
      EXPECT_EQ(results[i].per_hg[h].confirmed_or_ases,
                clean_window()[i].per_hg[h].confirmed_or_ases);
    }
  }

  // Quarantine survives the checkpoint round trip, error text included.
  const std::string digest =
      run_digest(options_with(&metrics), scan::ScannerKind::kRapid7, kFirst);
  RunState state = Checkpoint::load(path, digest);
  ASSERT_EQ(state.results.size(), results.size());
  EXPECT_EQ(state.results[kDamaged - kFirst].health,
            SnapshotHealth::kQuarantined);
  EXPECT_EQ(state.results[kDamaged - kFirst].error, quarantined.error);
}

TEST(SupervisedRunTest, CrashDuringCheckpointWriteKeepsPreviousCheckpoint) {
  const std::string path = temp_path("crash_write.ckpt");
  obs::Registry metrics;
  FaultInjector faults;
  // The second checkpoint publish dies after its temp write: the first
  // snapshot's checkpoint must survive untouched.
  faults.fail_at(fault_stage::kCheckpointWrite, 2);
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  supervisor.faults = &faults;
  EXPECT_THROW(run_window(&metrics, supervisor), InjectedFault);

  const std::string digest =
      run_digest(options_with(&metrics), scan::ScannerKind::kRapid7, kFirst);
  RunState state = Checkpoint::load(path, digest);
  EXPECT_EQ(state.results.size(), 1u);
  EXPECT_EQ(state.results[0].snapshot, kFirst);

  // A leftover torn temp (what a hard kill leaves behind) is harmless:
  // the next save simply overwrites it.
  std::ofstream(path + ".tmp", std::ios::binary) << "torn garbage";
  obs::Registry resumed_metrics;
  SupervisorOptions resume;
  resume.checkpoint_path = path;
  resume.resume = true;
  auto results = run_window(&resumed_metrics, resume);
  EXPECT_EQ(results_fingerprint(results, kFirst),
            results_fingerprint(clean_window(), kFirst));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SupervisedRunTest, RenameFaultIsACrashTooAndResumeRecovers) {
  const std::string path = temp_path("crash_rename.ckpt");
  obs::Registry metrics;
  FaultInjector faults;
  faults.fail_at(fault_stage::kArtifactRename, 2);
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  supervisor.faults = &faults;
  EXPECT_THROW(run_window(&metrics, supervisor), InjectedFault);

  obs::Registry resumed_metrics;
  SupervisorOptions resume;
  resume.checkpoint_path = path;
  resume.resume = true;
  auto results = run_window(&resumed_metrics, resume);
  EXPECT_EQ(results_fingerprint(results, kFirst),
            results_fingerprint(clean_window(), kFirst));
}

TEST(SupervisedRunTest, ResumeRejectsChangedRunConfiguration) {
  const std::string path = temp_path("mismatch.ckpt");
  obs::Registry metrics;
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  run_window(&metrics, supervisor);

  PipelineOptions changed = options_with(nullptr);
  changed.apply_cloudflare_ssl_filter = true;
  LongitudinalRunner runner{changed};
  SupervisorOptions resume;
  resume.checkpoint_path = path;
  resume.resume = true;
  EXPECT_THROW(runner.run_supervised(load_feed, resume, kFirst, kLast),
               CheckpointError);
}

TEST(SupervisedRunTest, ResumeRequiresPathAndExistingCheckpoint) {
  LongitudinalRunner runner{PipelineOptions{}};
  SupervisorOptions no_path;
  no_path.resume = true;
  EXPECT_THROW(runner.run_supervised(load_feed, no_path, kFirst, kLast),
               std::invalid_argument);

  SupervisorOptions missing;
  missing.checkpoint_path = temp_path("never_written.ckpt");
  missing.resume = true;
  EXPECT_THROW(runner.run_supervised(load_feed, missing, kFirst, kLast),
               CheckpointError);
}

TEST(SupervisedRunTest, ResumeOfACompleteRunRecomputesNothing) {
  const std::string path = temp_path("complete.ckpt");
  obs::Registry metrics;
  SupervisorOptions supervisor;
  supervisor.checkpoint_path = path;
  auto results = run_window(&metrics, supervisor);

  SupervisorOptions resume;
  resume.checkpoint_path = path;
  resume.resume = true;
  obs::Registry resumed_metrics;
  LongitudinalRunner runner{options_with(&resumed_metrics)};
  auto restored = runner.run_supervised(
      [](std::size_t t) -> SnapshotFeed {
        ADD_FAILURE() << "feed called for snapshot " << t
                      << " on a fully-checkpointed run";
        return {};
      },
      resume, kFirst, kLast);
  EXPECT_EQ(results_fingerprint(restored, kFirst),
            results_fingerprint(results, kFirst));
}

/// The headline determinism contract over the full 31-snapshot study:
/// a run interrupted during the checkpoint publish after snapshots
/// {0, 15, 29} and then resumed — in a fresh "process" (new runner, new
/// registry) and at a different thread count — ends with results,
/// deterministic metrics, and final checkpoint state byte-identical to
/// an uninterrupted run.
TEST(SupervisedRunTest, InterruptAnywhereThenResumeIsByteIdentical) {
  const std::size_t last = net::snapshot_count() - 1;
  const std::string digest =
      run_digest(options_with(nullptr), scan::ScannerKind::kRapid7, 0);

  auto run_full = [&](obs::Registry* metrics, SupervisorOptions supervisor,
                      std::size_t threads) {
    LongitudinalRunner runner{options_with(metrics, threads)};
    return runner.run_supervised(load_feed, supervisor, 0, last);
  };

  // Uninterrupted baseline at one thread.
  const std::string baseline_path = temp_path("full_baseline.ckpt");
  obs::Registry baseline_metrics;
  SupervisorOptions baseline_opts;
  baseline_opts.checkpoint_path = baseline_path;
  auto baseline = run_full(&baseline_metrics, baseline_opts, 1);
  const std::string baseline_results = results_fingerprint(baseline, 0);
  const std::string baseline_json =
      obs::MetricsExporter::deterministic_json(baseline_metrics);
  const std::string baseline_ckpt =
      checkpoint_fingerprint(baseline_path, digest);

  // The same run at four threads is already byte-identical.
  {
    const std::string path = temp_path("full_threads4.ckpt");
    obs::Registry metrics;
    SupervisorOptions opts;
    opts.checkpoint_path = path;
    auto results = run_full(&metrics, opts, 4);
    EXPECT_EQ(results_fingerprint(results, 0), baseline_results);
    EXPECT_EQ(obs::MetricsExporter::deterministic_json(metrics),
              baseline_json);
    EXPECT_EQ(checkpoint_fingerprint(path, digest), baseline_ckpt);
  }

  // Crash during the publish after snapshot k (checkpoint-write
  // crossing k + 2), resume at a different thread count than the crash.
  struct CrashPoint {
    std::size_t after_snapshot;
    std::size_t crash_threads;
    std::size_t resume_threads;
  };
  for (const CrashPoint& point :
       {CrashPoint{0, 4, 1}, CrashPoint{15, 1, 4}, CrashPoint{29, 4, 1}}) {
    SCOPED_TRACE(point.after_snapshot);
    const std::string path = temp_path(
        "full_crash_" + std::to_string(point.after_snapshot) + ".ckpt");
    {
      obs::Registry metrics;
      FaultInjector faults;
      faults.fail_at(fault_stage::kCheckpointWrite,
                     point.after_snapshot + 2);
      SupervisorOptions opts;
      opts.checkpoint_path = path;
      opts.faults = &faults;
      EXPECT_THROW(run_full(&metrics, opts, point.crash_threads),
                   InjectedFault);
    }
    // The surviving checkpoint covers snapshots [0, after_snapshot].
    EXPECT_EQ(Checkpoint::load(path, digest).results.size(),
              point.after_snapshot + 1);

    obs::Registry metrics;  // a resumed process starts from nothing
    SupervisorOptions opts;
    opts.checkpoint_path = path;
    opts.resume = true;
    auto results = run_full(&metrics, opts, point.resume_threads);
    EXPECT_EQ(results_fingerprint(results, 0), baseline_results);
    EXPECT_EQ(obs::MetricsExporter::deterministic_json(metrics),
              baseline_json);
    EXPECT_EQ(checkpoint_fingerprint(path, digest), baseline_ckpt);
  }
}

}  // namespace
}  // namespace offnet::core
