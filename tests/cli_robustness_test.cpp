// End-to-end robustness tests for offnet_cli: write failures (full
// disk, unwritable directories, dead stdout) must exit nonzero with a
// diagnostic instead of reporting success, and the supervised series
// must survive a hard kill and resume to the identical report. The
// binary is exercised through std::system, like lint_test does for
// offnet_lint.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>

#include "exit_codes.h"
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs the CLI with `args`, stdout/stderr captured to files; returns
/// the exit status (or -1 for an abnormal exit).
int run_cli(const std::string& args, const std::string& out_path,
            const std::string& err_path) {
  const std::string command = std::string(OFFNET_CLI_BIN) + " " + args +
                              " > " + out_path + " 2> " + err_path;
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int run_cli(const std::string& args, const std::string& scratch) {
  return run_cli(args, scratch + "/out.txt", scratch + "/err.txt");
}

bool have_dev_full() { return fs::exists("/dev/full"); }

/// Cheap snapshot export shared by the tests: the tiny 0.02-scale world.
void export_month(const std::string& root, const std::string& month) {
  const std::string dir = root + "/" + month;
  fs::create_directories(dir);
  const std::string scratch = temp_dir("export_scratch");
  ASSERT_EQ(run_cli("export --out " + dir + " --scale 0.02 --month " + month,
                    scratch),
            0)
      << read_file(scratch + "/err.txt");
}

TEST(CliRobustnessTest, ExportToMissingDirectoryFailsLoudly) {
  const std::string scratch = temp_dir("cli_missing_dir");
  const int rc = run_cli(
      "export --out " + scratch + "/no/such/dir --scale 0.02", scratch);
  EXPECT_EQ(rc, 74);  // EX_IOERR: the machinery, not the data, failed
  EXPECT_NE(read_file(scratch + "/err.txt").find("error"),
            std::string::npos);
  EXPECT_FALSE(fs::exists(scratch + "/no/such/dir/relationships.txt"));
}

TEST(CliRobustnessTest, ExportOntoFullDiskFailsAndPublishesNothing) {
  if (!have_dev_full()) GTEST_SKIP() << "/dev/full not available";
  const std::string scratch = temp_dir("cli_full_disk");
  const std::string out = temp_dir("cli_full_disk_out");
  // Every staged temp file lands on the full device: the export must
  // fail, and no final artifact may appear ("silent success" on a full
  // disk was a real bug here).
  for (const char* name :
       {"relationships.txt", "organizations.txt", "prefix2as.txt",
        "certificates.tsv", "hosts.tsv", "headers.tsv"}) {
    fs::create_symlink("/dev/full", out + "/" + std::string(name) + ".tmp");
  }
  const int rc =
      run_cli("export --out " + out + " --scale 0.02", scratch);
  EXPECT_EQ(rc, 74);  // EX_IOERR
  EXPECT_NE(read_file(scratch + "/err.txt").find("error"),
            std::string::npos);
  EXPECT_FALSE(fs::exists(out + "/relationships.txt"));
}

TEST(CliRobustnessTest, MetricsOutFailureIsFatal) {
  if (!have_dev_full()) GTEST_SKIP() << "/dev/full not available";
  const std::string scratch = temp_dir("cli_metrics_fail");
  const std::string out = temp_dir("cli_metrics_fail_out");
  const std::string metrics_dir = temp_dir("cli_metrics_fail_sink");
  fs::create_symlink("/dev/full", metrics_dir + "/metrics.json.tmp");
  const int rc = run_cli("export --out " + out +
                             " --scale 0.02 --metrics-out " + metrics_dir +
                             "/metrics.json",
                         scratch);
  EXPECT_EQ(rc, 74);  // EX_IOERR
  EXPECT_NE(read_file(scratch + "/err.txt").find("error"),
            std::string::npos);
  EXPECT_FALSE(fs::exists(metrics_dir + "/metrics.json"));
}

TEST(CliRobustnessTest, DeadStdoutExitsNonzero) {
  if (!have_dev_full()) GTEST_SKIP() << "/dev/full not available";
  const std::string scratch = temp_dir("cli_dead_stdout");
  const std::string out = temp_dir("cli_dead_stdout_out");
  const std::string command = std::string(OFFNET_CLI_BIN) + " export --out " +
                              out + " --scale 0.02 > /dev/full 2> " +
                              scratch + "/err.txt";
  const int status = std::system(command.c_str());
  ASSERT_NE(status, -1);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 74);  // EX_IOERR
  EXPECT_NE(read_file(scratch + "/err.txt")
                .find("writing to standard output failed"),
            std::string::npos);
}

TEST(CliRobustnessTest, ResumeWithoutCheckpointDirIsAnError) {
  const std::string scratch = temp_dir("cli_resume_nodir");
  const std::string root = temp_dir("cli_resume_nodir_root");
  const int rc = run_cli("series --root " + root + " --resume", scratch);
  EXPECT_EQ(rc, 64);  // EX_USAGE: a typo, not a data problem
  EXPECT_NE(read_file(scratch + "/err.txt").find("--checkpoint-dir"),
            std::string::npos);
}

TEST(CliRobustnessTest, CorruptCheckpointIsRejectedOnResume) {
  const std::string scratch = temp_dir("cli_corrupt_ckpt");
  const std::string root = temp_dir("cli_corrupt_ckpt_root");
  const std::string ckpt = temp_dir("cli_corrupt_ckpt_dir");
  std::ofstream(ckpt + "/checkpoint.offnet", std::ios::binary)
      << "not a checkpoint\n";
  const int rc = run_cli("series --root " + root + " --checkpoint-dir " +
                             ckpt + " --resume",
                         scratch);
  EXPECT_EQ(rc, 65);  // EX_DATAERR: the checkpoint file is damaged
  EXPECT_NE(read_file(scratch + "/err.txt").find("checkpoint"),
            std::string::npos);
}

// --max-error-fraction validation must reject NaN: `nan` compares false
// against both bounds, so the old `budget < 0.0 || budget > 1.0` check
// accepted it and every downstream error-budget comparison silently came
// out false (an infinite budget in practice).
TEST(CliRobustnessTest, MaxErrorFractionRejectsNan) {
  const std::string scratch = temp_dir("cli_nan_budget");
  const std::string root = temp_dir("cli_nan_budget_root");
  for (const char* bad : {"nan", "NAN", "-nan", "inf", "2.0", "-0.5", "x"}) {
    const int rc = run_cli("series --root " + root +
                               " --max-error-fraction " + bad,
                           scratch);
    EXPECT_EQ(rc, 64) << "--max-error-fraction " << bad;  // EX_USAGE
    EXPECT_NE(read_file(scratch + "/err.txt").find("max-error-fraction"),
              std::string::npos);
  }
}

TEST(CliRobustnessTest, UsageErrorsExitSixtyFour) {
  const std::string scratch = temp_dir("cli_usage");
  EXPECT_EQ(run_cli("frobnicate", scratch), 64);
  EXPECT_EQ(run_cli("simulate --bogus-flag", scratch), 64);
  EXPECT_EQ(run_cli("simulate --threads many", scratch), 64);
  EXPECT_EQ(run_cli("analyze --dir x --month 13-33", scratch), 64);
}

TEST(CliRobustnessTest, SeriesWithZeroUsableSnapshotsIsDataError) {
  const std::string scratch = temp_dir("cli_empty_series");
  const std::string root = temp_dir("cli_empty_series_root");
  EXPECT_EQ(run_cli("series --root " + root, scratch), 65);  // EX_DATAERR
}

TEST(CliRobustnessTest, QueryWithoutServerIsIoError) {
  const std::string scratch = temp_dir("cli_query_noserver");
  const int rc = run_cli("query --socket " + scratch +
                             "/no-such-daemon.sock --send PING",
                         scratch);
  EXPECT_EQ(rc, 74);  // EX_IOERR: transport failure, retry elsewhere
  EXPECT_NE(read_file(scratch + "/err.txt").find("error"),
            std::string::npos);
}

/// The crash/resume smoke: a hard kill (--crash-after, std::_Exit mid
/// checkpoint publish) followed by --resume reproduces the uninterrupted
/// run's report byte for byte.
TEST(CliRobustnessTest, HardKillThenResumeMatchesUninterruptedRun) {
  const std::string root = temp_dir("cli_crash_root");
  export_month(root, "2013-10");
  export_month(root, "2014-01");

  // Uninterrupted supervised reference run.
  const std::string ref_ckpt = temp_dir("cli_crash_ref_ckpt");
  const std::string ref = temp_dir("cli_crash_ref");
  ASSERT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ref_ckpt,
                    ref),
            0)
      << read_file(ref + "/err.txt");

  // Crash during the third checkpoint publish (snapshots 0 and 1 are
  // durable), leaving a torn temp behind — exactly like a power cut.
  const std::string ckpt = temp_dir("cli_crash_ckpt");
  const std::string crashed = temp_dir("cli_crash_run");
  EXPECT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ckpt +
                        " --crash-after 2",
                    crashed),
            offnet::tools::kExitCrashInjected);
  EXPECT_TRUE(fs::exists(ckpt + "/checkpoint.offnet"));
  EXPECT_TRUE(fs::exists(ckpt + "/checkpoint.offnet.tmp"));

  const std::string resumed = temp_dir("cli_crash_resume");
  ASSERT_EQ(run_cli("series --root " + root + " --checkpoint-dir " + ckpt +
                        " --resume",
                    resumed),
            0)
      << read_file(resumed + "/err.txt");
  EXPECT_EQ(read_file(resumed + "/out.txt"), read_file(ref + "/out.txt"));
  EXPECT_FALSE(fs::exists(ckpt + "/checkpoint.offnet.tmp"));
}

TEST(CliRobustnessTest, SupervisedSeriesAnnotatesCorruptMonthAndContinues) {
  const std::string root = temp_dir("cli_corrupt_month_root");
  export_month(root, "2013-10");
  export_month(root, "2014-01");
  // The CLI's feed turns an unloadable month into a kCorrupt verdict
  // (quarantine is reserved for attempts that throw out of the feed —
  // covered at the unit level in checkpoint_test); the supervised series
  // must annotate it and keep going.
  std::ofstream(root + "/2014-01/relationships.txt", std::ios::binary)
      << "\x01\x02 this is not a relationships file";

  const std::string scratch = temp_dir("cli_corrupt_month");
  const int rc = run_cli("series --root " + root + " --max-retries 1",
                         scratch);
  EXPECT_EQ(rc, 0);  // 2013-10 is still usable
  const std::string out = read_file(scratch + "/out.txt");
  EXPECT_NE(out.find("corrupt"), std::string::npos);
  EXPECT_NE(out.find("1 of 31 snapshots usable"), std::string::npos);
}

}  // namespace
