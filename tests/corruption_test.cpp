#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "core/pipeline.h"
#include "io/corruption.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "test_world.h"

namespace offnet::io {
namespace {

/// One exported snapshot held as strings, corruptible per-stream.
struct Corpus {
  std::string rel, org, pfx, certs, hosts, headers;

  static Corpus export_snapshot(const scan::World& world, std::size_t t) {
    scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);
    std::ostringstream rel, org, pfx, certs, hosts, headers;
    scan::export_dataset(world, snapshot,
                         ExportStreams{rel, org, pfx, certs, hosts, headers});
    return Corpus{rel.str(), org.str(), pfx.str(),
                  certs.str(), hosts.str(), headers.str()};
  }

  Corpus corrupted(const CorruptionInjector& injector) const {
    return Corpus{
        injector.corrupt(rel, InputKind::kRelationships),
        injector.corrupt(org, InputKind::kOrganizations),
        injector.corrupt(pfx, InputKind::kPrefix2As),
        injector.corrupt(certs, InputKind::kCertificates),
        injector.corrupt(hosts, InputKind::kHosts),
        injector.corrupt(headers, InputKind::kHeaders),
    };
  }

  Dataset load(net::YearMonth month, const ReadOptions& options,
               LoadReport* report = nullptr) const {
    std::istringstream rel_in(rel), org_in(org), pfx_in(pfx),
        certs_in(certs), hosts_in(hosts), headers_in(headers);
    Dataset dataset = load_dataset(rel_in, org_in, pfx_in, certs_in, hosts_in,
                                   month, options, report);
    dataset.add_headers(headers_in, options, report);
    return dataset;
  }
};

/// Per-HG confirmed off-net footprints as ASN sets (AsIds are not
/// comparable across independently loaded topologies).
std::map<std::string, std::set<net::Asn>> confirmed_asns(
    const Dataset& dataset, const core::SnapshotResult& result) {
  std::map<std::string, std::set<net::Asn>> out;
  for (const core::HgFootprint& fp : result.per_hg) {
    for (topo::AsId id : fp.confirmed_or_ases) {
      out[fp.name].insert(dataset.topology().as(id).asn);
    }
  }
  return out;
}

TEST(CorruptionTest, Deterministic) {
  CorruptionInjector injector({.seed = 7, .intensity = 0.5});
  const char* text = "1.0.0.0\t20\t200\n1.0.16.0\t20\t400\n";
  EXPECT_EQ(injector.corrupt(text, InputKind::kPrefix2As),
            injector.corrupt(text, InputKind::kPrefix2As));
  CorruptionInjector other({.seed = 8, .intensity = 0.5});
  // A different seed must not be a no-op forever; with 50% intensity on
  // two lines the outputs differ for at least one of a few seeds.
  bool any_different = false;
  for (std::uint64_t seed : {8u, 9u, 10u, 11u}) {
    CorruptionInjector alt({.seed = seed, .intensity = 0.5});
    if (alt.corrupt(text, InputKind::kPrefix2As) !=
        injector.corrupt(text, InputKind::kPrefix2As)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
  (void)other;
}

TEST(CorruptionTest, LeavesCommentsAndBlankLinesAlone) {
  CorruptionInjector injector({.seed = 3, .intensity = 1.0});
  CorruptionSummary summary;
  std::string out = injector.corrupt("# header comment\n\n", InputKind::kHosts,
                                     &summary);
  EXPECT_EQ(out, "# header comment\n\n");
  EXPECT_EQ(summary.data_lines, 0u);
  EXPECT_EQ(summary.corrupted_lines, 0u);
}

TEST(CorruptionTest, PrefixLengthClassProducesOutOfRangeLengths) {
  CorruptionInjector injector(
      {.seed = 5, .intensity = 1.0, .kinds = kPrefixLenOutOfRange});
  std::string text = "1.0.0.0\t20\t200\n1.0.16.0\t20\t400\n";
  CorruptionSummary summary;
  std::string damaged = injector.corrupt(text, InputKind::kPrefix2As,
                                         &summary);
  EXPECT_EQ(summary.corrupted_lines, 2u);

  std::istringstream strict_in(damaged);
  EXPECT_THROW(load_prefix2as(strict_in), LoadError);

  std::istringstream lenient_in(damaged);
  LoadReport report;
  bgp::Ip2AsMap map =
      load_prefix2as(lenient_in, ReadOptions::lenient(1.0), &report);
  EXPECT_EQ(map.prefix_count(), 0u);
  EXPECT_EQ(report.find("prefix2as")->lines_skipped, 2u);
}

TEST(CorruptionTest, ReversedDateRangeClassRejectedWithExactLine) {
  CorruptionInjector injector(
      {.seed = 5, .intensity = 1.0, .kinds = kReverseDateRange});
  std::string text =
      "c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\ta.example\n";
  std::string damaged = injector.corrupt(text, InputKind::kCertificates);

  std::istringstream rel("100|200|-1\n");
  std::istringstream org("ORG-X|X\n100|ORG-X\n");
  std::istringstream pfx("1.0.0.0\t20\t100\n");
  std::istringstream certs(damaged);
  std::istringstream hosts("");
  try {
    load_dataset(rel, org, pfx, certs, hosts, net::YearMonth(2019, 10));
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("not_after precedes not_before"), std::string::npos)
        << what;
    EXPECT_NE(what.find("at line 1"), std::string::npos) << what;
  }
}

TEST(CorruptionTest, DuplicateLineClassTripsDuplicateKeyDetection) {
  CorruptionInjector injector(
      {.seed = 5, .intensity = 1.0, .kinds = kDuplicateLine});
  std::string text =
      "c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\ta.example\n";
  std::string damaged = injector.corrupt(text, InputKind::kCertificates);

  std::istringstream rel("100|200|-1\n");
  std::istringstream org("ORG-X|X\n100|ORG-X\n");
  std::istringstream pfx("1.0.0.0\t20\t100\n");
  std::istringstream certs(damaged);
  std::istringstream hosts("");
  try {
    load_dataset(rel, org, pfx, certs, hosts, net::YearMonth(2019, 10));
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate certificate id"),
              std::string::npos)
        << e.what();
  }
}

TEST(CorruptionTest, EveryClassDrivesThePermissiveLoaders) {
  // Each failure class alone, at full intensity, over a small hosts file:
  // permissive loading must survive (generous budget) and strict loading
  // must either throw or — for damage that stays well-formed, like
  // duplicated lines or swapped-but-parseable fields — still load.
  std::string text = "1.0.0.1\tc1\n1.0.0.2\tc1\n";
  for (unsigned kind : {kTruncateLine, kDeleteField, kSwapFields,
                        kGarbageBytes, kDuplicateLine}) {
    CorruptionInjector injector({.seed = 11, .intensity = 1.0, .kinds = kind});
    CorruptionSummary summary;
    std::string damaged =
        injector.corrupt(text, InputKind::kHosts, &summary);
    EXPECT_EQ(summary.corrupted_lines, 2u) << "kind " << kind;

    std::istringstream rel("100|200|-1\n");
    std::istringstream org("ORG-X|X\n100|ORG-X\n");
    std::istringstream pfx("1.0.0.0\t20\t100\n");
    std::istringstream certs(
        "c1\tOrg\t2019-01-01\t2020-01-01\ttrusted\ta.example\n");
    std::istringstream hosts(damaged);
    LoadReport report;
    EXPECT_NO_THROW(load_dataset(rel, org, pfx, certs, hosts,
                                 net::YearMonth(2019, 10),
                                 ReadOptions::lenient(1.0), &report))
        << "kind " << kind;
  }
}

/// The acceptance bar: a 1%-corrupted export, reloaded permissively,
/// recovers >= 95% of the off-net ASes the clean pipeline confirms, and
/// the shortfall is visible in the LoadReport.
TEST(CorruptionTest, PermissiveReloadRecoversOffnetMajority) {
  const scan::World& world = testing::tiny_world();
  std::size_t t = net::snapshot_count() - 1;
  net::YearMonth month = net::study_snapshots()[t];
  Corpus clean = Corpus::export_snapshot(world, t);

  Dataset clean_dataset = clean.load(month, ReadOptions::strict());
  core::OffnetPipeline clean_pipeline(clean_dataset.topology(),
                                      clean_dataset.ip2as(),
                                      clean_dataset.certs(),
                                      clean_dataset.roots());
  auto clean_confirmed =
      confirmed_asns(clean_dataset, clean_pipeline.run(clean_dataset.snapshot()));

  CorruptionInjector injector({.seed = 20210823, .intensity = 0.01});
  Corpus damaged = clean.corrupted(injector);
  LoadReport report;
  Dataset dataset = damaged.load(month, ReadOptions::lenient(0.5), &report);
  core::OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                                dataset.certs(), dataset.roots());
  auto confirmed = confirmed_asns(dataset, pipeline.run(dataset.snapshot()));

  std::size_t clean_total = 0;
  std::size_t recovered = 0;
  for (const auto& [hg, asns] : clean_confirmed) {
    clean_total += asns.size();
    for (net::Asn asn : asns) {
      recovered += confirmed[hg].count(asn);
    }
  }
  ASSERT_GT(clean_total, 0u);
  double recovery = static_cast<double>(recovered) /
                    static_cast<double>(clean_total);
  EXPECT_GE(recovery, 0.95) << recovered << " of " << clean_total;
  // The shortfall is accounted for, not silent.
  EXPECT_GT(report.lines_skipped(), 0u);
  EXPECT_GT(report.lines_ok(), 0u);
}

/// Heavier damage must still load (within budget) and keep a usable
/// majority — degraded, not destroyed.
TEST(CorruptionTest, HeavierDamageDegradesGracefully) {
  const scan::World& world = testing::tiny_world();
  std::size_t t = net::snapshot_count() - 1;
  net::YearMonth month = net::study_snapshots()[t];
  Corpus clean = Corpus::export_snapshot(world, t);

  Dataset clean_dataset = clean.load(month, ReadOptions::strict());
  core::OffnetPipeline clean_pipeline(clean_dataset.topology(),
                                      clean_dataset.ip2as(),
                                      clean_dataset.certs(),
                                      clean_dataset.roots());
  auto clean_confirmed =
      confirmed_asns(clean_dataset, clean_pipeline.run(clean_dataset.snapshot()));

  CorruptionInjector injector({.seed = 4, .intensity = 0.05});
  LoadReport report;
  Dataset dataset =
      clean.corrupted(injector).load(month, ReadOptions::lenient(0.5), &report);
  core::OffnetPipeline pipeline(dataset.topology(), dataset.ip2as(),
                                dataset.certs(), dataset.roots());
  auto confirmed = confirmed_asns(dataset, pipeline.run(dataset.snapshot()));

  std::size_t clean_total = 0;
  std::size_t recovered = 0;
  for (const auto& [hg, asns] : clean_confirmed) {
    clean_total += asns.size();
    for (net::Asn asn : asns) recovered += confirmed[hg].count(asn);
  }
  ASSERT_GT(clean_total, 0u);
  EXPECT_GE(static_cast<double>(recovered) / clean_total, 0.5);
  EXPECT_GT(report.lines_skipped(), report.lines_ok() / 1000);
}

TEST(CorruptionTest, DestroyBlowsAnyBudget) {
  std::string destroyed = CorruptionInjector::destroy(
      "1.0.0.0\t20\t200\n1.0.16.0\t20\t400\n");
  std::istringstream in(destroyed);
  EXPECT_THROW(load_prefix2as(in, ReadOptions::lenient(0.99)), LoadError);
}

}  // namespace
}  // namespace offnet::io
