#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/longitudinal.h"
#include "io/corruption.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "test_world.h"

namespace offnet::core {
namespace {

/// Study window used throughout: five snapshots inside the Netflix
/// expired-certificate era (2017-2019), so the HTTP-only recovery state
/// is live across the injected gap.
constexpr std::size_t kFirst = 16;
constexpr std::size_t kLast = 20;
constexpr std::size_t kDamaged = 18;

struct Corpus {
  std::string rel, org, pfx, certs, hosts, headers;
};

const std::map<std::size_t, Corpus>& exported_corpuses() {
  static const std::map<std::size_t, Corpus> corpuses = [] {
    const scan::World& world = testing::tiny_world();
    std::map<std::size_t, Corpus> out;
    for (std::size_t t = kFirst; t <= kLast; ++t) {
      scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);
      std::ostringstream rel, org, pfx, certs, hosts, headers;
      scan::export_dataset(world, snapshot,
                         io::ExportStreams{rel, org, pfx, certs, hosts,
                                           headers});
      out[t] = Corpus{rel.str(), org.str(), pfx.str(),
                      certs.str(), hosts.str(), headers.str()};
    }
    return out;
  }();
  return corpuses;
}

SnapshotFeed load_feed(const Corpus& corpus, std::size_t t,
                       const io::ReadOptions& options) {
  SnapshotFeed feed;
  try {
    std::istringstream rel(corpus.rel), org(corpus.org), pfx(corpus.pfx),
        certs(corpus.certs), hosts(corpus.hosts), headers(corpus.headers);
    feed.dataset = io::load_dataset(rel, org, pfx, certs, hosts,
                                    net::study_snapshots()[t], options,
                                    &feed.report);
    feed.dataset->add_headers(headers, options, &feed.report);
  } catch (const io::LoadError&) {
    feed.dataset.reset();
    feed.corrupt = true;
  }
  return feed;
}

class DegradedRunTest : public ::testing::Test {
 protected:
  /// Clean reference series over the window; the pipelines run on loaded
  /// data both times so the only difference is the injected damage.
  static const std::vector<SnapshotResult>& clean_results() {
    static const std::vector<SnapshotResult> results = [] {
      LongitudinalRunner runner{PipelineOptions{}};
      return runner.run_loaded(
          [](std::size_t t) {
            return load_feed(exported_corpuses().at(t), t, {});
          },
          kFirst, kLast);
    }();
    return results;
  }
};

TEST_F(DegradedRunTest, CleanSeriesIsAllComplete) {
  ASSERT_EQ(clean_results().size(), kLast - kFirst + 1);
  for (const SnapshotResult& result : clean_results()) {
    EXPECT_EQ(result.health, SnapshotHealth::kComplete);
    EXPECT_TRUE(result.usable());
    EXPECT_TRUE(result.load_report.clean());
    EXPECT_GT(result.load_report.lines_ok(), 0u);
  }
}

/// The acceptance bar: one fully corrupted snapshot is annotated
/// kCorrupt and skipped; every other snapshot's results are identical to
/// the uncorrupted run — including after the gap, which exercises the
/// carried HTTP-only recovery state.
TEST_F(DegradedRunTest, FullyCorruptSnapshotIsSkippedNotFatal) {
  LongitudinalRunner runner{PipelineOptions{}};
  auto results = runner.run_loaded(
      [](std::size_t t) {
        Corpus corpus = exported_corpuses().at(t);
        if (t == kDamaged) {
          corpus.rel = io::CorruptionInjector::destroy(corpus.rel);
          corpus.certs = io::CorruptionInjector::destroy(corpus.certs);
        }
        return load_feed(corpus, t, io::ReadOptions::lenient(0.1));
      },
      kFirst, kLast);

  ASSERT_EQ(results.size(), clean_results().size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SnapshotResult& damaged = results[i];
    const SnapshotResult& clean = clean_results()[i];
    ASSERT_EQ(damaged.snapshot, clean.snapshot);
    if (damaged.snapshot == kDamaged) {
      EXPECT_EQ(damaged.health, SnapshotHealth::kCorrupt);
      EXPECT_FALSE(damaged.usable());
      EXPECT_TRUE(damaged.per_hg.empty());
      continue;
    }
    SCOPED_TRACE(damaged.snapshot);
    EXPECT_EQ(damaged.health, SnapshotHealth::kComplete);
    EXPECT_EQ(damaged.stats.total_records, clean.stats.total_records);
    EXPECT_EQ(damaged.stats.valid_cert_ips, clean.stats.valid_cert_ips);
    ASSERT_EQ(damaged.per_hg.size(), clean.per_hg.size());
    for (std::size_t h = 0; h < damaged.per_hg.size(); ++h) {
      EXPECT_EQ(damaged.per_hg[h].confirmed_ips, clean.per_hg[h].confirmed_ips);
      EXPECT_EQ(damaged.per_hg[h].candidate_ips, clean.per_hg[h].candidate_ips);
      EXPECT_EQ(damaged.per_hg[h].confirmed_or_ases,
                clean.per_hg[h].confirmed_or_ases);
      EXPECT_EQ(damaged.per_hg[h].candidate_ases,
                clean.per_hg[h].candidate_ases);
    }
  }
}

/// After a gap, the Netflix HTTP-only recovery still applies the prior
/// IPs accumulated before the gap: the degraded run's recovered set is a
/// subset of the clean run's (fewer priors can only shrink it), and the
/// recovery machinery keeps working at all.
TEST_F(DegradedRunTest, NetflixRecoveryStateCarriesAcrossGap) {
  LongitudinalRunner runner{PipelineOptions{}};
  auto results = runner.run_loaded(
      [](std::size_t t) {
        SnapshotFeed feed;
        if (t == kDamaged) {
          feed.corrupt = true;
          return feed;
        }
        return load_feed(exported_corpuses().at(t), t, {});
      },
      kFirst, kLast);

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].snapshot <= kDamaged) continue;
    const HgFootprint* gap = results[i].find("Netflix");
    const HgFootprint* clean = clean_results()[i].find("Netflix");
    ASSERT_NE(gap, nullptr);
    ASSERT_NE(clean, nullptr);
    // Recovery variants are supersets of the plain expired set...
    EXPECT_GE(gap->confirmed_expired_http_ases.size(),
              gap->confirmed_expired_ases.size());
    // ...and never exceed what the full-priors clean run recovers.
    EXPECT_LE(gap->confirmed_expired_http_ases.size(),
              clean->confirmed_expired_http_ases.size());
    EXPECT_EQ(gap->confirmed_or_ases, clean->confirmed_or_ases);
  }
}

TEST_F(DegradedRunTest, MissingSnapshotIsAnnotated) {
  LongitudinalRunner runner{PipelineOptions{}};
  auto results = runner.run_loaded(
      [](std::size_t t) {
        if (t == kDamaged) return SnapshotFeed{};  // nothing on disk
        return load_feed(exported_corpuses().at(t), t, {});
      },
      kFirst, kLast);
  ASSERT_EQ(results.size(), kLast - kFirst + 1);
  const SnapshotResult& missing = results[kDamaged - kFirst];
  EXPECT_EQ(missing.health, SnapshotHealth::kMissing);
  EXPECT_FALSE(missing.usable());
  EXPECT_EQ(missing.snapshot, kDamaged);
}

TEST_F(DegradedRunTest, PartialSnapshotIsAnnotatedWithReport) {
  LongitudinalRunner runner{PipelineOptions{}};
  io::CorruptionInjector injector({.seed = 9, .intensity = 0.02});
  auto results = runner.run_loaded(
      [&](std::size_t t) {
        Corpus corpus = exported_corpuses().at(t);
        if (t == kDamaged) {
          corpus.hosts = injector.corrupt(corpus.hosts, io::InputKind::kHosts);
        }
        return load_feed(corpus, t, io::ReadOptions::lenient(0.5));
      },
      kFirst, kLast);
  const SnapshotResult& partial = results[kDamaged - kFirst];
  EXPECT_EQ(partial.health, SnapshotHealth::kPartial);
  EXPECT_TRUE(partial.usable());
  EXPECT_GT(partial.load_report.lines_skipped(), 0u);
  EXPECT_FALSE(partial.per_hg.empty());
}

/// World-driven runs: scanners that start mid-study produce kMissing
/// placeholders under set_include_missing instead of silent gaps.
TEST(WorldDegradedRunTest, IncludeMissingAnnotatesUnavailableSnapshots) {
  const scan::World& world = testing::tiny_world();
  LongitudinalRunner runner(world, scan::ScannerKind::kCensys);
  runner.set_include_missing(true);
  auto results = runner.run();
  ASSERT_EQ(results.size(), net::snapshot_count());
  std::size_t missing = 0, complete = 0;
  for (std::size_t t = 0; t < results.size(); ++t) {
    EXPECT_EQ(results[t].snapshot, t);
    bool available = world.scanner_available(t, scan::ScannerKind::kCensys);
    EXPECT_EQ(results[t].health, available ? SnapshotHealth::kComplete
                                           : SnapshotHealth::kMissing);
    ++(available ? complete : missing);
  }
  // Censys data starts mid-study: both kinds must occur.
  EXPECT_GT(missing, 0u);
  EXPECT_GT(complete, 0u);

  // Default behavior (no placeholders) is unchanged.
  LongitudinalRunner plain(world, scan::ScannerKind::kCensys);
  EXPECT_EQ(plain.run().size(), complete);
}

}  // namespace
}  // namespace offnet::core
