// Incremental-delta tests (DESIGN.md §12): the DeltaCache unit contract
// (intern/probe/commit, idle eviction, configuration invalidation,
// snapshot round trip) and the headline pipeline contract — a --delta
// longitudinal run produces results, metrics, and checkpoint state
// byte-identical to a full recompute, at any thread count, fresh or
// resumed after a crash, with delta/* counters that are exactly-once
// under supervised retry.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/delta_cache.h"
#include "core/fault.h"
#include "core/longitudinal.h"
#include "scan/export.h"
#include "io/loaders.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "test_world.h"

namespace offnet::core {
namespace {

/// Same five-snapshot window as checkpoint_test: inside the Netflix
/// expired-certificate era, so the §6.2 cross-snapshot state is live.
constexpr std::size_t kFirst = 16;
constexpr std::size_t kLast = 20;

struct Corpus {
  std::string rel, org, pfx, certs, hosts, headers;
};

const std::map<std::size_t, Corpus>& exported_corpuses() {
  static const std::map<std::size_t, Corpus> corpuses = [] {
    const scan::World& world = testing::tiny_world();
    std::map<std::size_t, Corpus> out;
    for (std::size_t t = kFirst; t <= kLast; ++t) {
      scan::ScanSnapshot snapshot = world.scan(t, scan::ScannerKind::kRapid7);
      std::ostringstream rel, org, pfx, certs, hosts, headers;
      scan::export_dataset(world, snapshot,
                         io::ExportStreams{rel, org, pfx, certs, hosts,
                                           headers});
      out[t] = Corpus{rel.str(), org.str(), pfx.str(),
                      certs.str(), hosts.str(), headers.str()};
    }
    return out;
  }();
  return corpuses;
}

SnapshotFeed load_feed(std::size_t t) {
  const Corpus& corpus = exported_corpuses().at(t);
  SnapshotFeed feed;
  std::istringstream rel(corpus.rel), org(corpus.org), pfx(corpus.pfx),
      certs(corpus.certs), hosts(corpus.hosts), headers(corpus.headers);
  feed.dataset = io::load_dataset(rel, org, pfx, certs, hosts,
                                  net::study_snapshots()[t], {},
                                  &feed.report);
  feed.dataset->add_headers(headers, {}, &feed.report);
  return feed;
}

PipelineOptions options_with(obs::Registry* metrics, DeltaCache* delta,
                             std::size_t threads = 1) {
  PipelineOptions options;
  options.metrics = metrics;
  options.delta = delta;
  options.n_threads = threads;
  return options;
}

std::string temp_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Canonical byte-string over a results vector (via the checkpoint
/// encoder): two runs agree iff every field of every result agrees.
std::string results_fingerprint(const std::vector<SnapshotResult>& results) {
  RunState state;
  state.first = kFirst;
  state.results = results;
  return Checkpoint::encode(state, "results-only");
}

/// Deterministic metrics JSON with the delta/* counter lines removed, so
/// a --delta run can be compared against a full recompute (whose export
/// has no delta section at all).
std::string json_without_delta(const obs::Registry& metrics) {
  std::istringstream in(obs::MetricsExporter::deterministic_json(metrics));
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("\"delta/") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<SnapshotResult> run_window(obs::Registry* metrics,
                                       DeltaCache* delta,
                                       const SupervisorOptions& supervisor,
                                       std::size_t threads = 1) {
  LongitudinalRunner runner{options_with(metrics, delta, threads)};
  return runner.run_supervised(load_feed, supervisor, kFirst, kLast);
}

// ---- DeltaCache unit contract ----

DeltaCache::RunDelta one_of_everything() {
  DeltaCache::RunDelta delta;
  delta.env = "env-key";
  delta.fps = {"fp-key"};
  DeltaCache::RunDelta::CertObs cert;
  cert.key = "cert-key";
  cert.entry.kind = DeltaCache::CertKind::kChain;
  cert.entry.ee_nb = 100;
  cert.entry.ee_na = 200;
  cert.entry.links = {{50, 500}};
  cert.entry.org_mask = 5;
  delta.certs.push_back(std::move(cert));
  delta.onnet.push_back({"origins-key", 0b101});
  delta.covers.push_back({0, 0, true});
  return delta;
}

TEST(DeltaCacheTest, CommitInternsAndProbesHit) {
  DeltaCache cache;
  cache.begin_run("cfg");
  EXPECT_EQ(cache.commit(one_of_everything()), 0u);

  cache.begin_run("cfg");
  std::uint32_t cert_id = 99;
  const DeltaCache::CertEntry* entry = cache.find_cert("cert-key", &cert_id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, DeltaCache::CertKind::kChain);
  EXPECT_EQ(entry->ee_nb, 100);
  EXPECT_EQ(entry->ee_na, 200);
  EXPECT_EQ(entry->org_mask, 5u);

  auto fp = cache.find_fp("fp-key");
  auto env = cache.find_env("env-key");
  auto origins = cache.find_origins("origins-key");
  ASSERT_TRUE(fp && env && origins);
  EXPECT_EQ(cache.find_covers(*fp, cert_id), std::optional<bool>(true));
  EXPECT_EQ(cache.find_onnet(*env, *origins),
            std::optional<std::uint64_t>(0b101));
  EXPECT_EQ(cache.find_cert("unseen-key", &cert_id), nullptr);
  EXPECT_FALSE(cache.find_covers(*fp + 7, cert_id).has_value());
}

TEST(DeltaCacheTest, StatusAtMirrorsTheValidator) {
  DeltaCache::CertEntry entry;
  entry.kind = DeltaCache::CertKind::kChain;
  entry.ee_nb = 10;
  entry.ee_na = 20;
  entry.links = {{0, 100}};
  EXPECT_EQ(entry.status_at(net::DayTime(15)), tls::CertStatus::kValid);
  EXPECT_EQ(entry.status_at(net::DayTime(5)), tls::CertStatus::kNotYetValid);
  EXPECT_EQ(entry.status_at(net::DayTime(25)), tls::CertStatus::kExpired);
  entry.links = {{0, 12}};  // issuer window ends mid-EE-validity
  EXPECT_EQ(entry.status_at(net::DayTime(15)), tls::CertStatus::kUntrustedChain);

  entry.kind = DeltaCache::CertKind::kSelfSignedEe;
  EXPECT_EQ(entry.status_at(net::DayTime(15)), tls::CertStatus::kSelfSigned);
  entry.kind = DeltaCache::CertKind::kNoAnchor;
  EXPECT_EQ(entry.status_at(net::DayTime(15)), tls::CertStatus::kUntrustedChain);
  entry.kind = DeltaCache::CertKind::kMalformed;
  EXPECT_EQ(entry.status_at(net::DayTime(15)), tls::CertStatus::kMalformed);
}

TEST(DeltaCacheTest, ConfigurationChangeInvalidatesEverything) {
  DeltaCache cache;
  cache.begin_run("cfg-a");
  cache.commit(one_of_everything());
  const std::size_t rows = cache.total_rows();
  ASSERT_GT(rows, 0u);

  cache.begin_run("cfg-b");  // e.g. a different HG keyword list
  std::uint32_t id = 0;
  EXPECT_EQ(cache.find_cert("cert-key", &id), nullptr);
  EXPECT_FALSE(cache.find_fp("fp-key").has_value());
  // The cleared rows surface in the next commit's invalidation count.
  EXPECT_EQ(cache.commit(DeltaCache::RunDelta{}), rows);
}

TEST(DeltaCacheTest, IdleRowsAreSweptAfterMaxIdleCommits) {
  DeltaCache cache(/*max_idle=*/1);
  cache.begin_run("cfg");
  cache.commit(one_of_everything());
  const std::size_t rows = cache.total_rows();

  // An empty run touches nothing: every row is now one commit idle and
  // the max_idle=1 sweep evicts all of them.
  cache.begin_run("cfg");
  EXPECT_EQ(cache.commit(DeltaCache::RunDelta{}), rows);
  EXPECT_EQ(cache.total_rows(), 0u);

  // Re-observed content re-interns under fresh ids; probing works again.
  cache.begin_run("cfg");
  cache.commit(one_of_everything());
  std::uint32_t id = 0;
  EXPECT_NE(cache.find_cert("cert-key", &id), nullptr);
}

TEST(DeltaCacheTest, TouchedRowsSurviveTheSweep) {
  DeltaCache cache(/*max_idle=*/1);
  cache.begin_run("cfg");
  cache.commit(one_of_everything());
  // Re-observing the same content every run keeps everything alive.
  for (int i = 0; i < 3; ++i) {
    cache.begin_run("cfg");
    EXPECT_EQ(cache.commit(one_of_everything()), 0u);
  }
  std::uint32_t id = 0;
  EXPECT_NE(cache.find_cert("cert-key", &id), nullptr);
}

TEST(DeltaCacheTest, SnapshotRestoreRoundTripsByteIdentically) {
  DeltaCache cache;
  cache.begin_run("cfg");
  cache.commit(one_of_everything());

  // Compare via the checkpoint encoder — the canonical byte form.
  auto fingerprint = [](const DeltaCache& c) {
    RunState state;
    state.delta = c.snapshot();
    return Checkpoint::encode(state, "delta-only");
  };
  DeltaCache restored;
  restored.restore(cache.snapshot());
  EXPECT_EQ(fingerprint(restored), fingerprint(cache));
  EXPECT_EQ(restored.commit_count(), cache.commit_count());
  EXPECT_EQ(restored.total_rows(), cache.total_rows());

  // The restored cache answers probes like the original.
  restored.begin_run("cfg");
  std::uint32_t id = 0;
  ASSERT_NE(restored.find_cert("cert-key", &id), nullptr);
  EXPECT_TRUE(restored.find_fp("fp-key").has_value());
}

// ---- Pipeline-level contract ----

TEST(DeltaRunTest, DeltaEqualsFullRecomputeAcrossThreadCounts) {
  // Full-recompute reference.
  obs::Registry full_metrics;
  auto full = run_window(&full_metrics, nullptr, SupervisorOptions{});
  const std::string full_results = results_fingerprint(full);
  const std::string full_json = json_without_delta(full_metrics);

  std::string delta_json_t1;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    DeltaCache cache;
    obs::Registry metrics;
    auto results = run_window(&metrics, &cache, SupervisorOptions{}, threads);
    EXPECT_EQ(results_fingerprint(results), full_results);
    EXPECT_EQ(json_without_delta(metrics), full_json);
    // The cache earned its keep across the window's five snapshots...
    EXPECT_GT(metrics.counter("delta/hits").value(), 0u);
    // ...and its counters (hits, misses, invalidations — and the intern
    // tables behind them) are thread-count independent, byte for byte.
    const std::string delta_json =
        obs::MetricsExporter::deterministic_json(metrics);
    if (threads == 1) {
      delta_json_t1 = delta_json;
    } else {
      EXPECT_EQ(delta_json, delta_json_t1);
    }
  }
}

TEST(DeltaRunTest, WarmCacheSecondSeriesIsIdenticalAndHits) {
  DeltaCache cache;
  obs::Registry first_metrics;
  auto first = run_window(&first_metrics, &cache, SupervisorOptions{});

  obs::Registry second_metrics;
  auto second = run_window(&second_metrics, &cache, SupervisorOptions{});
  EXPECT_EQ(results_fingerprint(second), results_fingerprint(first));
  // The warm pass re-answers (almost) everything from the cache.
  EXPECT_GT(second_metrics.counter("delta/hits").value(),
            first_metrics.counter("delta/hits").value());
  EXPECT_LT(second_metrics.counter("delta/misses").value(),
            first_metrics.counter("delta/misses").value());
}

TEST(DeltaRunTest, ContentChurnShowsUpAsInvalidations) {
  // max_idle=1: anything not re-observed in the very next snapshot is
  // evicted, so the natural churn between quarterly snapshots must
  // surface as a nonzero delta/invalidated count.
  DeltaCache cache(/*max_idle=*/1);
  obs::Registry metrics;
  auto results = run_window(&metrics, &cache, SupervisorOptions{});
  EXPECT_EQ(results_fingerprint(results),
            results_fingerprint(run_window(nullptr, nullptr,
                                           SupervisorOptions{})));
  EXPECT_GT(metrics.counter("delta/invalidated").value(), 0u);
}

TEST(DeltaRunTest, DeltaCountersAreExactlyOnceUnderRetry) {
  obs::Registry clean_metrics;
  {
    DeltaCache cache;
    run_window(&clean_metrics, &cache, SupervisorOptions{});
  }

  obs::Registry metrics;
  DeltaCache cache;
  FaultInjector faults;
  // The third pipeline crossing (snapshot 18's first attempt) throws
  // before the pipeline runs; the retry recomputes the snapshot. A
  // half-committed cache or double-counted probes would skew delta/*.
  faults.fail_at(fault_stage::kPipeline, 3);
  SupervisorOptions supervisor;
  supervisor.faults = &faults;
  auto results = run_window(&metrics, &cache, supervisor);

  EXPECT_EQ(metrics.counter("retry/attempts").value(), 1u);
  for (const char* name : {"delta/hits", "delta/misses",
                           "delta/invalidated"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(metrics.counter(name).value(),
              clean_metrics.counter(name).value());
  }
}

TEST(DeltaRunTest, RunDigestSeparatesDeltaFromFullCheckpoints) {
  DeltaCache cache;
  const std::string full =
      run_digest(options_with(nullptr, nullptr), scan::ScannerKind::kRapid7,
                 kFirst);
  const std::string delta =
      run_digest(options_with(nullptr, &cache), scan::ScannerKind::kRapid7,
                 kFirst);
  EXPECT_NE(full, delta);
}

/// The composition contract: crash during any checkpoint publish of a
/// --delta run, resume in a fresh "process" (new runner, new registry,
/// new DeltaCache restored from the checkpoint) at a different thread
/// count — results, metrics (delta/* included), and the final checkpoint
/// bytes all equal an uninterrupted --delta run's.
TEST(DeltaRunTest, CrashAnywhereThenResumeIsByteIdentical) {
  DeltaCache baseline_cache;
  const std::string digest = run_digest(
      options_with(nullptr, &baseline_cache), scan::ScannerKind::kRapid7,
      kFirst);

  const std::string baseline_path = temp_path("delta_baseline.ckpt");
  obs::Registry baseline_metrics;
  SupervisorOptions baseline_opts;
  baseline_opts.checkpoint_path = baseline_path;
  auto baseline =
      run_window(&baseline_metrics, &baseline_cache, baseline_opts);
  const std::string baseline_results = results_fingerprint(baseline);
  const std::string baseline_json =
      obs::MetricsExporter::deterministic_json(baseline_metrics);
  Checkpoint::load(baseline_path, digest);  // verify before fingerprinting
  const std::string baseline_ckpt = slurp(baseline_path);

  struct CrashPoint {
    std::size_t after_snapshot;  // window-relative
    std::size_t crash_threads;
    std::size_t resume_threads;
  };
  // after_snapshot 3 dies in the window's final checkpoint publish.
  for (const CrashPoint& point :
       {CrashPoint{0, 4, 1}, CrashPoint{2, 1, 4}, CrashPoint{3, 4, 1}}) {
    SCOPED_TRACE(point.after_snapshot);
    const std::string path = temp_path(
        "delta_crash_" + std::to_string(point.after_snapshot) + ".ckpt");
    {
      DeltaCache cache;
      obs::Registry metrics;
      FaultInjector faults;
      faults.fail_at(fault_stage::kCheckpointWrite,
                     point.after_snapshot + 2);
      SupervisorOptions opts;
      opts.checkpoint_path = path;
      opts.faults = &faults;
      EXPECT_THROW(run_window(&metrics, &cache, opts, point.crash_threads),
                   InjectedFault);
    }
    EXPECT_EQ(Checkpoint::load(path, digest).results.size(),
              point.after_snapshot + 1);

    DeltaCache cache;     // a resumed process starts with a cold cache...
    obs::Registry metrics;  // ...and an empty registry
    SupervisorOptions opts;
    opts.checkpoint_path = path;
    opts.resume = true;
    auto results = run_window(&metrics, &cache, opts, point.resume_threads);
    EXPECT_EQ(results_fingerprint(results), baseline_results);
    EXPECT_EQ(obs::MetricsExporter::deterministic_json(metrics),
              baseline_json);
    Checkpoint::load(path, digest);
    EXPECT_EQ(slurp(path), baseline_ckpt);
  }
}

}  // namespace
}  // namespace offnet::core
