#include <gtest/gtest.h>

#include <unordered_set>

#include "hypergiant/deployment.h"
#include "net/date.h"
#include "topology/generator.h"

namespace offnet::hg {
namespace {

const topo::Topology& shared_topology() {
  static const topo::Topology topology = [] {
    topo::GeneratorConfig config;
    config.scale = 0.05;
    for (const HgProfile& p : standard_profiles()) {
      config.org_seeds.push_back(
          {p.org_name, p.country_code, p.own_as_count, 4, 20});
    }
    return topo::TopologyGenerator(config).generate();
  }();
  return topology;
}

/// Scaled-down profiles matching the shared topology.
std::vector<HgProfile> scaled_profiles() {
  std::vector<HgProfile> profiles = standard_profiles();
  for (HgProfile& p : profiles) {
    for (auto& [when, value] : p.offnet_ases) value *= 0.05;
    for (auto& [when, value] : p.certonly_ases) value *= 0.05;
  }
  return profiles;
}

class PlannerSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerSeedTest, InvariantsHoldForAnySeed) {
  const topo::Topology& topology = shared_topology();
  auto profiles = scaled_profiles();
  DeploymentConfig config;
  config.seed = GetParam();
  for (auto& [when, value] : config.pool_size) value *= 0.05;
  DeploymentPlan plan = DeploymentPlanner(topology, profiles, config).plan();

  ASSERT_EQ(plan.snapshot_count(), net::snapshot_count());
  ASSERT_EQ(plan.hg_count(), profiles.size());

  const auto snaps = net::study_snapshots();
  for (std::size_t t : {std::size_t{0}, std::size_t{12}, std::size_t{30}}) {
    const auto& alive = topology.alive_mask(t);
    for (std::size_t h = 0; h < plan.hg_count(); ++h) {
      const HgDeployment& d = plan.at(t, h);
      // Sorted, unique, alive hosts.
      EXPECT_TRUE(std::is_sorted(d.confirmed.begin(), d.confirmed.end()));
      std::unordered_set<topo::AsId> seen(d.confirmed.begin(),
                                          d.confirmed.end());
      EXPECT_EQ(seen.size(), d.confirmed.size());
      for (topo::AsId id : d.confirmed) EXPECT_TRUE(alive[id]);
      for (topo::AsId id : d.cert_only) {
        EXPECT_FALSE(seen.contains(id));
        EXPECT_TRUE(alive[id]);
      }
      // Tracks the calibrated anchor.
      double target = anchor_value(profiles[h].offnet_ases, snaps[t]) *
                      profiles[h].anchor_calibration;
      EXPECT_NEAR(static_cast<double>(d.confirmed.size()), target,
                  std::max(4.0, target * 0.06))
          << profiles[h].name << " @ " << snaps[t].to_string();
      // Excluded countries stay excluded.
      for (const std::string& code : profiles[h].excluded_countries) {
        for (topo::AsId id : d.confirmed) {
          auto c = topology.as(id).country;
          if (c != topo::kNoCountry) {
            EXPECT_NE(topology.country(c).code, code);
          }
        }
      }
    }
  }
}

TEST_P(PlannerSeedTest, DifferentSeedsDifferentHosts) {
  const topo::Topology& topology = shared_topology();
  auto profiles = scaled_profiles();
  DeploymentConfig a_config;
  a_config.seed = GetParam();
  for (auto& [when, value] : a_config.pool_size) value *= 0.05;
  DeploymentConfig b_config = a_config;
  b_config.seed = GetParam() + 1;
  auto a = DeploymentPlanner(topology, profiles, a_config).plan();
  auto b = DeploymentPlanner(topology, profiles, b_config).plan();
  int g = profile_index(profiles, "Google");
  EXPECT_NE(a.at(30, g).confirmed, b.at(30, g).confirmed);
  // Same seed reproduces exactly.
  auto a2 = DeploymentPlanner(topology, profiles, a_config).plan();
  EXPECT_EQ(a.at(30, g).confirmed, a2.at(30, g).confirmed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerSeedTest,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace offnet::hg
