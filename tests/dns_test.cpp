#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/cohosting.h"
#include "core/longitudinal.h"
#include "dns/baselines.h"
#include "scan/dns_view.h"
#include "test_world.h"

namespace offnet::dns {
namespace {

class DnsTest : public ::testing::Test {
 protected:
  const scan::World& world() { return testing::small_world(); }
  /// The facade the dns layer consumes; tests drive it exactly as
  /// production callers do.
  const dns::WorldView& view() {
    static scan::WorldDnsView view(testing::small_world());
    return view;
  }
  int idx(std::string_view name) {
    return hg::profile_index(world().profiles(), name);
  }
};

TEST_F(DnsTest, EcsRedirectsToHostingAs) {
  int g = idx("Google");
  HgAuthority authority(view(), g);
  std::size_t t = 5;  // well before the ECS cutoff
  ASSERT_TRUE(authority.ecs_usable(t));

  const auto& hosts = world().plan().at(t, g).confirmed;
  ASSERT_FALSE(hosts.empty());
  // A client inside a hosting AS gets an address inside that AS.
  std::size_t redirected = 0;
  std::size_t checked = 0;
  for (topo::AsId as : hosts) {
    const auto& prefixes = world().topology().as(as).prefixes;
    if (prefixes.empty()) continue;
    if (++checked > 30) break;
    auto response = authority.resolve_ecs("www.google.com", prefixes[0], t);
    ASSERT_FALSE(response.addresses.empty());
    for (const net::Prefix& p : prefixes) {
      if (p.contains(response.addresses[0])) ++redirected;
    }
  }
  EXPECT_GT(redirected, checked / 2);
}

TEST_F(DnsTest, EcsCutoffHidesGoogleOffnets) {
  int g = idx("Google");
  HgAuthority authority(view(), g);
  auto after = net::snapshot_index(net::YearMonth(2017, 4)).value();
  EXPECT_FALSE(authority.ecs_usable(after));
  // Post-cutoff queries see on-nets only.
  const auto& hosts = world().plan().at(after, g).confirmed;
  const auto& prefixes = world().topology().as(hosts[0]).prefixes;
  auto response = authority.resolve_ecs("www.google.com", prefixes[0], after);
  ASSERT_FALSE(response.addresses.empty());
  bool in_host_as = false;
  for (const net::Prefix& p : prefixes) {
    if (p.contains(response.addresses[0])) in_host_as = true;
  }
  EXPECT_FALSE(in_host_as);
}

TEST_F(DnsTest, UnsupportedHgRefusesEcs) {
  HgAuthority authority(view(), idx("Facebook"));
  EXPECT_FALSE(authority.ecs_usable(5));
  auto prefix = world().topology().as(0).prefixes.empty()
                    ? net::Prefix(net::IPv4(0x01000000), 24)
                    : world().topology().as(0).prefixes[0];
  auto response = authority.resolve_ecs("www.facebook.com", prefix, 30);
  EXPECT_TRUE(response.refused);
}

TEST_F(DnsTest, NxdomainForForeignNames) {
  HgAuthority authority(view(), idx("Google"));
  EXPECT_TRUE(authority.resolve_ecs("www.example.org",
                                    net::Prefix(net::IPv4(0x01000000), 24), 5)
                  .addresses.empty());
  EXPECT_TRUE(
      authority.resolve_name("zz9-1.fna.fbcdn.net", 30).addresses.empty());
}

TEST_F(DnsTest, FnaHostnamesResolveToTheirServers) {
  int fb = idx("Facebook");
  HgAuthority authority(view(), fb);
  std::size_t t = net::snapshot_count() - 1;
  std::size_t resolved = 0;
  std::size_t named = 0;
  view().for_each_server(t, fb, [&](const dns::ServerView& server) {
    if (!server.offnet || named > 50) return;
    std::string hostname = authority.server_hostname(server, t);
    if (hostname.empty()) return;
    ++named;
    auto response = authority.resolve_name(hostname, t);
    ASSERT_FALSE(response.addresses.empty()) << hostname;
    // The response addresses live in the server's AS.
    bool same_as = false;
    for (const net::Prefix& p : world().topology().as(server.as).prefixes) {
      for (net::IPv4 ip : response.addresses) {
        if (p.contains(ip)) same_as = true;
      }
    }
    EXPECT_TRUE(same_as) << hostname;
    ++resolved;
  });
  EXPECT_GT(resolved, 20u);
}

TEST_F(DnsTest, EcsMapperRecoversMostOfGooglePreCutoff) {
  int g = idx("Google");
  std::size_t t = net::snapshot_index(net::YearMonth(2016, 4)).value();
  EcsMapper mapper(view(), g);
  auto baseline = mapper.map_footprint(t);
  const auto& truth = world().plan().at(t, g).confirmed;
  ASSERT_FALSE(baseline.empty());
  auto cmp = compare_footprints(baseline, truth);
  // The ECS sweep sees most of the real footprint but not all of it
  // (IP-to-AS gaps), and nothing it finds is spurious.
  EXPECT_GT(cmp.covered_share(), 0.85);
  std::unordered_set<topo::AsId> truth_set(truth.begin(), truth.end());
  std::size_t wrong = 0;
  for (topo::AsId id : baseline) {
    if (!truth_set.contains(id)) ++wrong;
  }
  EXPECT_LT(static_cast<double>(wrong) / baseline.size(), 0.35);
  // Post-cutoff, the technique collapses (§1).
  EXPECT_TRUE(mapper.map_footprint(net::snapshot_count() - 1).empty());
}

TEST_F(DnsTest, PatternEnumeratorFindsStandardDeployments) {
  int fb = idx("Facebook");
  std::size_t t = net::snapshot_count() - 1;
  PatternEnumerator enumerator(view(), fb);
  auto baseline = enumerator.map_footprint(t);
  const auto& truth = world().plan().at(t, fb).confirmed;
  ASSERT_FALSE(baseline.empty());
  auto cmp = compare_footprints(baseline, truth);
  // Finds most deployments but misses the non-standard names (~5%).
  EXPECT_GT(cmp.covered_share(), 0.80);
  EXPECT_LT(baseline.size(), truth.size());
  // No naming convention -> no baseline (Google, §1).
  PatternEnumerator google(view(), idx("Google"));
  EXPECT_TRUE(google.map_footprint(t).empty());
}

TEST_F(DnsTest, PipelineCoversBaselines) {
  // The §5 headline: the certificate technique uncovers 94-98% of what
  // the earlier techniques found, plus more.
  core::LongitudinalRunner runner(world());
  std::size_t t = net::snapshot_count() - 1;
  auto result = runner.run_one(t);
  int fb = idx("Facebook");
  PatternEnumerator enumerator(view(), fb);
  auto baseline = enumerator.map_footprint(t);
  auto cmp = compare_footprints(
      baseline, analysis::effective_footprint(*result.find("Facebook")));
  EXPECT_GT(cmp.covered_share(), 0.85);
  EXPECT_GT(cmp.pipeline_extra(), 0u);
}

}  // namespace
}  // namespace offnet::dns
