#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/known_headers.h"
#include "hypergiant/fleet.h"
#include "scan/background.h"
#include "test_world.h"
#include "tls/validator.h"
#include "topology/generator.h"

namespace offnet::hg {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  const scan::World& world() { return testing::small_world(); }

  int idx(std::string_view name) {
    return profile_index(world().profiles(), name);
  }

  static std::size_t last_snapshot() { return net::snapshot_count() - 1; }
};

TEST_F(FleetTest, EveryHgRunsOnnets) {
  auto fleet = world().fleet().snapshot_fleet(0);
  std::vector<std::size_t> onnet_counts(world().profiles().size(), 0);
  for (const ServerRecord& rec : fleet) {
    if (rec.role == ServerRole::kOnNet) ++onnet_counts[rec.hg];
  }
  for (std::size_t h = 0; h < world().profiles().size(); ++h) {
    EXPECT_GT(onnet_counts[h], 0u) << world().profiles()[h].name;
  }
}

TEST_F(FleetTest, OnnetServersLiveInOwnAs) {
  auto fleet = world().fleet().snapshot_fleet(last_snapshot());
  const auto& orgs = world().topology().orgs();
  for (const ServerRecord& rec : fleet) {
    if (rec.role != ServerRole::kOnNet) continue;
    const auto& profile = world().profiles()[rec.hg];
    auto org = orgs.find_exact(profile.org_name);
    ASSERT_TRUE(org.has_value());
    auto own = orgs.ases_of(*org);
    EXPECT_NE(std::find(own.begin(), own.end(), rec.as), own.end());
  }
}

TEST_F(FleetTest, OffnetServersMatchPlan) {
  std::size_t t = last_snapshot();
  auto fleet = world().fleet().snapshot_fleet(t);
  int g = idx("Google");
  std::unordered_set<topo::AsId> planned(
      world().plan().at(t, g).confirmed.begin(),
      world().plan().at(t, g).confirmed.end());
  std::unordered_set<topo::AsId> seen;
  for (const ServerRecord& rec : fleet) {
    if (rec.hg != g || rec.role != ServerRole::kOffNet) continue;
    EXPECT_TRUE(planned.contains(rec.as));
    seen.insert(rec.as);
  }
  EXPECT_EQ(seen.size(), planned.size());
}

TEST_F(FleetTest, OffnetIpsInsideHostPrefixes) {
  auto fleet = world().fleet().snapshot_fleet(10);
  for (const ServerRecord& rec : fleet) {
    bool inside = false;
    for (const net::Prefix& p : world().topology().as(rec.as).prefixes) {
      if (p.contains(rec.ip)) inside = true;
    }
    EXPECT_TRUE(inside) << rec.ip.to_string();
  }
}

TEST_F(FleetTest, StableIpsAcrossSnapshots) {
  // An AS hosting Google in consecutive snapshots keeps its server IPs.
  int g = idx("Google");
  auto fleet_a = world().fleet().snapshot_fleet(20);
  auto fleet_b = world().fleet().snapshot_fleet(21);
  auto collect = [&](const std::vector<ServerRecord>& fleet) {
    std::unordered_map<topo::AsId, std::vector<std::uint32_t>> by_as;
    for (const ServerRecord& rec : fleet) {
      if (rec.hg == g && rec.role == ServerRole::kOffNet) {
        by_as[rec.as].push_back(rec.ip.value());
      }
    }
    for (auto& [as, ips] : by_as) std::sort(ips.begin(), ips.end());
    return by_as;
  };
  auto a = collect(fleet_a);
  auto b = collect(fleet_b);
  std::size_t shared_ases = 0;
  for (const auto& [as, ips] : a) {
    auto it = b.find(as);
    if (it == b.end()) continue;
    ++shared_ases;
    // Site capacity grows over time, so the earlier snapshot's IPs are a
    // subset of the later one's.
    EXPECT_TRUE(std::includes(it->second.begin(), it->second.end(),
                              ips.begin(), ips.end()))
        << as;
  }
  EXPECT_GT(shared_ases, 10u);
}

TEST_F(FleetTest, OffnetCertSansCoveredByOnnetSans) {
  // The §4.3 containment property: every off-net certificate's dNSNames
  // must appear on some on-net-served certificate of the same HG.
  std::size_t t = 12;
  auto fleet = world().fleet().snapshot_fleet(t);
  std::vector<std::unordered_set<std::string>> onnet_names(
      world().profiles().size());
  for (const ServerRecord& rec : fleet) {
    if (rec.role != ServerRole::kOnNet || rec.https_cert == tls::kNoCert) {
      continue;
    }
    for (const auto& name : world().certs().get(rec.https_cert).dns_names) {
      onnet_names[rec.hg].insert(name);
    }
  }
  for (const ServerRecord& rec : fleet) {
    if (rec.role != ServerRole::kOffNet || !rec.https_enabled) continue;
    for (const auto& name : world().certs().get(rec.https_cert).dns_names) {
      EXPECT_TRUE(onnet_names[rec.hg].contains(name))
          << world().profiles()[rec.hg].name << " " << name;
    }
  }
}

TEST_F(FleetTest, NetflixEpisodeWindow) {
  int nf = idx("Netflix");
  auto episode_t = net::snapshot_index(net::YearMonth(2018, 4)).value();
  auto before_t = net::snapshot_index(net::YearMonth(2016, 4)).value();
  auto after_t = net::snapshot_index(net::YearMonth(2020, 4)).value();

  EXPECT_FALSE(FleetBuilder::in_netflix_episode(net::YearMonth(2017, 1)));
  EXPECT_TRUE(FleetBuilder::in_netflix_episode(net::YearMonth(2017, 4)));
  EXPECT_TRUE(FleetBuilder::in_netflix_episode(net::YearMonth(2019, 7)));
  EXPECT_FALSE(FleetBuilder::in_netflix_episode(net::YearMonth(2019, 10)));

  tls::CertValidator validator(world().certs(), world().roots());
  auto stats = [&](std::size_t t) {
    std::size_t expired = 0;
    std::size_t http_only = 0;
    std::size_t valid = 0;
    auto at = FleetBuilder::scan_time(t);
    for (const ServerRecord& rec : world().fleet().snapshot_fleet(t)) {
      if (rec.hg != nf || rec.role != ServerRole::kOffNet) continue;
      if (!rec.https_enabled) {
        ++http_only;
      } else if (validator.validate(rec.https_cert, at) ==
                 tls::CertStatus::kExpired) {
        ++expired;
      } else if (validator.validate(rec.https_cert, at) ==
                 tls::CertStatus::kValid) {
        ++valid;
      }
    }
    return std::array<std::size_t, 3>{valid, expired, http_only};
  };

  auto during = stats(episode_t);
  EXPECT_GT(during[1], 0u);  // expired certs present
  EXPECT_GT(during[2], 0u);  // HTTP-only servers present
  EXPECT_GT(during[0], 0u);  // and a valid share remains

  auto before = stats(before_t);
  EXPECT_EQ(before[2], 0u);  // nobody on HTTP-only before the episode
  auto after = stats(after_t);
  EXPECT_EQ(after[1], 0u);  // certificate replaced in Oct 2019
  EXPECT_EQ(after[2], 0u);
}

TEST_F(FleetTest, CloudflareCustomers) {
  std::size_t t = last_snapshot();
  int cf = idx("Cloudflare");
  std::size_t dedicated = 0;
  std::size_t free_certs = 0;
  for (const ServerRecord& rec : world().fleet().snapshot_fleet(t)) {
    if (rec.role != ServerRole::kCloudflareCustomer) continue;
    EXPECT_EQ(rec.hg, cf);
    const auto& cert = world().certs().get(rec.https_cert);
    ASSERT_FALSE(cert.dns_names.empty());
    EXPECT_TRUE(cert.dns_names.front().find("cloudflaressl.com") !=
                std::string::npos);
    if (cert.dns_names.size() == 1) {
      ++dedicated;
    } else {
      ++free_certs;  // carries the customer's own domain too
    }
  }
  EXPECT_GT(dedicated, 0u);
  EXPECT_GT(free_certs, 100u);
}

TEST_F(FleetTest, ThirdPartyServiceUsesForeignHeaders) {
  std::size_t t = last_snapshot();
  int apple = idx("Apple");
  const auto& catalog = world().catalog();
  auto apple_known = core::known_fingerprints("Apple");
  std::size_t service_servers = 0;
  std::size_t apple_confirmable = 0;
  for (const ServerRecord& rec : world().fleet().snapshot_fleet(t)) {
    if (rec.hg != apple || rec.role != ServerRole::kThirdPartyService) {
      continue;
    }
    ++service_servers;
    const auto& headers = catalog.get_or_empty(rec.https_headers);
    bool matches_apple = false;
    for (const auto& fp : apple_known) {
      if (fp.matches(headers)) matches_apple = true;
    }
    // Conflict responses may carry Apple debug headers, but then they
    // carry the Akamai edge headers too.
    if (matches_apple) {
      ++apple_confirmable;
      bool akamai_edge = false;
      for (const auto& fp : core::known_fingerprints("Akamai")) {
        if (fp.matches(headers)) akamai_edge = true;
      }
      EXPECT_TRUE(akamai_edge);
    }
  }
  EXPECT_GT(service_servers, 0u);
}

TEST_F(FleetTest, ServesMaskConsistent) {
  int ak = idx("Akamai");
  int apple = idx("Apple");
  for (const ServerRecord& rec : world().fleet().snapshot_fleet(25)) {
    if (rec.hg == ak && rec.role == ServerRole::kOffNet) {
      // Akamai boxes answer for their third-party customers (§5).
      EXPECT_TRUE(rec.serves_hgs & (std::uint64_t{1} << ak));
      EXPECT_TRUE(rec.serves_hgs & (std::uint64_t{1} << apple));
    }
    if (rec.hg == apple && rec.role == ServerRole::kOffNet) {
      EXPECT_TRUE(rec.serves_hgs & (std::uint64_t{1} << apple));
    }
  }
}

// Regression for the serving-mask width: with more than 32 profiles, a
// CDN at index >= 32 must still mark its customer origins — under the
// old std::uint32_t masks (and their `1u << h` shifts) bit 39 was either
// lost or undefined behaviour.
TEST(WideServesMaskTest, OriginBitsAboveThirtyTwoSurvive) {
  std::vector<HgProfile> profiles = standard_profiles();
  while (profiles.size() < 40) {
    HgProfile pad = profiles.front();
    pad.name = "Pad" + std::to_string(profiles.size());
    pad.keyword = "pad" + std::to_string(profiles.size());
    pad.org_name = pad.name + " Inc";
    pad.serves_other_hgs = false;
    pad.is_cert_issuer = false;
    pad.third_party_served = false;
    profiles.push_back(std::move(pad));
  }
  const std::size_t cdn = profiles.size() - 1;  // index 39
  profiles[cdn].serves_other_hgs = true;

  topo::GeneratorConfig topo_config;
  topo_config.scale = 0.02;
  for (const HgProfile& p : profiles) {
    topo_config.org_seeds.push_back(
        {p.org_name, p.country_code, p.own_as_count, 4, 20});
  }
  const topo::Topology topology =
      topo::TopologyGenerator(topo_config).generate();

  tls::CertificateStore certs;
  tls::RootStore roots;
  scan::BackgroundConfig config;
  config.scale = 0.0005;
  // Make customer origins the dominant background population so the
  // snapshot sweep below is guaranteed to draw certs of every CDN.
  config.origin_rate = 0.5;
  scan::BackgroundGenerator background(topology, profiles, certs, roots,
                                       config);

  std::uint64_t seen = 0;
  background.for_each(net::snapshot_count() - 1,
                      [&](const scan::BgServer& server) {
                        seen |= server.serves_hgs;
                      });
  EXPECT_NE(seen, 0u);
  EXPECT_TRUE((seen >> cdn) & 1)
      << "customer-origin bit of the CDN at index 39 was dropped";
}

TEST_F(FleetTest, DeterministicFleet) {
  auto a = world().fleet().snapshot_fleet(7);
  auto b = world().fleet().snapshot_fleet(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ip, b[i].ip);
    EXPECT_EQ(a[i].https_cert, b[i].https_cert);
    EXPECT_EQ(a[i].https_headers, b[i].https_headers);
  }
}

}  // namespace
}  // namespace offnet::hg
