#include <gtest/gtest.h>

#include <unordered_set>

#include "net/rng.h"
#include "topology/as_graph.h"

namespace offnet::topo {
namespace {

/// Brute-force reference: cone of `root` by DFS over customer links.
std::size_t naive_cone(const AsGraph& graph, AsId root,
                       const std::vector<char>& alive) {
  std::unordered_set<AsId> seen;
  std::vector<AsId> stack{root};
  seen.insert(root);
  while (!stack.empty()) {
    AsId here = stack.back();
    stack.pop_back();
    for (AsId c : graph.customers(here)) {
      if (!alive.empty() && !alive[c]) continue;
      if (seen.insert(c).second) stack.push_back(c);
    }
  }
  return seen.size();
}

/// Random layered DAGs: links only go from higher layers to lower ones,
/// guaranteeing acyclicity like the generator does.
class ConePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConePropertyTest, MatchesNaiveReference) {
  net::Rng rng(GetParam());
  AsGraph graph;
  constexpr int kLayers = 5;
  constexpr int kPerLayer = 40;
  std::vector<std::vector<AsId>> layers(kLayers);
  net::Asn next_asn = 100;
  for (int layer = 0; layer < kLayers; ++layer) {
    for (int i = 0; i < kPerLayer; ++i) {
      layers[layer].push_back(graph.add_as(next_asn++));
    }
  }
  // Each AS below the top layer gets 1-3 providers from any higher layer.
  for (int layer = 1; layer < kLayers; ++layer) {
    for (AsId id : layers[layer]) {
      int providers = 1 + static_cast<int>(rng.index(3));
      for (int k = 0; k < providers; ++k) {
        int up = static_cast<int>(rng.index(layer));
        AsId provider = layers[up][rng.index(layers[up].size())];
        graph.add_customer_link(provider, id);
      }
    }
  }
  // Random peers (must not affect cones).
  for (int k = 0; k < 60; ++k) {
    AsId a = static_cast<AsId>(rng.index(graph.as_count()));
    AsId b = static_cast<AsId>(rng.index(graph.as_count()));
    if (a != b) graph.add_peer_link(a, b);
  }

  // Random alive mask (80% alive).
  std::vector<char> alive(graph.as_count(), 1);
  for (auto& a : alive) a = rng.bernoulli(0.8) ? 1 : 0;

  auto cones_all = graph.customer_cone_sizes();
  auto cones_masked = graph.customer_cone_sizes(alive);
  for (AsId id = 0; id < graph.as_count(); ++id) {
    EXPECT_EQ(cones_all[id], naive_cone(graph, id, {})) << id;
    if (alive[id]) {
      EXPECT_EQ(cones_masked[id], naive_cone(graph, id, alive)) << id;
    }
  }

  // cone_union(root) size equals the root's cone size.
  for (int k = 0; k < 10; ++k) {
    AsId root = static_cast<AsId>(rng.index(graph.as_count()));
    std::vector<AsId> roots{root};
    auto mask = graph.cone_union(roots);
    auto count = static_cast<std::size_t>(
        std::count(mask.begin(), mask.end(), char(1)));
    EXPECT_EQ(count, cones_all[root]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConePropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 20210823));

/// Union of cones is monotone and bounded by the sum.
TEST(ConeUnionTest, UnionProperties) {
  net::Rng rng(5);
  AsGraph graph;
  for (net::Asn a = 1; a <= 200; ++a) graph.add_as(a);
  for (AsId id = 20; id < 200; ++id) {
    graph.add_customer_link(static_cast<AsId>(rng.index(20)), id);
  }
  auto cones = graph.customer_cone_sizes();
  std::vector<AsId> one{0};
  std::vector<AsId> two{0, 1};
  auto count = [](const std::vector<char>& mask) {
    return static_cast<std::size_t>(
        std::count(mask.begin(), mask.end(), char(1)));
  };
  auto u1 = count(graph.cone_union(one));
  auto u2 = count(graph.cone_union(two));
  EXPECT_GE(u2, u1);
  EXPECT_LE(u2, cones[0] + cones[1]);
  EXPECT_GE(u2, std::max<std::size_t>(cones[0], cones[1]));
}

}  // namespace
}  // namespace offnet::topo
