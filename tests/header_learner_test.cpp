#include <gtest/gtest.h>

#include "core/header_learner.h"

namespace offnet::core {
namespace {

http::HeaderMap gws_response() {
  http::HeaderMap m;
  m.add("Content-Type", "text/html");
  m.add("Cache-Control", "max-age=3600");
  m.add("Server", "gws");
  return m;
}

http::HeaderMap fb_response() {
  http::HeaderMap m;
  m.add("Content-Type", "text/html");
  m.add("Server", "proxygen-bolt");
  m.add("X-FB-Debug", "a1b2c3");
  return m;
}

TEST(HeaderLearnerTest, LearnsDocumentedValuePattern) {
  HeaderFingerprintLearner learner("Google", "google");
  for (int i = 0; i < 20; ++i) learner.observe(gws_response());
  auto fp = learner.learn();
  ASSERT_FALSE(fp.empty());
  http::HeaderMap probe;
  probe.add("Server", "gws");
  EXPECT_TRUE(fp.matches(probe));
  http::HeaderMap nginx;
  nginx.add("Server", "nginx");
  EXPECT_FALSE(fp.matches(nginx));
}

TEST(HeaderLearnerTest, LearnsNameOnlyDebugHeader) {
  HeaderFingerprintLearner learner("Facebook", "facebook");
  for (int i = 0; i < 20; ++i) learner.observe(fb_response());
  auto fp = learner.learn();
  http::HeaderMap probe;
  probe.add("X-FB-Debug", "completely-different-value");
  EXPECT_TRUE(fp.matches(probe));  // documented name-only pattern
}

TEST(HeaderLearnerTest, KeywordInNameSufficesWithoutDocumentation) {
  HeaderFingerprintLearner learner("Examplecdn", "examplecdn");
  http::HeaderMap m;
  m.add("X-Examplecdn-Trace", "t-123");
  for (int i = 0; i < 5; ++i) learner.observe(m);
  auto fp = learner.learn();
  // Both the name-value pair and the name-only candidate qualify.
  ASSERT_FALSE(fp.patterns.empty());
  ASSERT_LE(fp.patterns.size(), 2u);
  for (const auto& pattern : fp.patterns) {
    EXPECT_EQ(pattern.name, "X-Examplecdn-Trace");
  }
}

TEST(HeaderLearnerTest, StandardHeadersNeverBecomeFingerprints) {
  HeaderFingerprintLearner learner("Google", "google");
  http::HeaderMap m;
  m.add("Cache-Control", "google-cache");  // keyword in a standard header
  m.add("Content-Length", "google");
  for (int i = 0; i < 50; ++i) learner.observe(m);
  EXPECT_TRUE(learner.learn().empty());
}

TEST(HeaderLearnerTest, UnrelatedServersYieldNothing) {
  HeaderFingerprintLearner learner("Netflix", "netflix");
  http::HeaderMap nginx;
  nginx.add("Server", "nginx");
  nginx.add("Content-Type", "text/html");
  for (int i = 0; i < 100; ++i) learner.observe(nginx);
  // The bare nginx banner is not Netflix-identifying; the pipeline's
  // special rule handles Netflix separately.
  EXPECT_TRUE(learner.learn().empty());
  EXPECT_EQ(learner.sample_count(), 100u);
}

TEST(HeaderLearnerTest, CandidatesRankedByFrequency) {
  HeaderFingerprintLearner learner("Google", "google");
  for (int i = 0; i < 10; ++i) learner.observe(gws_response());
  http::HeaderMap rare;
  rare.add("Server", "gvs 1.0");
  learner.observe(rare);
  auto candidates = learner.candidates();
  ASSERT_GT(candidates.size(), 1u);
  EXPECT_GE(candidates[0].count, candidates[1].count);
  // The rare pair is present but ranked below the frequent ones.
  bool found_rare = false;
  for (const auto& c : candidates) {
    if (c.value == "gvs 1.0") found_rare = true;
  }
  EXPECT_TRUE(found_rare);
}

TEST(HeaderLearnerTest, TopNLimitsCandidates) {
  HeaderFingerprintLearner learner("Google", "google");
  for (int i = 0; i < 100; ++i) {
    http::HeaderMap m;
    m.add("X-Random-" + std::to_string(i), "v");
    learner.observe(m);
  }
  EXPECT_LE(learner.candidates(10).size(), 20u);  // 10 pairs + 10 names
}

TEST(HeaderLearnerTest, MixedFleetStillLearns) {
  // 30% of responses are from a different stack; the frequent Google
  // pattern must still surface.
  HeaderFingerprintLearner learner("Google", "google");
  http::HeaderMap other;
  other.add("Server", "Apache/2.4");
  for (int i = 0; i < 70; ++i) learner.observe(gws_response());
  for (int i = 0; i < 30; ++i) learner.observe(other);
  auto fp = learner.learn();
  http::HeaderMap probe;
  probe.add("Server", "gws");
  EXPECT_TRUE(fp.matches(probe));
  // The Apache banner is not classified for Google.
  http::HeaderMap apache;
  apache.add("Server", "Apache/2.4");
  EXPECT_FALSE(fp.matches(apache));
}

}  // namespace
}  // namespace offnet::core
