#include <gtest/gtest.h>

#include "core/known_headers.h"
#include "http/catalog.h"
#include "http/fingerprint.h"
#include "http/headers.h"

namespace offnet::http {
namespace {

TEST(HeaderMapTest, CaseInsensitiveFind) {
  HeaderMap m;
  m.add("Content-Type", "text/html");
  m.add("X-FB-Debug", "abc");
  ASSERT_NE(m.find("content-type"), nullptr);
  EXPECT_EQ(*m.find("CONTENT-TYPE"), "text/html");
  EXPECT_TRUE(m.has("x-fb-debug"));
  EXPECT_EQ(m.find("X-Missing"), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(HeaderMapTest, FirstValueWins) {
  HeaderMap m;
  m.add("Server", "nginx");
  m.add("Server", "gws");
  EXPECT_EQ(*m.find("server"), "nginx");
}

TEST(StandardHeadersTest, Classification) {
  EXPECT_TRUE(is_standard_header("Cache-Control"));
  EXPECT_TRUE(is_standard_header("content-length"));
  EXPECT_TRUE(is_standard_header("Set-Cookie"));
  EXPECT_FALSE(is_standard_header("Server"));
  EXPECT_FALSE(is_standard_header("X-FB-Debug"));
  EXPECT_FALSE(is_standard_header("cf-ray"));
}

struct FpCase {
  const char* pattern;
  const char* name;
  const char* value;
  bool matches;
};

class FingerprintMatchTest : public ::testing::TestWithParam<FpCase> {};

TEST_P(FingerprintMatchTest, PaperNotation) {
  const auto& c = GetParam();
  auto fp = HeaderFingerprint::parse(c.pattern);
  HeaderMap m;
  m.add(c.name, c.value);
  EXPECT_EQ(fp.matches(m), c.matches)
      << c.pattern << " vs " << c.name << ":" << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, FingerprintMatchTest,
    ::testing::Values(
        // Exact name+value ("Server:AkamaiGHost").
        FpCase{"Server:AkamaiGHost", "Server", "AkamaiGHost", true},
        FpCase{"Server:AkamaiGHost", "server", "AkamaiGHost", true},
        FpCase{"Server:AkamaiGHost", "Server", "AkamaiGHostX", false},
        FpCase{"Server:AkamaiGHost", "Server", "nginx", false},
        // Name-only ("CF-Request-Id:").
        FpCase{"CF-Request-Id:", "CF-Request-Id", "0441939", true},
        FpCase{"CF-Request-Id:", "cf-request-id", "", true},
        FpCase{"CF-Request-Id:", "CF-Ray", "0441939", false},
        // Value prefix ("Server:gws*").
        FpCase{"Server:gws*", "Server", "gws", true},
        FpCase{"Server:gws*", "Server", "gws/2.1", true},
        FpCase{"Server:gws*", "Server", "agws", false},
        FpCase{"Server:tengine*", "Server", "tengine/2.3.2", true},
        // Name prefix ("X-Netflix.*:").
        FpCase{"X-Netflix.*:", "X-Netflix.request-id", "abc", true},
        FpCase{"X-Netflix.*:", "x-netflix.esn", "", true},
        FpCase{"X-Netflix.*:", "X-Net", "abc", false},
        FpCase{"X-Served-By:cache-*", "X-Served-By", "cache-lhr123", true},
        FpCase{"X-Served-By:cache-*", "X-Served-By", "pop-lhr123", false}));

TEST(FingerprintTest, ParseRoundTrip) {
  for (const char* pattern :
       {"Server:AkamaiGHost", "CF-Request-Id:", "Server:gws*",
        "X-Netflix.*:", "X-Served-By:cache-*"}) {
    auto fp = HeaderFingerprint::parse(pattern);
    EXPECT_EQ(fp.to_string(), pattern);
  }
}

TEST(FingerprintSetTest, AnyPatternMatches) {
  HeaderFingerprintSet set;
  set.patterns.push_back(HeaderFingerprint::parse("Server:proxygen*"));
  set.patterns.push_back(HeaderFingerprint::parse("X-FB-Debug:"));
  HeaderMap proxygen;
  proxygen.add("Server", "proxygen-bolt");
  HeaderMap debug;
  debug.add("X-FB-Debug", "deadbeef");
  HeaderMap neither;
  neither.add("Server", "nginx");
  EXPECT_TRUE(set.matches(proxygen));
  EXPECT_TRUE(set.matches(debug));
  EXPECT_FALSE(set.matches(neither));
  EXPECT_FALSE(HeaderFingerprintSet{}.matches(proxygen));
}

TEST(CatalogTest, InterningRoundTrip) {
  HeaderCatalog catalog;
  HeaderMap m;
  m.add("Server", "gws");
  HeaderSetId id = catalog.add(std::move(m));
  EXPECT_EQ(*catalog.get(id).find("Server"), "gws");
  EXPECT_TRUE(catalog.get_or_empty(kNoHeaders).empty());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(KnownHeadersTest, TableCoversPaperExamples) {
  // Table 1 rows must be present.
  auto akamai = core::known_fingerprints("Akamai");
  ASSERT_FALSE(akamai.empty());
  HeaderMap ghost;
  ghost.add("Server", "AkamaiGHost");
  EXPECT_TRUE(HeaderFingerprintSet{akamai}.matches(ghost));

  auto google = core::known_fingerprints("Google");
  HeaderMap gws;
  gws.add("Server", "gws");
  EXPECT_TRUE(HeaderFingerprintSet{google}.matches(gws));

  EXPECT_TRUE(core::known_fingerprints("Verizon").empty());
  EXPECT_FALSE(core::known_fingerprints("Cloudflare").empty());
}

TEST(KnownHeadersTest, NginxRule) {
  EXPECT_TRUE(core::nginx_default_rule_applies("Netflix"));
  EXPECT_FALSE(core::nginx_default_rule_applies("Google"));
  HeaderMap nginx;
  nginx.add("Content-Type", "text/html");
  nginx.add("Server", "nginx");
  EXPECT_TRUE(core::is_default_nginx(nginx));
  HeaderMap versioned;
  versioned.add("Server", "nginx/1.18.0");
  EXPECT_FALSE(core::is_default_nginx(versioned));
  EXPECT_FALSE(core::is_default_nginx(HeaderMap{}));
}

}  // namespace
}  // namespace offnet::http
