#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "hypergiant/deployment.h"
#include "net/table.h"
#include "hypergiant/profile.h"
#include "test_world.h"
#include "topology/category.h"

namespace offnet::hg {
namespace {

using net::YearMonth;

TEST(ProfileTest, TwentyThreeHypergiants) {
  const auto& profiles = standard_profiles();
  EXPECT_EQ(profiles.size(), 23u);
  std::unordered_set<std::string> names;
  for (const auto& p : profiles) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name;
    EXPECT_FALSE(p.keyword.empty());
    EXPECT_FALSE(p.org_name.empty());
    EXPECT_FALSE(p.domains.empty()) << p.name;
    EXPECT_FALSE(p.offnet_ases.empty());
    EXPECT_FALSE(p.certonly_ases.empty());
    EXPECT_GE(p.anchor_calibration, 1.0);
    // The Organization name must contain the search keyword (that is how
    // the methodology finds the HG).
    EXPECT_TRUE(net::icontains(p.org_name, p.keyword)) << p.name;
  }
}

TEST(ProfileTest, RegionWeightsNormalized) {
  for (const auto& p : standard_profiles()) {
    double initial = std::accumulate(p.initial_region_weights.begin(),
                                     p.initial_region_weights.end(), 0.0);
    double late = std::accumulate(p.late_region_weights.begin(),
                                  p.late_region_weights.end(), 0.0);
    EXPECT_NEAR(initial, 1.0, 0.05) << p.name;
    EXPECT_NEAR(late, 1.0, 0.05) << p.name;
  }
}

TEST(ProfileTest, Table3Anchors) {
  const auto& profiles = standard_profiles();
  auto anchor_at = [&](std::string_view name, YearMonth when) {
    int idx = profile_index(profiles, name);
    EXPECT_GE(idx, 0) << name;
    return anchor_value(profiles[idx].offnet_ases, when);
  };
  // Table 3 endpoints.
  EXPECT_EQ(anchor_at("Google", YearMonth(2013, 10)), 1044);
  EXPECT_EQ(anchor_at("Google", YearMonth(2021, 4)), 3810);
  EXPECT_EQ(anchor_at("Facebook", YearMonth(2013, 10)), 0);
  EXPECT_EQ(anchor_at("Facebook", YearMonth(2021, 4)), 2214);
  EXPECT_EQ(anchor_at("Netflix", YearMonth(2021, 4)), 2115);
  EXPECT_EQ(anchor_at("Akamai", YearMonth(2013, 10)), 978);
  EXPECT_EQ(anchor_at("Akamai", YearMonth(2018, 4)), 1463);  // the max
  EXPECT_EQ(anchor_at("Akamai", YearMonth(2021, 4)), 1094);
  EXPECT_EQ(anchor_at("Apple", YearMonth(2021, 4)), 0);
  EXPECT_EQ(anchor_at("Twitter", YearMonth(2021, 4)), 4);
  EXPECT_EQ(anchor_at("Microsoft", YearMonth(2021, 4)), 0);
}

TEST(ProfileTest, AnchorInterpolation) {
  Anchors anchors = {{YearMonth(2014, 1), 100.0}, {YearMonth(2014, 7), 400.0}};
  EXPECT_DOUBLE_EQ(anchor_value(anchors, YearMonth(2013, 1)), 100.0);  // clamp left
  EXPECT_DOUBLE_EQ(anchor_value(anchors, YearMonth(2014, 1)), 100.0);
  EXPECT_DOUBLE_EQ(anchor_value(anchors, YearMonth(2014, 4)), 250.0);  // midpoint
  EXPECT_DOUBLE_EQ(anchor_value(anchors, YearMonth(2014, 7)), 400.0);
  EXPECT_DOUBLE_EQ(anchor_value(anchors, YearMonth(2020, 1)), 400.0);  // clamp right
}

TEST(ProfileTest, Top4Indices) {
  const auto& profiles = standard_profiles();
  auto top4 = top4_indices(profiles);
  ASSERT_EQ(top4.size(), 4u);
  EXPECT_EQ(profiles[top4[0]].name, "Google");
  EXPECT_EQ(profiles[top4[1]].name, "Netflix");
  EXPECT_EQ(profiles[top4[2]].name, "Facebook");
  EXPECT_EQ(profiles[top4[3]].name, "Akamai");
}

TEST(ProfileTest, QuirkFlags) {
  const auto& profiles = standard_profiles();
  EXPECT_TRUE(profiles[profile_index(profiles, "Cloudflare")].is_cert_issuer);
  EXPECT_TRUE(profiles[profile_index(profiles, "Akamai")].serves_other_hgs);
  EXPECT_TRUE(profiles[profile_index(profiles, "Apple")].third_party_served);
  EXPECT_TRUE(
      profiles[profile_index(profiles, "Netflix")].netflix_cert_episode);
  EXPECT_TRUE(
      profiles[profile_index(profiles, "Netflix")].nginx_default_offnets);
  EXPECT_TRUE(profiles[profile_index(profiles, "Hulu")].login_only_headers);
  EXPECT_TRUE(profiles[profile_index(profiles, "Alibaba")].asia_only_hardware);
}

class PlanTest : public ::testing::Test {
 protected:
  const scan::World& world() { return testing::small_world(); }
};

TEST_F(PlanTest, FootprintsTrackAnchors) {
  const auto& world = this->world();
  const auto& plan = world.plan();
  const double scale = world.config().topology_scale;
  auto snaps = net::study_snapshots();
  for (std::size_t h = 0; h < world.profiles().size(); ++h) {
    const HgProfile& p = world.profiles()[h];
    for (std::size_t t : {std::size_t{0}, snaps.size() / 2, snaps.size() - 1}) {
      double target = anchor_value(p.offnet_ases, snaps[t]) *
                      p.anchor_calibration;
      double got = static_cast<double>(plan.at(t, h).confirmed.size());
      // Note: World pre-scales profile anchors, so `p` is already scaled.
      (void)scale;
      EXPECT_NEAR(got, target, std::max(3.0, target * 0.05))
          << p.name << " @ " << snaps[t].to_string();
    }
  }
}

TEST_F(PlanTest, ConfirmedAndCertOnlyDisjoint) {
  const auto& world = this->world();
  const auto& plan = world.plan();
  for (std::size_t t : {std::size_t{0}, std::size_t{15}, std::size_t{30}}) {
    for (std::size_t h = 0; h < plan.hg_count(); ++h) {
      const HgDeployment& d = plan.at(t, h);
      std::unordered_set<topo::AsId> confirmed(d.confirmed.begin(),
                                               d.confirmed.end());
      EXPECT_EQ(confirmed.size(), d.confirmed.size());  // no duplicates
      for (topo::AsId id : d.cert_only) {
        EXPECT_FALSE(confirmed.contains(id));
      }
      EXPECT_TRUE(std::is_sorted(d.confirmed.begin(), d.confirmed.end()));
      EXPECT_TRUE(std::is_sorted(d.cert_only.begin(), d.cert_only.end()));
    }
  }
}

TEST_F(PlanTest, NoHypergiantHostsAnother) {
  const auto& world = this->world();
  const auto& plan = world.plan();
  std::unordered_set<topo::AsId> hg_owned;
  for (const HgProfile& p : world.profiles()) {
    if (auto org = world.topology().orgs().find_exact(p.org_name)) {
      for (topo::AsId id : world.topology().orgs().ases_of(*org)) {
        hg_owned.insert(id);
      }
    }
  }
  ASSERT_FALSE(hg_owned.empty());
  for (std::size_t h = 0; h < plan.hg_count(); ++h) {
    for (topo::AsId id : plan.at(plan.snapshot_count() - 1, h).confirmed) {
      EXPECT_FALSE(hg_owned.contains(id));
    }
  }
}

TEST_F(PlanTest, HostsAreAlive) {
  const auto& world = this->world();
  const auto& plan = world.plan();
  for (std::size_t t : {std::size_t{0}, std::size_t{10}}) {
    const auto& alive = world.topology().alive_mask(t);
    for (std::size_t h = 0; h < plan.hg_count(); ++h) {
      for (topo::AsId id : plan.at(t, h).confirmed) {
        EXPECT_TRUE(alive[id]);
      }
    }
  }
}

TEST_F(PlanTest, AkamaiShrinksAfterPeak) {
  const auto& world = this->world();
  int ak = profile_index(world.profiles(), "Akamai");
  ASSERT_GE(ak, 0);
  auto peak_idx = net::snapshot_index(YearMonth(2018, 4)).value();
  std::size_t peak = world.plan().at(peak_idx, ak).confirmed.size();
  std::size_t start = world.plan().at(0, ak).confirmed.size();
  std::size_t end =
      world.plan().at(net::snapshot_count() - 1, ak).confirmed.size();
  EXPECT_GT(peak, start);
  EXPECT_GT(peak, end);
}

TEST_F(PlanTest, FootprintMostlySticky) {
  // Hosts rarely disappear snapshot-over-snapshot (small churn only).
  const auto& world = this->world();
  int g = profile_index(world.profiles(), "Google");
  for (std::size_t t = 1; t < 10; ++t) {
    const auto& prev = world.plan().at(t - 1, g).confirmed;
    const auto& next = world.plan().at(t, g).confirmed;
    std::vector<topo::AsId> kept;
    std::set_intersection(prev.begin(), prev.end(), next.begin(), next.end(),
                          std::back_inserter(kept));
    EXPECT_GT(kept.size(), prev.size() * 0.95);
  }
}

TEST_F(PlanTest, ThirdPartyServiceRidesAkamai) {
  const auto& world = this->world();
  int apple = profile_index(world.profiles(), "Apple");
  int ak = profile_index(world.profiles(), "Akamai");
  std::size_t t = net::snapshot_count() - 1;
  const auto& apple_service = world.plan().at(t, apple).cert_only;
  const auto& akamai_hosts = world.plan().at(t, ak).confirmed;
  ASSERT_FALSE(apple_service.empty());
  std::vector<topo::AsId> inside;
  std::set_intersection(apple_service.begin(), apple_service.end(),
                        akamai_hosts.begin(), akamai_hosts.end(),
                        std::back_inserter(inside));
  // Mostly inside the CDN's host set (placements persist even after the
  // CDN later leaves an AS, so this is not exact; random placement would
  // land <2% inside).
  EXPECT_GT(inside.size(), apple_service.size() * 0.4);
  EXPECT_GE(inside.size(), 1u);
}

TEST_F(PlanTest, ConfirmedMaskMatchesList) {
  const auto& world = this->world();
  int g = profile_index(world.profiles(), "Google");
  auto mask = world.plan().confirmed_mask(5, g);
  const auto& list = world.plan().at(5, g).confirmed;
  std::size_t set_bits = std::count(mask.begin(), mask.end(), char(1));
  EXPECT_EQ(set_bits, list.size());
  for (topo::AsId id : list) EXPECT_TRUE(mask[id]);
}

}  // namespace
}  // namespace offnet::hg
