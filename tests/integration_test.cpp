#include <gtest/gtest.h>

#include "analysis/cohosting.h"
#include "core/longitudinal.h"
#include "test_world.h"

namespace offnet {
namespace {

/// Full longitudinal run over the shared small world; shapes of the
/// paper's headline results must hold end to end.
class LongitudinalIntegrationTest : public ::testing::Test {
 protected:
  static const std::vector<core::SnapshotResult>& results() {
    static const std::vector<core::SnapshotResult> all = [] {
      core::LongitudinalRunner runner(testing::small_world());
      return runner.run();
    }();
    return all;
  }

  static std::vector<std::size_t> series(std::string_view hg,
                                         bool envelope = false) {
    std::vector<std::size_t> out;
    for (const auto& result : results()) {
      const core::HgFootprint* fp = result.find(hg);
      out.push_back(envelope
                        ? analysis::effective_footprint(*fp).size()
                        : fp->confirmed_or_ases.size());
    }
    return out;
  }
};

TEST_F(LongitudinalIntegrationTest, AllSnapshotsPresent) {
  EXPECT_EQ(results().size(), net::snapshot_count());
  for (std::size_t t = 0; t < results().size(); ++t) {
    EXPECT_EQ(results()[t].snapshot, t);
  }
}

TEST_F(LongitudinalIntegrationTest, GoogleGrowsMonotonically) {
  auto google = series("Google");
  // Headline: the footprint roughly triples over the study.
  EXPECT_GT(google.back(), google.front() * 2.5);
  // Mostly monotone growth (tolerate small measurement jitter).
  std::size_t drops = 0;
  for (std::size_t t = 1; t < google.size(); ++t) {
    if (google[t] + google[t - 1] / 20 < google[t - 1]) ++drops;
  }
  EXPECT_LE(drops, 2u);
}

TEST_F(LongitudinalIntegrationTest, FacebookLaunchesSummer2016) {
  auto facebook = series("Facebook");
  auto launch = net::snapshot_index(net::YearMonth(2016, 7)).value();
  for (std::size_t t = 0; t < launch; ++t) {
    EXPECT_EQ(facebook[t], 0u) << t;
  }
  EXPECT_GT(facebook.back(), 0u);
  EXPECT_GT(facebook.back(), facebook[launch + 2] * 2);
}

TEST_F(LongitudinalIntegrationTest, AkamaiPeaksThenShrinks) {
  auto akamai = series("Akamai");
  auto peak_t = net::snapshot_index(net::YearMonth(2018, 4)).value();
  std::size_t peak = *std::max_element(akamai.begin(), akamai.end());
  std::size_t peak_at = std::max_element(akamai.begin(), akamai.end()) -
                        akamai.begin();
  EXPECT_NEAR(static_cast<double>(peak_at), static_cast<double>(peak_t), 4.0);
  EXPECT_LT(akamai.back(), peak * 0.85);
  EXPECT_GT(akamai.back(), akamai.front());
}

TEST_F(LongitudinalIntegrationTest, NetflixEpisodeDipAndRecovery) {
  auto initial = series("Netflix");
  auto envelope = series("Netflix", /*envelope=*/true);
  auto start = net::snapshot_index(net::YearMonth(2017, 4)).value();
  auto end = net::snapshot_index(net::YearMonth(2019, 10)).value();
  // During the episode, the plain measurement dips well below the
  // envelope; outside it they coincide.
  for (std::size_t t = start; t < end; ++t) {
    EXPECT_LT(initial[t], envelope[t] * 0.75) << t;
  }
  for (std::size_t t = 0; t < start; ++t) {
    EXPECT_EQ(initial[t], envelope[t]) << t;
  }
  // Post-recovery jump.
  EXPECT_GT(initial[end], initial[end - 1] * 1.4);
  // The envelope keeps growing through the episode.
  EXPECT_GT(envelope[end - 1], envelope[start] * 1.2);
}

TEST_F(LongitudinalIntegrationTest, UnionTriples) {
  // Abstract headline: #ASes hosting HG off-nets has tripled.
  analysis::CohostingAnalysis cohosting(testing::small_world().topology(),
                                        results());
  auto first = cohosting.snapshot_distribution(0);
  auto last = cohosting.snapshot_distribution(results().size() - 1);
  EXPECT_GT(last.total_top4, first.total_top4 * 2.4);
  // Co-hosting rises: in 2013 <40% of hosts run 2+, by 2021 >55%.
  double early_multi =
      1.0 - static_cast<double>(first.hosted_n[1]) / first.total_top4;
  double late_multi =
      1.0 - static_cast<double>(last.hosted_n[1]) / last.total_top4;
  EXPECT_LT(early_multi, 0.45);
  EXPECT_GT(late_multi, 0.55);
  EXPECT_GT(last.top4_share, 0.93);
}

TEST_F(LongitudinalIntegrationTest, CandidatesAlwaysCoverConfirmed) {
  for (const auto& result : results()) {
    for (const auto& fp : result.per_hg) {
      EXPECT_GE(fp.candidate_ases.size(), fp.confirmed_or_ases.size());
    }
  }
}

TEST_F(LongitudinalIntegrationTest, CorpusStatsTrackFigure2) {
  const auto& first = results().front().stats;
  const auto& last = results().back().stats;
  EXPECT_GT(last.total_records, first.total_records * 2);
  // The share of HG-related IPs stays small but grows.
  double share_first =
      static_cast<double>(first.hg_cert_ips_onnet +
                          first.hg_cert_ips_offnet) /
      first.total_records;
  double share_last =
      static_cast<double>(last.hg_cert_ips_onnet + last.hg_cert_ips_offnet) /
      last.total_records;
  EXPECT_LT(share_last, 0.6);
  EXPECT_GT(share_last, share_first);
}

TEST(DeterminismTest, SameSeedSameResults) {
  scan::WorldConfig config;
  config.topology_scale = 0.02;
  config.background_scale = 0.0005;
  scan::World a(config);
  scan::World b(config);
  core::LongitudinalRunner ra(a);
  core::LongitudinalRunner rb(b);
  auto res_a = ra.run_one(20);
  auto res_b = rb.run_one(20);
  ASSERT_EQ(res_a.per_hg.size(), res_b.per_hg.size());
  for (std::size_t h = 0; h < res_a.per_hg.size(); ++h) {
    EXPECT_EQ(res_a.per_hg[h].confirmed_or_ases,
              res_b.per_hg[h].confirmed_or_ases);
  }
  EXPECT_EQ(res_a.stats.total_records, res_b.stats.total_records);
}

TEST(DeterminismTest, DifferentSeedDifferentWorld) {
  scan::WorldConfig config;
  config.topology_scale = 0.02;
  config.background_scale = 0.0005;
  scan::World a(config);
  config.seed = 424242;
  scan::World b(config);
  core::LongitudinalRunner ra(a);
  core::LongitudinalRunner rb(b);
  auto res_a = ra.run_one(20);
  auto res_b = rb.run_one(20);
  EXPECT_NE(res_a.stats.total_records, res_b.stats.total_records);
}

}  // namespace
}  // namespace offnet
